"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, _parse_current, _parse_duration, main


class TestParsers:
    def test_current_units(self):
        assert _parse_current("25mA") == pytest.approx(0.025)
        assert _parse_current("0.05A") == pytest.approx(0.05)
        assert _parse_current("0.01") == pytest.approx(0.01)

    def test_duration_units(self):
        assert _parse_duration("10ms") == pytest.approx(0.010)
        assert _parse_duration("1.5s") == pytest.approx(1.5)
        assert _parse_duration("0.2") == pytest.approx(0.2)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig10", "fig12", "ablation-esr"):
            assert name in out

    def test_run_single(self, capsys):
        assert main(["run", "fig4"]) == 0
        assert "power-off" in capsys.readouterr().out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_vsafe_table(self, capsys):
        assert main(["vsafe", "25mA", "10ms", "--shape", "pulse"]) == 0
        out = capsys.readouterr().out
        assert "ground truth" in out
        assert "Culpeo-ISR" in out

    def test_vsafe_infeasible_load(self, capsys):
        code = main(["vsafe", "50mA", "5s"])
        assert code == 1
        assert "cannot complete" in capsys.readouterr().out

    def test_registry_covers_every_figure(self):
        for fig in ("fig1b", "fig3", "fig4", "fig5", "fig6", "table3",
                    "fig10", "fig11", "fig12", "fig13"):
            assert fig in EXPERIMENTS


class TestTraceCommand:
    """`repro trace` / `repro stats`: the observability CLI surface."""

    def test_trace_experiment_writes_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "obs"
        assert main(["trace", "fig4", "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out          # event summary table
        assert (out_dir / "trace.jsonl").exists()
        assert (out_dir / "metrics.json").exists()
        import json
        events = [json.loads(line) for line
                  in (out_dir / "trace.jsonl").read_text().splitlines()]
        names = {e["event"] for e in events}
        assert {"task.begin", "task.end"} <= names
        metrics = json.loads((out_dir / "metrics.json").read_text())
        assert metrics["format"] == "repro.obs-metrics"
        assert metrics["counters"]["sim.traces"] >= 1

    def test_trace_app_emits_cache_and_vmin_events(self, capsys, tmp_path):
        # Start cold: the process-wide cache may be warm from earlier
        # tests, and this test needs trial 1 to miss and trial 2 to hit.
        from repro.core.vsafe_cache import default_cache
        default_cache().invalidate()
        out_dir = tmp_path / "obs"
        assert main(["trace", "ps", "--trials", "2",
                     "--out", str(out_dir)]) == 0
        capsys.readouterr()
        import json
        events = [json.loads(line) for line
                  in (out_dir / "trace.jsonl").read_text().splitlines()]
        names = {e["event"] for e in events}
        # The acceptance triad: task spans, V_min captures, cache traffic.
        assert {"task.begin", "task.end", "power.v_min",
                "cache.hit", "cache.miss"} <= names

    def test_trace_unknown_target(self, capsys, tmp_path):
        assert main(["trace", "no-such-thing",
                     "--out", str(tmp_path)]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_stats_renders_trace_metrics(self, capsys, tmp_path):
        out_dir = tmp_path / "obs"
        main(["trace", "fig4", "--out", str(out_dir)])
        capsys.readouterr()
        assert main(["stats", str(out_dir / "metrics.json")]) == 0
        out = capsys.readouterr().out
        assert "sim.traces" in out and "counter" in out

    def test_stats_json_round_trip(self, capsys, tmp_path):
        out_dir = tmp_path / "obs"
        main(["trace", "fig4", "--out", str(out_dir)])
        capsys.readouterr()
        assert main(["stats", str(out_dir / "metrics.json"),
                     "--json"]) == 0
        import json
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro.obs-metrics"

    def test_stats_missing_file(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path / "nope.json")]) == 2
        assert capsys.readouterr().err

    def test_stats_rejects_foreign_json(self, capsys, tmp_path):
        bad = tmp_path / "other.json"
        bad.write_text('{"benchmark": "BENCH"}')
        assert main(["stats", str(bad)]) == 2
        assert "not a repro.obs metrics snapshot" in capsys.readouterr().err


class TestVerifyCommand:
    """End-to-end `repro verify`: the soundness gate as a user runs it."""

    def test_stock_estimators_pass(self, capsys, tmp_path):
        report_file = tmp_path / "report.json"
        code = main(["verify", "--trials", "4", "--seed", "0",
                     "--report", str(report_file),
                     "--failures-dir", str(tmp_path / "failures")])
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out
        assert report_file.exists()
        import json
        payload = json.loads(report_file.read_text())
        assert payload["format"] == "repro.verify-report"
        assert payload["config"]["trials"] == 4
        assert payload["counts"]["UNSOUND"] == 0
        assert payload["ok"] is True
        assert not (tmp_path / "failures").exists()   # created only on failure

    def test_unsound_estimator_convicts_and_persists_case(self, capsys,
                                                          tmp_path):
        failures = tmp_path / "failures"
        code = main(["verify", "--trials", "4", "--seed", "0",
                     "--estimators", "energy-direct",
                     "--failures-dir", str(failures)])
        assert code == 1
        cases = sorted(failures.glob("case-*.json"))
        assert cases                      # shrunk repro persisted
        capsys.readouterr()
        replay_code = main(["verify", "--replay", str(cases[0])])
        assert replay_code == 1           # the case replays UNSOUND
        assert "UNSOUND" in capsys.readouterr().out

    def test_unknown_estimator_rejected(self, capsys):
        assert main(["verify", "--trials", "1",
                     "--estimators", "no-such-estimator"]) == 2
        assert "unknown estimator" in capsys.readouterr().err


class TestChaosCommand:
    """End-to-end `repro chaos`: fault campaigns as a user runs them."""

    def test_stock_campaign_passes(self, capsys, tmp_path):
        report_file = tmp_path / "chaos.json"
        code = main(["chaos", "--trials", "4", "--seed", "1",
                     "--estimators", "culpeo-isr",
                     "--report", str(report_file),
                     "--cases-dir", str(tmp_path / "cases")])
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out
        import json
        payload = json.loads(report_file.read_text())
        assert payload["format"] == "repro.chaos-report"
        assert payload["config"]["trials"] == 4
        assert payload["counts"]["brown_out"] == 0
        assert payload["ok"] is True
        assert not (tmp_path / "cases").exists()  # created only when unsafe

    def test_baseline_campaign_fails_and_persists_cases(self, capsys,
                                                        tmp_path):
        cases = tmp_path / "cases"
        code = main(["chaos", "--trials", "2", "--seed", "3",
                     "--estimators", "energy-v",
                     "--injectors", "esr-aging",
                     "--cases-dir", str(cases)])
        assert code == 1
        assert "verdict: UNSAFE" in capsys.readouterr().out
        persisted = sorted(cases.glob("chaos-*.json"))
        assert persisted
        replay_code = main(["chaos", "--replay", str(persisted[0])])
        assert replay_code == 1           # the case replays unsafe
        assert "brown_out" in capsys.readouterr().out

    def test_expect_unsafe_inverts_the_exit_status(self, tmp_path):
        args = ["chaos", "--trials", "2", "--seed", "3",
                "--estimators", "energy-v", "--injectors", "esr-aging",
                "--cases-dir", str(tmp_path / "cases")]
        assert main(args + ["--expect-unsafe"]) == 0
        clean = ["chaos", "--trials", "1", "--seed", "1",
                 "--estimators", "culpeo-isr", "--injectors", "none",
                 "--cases-dir", str(tmp_path / "cases2")]
        assert main(clean + ["--expect-unsafe"]) == 1

    def test_unknown_selectors_rejected(self, capsys):
        assert main(["chaos", "--trials", "1",
                     "--injectors", "gremlins"]) == 2
        assert "unknown injector" in capsys.readouterr().err
        assert main(["chaos", "--trials", "1", "--apps", "doom"]) == 2
        assert "unknown app" in capsys.readouterr().err
        assert main(["chaos", "--trials", "1",
                     "--estimators", "psychic"]) == 2
        assert "unknown estimator" in capsys.readouterr().err


class TestFleetCommand:
    """End-to-end `repro fleet`: vectorized fleet simulation."""

    def test_small_fleet_runs_and_reports(self, capsys, tmp_path):
        report_file = tmp_path / "fleet.json"
        code = main(["fleet", "--devices", "8", "--seed", "1",
                     "--cycles", "1", "--horizon", "60",
                     "--report", str(report_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet: 8 devices" in out
        assert "completed" in out
        import json
        payload = json.loads(report_file.read_text())
        assert payload["format"] == "repro.fleet-report"
        assert payload["devices"] == 8
        assert payload["config"]["spec"]["seed"] == 1

    def test_differential_check_passes(self, capsys):
        code = main(["fleet", "--devices", "6", "--seed", "2",
                     "--cycles", "1", "--horizon", "60", "--check", "3"])
        assert code == 0
        assert "differential check" in capsys.readouterr().out

    def test_jobs_flag_gives_identical_report(self, tmp_path):
        import json
        paths = []
        for jobs in ("1", "3"):
            path = tmp_path / f"fleet-j{jobs}.json"
            assert main(["fleet", "--devices", "9", "--seed", "4",
                         "--cycles", "1", "--horizon", "60",
                         "--jobs", jobs, "--report", str(path)]) == 0
            paths.append(path)
        assert paths[0].read_text() == paths[1].read_text()

    def test_unknown_app_and_estimator_rejected(self, capsys):
        assert main(["fleet", "--devices", "1", "--app", "doom"]) == 2
        assert "unknown app" in capsys.readouterr().err
        assert main(["fleet", "--devices", "1",
                     "--estimator", "psychic"]) == 2
        assert "unknown estimator" in capsys.readouterr().err

    def test_bad_spec_rejected(self, capsys):
        assert main(["fleet", "--devices", "-3"]) == 2
        assert "devices" in capsys.readouterr().err

    def test_fail_on_unsafe_is_opt_in(self, capsys):
        # Zero harvest livelocks every device: exit 0 by default (a
        # deployment finding), exit 1 with --fail-on-unsafe.
        args = ["fleet", "--devices", "2", "--seed", "0",
                "--harvest", "0", "--harvest-jitter", "0",
                "--cycles", "6", "--horizon", "120"]
        assert main(args) == 0
        assert "UNSAFE" in capsys.readouterr().out
        assert main(args + ["--fail-on-unsafe"]) == 1


class TestEnvCommand:
    """End-to-end `repro env`: generate, inspect, replay."""

    GEN = ["env", "generate", "--devices", "6", "--duration", "20",
           "--front-delay", "0.3", "--env-seed", "5"]

    def _generate(self, tmp_path, *extra):
        out = tmp_path / "sky.npz"
        assert main(self.GEN + ["--out", str(out)] + list(extra)) == 0
        return out

    def test_generate_writes_a_trace(self, capsys, tmp_path):
        out = self._generate(tmp_path)
        assert out.exists()
        line = capsys.readouterr().out
        assert "6 device(s)" in line
        assert "fingerprint" in line

    def test_generate_is_byte_deterministic(self, capsys, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        a = self._generate(tmp_path / "a")
        b = self._generate(tmp_path / "b")
        assert a.read_bytes() == b.read_bytes()

    def test_generate_rejects_bad_spec(self, capsys, tmp_path):
        assert main(["env", "generate", "--model", "lunar",
                     "--out", str(tmp_path / "x.npz")]) == 2
        assert "unknown environment model" in capsys.readouterr().err

    def test_inspect_prints_summary_json(self, capsys, tmp_path):
        out = self._generate(tmp_path)
        capsys.readouterr()
        assert main(["env", "inspect", str(out)]) == 0
        import json
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro.env-trace"
        assert payload["devices"] == 6
        assert payload["spec"]["model"] == "diurnal-solar"

    def test_inspect_rejects_foreign_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.npz"
        import numpy as np
        np.savez(bad, edges=np.array([0.0, 1.0]))
        assert main(["env", "inspect", str(bad)]) == 2
        assert "not an environment trace" in capsys.readouterr().err

    def test_replay_verifies_and_runs_the_fleet(self, capsys, tmp_path):
        out = self._generate(tmp_path)
        report = tmp_path / "replay.json"
        code = main(["env", "replay", str(out), "--horizon", "20",
                     "--cycles", "1", "--check", "2",
                     "--report", str(report)])
        assert code == 0
        text = capsys.readouterr().out
        assert "fleet: 6 devices" in text
        assert "differential check" in text
        import json
        payload = json.loads(report.read_text())
        assert payload["format"] == "repro.fleet-report"
        assert payload["config"]["spec"]["env"]["model"] == "diurnal-solar"

    def test_replay_reports_identical_across_jobs(self, tmp_path):
        out = self._generate(tmp_path)
        reports = []
        for jobs in ("1", "3"):
            path = tmp_path / f"replay-j{jobs}.json"
            assert main(["env", "replay", str(out), "--horizon", "20",
                         "--cycles", "1", "--jobs", jobs,
                         "--report", str(path)]) == 0
            reports.append(path)
        assert reports[0].read_text() == reports[1].read_text()

    def test_replay_needs_a_generating_spec(self, capsys, tmp_path):
        import numpy as np
        from repro.env import EnvFleetTrace, save_trace
        raw = EnvFleetTrace(edges=np.array([0.0, 1.0, 2.0]),
                            powers=np.full((2, 2), 1e-3))
        path = tmp_path / "recorded.npz"
        save_trace(path, raw)
        assert main(["env", "replay", str(path)]) == 2
        assert "no generating spec" in capsys.readouterr().err

    def test_fleet_env_flag_drives_the_fleet(self, capsys, tmp_path):
        out = self._generate(tmp_path)
        code = main(["fleet", "--devices", "6", "--env", str(out),
                     "--horizon", "20", "--cycles", "1", "--check", "2"])
        assert code == 0
        text = capsys.readouterr().out
        assert "differential check" in text

    def test_fleet_env_excludes_harvest_period(self, capsys, tmp_path):
        out = self._generate(tmp_path)
        assert main(["fleet", "--devices", "6", "--env", str(out),
                     "--harvest-period", "60"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
