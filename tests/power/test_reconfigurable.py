"""Reconfigurable energy storage."""

import pytest

from repro.errors import PowerSystemError
from repro.loads.trace import CurrentTrace
from repro.power.reconfigurable import ReconfigurableBuffer, capybara_bank_set
from repro.power.system import capybara_power_system
from repro.sim.engine import PowerSystemSimulator


@pytest.fixture
def buffer():
    return ReconfigurableBuffer(capybara_bank_set(),
                                initial_config=("small",), voltage=2.2)


class TestConfiguration:
    def test_config_id_is_hashable_tag(self, buffer):
        assert buffer.config_id == frozenset({"small"})
        {buffer.config_id: "usable as dict key"}

    def test_capacitance_tracks_active_banks(self, buffer):
        small_c = buffer.total_capacitance
        buffer.configure(("small", "large"))
        assert buffer.total_capacitance > 4 * small_c

    def test_esr_drops_with_more_banks(self, buffer):
        small_esr = buffer.r_esr
        buffer.configure(("small", "large"))
        assert buffer.r_esr < small_esr

    def test_switch_resistance_included(self):
        with_switch = ReconfigurableBuffer(
            capybara_bank_set(), ("small",), switch_resistance=0.5,
            voltage=2.2)
        without = ReconfigurableBuffer(
            capybara_bank_set(), ("small",), switch_resistance=0.0,
            voltage=2.2)
        assert with_switch.r_esr == pytest.approx(without.r_esr + 0.5)

    def test_unknown_bank_rejected(self, buffer):
        with pytest.raises(PowerSystemError):
            buffer.configure(("ghost",))

    def test_empty_config_rejected(self, buffer):
        with pytest.raises(PowerSystemError):
            buffer.configure(())

    def test_needs_banks(self):
        with pytest.raises(PowerSystemError):
            ReconfigurableBuffer({}, initial_config=())


class TestChargeConservation:
    def test_reconnect_redistributes_charge(self, buffer):
        # Drain the small bank partway, then bring in the full large one.
        for _ in range(100):
            buffer.step(0.020, 0.001)  # 2 mC: ~0.26 V off the small bank
        buffer.settle()
        v_small = buffer.open_circuit_voltage
        assert 1.8 < v_small < 2.1
        buffer.configure(("small", "large"))
        merged = buffer.open_circuit_voltage
        # Weighted mean must land between the drained and full voltages.
        assert v_small < merged < 2.2

    def test_total_energy_conserved_across_reconfigure(self, buffer):
        for _ in range(100):
            buffer.step(0.020, 0.001)
        buffer.settle()
        e_before = buffer.stored_energy
        buffer.configure(("small", "large"))
        # Instant redistribution loses a little energy to the switch
        # (charge conservation, not energy conservation), never gains.
        assert buffer.stored_energy <= e_before + 1e-9
        assert buffer.stored_energy > 0.95 * e_before

    def test_parked_bank_holds_voltage(self, buffer):
        buffer.configure(("small", "large"))
        buffer.reset(2.3)
        buffer.configure(("small",))
        for _ in range(100):
            buffer.step(0.020, 0.01)
        buffer.configure(("large",))
        # The large bank was parked at 2.3 V while small drained.
        assert buffer.open_circuit_voltage == pytest.approx(2.3, abs=0.01)


class TestEnergyBufferProtocol:
    def test_drops_into_power_system(self, buffer):
        system = capybara_power_system()
        system.buffer = buffer
        system.rest_at(2.3)
        sim = PowerSystemSimulator(system)
        result = sim.run_trace(CurrentTrace.constant(0.010, 0.050),
                               harvesting=False)
        assert result.completed
        assert result.v_min < 2.3

    def test_small_config_droops_more(self):
        def run(config):
            system = capybara_power_system()
            system.buffer = ReconfigurableBuffer(
                capybara_bank_set(), config, voltage=2.3)
            system.rest_at(2.3)
            sim = PowerSystemSimulator(system)
            return sim.run_trace(CurrentTrace.constant(0.025, 0.020),
                                 harvesting=False).v_min

        assert run(("small",)) < run(("small", "large"))

    def test_copy_is_independent(self, buffer):
        clone = buffer.copy()
        buffer.step(0.050, 0.1)
        assert clone.open_circuit_voltage == pytest.approx(2.2, abs=1e-6)
        clone.configure(("small", "large"))
        assert buffer.config_id == frozenset({"small"})

    def test_repr(self, buffer):
        assert "small" in repr(buffer)


class TestBankSet:
    def test_capybara_set_shapes(self):
        banks = capybara_bank_set()
        assert banks["small"].capacitance == pytest.approx(7.5e-3)
        assert banks["large"].capacitance == pytest.approx(37.5e-3)
        assert banks["large"].esr < banks["small"].esr
