"""ESR-versus-frequency profiling."""

import pytest

from repro.power.capacitor import IdealCapacitor, TwoBranchSupercap
from repro.power.esr_profile import (
    EsrFrequencyCurve,
    measure_esr_curve,
    measure_pulse_esr,
)


@pytest.fixture
def supercap():
    return TwoBranchSupercap(c_main=0.040, r_esr=4.0, c_redist=0.004,
                             r_redist=20.0, c_decoupling=100e-6, voltage=2.2)


class TestMeasurePulseEsr:
    def test_ideal_capacitor_measures_its_esr(self):
        cap = IdealCapacitor(capacitance=0.045, esr=4.0, voltage=2.2)
        measured = measure_pulse_esr(cap, pulse_width=0.050)
        assert measured == pytest.approx(4.0, rel=0.02)

    def test_short_pulses_see_less_esr(self, supercap):
        short = measure_pulse_esr(supercap, pulse_width=0.0005)
        long = measure_pulse_esr(supercap, pulse_width=0.050)
        assert short < long

    def test_long_pulse_approaches_parallel_dc_resistance(self, supercap):
        # 4 ohm || 20 ohm = 3.33 ohm.
        measured = measure_pulse_esr(supercap, pulse_width=0.200)
        assert measured == pytest.approx(3.33, rel=0.1)

    def test_nondestructive(self, supercap):
        v_before = supercap.terminal_voltage
        measure_pulse_esr(supercap, pulse_width=0.010)
        assert supercap.terminal_voltage == pytest.approx(v_before)

    def test_validation(self, supercap):
        with pytest.raises(ValueError):
            measure_pulse_esr(supercap, pulse_width=0.0)
        with pytest.raises(ValueError):
            measure_pulse_esr(supercap, pulse_width=0.01, test_current=0.0)


class TestMeasureEsrCurve:
    def test_curve_is_monotone_for_this_buffer(self, supercap):
        curve = measure_esr_curve(supercap)
        assert list(curve.esr_values) == sorted(curve.esr_values)

    def test_unsorted_widths_are_sorted(self, supercap):
        curve = measure_esr_curve(supercap, pulse_widths=[0.1, 0.001, 0.01])
        assert list(curve.pulse_widths) == [0.001, 0.01, 0.1]


class TestEsrFrequencyCurve:
    @pytest.fixture
    def curve(self):
        return EsrFrequencyCurve(pulse_widths=(0.001, 0.010, 0.100),
                                 esr_values=(2.0, 3.0, 4.0))

    def test_exact_points(self, curve):
        assert curve.esr_for_pulse_width(0.010) == pytest.approx(3.0)

    def test_log_interpolation(self, curve):
        # Geometric midpoint of 1 ms and 10 ms.
        mid = curve.esr_for_pulse_width(0.00316)
        assert mid == pytest.approx(2.5, abs=0.01)

    def test_clamps_outside_span(self, curve):
        assert curve.esr_for_pulse_width(1e-5) == pytest.approx(2.0)
        assert curve.esr_for_pulse_width(10.0) == pytest.approx(4.0)

    def test_dc_esr(self, curve):
        assert curve.dc_esr == pytest.approx(4.0)

    def test_rejects_nonpositive_width_query(self, curve):
        with pytest.raises(ValueError):
            curve.esr_for_pulse_width(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EsrFrequencyCurve(pulse_widths=(0.01,), esr_values=(1.0, 2.0))
        with pytest.raises(ValueError):
            EsrFrequencyCurve(pulse_widths=(), esr_values=())
        with pytest.raises(ValueError):
            EsrFrequencyCurve(pulse_widths=(0.01, 0.001), esr_values=(1, 2))
        with pytest.raises(ValueError):
            EsrFrequencyCurve(pulse_widths=(0.0, 0.01), esr_values=(1, 2))
