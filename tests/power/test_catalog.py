"""Synthetic capacitor catalog and the Figure 3 bank survey."""

import pytest

from repro.power.catalog import (
    CapacitorTechnology,
    build_bank_survey,
    reference_catalog,
    survey_by_technology,
)


@pytest.fixture(scope="module")
def catalog():
    return reference_catalog(parts_per_technology=200, seed=7)


class TestReferenceCatalog:
    def test_counts_per_technology(self, catalog):
        for tech in CapacitorTechnology:
            parts = [p for p in catalog if p.technology is tech]
            assert len(parts) == 200

    def test_deterministic_given_seed(self):
        a = reference_catalog(50, seed=3)
        b = reference_catalog(50, seed=3)
        assert [(p.part_number, p.capacitance) for p in a] == \
               [(p.part_number, p.capacitance) for p in b]

    def test_different_seeds_differ(self):
        a = reference_catalog(50, seed=3)
        b = reference_catalog(50, seed=4)
        assert [p.capacitance for p in a] != [p.capacitance for p in b]

    def test_capacitance_in_search_window(self, catalog):
        for part in catalog:
            assert 1e-6 * 0.9 <= part.capacitance <= 45e-3 * 1.1

    def test_ceramic_esr_is_flat_and_low(self, catalog):
        ceramics = [p for p in catalog
                    if p.technology is CapacitorTechnology.CERAMIC]
        assert all(p.esr < 0.1 for p in ceramics)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            reference_catalog(0)


class TestBankSurvey:
    def test_every_bank_meets_target(self, catalog):
        banks = build_bank_survey(catalog, target_capacitance=45e-3)
        assert banks
        for bank in banks:
            assert bank.capacitance >= 45e-3 - 1e-9

    def test_part_cap_is_enforced(self, catalog):
        banks = build_bank_survey(catalog, max_parts=10)
        for bank in banks:
            assert bank.part_count <= 10

    def test_series_strings_when_voltage_insufficient(self, catalog):
        banks = build_bank_survey(catalog, min_bank_voltage=5.0)
        supercap_like = [b for b in banks if b.max_voltage >= 5.0]
        assert supercap_like  # series stacking achieved the rating

    def test_rejects_nonpositive_target(self, catalog):
        with pytest.raises(ValueError):
            build_bank_survey(catalog, target_capacitance=0.0)


class TestFigure3Shape:
    """The qualitative claims of the paper's Figure 3 must hold."""

    @pytest.fixture(scope="class")
    def grouped(self):
        catalog = reference_catalog(parts_per_technology=300, seed=2022)
        return survey_by_technology(catalog)

    def _smallest(self, banks):
        return min(banks, key=lambda b: b.volume_mm3)

    def test_supercaps_enable_smallest_bank(self, grouped):
        supercap = self._smallest(grouped[CapacitorTechnology.SUPERCAPACITOR])
        for tech in (CapacitorTechnology.CERAMIC,
                     CapacitorTechnology.TANTALUM,
                     CapacitorTechnology.ELECTROLYTIC):
            assert supercap.volume_mm3 < \
                self._smallest(grouped[tech]).volume_mm3

    def test_supercaps_pay_in_esr(self, grouped):
        supercap = self._smallest(grouped[CapacitorTechnology.SUPERCAPACITOR])
        ceramic = self._smallest(grouped[CapacitorTechnology.CERAMIC])
        assert supercap.esr > 100 * ceramic.esr

    def test_ceramics_need_impractical_part_counts(self, grouped):
        ceramic = self._smallest(grouped[CapacitorTechnology.CERAMIC])
        assert ceramic.part_count > 500

    def test_small_tantalum_leaks_milliamps(self, grouped):
        tantalum = self._smallest(grouped[CapacitorTechnology.TANTALUM])
        assert tantalum.leakage_current > 1e-3

    def test_supercap_leakage_is_nanoamps(self, grouped):
        supercap = self._smallest(grouped[CapacitorTechnology.SUPERCAPACITOR])
        assert supercap.leakage_current < 1e-6

    def test_supercap_part_count_practical(self, grouped):
        supercap = self._smallest(grouped[CapacitorTechnology.SUPERCAPACITOR])
        assert supercap.part_count <= 10
