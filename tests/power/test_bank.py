"""Capacitor-bank composition algebra."""

import pytest

from repro.power.bank import CapacitorBank, bank_of, parts_for_target
from repro.power.capacitor import TwoBranchSupercap


class TestBankOf:
    def test_parallel_scaling(self):
        bank = bank_of(7.5e-3, 20.0, part_leakage=3e-9,
                       part_volume_mm3=5.0, n_parallel=6)
        assert bank.capacitance == pytest.approx(45e-3)
        assert bank.esr == pytest.approx(20.0 / 6)
        assert bank.leakage_current == pytest.approx(18e-9)
        assert bank.volume_mm3 == pytest.approx(30.0)
        assert bank.part_count == 6

    def test_series_scaling(self):
        bank = bank_of(10e-3, 2.0, part_max_voltage=2.7, n_series=2)
        assert bank.capacitance == pytest.approx(5e-3)
        assert bank.esr == pytest.approx(4.0)
        assert bank.max_voltage == pytest.approx(5.4)

    def test_series_parallel_combined(self):
        bank = bank_of(10e-3, 2.0, n_parallel=4, n_series=2)
        assert bank.capacitance == pytest.approx(20e-3)
        assert bank.esr == pytest.approx(1.0)
        assert bank.part_count == 8

    def test_rejects_bad_arrangement(self):
        with pytest.raises(ValueError):
            bank_of(1e-3, 1.0, n_parallel=0)
        with pytest.raises(ValueError):
            bank_of(1e-3, 1.0, n_series=0)
        with pytest.raises(ValueError):
            bank_of(0.0, 1.0)


class TestCapacitorBank:
    def test_validation(self):
        with pytest.raises(ValueError):
            CapacitorBank(capacitance=0.0, esr=1.0, leakage_current=0.0,
                          volume_mm3=1.0, part_count=1, max_voltage=2.7)
        with pytest.raises(ValueError):
            CapacitorBank(capacitance=1e-3, esr=-1.0, leakage_current=0.0,
                          volume_mm3=1.0, part_count=1, max_voltage=2.7)
        with pytest.raises(ValueError):
            CapacitorBank(capacitance=1e-3, esr=1.0, leakage_current=0.0,
                          volume_mm3=1.0, part_count=0, max_voltage=2.7)

    def test_as_buffer_splits_redistribution(self):
        bank = bank_of(7.5e-3, 20.0, n_parallel=6)
        buffer = bank.as_buffer(redist_fraction=0.10)
        assert isinstance(buffer, TwoBranchSupercap)
        assert buffer.total_capacitance == pytest.approx(45e-3)
        assert buffer.c_redist == pytest.approx(4.5e-3)
        assert buffer.r_esr == pytest.approx(bank.esr)

    def test_as_buffer_zero_redist(self):
        bank = bank_of(7.5e-3, 20.0, n_parallel=6)
        buffer = bank.as_buffer(redist_fraction=0.0)
        assert buffer.c_redist == 0.0

    def test_as_buffer_rejects_bad_fraction(self):
        bank = bank_of(7.5e-3, 20.0, n_parallel=6)
        with pytest.raises(ValueError):
            bank.as_buffer(redist_fraction=1.0)


class TestPartsForTarget:
    def test_exact_fit(self):
        assert parts_for_target(15e-3, 45e-3) == 3

    def test_rounds_up(self):
        assert parts_for_target(10e-3, 45e-3) == 5

    def test_single_part_suffices(self):
        assert parts_for_target(50e-3, 45e-3) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            parts_for_target(0.0, 1.0)
        with pytest.raises(ValueError):
            parts_for_target(1.0, 0.0)
