"""Energy-buffer models: ESR behaviour, rebound, charge conservation."""

import math

import pytest

from repro.power.capacitor import IdealCapacitor, TwoBranchSupercap


def make_supercap(voltage=2.2, **overrides):
    params = dict(c_main=0.040, r_esr=4.0, c_redist=0.004, r_redist=20.0,
                  c_decoupling=100e-6, leakage_current=0.0, voltage=voltage)
    params.update(overrides)
    return TwoBranchSupercap(**params)


class TestIdealCapacitor:
    def test_terminal_drop_is_ohmic(self):
        cap = IdealCapacitor(capacitance=0.045, esr=10.0, voltage=2.0)
        cap.step(0.050, 1e-5)
        # ESR drop = 50 mA * 10 ohm = 0.5 V (plus a sliver of charge).
        assert cap.terminal_voltage == pytest.approx(1.5, abs=0.002)

    def test_rebound_is_instant(self):
        cap = IdealCapacitor(capacitance=0.045, esr=10.0, voltage=2.0)
        cap.step(0.050, 0.001)
        cap.step(0.0, 1e-6)
        assert cap.terminal_voltage == pytest.approx(
            cap.open_circuit_voltage)

    def test_discharge_follows_i_over_c(self):
        cap = IdealCapacitor(capacitance=0.010, esr=0.0, voltage=2.0)
        cap.step(0.010, 1.0)  # 10 mA for 1 s from 10 mF: dV = 1 V
        assert cap.open_circuit_voltage == pytest.approx(1.0)

    def test_leakage_drains(self):
        cap = IdealCapacitor(capacitance=0.010, esr=0.0,
                             leakage_current=1e-3, voltage=2.0)
        cap.step(0.0, 1.0)
        assert cap.open_circuit_voltage == pytest.approx(1.9)

    def test_voltage_clamped_at_zero(self):
        cap = IdealCapacitor(capacitance=1e-3, esr=0.0, voltage=0.1)
        cap.step(1.0, 10.0)
        assert cap.open_circuit_voltage == 0.0

    def test_stored_energy(self):
        cap = IdealCapacitor(capacitance=0.045, voltage=2.0)
        assert cap.stored_energy == pytest.approx(0.09)

    def test_copy_is_independent(self):
        cap = IdealCapacitor(capacitance=0.045, esr=4.0, voltage=2.0)
        clone = cap.copy()
        cap.step(0.010, 1.0)
        assert clone.open_circuit_voltage == pytest.approx(2.0)

    def test_reset(self):
        cap = IdealCapacitor(capacitance=0.045, esr=4.0, voltage=2.0)
        cap.step(0.050, 0.01)
        cap.reset(2.4)
        assert cap.terminal_voltage == pytest.approx(2.4)

    @pytest.mark.parametrize("kwargs", [
        dict(capacitance=0.0),
        dict(capacitance=-1.0),
        dict(capacitance=0.01, esr=-1.0),
        dict(capacitance=0.01, leakage_current=-1e-9),
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            IdealCapacitor(**kwargs)

    def test_invalid_step(self):
        cap = IdealCapacitor(capacitance=0.01, voltage=1.0)
        with pytest.raises(ValueError):
            cap.step(0.01, 0.0)

    def test_negative_reset_rejected(self):
        cap = IdealCapacitor(capacitance=0.01, voltage=1.0)
        with pytest.raises(ValueError):
            cap.reset(-0.1)


class TestTwoBranchSupercap:
    def test_rest_state_is_stable(self):
        cap = make_supercap(2.2)
        for _ in range(100):
            cap.step(0.0, 0.01)
        assert cap.terminal_voltage == pytest.approx(2.2, abs=1e-9)

    def test_load_causes_esr_drop(self):
        cap = make_supercap(2.2)
        v = 2.2
        for _ in range(100):
            v = cap.step(0.070, 1e-3)
        # Separate the ohmic drop from the consumed charge: the ESR part
        # should be near I * R_parallel(4 || 20) = 0.23 V.
        charge_drop = 0.070 * 0.100 / cap.total_capacitance
        esr_drop = (2.2 - v) - charge_drop
        assert 0.18 < esr_drop < 0.30

    def test_rebound_is_gradual_not_instant(self):
        cap = make_supercap(2.2)
        for _ in range(100):
            cap.step(0.070, 1e-3)
        v_loaded = cap.terminal_voltage
        cap.step(0.0, 1e-4)
        v_shortly_after = cap.terminal_voltage
        for _ in range(5000):
            cap.step(0.0, 1e-3)
        v_settled = cap.terminal_voltage
        assert v_loaded < v_shortly_after < v_settled
        # A fast read right after load removal must still be visibly
        # depressed — this is what separates Catnap-Measured from -Slow.
        assert v_settled - v_shortly_after > 0.02

    def test_charge_conserved_without_load_or_leakage(self):
        cap = make_supercap(2.3)
        q_before = (cap.c_main * cap._v_main
                    + cap.c_redist * cap._v_redist
                    + cap.c_decoupling * cap._v_term)
        for _ in range(1000):
            cap.step(0.0, 1e-3)
        q_after = (cap.c_main * cap._v_main
                   + cap.c_redist * cap._v_redist
                   + cap.c_decoupling * cap._v_term)
        assert q_after == pytest.approx(q_before, rel=1e-6)

    def test_energy_decreases_under_load(self):
        cap = make_supercap(2.2)
        e0 = cap.stored_energy
        for _ in range(100):
            cap.step(0.010, 1e-3)
        assert cap.stored_energy < e0

    def test_total_capacitance(self):
        cap = make_supercap()
        assert cap.total_capacitance == pytest.approx(0.0441)

    def test_settle_conserves_charge(self):
        cap = make_supercap(2.2)
        for _ in range(50):
            cap.step(0.050, 1e-3)
        oc = cap.open_circuit_voltage
        cap.settle()
        assert cap.terminal_voltage == pytest.approx(oc)

    def test_no_redist_branch(self):
        cap = TwoBranchSupercap(c_main=0.045, r_esr=4.0, voltage=2.0)
        cap.step(0.050, 1e-3)
        assert cap.terminal_voltage < 2.0

    def test_no_decoupling_means_instant_terminal(self):
        cap = TwoBranchSupercap(c_main=0.045, r_esr=4.0, voltage=2.0)
        cap.step(0.050, 1e-6)
        # Without decoupling the terminal node tracks v* immediately:
        # drop = I * R = 0.2 V.
        assert 2.0 - cap.terminal_voltage == pytest.approx(0.2, abs=0.01)

    def test_leakage_drains_main_branch(self):
        cap = make_supercap(2.0, leakage_current=1e-4)
        for _ in range(1000):
            cap.step(0.0, 0.01)   # 10 s at 100 uA on ~44 mF: ~23 mV
        assert cap.open_circuit_voltage == pytest.approx(1.977, abs=0.005)

    def test_aged_copy(self):
        cap = make_supercap(2.2)
        old = cap.aged(capacitance_factor=0.8, esr_factor=2.0)
        assert old.c_main == pytest.approx(cap.c_main * 0.8)
        assert old.r_esr == pytest.approx(cap.r_esr * 2.0)
        assert old.open_circuit_voltage == pytest.approx(2.2)

    def test_aged_rejects_nonpositive_factors(self):
        with pytest.raises(ValueError):
            make_supercap().aged(capacitance_factor=0.0)

    def test_with_decoupling(self):
        cap = make_supercap(2.2)
        more = cap.with_decoupling(6.4e-3)
        assert more.c_decoupling == pytest.approx(6.4e-3)
        assert more.open_circuit_voltage == pytest.approx(2.2)

    def test_more_decoupling_softens_short_pulse(self):
        small = make_supercap(2.2, c_decoupling=100e-6)
        big = make_supercap(2.2, c_decoupling=6.4e-3)
        for cap in (small, big):
            for _ in range(10):
                cap.step(0.050, 1e-4)  # 1 ms pulse
        assert big.terminal_voltage > small.terminal_voltage

    def test_copy_preserves_state(self):
        cap = make_supercap(2.2)
        for _ in range(10):
            cap.step(0.050, 1e-3)
        clone = cap.copy()
        assert clone.terminal_voltage == pytest.approx(cap.terminal_voltage)
        assert clone.open_circuit_voltage == pytest.approx(
            cap.open_circuit_voltage)

    @pytest.mark.parametrize("kwargs", [
        dict(c_main=0.0, r_esr=1.0),
        dict(c_main=0.01, r_esr=0.0),
        dict(c_main=0.01, r_esr=1.0, c_redist=-0.001),
        dict(c_main=0.01, r_esr=1.0, c_redist=0.001, r_redist=0.0),
        dict(c_main=0.01, r_esr=1.0, c_decoupling=-1e-6),
        dict(c_main=0.01, r_esr=1.0, leakage_current=-1e-9),
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            TwoBranchSupercap(**kwargs)

    def test_invalid_step_dt(self):
        with pytest.raises(ValueError):
            make_supercap().step(0.01, -1e-3)

    def test_repr_mentions_esr(self):
        assert "ESR" in repr(make_supercap())
