"""Harvester models."""

import math

import pytest

from repro.power.harvester import (
    CallableHarvester,
    ConstantPowerHarvester,
    NullHarvester,
    SolarHarvester,
)


class TestNullHarvester:
    def test_always_zero(self):
        h = NullHarvester()
        assert h.power_at(0.0) == 0.0
        assert h.power_at(1e6) == 0.0


class TestConstantPowerHarvester:
    def test_constant(self):
        h = ConstantPowerHarvester(2.4e-3)
        assert h.power_at(0.0) == pytest.approx(2.4e-3)
        assert h.power_at(1000.0) == pytest.approx(2.4e-3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantPowerHarvester(-1e-3)


class TestSolarHarvester:
    def test_peaks_at_quarter_period(self):
        h = SolarHarvester(peak=10e-3, period=100.0)
        assert h.power_at(25.0) == pytest.approx(10e-3)

    def test_clips_negative_half_cycle(self):
        h = SolarHarvester(peak=10e-3, period=100.0)
        assert h.power_at(75.0) == 0.0

    def test_phase_shift(self):
        h = SolarHarvester(peak=10e-3, period=100.0, phase=math.pi / 2)
        assert h.power_at(0.0) == pytest.approx(10e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            SolarHarvester(peak=-1.0)
        with pytest.raises(ValueError):
            SolarHarvester(peak=1.0, period=0.0)


class TestCallableHarvester:
    def test_delegates(self):
        h = CallableHarvester(lambda t: 1e-3 * t)
        assert h.power_at(2.0) == pytest.approx(2e-3)

    def test_rejects_negative_result(self):
        h = CallableHarvester(lambda t: -1.0)
        with pytest.raises(ValueError):
            h.power_at(0.0)
