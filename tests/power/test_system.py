"""PowerSystem assembly and characterization."""

import pytest

from repro.power.harvester import ConstantPowerHarvester, NullHarvester
from repro.power.system import PowerSystemModel, capybara_power_system


class TestCapybaraFactory:
    def test_default_rails(self, system):
        assert system.monitor.v_high == pytest.approx(2.56)
        assert system.monitor.v_off == pytest.approx(1.6)
        assert system.v_out == pytest.approx(2.55)

    def test_true_capacitance_exceeds_datasheet(self, system):
        assert system.buffer.total_capacitance > system.datasheet_capacitance

    def test_custom_bank(self):
        ps = capybara_power_system(datasheet_capacitance=15e-3, dc_esr=10.0)
        assert ps.buffer.total_capacitance == pytest.approx(15e-3 * 1.06)
        assert ps.buffer.r_esr == pytest.approx(10.0)

    def test_rejects_overfull_decoupling(self):
        with pytest.raises(ValueError):
            capybara_power_system(datasheet_capacitance=1e-4,
                                  c_decoupling=1e-3)

    def test_rest_at_syncs_monitor(self, system):
        system.rest_at(2.0)
        assert system.monitor.output_enabled
        system.rest_at(1.0)
        assert not system.monitor.output_enabled

    def test_copy_is_deep_for_state(self, system):
        system.rest_at(2.2)
        clone = system.copy()
        clone.buffer.step(0.050, 0.01)
        assert system.buffer.terminal_voltage == pytest.approx(2.2)

    def test_with_harvester(self, system):
        powered = system.with_harvester(ConstantPowerHarvester(1e-3))
        assert powered.harvester.power_at(0.0) == pytest.approx(1e-3)
        assert isinstance(system.harvester, NullHarvester)


class TestCharacterize:
    def test_model_uses_datasheet_capacitance(self, system, model):
        assert model.capacitance == pytest.approx(45e-3)
        assert model.capacitance < system.buffer.total_capacitance

    def test_esr_curve_rises_with_pulse_width(self, model):
        short = model.esr_curve.esr_for_pulse_width(0.0005)
        long = model.esr_curve.esr_for_pulse_width(0.100)
        assert long > short

    def test_linearized_efficiency_monotone(self, model):
        assert model.eta(2.56) > model.eta(1.6)

    def test_rails_copied(self, model):
        assert model.v_off == pytest.approx(1.6)
        assert model.v_high == pytest.approx(2.56)
        assert model.v_out == pytest.approx(2.55)

    def test_operating_range(self, model):
        assert model.operating_range.span == pytest.approx(0.96)


class TestPowerSystemModel:
    def test_validation(self, model):
        with pytest.raises(ValueError):
            PowerSystemModel(capacitance=0.0, esr_curve=model.esr_curve,
                             efficiency=model.efficiency,
                             v_off=1.6, v_high=2.56, v_out=2.55)
        with pytest.raises(ValueError):
            PowerSystemModel(capacitance=45e-3, esr_curve=model.esr_curve,
                             efficiency=model.efficiency,
                             v_off=2.56, v_high=1.6, v_out=2.55)
