"""Hysteretic voltage monitor."""

import pytest

from repro.power.monitor import VoltageMonitor


@pytest.fixture
def monitor():
    return VoltageMonitor(v_high=2.56, v_off=1.6)


class TestVoltageMonitor:
    def test_starts_disabled(self, monitor):
        assert not monitor.output_enabled

    def test_enables_only_at_v_high(self, monitor):
        monitor.observe(2.0)
        assert not monitor.output_enabled
        monitor.observe(2.559)
        assert not monitor.output_enabled
        monitor.observe(2.56)
        assert monitor.output_enabled

    def test_disables_below_v_off(self, monitor):
        monitor.observe(2.56)
        monitor.observe(1.6)
        assert monitor.output_enabled        # exactly at V_off is still on
        monitor.observe(1.599)
        assert not monitor.output_enabled

    def test_full_range_hysteresis(self, monitor):
        """After a brown-out, mid-range voltages must NOT re-enable."""
        monitor.observe(2.56)
        monitor.observe(1.5)
        assert not monitor.output_enabled
        monitor.observe(2.0)                 # partway recharged
        assert not monitor.output_enabled
        monitor.observe(2.56)
        assert monitor.output_enabled

    def test_force_enabled(self, monitor):
        monitor.force_enabled(True)
        assert monitor.output_enabled
        monitor.force_enabled(False)
        assert not monitor.output_enabled

    def test_copy_carries_state(self, monitor):
        monitor.observe(2.56)
        clone = monitor.copy()
        assert clone.output_enabled
        clone.observe(1.0)
        assert monitor.output_enabled        # original untouched

    def test_range_properties(self, monitor):
        assert monitor.v_high == 2.56
        assert monitor.v_off == 1.6
        assert monitor.range.span == pytest.approx(0.96)

    def test_repr(self, monitor):
        assert "off" in repr(monitor)
        monitor.observe(2.56)
        assert "on" in repr(monitor)
