"""Boost-converter and efficiency models."""

import pytest

from repro.power.booster import (
    CurvedEfficiency,
    InputBooster,
    LinearEfficiency,
    OutputBooster,
)


class TestLinearEfficiency:
    def test_line(self):
        eta = LinearEfficiency(slope=0.05, intercept=0.75)
        assert eta.efficiency(2.0) == pytest.approx(0.85)

    def test_clipping(self):
        eta = LinearEfficiency(slope=0.5, intercept=0.0,
                               floor=0.2, ceiling=0.9)
        assert eta.efficiency(0.0) == 0.2
        assert eta.efficiency(10.0) == 0.9

    def test_monotonicity_enforced(self):
        with pytest.raises(ValueError):
            LinearEfficiency(slope=-0.01, intercept=0.9)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            LinearEfficiency(slope=0.0, intercept=0.8, floor=0.9, ceiling=0.5)

    def test_fit_matches_endpoints(self):
        curve = CurvedEfficiency()
        line = LinearEfficiency.fit(curve, 1.6, 2.56)
        assert line.efficiency(1.6) == pytest.approx(curve.efficiency(1.6),
                                                     abs=1e-9)
        assert line.efficiency(2.56) == pytest.approx(curve.efficiency(2.56),
                                                      abs=1e-9)

    def test_fit_rejects_degenerate_span(self):
        with pytest.raises(ValueError):
            LinearEfficiency.fit(CurvedEfficiency(), 2.0, 2.0)


class TestCurvedEfficiency:
    def test_increases_with_voltage_over_operating_range(self):
        eta = CurvedEfficiency()
        values = [eta.efficiency(v) for v in (1.6, 1.9, 2.2, 2.56)]
        assert values == sorted(values)

    def test_clipped_to_bounds(self):
        eta = CurvedEfficiency(floor=0.5, ceiling=0.9)
        assert 0.5 <= eta.efficiency(0.0) <= 0.9
        assert 0.5 <= eta.efficiency(10.0) <= 0.9

    def test_deviates_from_its_linearization_mid_range(self):
        # The curvature is what makes Culpeo-PG's model drift; it must be
        # measurably nonzero between the fit endpoints.
        curve = CurvedEfficiency()
        line = LinearEfficiency.fit(curve, 1.6, 2.56)
        mid_gap = abs(curve.efficiency(2.0) - line.efficiency(2.0))
        assert mid_gap > 0.001


class TestOutputBooster:
    @pytest.fixture
    def booster(self):
        return OutputBooster(v_out=2.55,
                             efficiency_model=CurvedEfficiency(),
                             power_derating=0.6)

    def test_input_power_exceeds_output(self, booster):
        assert booster.input_power(0.1, 2.0) > 0.1

    def test_zero_power_draws_nothing(self, booster):
        assert booster.input_power(0.0, 2.0) == 0.0
        assert booster.input_current(0.0, 2.0) == 0.0

    def test_current_grows_as_voltage_falls(self, booster):
        high = booster.input_current(0.050, 2.5)
        low = booster.input_current(0.050, 1.7)
        assert low > high

    def test_power_derating_reduces_efficiency(self, booster):
        assert booster.efficiency(2.0, p_out=0.13) < booster.efficiency(2.0)

    def test_derating_floor(self):
        booster = OutputBooster(2.55, CurvedEfficiency(), power_derating=10.0)
        assert booster.efficiency(2.0, p_out=1.0) == pytest.approx(0.30)

    def test_operational_region(self, booster):
        assert booster.operational(1.0)
        assert not booster.operational(0.4)

    def test_rejects_negative_power(self, booster):
        with pytest.raises(ValueError):
            booster.input_power(-0.1, 2.0)
        with pytest.raises(ValueError):
            booster.input_current(-0.1, 2.0)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            OutputBooster(0.0, CurvedEfficiency())
        with pytest.raises(ValueError):
            OutputBooster(2.5, CurvedEfficiency(), min_input_voltage=-1.0)
        with pytest.raises(ValueError):
            OutputBooster(2.5, CurvedEfficiency(), power_derating=-0.1)


class TestInputBooster:
    @pytest.fixture
    def booster(self):
        return InputBooster(LinearEfficiency(slope=0.0, intercept=0.8),
                            v_max=2.56)

    def test_charge_current_positive_below_vmax(self, booster):
        assert booster.charge_current(0.010, 2.0) > 0

    def test_regulates_off_at_vmax(self, booster):
        assert booster.charge_current(0.010, 2.56) == 0.0
        assert booster.charge_current(0.010, 2.6) == 0.0

    def test_zero_harvest(self, booster):
        assert booster.charge_current(0.0, 2.0) == 0.0

    def test_efficiency_applied(self, booster):
        # 10 mW at 80% into 2.0 V: I = 8 mW / 2 V = 4 mA.
        assert booster.charge_current(0.010, 2.0) == pytest.approx(0.004)

    def test_low_voltage_guard(self, booster):
        # Near-zero buffer voltage must not blow up the current.
        assert booster.charge_current(0.010, 0.01) <= 0.010 * 0.8 / 0.1 + 1e-9

    def test_rejects_negative_harvest(self, booster):
        with pytest.raises(ValueError):
            booster.charge_current(-1e-3, 2.0)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            InputBooster(LinearEfficiency(slope=0.0, intercept=0.8), v_max=0.0)
