"""``REPRO_SEGALG_BACKEND`` resolution: env parsing, numba fallback."""

import pytest

from repro.segalg import backends


@pytest.fixture(autouse=True)
def _fresh_resolution(monkeypatch):
    monkeypatch.delenv(backends._ENV_VAR, raising=False)
    backends.reset()
    yield
    backends.reset()


def test_default_is_numpy():
    assert backends.backend() == "numpy"


def test_resolution_is_cached(monkeypatch):
    assert backends.backend() == "numpy"
    # a late env change is invisible until reset() re-reads it
    monkeypatch.setenv(backends._ENV_VAR, "numba")
    assert backends.backend() == "numpy"
    backends.reset()
    assert backends.backend() in ("numpy", "numba")


@pytest.mark.parametrize("raw", ["", "  ", "cuda", "NUMPY ", "fortran"])
def test_invalid_or_blank_requests_resolve_to_numpy(monkeypatch, raw):
    monkeypatch.setenv(backends._ENV_VAR, raw)
    backends.reset()
    assert backends.backend() == "numpy"


def test_numba_request_is_a_hint_not_a_dependency(monkeypatch):
    # on containers without numba this exercises the silent fallback; on
    # machines with numba it resolves to the real backend — both are
    # valid outcomes, and neither may raise
    monkeypatch.setenv(backends._ENV_VAR, "numba")
    backends.reset()
    resolved = backends.backend()
    assert resolved in ("numpy", "numba")
    try:
        import numba  # noqa: F401
    except ImportError:
        assert resolved == "numpy"


def test_jit_is_identity_under_numpy():
    assert backends.backend() == "numpy"

    def f(x):
        return x + 1

    assert backends.jit(f) is f


def test_jit_result_is_callable_under_any_backend(monkeypatch):
    monkeypatch.setenv(backends._ENV_VAR, "numba")
    backends.reset()

    def f(x):
        return x * 2.0

    assert backends.jit(f)(3.0) == 6.0


def test_reset_clears_cached_jit(monkeypatch):
    monkeypatch.setenv(backends._ENV_VAR, "numba")
    backends.reset()
    backends.backend()
    backends.reset()
    assert backends._resolved is None
    assert backends._numba_jit is None
