"""Event ties and degenerate segments in the segment-algebra core.

The event loop's hard cases are exact coincidences: a brown-out landing
on a task boundary, a rail arrival landing on a source-segment edge, a
crossing landing on an interior compiled-interval boundary, and
segments that compile to nothing at all. Each is constructed by solving
for the coincidence (measuring the event time, then rebuilding the
trace so the boundary sits exactly there) rather than hoping a seed
produces one.
"""

import numpy as np
import pytest

from repro import segalg
from repro.env.spec import EnvSpec
from repro.fleet.bank import advance_fleet_plan
from repro.fleet.kernel import FleetRecorder, FleetState
from repro.fleet.spec import FleetBankSpec, FleetSpec
from repro.loads.trace import CurrentTrace
from repro.power.reconfig import ReconfigPlan, split_at_offsets
from repro.segalg.model import Bank
from repro.segalg.program import compile_segments
from repro.segalg.vector import advance_fleet
from repro.sim.engine import PowerSystemSimulator

V_OFF = 1.6
DRAW = 0.020
#: The repo's documented segalg-vs-stepping method tolerance (volts).
V_METHOD_TOL = 5e-3
WEAK = FleetSpec(devices=1, seed=0, harvest_power=0.1e-3)

#: A two-bank set pinned to start in the lone large configuration, so
#: every reconfiguration event below actually changes the rail.
RECONFIG_BANK = FleetBankSpec(
    banks=(("large", 33.75e-3, 2.5, 12e-9),
           ("small", 11.25e-3, 7.5, 4e-9)),
    configs=(("large",),))
MERGE = ("large", "small")


def _bank_spec(**overrides):
    kw = dict(devices=1, seed=0, harvest_power=3e-3, bank=RECONFIG_BANK)
    kw.update(overrides)
    return FleetSpec(**kw)


def _scalar_plan(spec, segments, plan, v0=2.2, fast=True,
                 use_segalg=False):
    system = spec.parameters().device_system(0, rest_at=v0)
    sim = PowerSystemSimulator(system, fast=fast, segalg=use_segalg)
    result = sim.run_trace(CurrentTrace(list(segments)),
                           reconfig_plan=plan)
    return system, result


def _fleet_plan(spec, segments, plan, v0=2.2, engine="stepping"):
    state = FleetState(spec.parameters(), v_start=v0)
    return advance_fleet_plan(state, list(segments), plan, True, V_OFF,
                              engine=engine)


def _scalar(spec, segments, harvesting=True, stop_below=None, v0=2.2):
    params = spec.parameters()
    system = params.device_system(0)
    system.rest_at(v0)
    sim = PowerSystemSimulator(system, fast=False)
    brown = segalg.advance_segments(sim, list(segments), harvesting,
                                    stop_below)
    return sim, system, brown


def _fleet(spec, segments, harvesting=True, stop_below=None, v0=2.2):
    state = FleetState(spec.parameters(), v_start=v0)
    brown = advance_fleet(state, list(segments), harvesting, stop_below)
    return state, brown


class TestBrownOnTaskBoundary:
    """Brown-out within a float-eps of a task boundary.

    An *exact* tie sits on a strict-inequality razor edge (the crossing
    either grazes ``v_off`` or dips an ulp below), and re-compiling the
    trace with the boundary in place shifts the crossing by the
    partition sensitivity (~1e-4 s here — different subdivision,
    different per-interval linearization points). So the coincidence is
    pinned just past that bound on each side of the boundary — both
    sides must report the brown at the coincidence and stop the clock
    there, never run the trailing segment, never double-fire.
    """

    #: Boundary offset: above the measured partition sensitivity
    #: (~1.5e-3 s), far below the idle recovery scale.
    EPS = 4e-3

    def _t_star(self):
        _sim, _sys, t_star = _scalar(WEAK, [(DRAW, 30.0)],
                                     stop_below=V_OFF)
        assert t_star is not None and 0.0 < t_star < 30.0
        return t_star

    def test_crossing_a_hair_before_the_boundary(self):
        t_star = self._t_star()
        sim, system, brown = _scalar(
            WEAK, [(DRAW, t_star + self.EPS), (0.0, 1.0)],
            stop_below=V_OFF)
        assert brown is not None
        assert brown == pytest.approx(t_star, abs=self.EPS)
        assert brown < t_star + self.EPS  # fires before the boundary
        # the advance stops at the crossing — the trailing segment must
        # not run
        assert sim.time == pytest.approx(brown, abs=1e-9)
        assert system.buffer.terminal_voltage == pytest.approx(
            V_OFF, abs=1e-6)

    def test_crossing_a_hair_after_the_boundary(self):
        t_star = self._t_star()
        # the draw continues across the boundary, so the crossing fires
        # in the *second* segment's first instants
        sim, _system, brown = _scalar(
            WEAK, [(DRAW, t_star - self.EPS), (DRAW, 1.0)],
            stop_below=V_OFF)
        assert brown is not None
        assert brown == pytest.approx(t_star, abs=self.EPS)
        assert brown > t_star - self.EPS  # fires after the boundary
        assert sim.time == pytest.approx(brown, abs=1e-9)

    def test_fleet_agrees_on_both_sides(self):
        t_star = self._t_star()
        for segments in ([(DRAW, t_star + self.EPS), (0.0, 1.0)],
                         [(DRAW, t_star - self.EPS), (DRAW, 1.0)]):
            state, brown = _fleet(WEAK, segments, stop_below=V_OFF)
            assert float(brown[0]) == pytest.approx(t_star, abs=self.EPS)
            assert not bool(state.alive[0])
            assert float(state.time[0]) == pytest.approx(t_star,
                                                         abs=self.EPS)


class TestZeroLengthSegments:
    PADDED = [(0.012, 0.05), (0.025, 0.0), (0.0, 0.2), (0.0, 0.0),
              (0.018, 0.03)]
    PLAIN = [(0.012, 0.05), (0.0, 0.2), (0.018, 0.03)]

    def test_scalar_results_identical(self):
        sim_a, sys_a, brown_a = _scalar(WEAK, self.PADDED)
        sim_b, sys_b, brown_b = _scalar(WEAK, self.PLAIN)
        assert brown_a is None and brown_b is None
        assert sys_a.buffer.terminal_voltage == \
            sys_b.buffer.terminal_voltage
        assert sim_a._energy_out == sim_b._energy_out
        assert sim_a.time == sim_b.time

    def test_fleet_results_identical(self):
        state_a, _ = _fleet(WEAK, self.PADDED)
        state_b, _ = _fleet(WEAK, self.PLAIN)
        assert float(state_a.v_term[0]) == float(state_b.v_term[0])
        assert float(state_a.energy[0]) == float(state_b.energy[0])

    def test_recorder_keeps_source_boundary_alignment(self):
        # one capture per *source* segment, dropped or not: a
        # zero-length segment contributes a repeated bound and hence a
        # duplicate checkpoint at the same time
        recorder = FleetRecorder([0])
        state = FleetState(WEAK.parameters(), v_start=2.2)
        advance_fleet(state, self.PADDED, True, None, recorder=recorder)
        assert len(recorder.rows) == len(self.PADDED)
        times = [row[1] for row in recorder.rows]
        assert times == pytest.approx([0.05, 0.05, 0.25, 0.25, 0.28])


class TestBalancedHarvest:
    def test_exact_balance_advances_full_duration(self):
        spec = FleetSpec(devices=1, seed=0, harvest_power=2e-3)
        v0 = 2.2
        duration = 5.0

        def drift(i_out):
            _sim, system, _ = _scalar(spec, [(i_out, duration)], v0=v0)
            return system.buffer.terminal_voltage - v0

        lo_i, hi_i = 0.0, 0.01
        assert drift(lo_i) > 0 and drift(hi_i) < 0
        for _ in range(60):
            mid = 0.5 * (lo_i + hi_i)
            if drift(mid) > 0:
                lo_i = mid
            else:
                hi_i = mid
        balanced = 0.5 * (lo_i + hi_i)

        # no regime boundary is ever crossed: the advance is a single
        # capped full-duration commit, not an event cascade
        sim, system, brown = _scalar(
            spec, [(balanced, duration)], stop_below=V_OFF, v0=v0)
        assert brown is None
        assert sim.time == pytest.approx(duration)
        assert system.buffer.terminal_voltage == pytest.approx(v0,
                                                               abs=1e-6)

        state, fleet_brown = _fleet(
            spec, [(balanced, duration)], stop_below=V_OFF, v0=v0)
        assert np.isnan(float(fleet_brown[0]))
        assert float(state.time[0]) == pytest.approx(duration)
        assert float(state.v_term[0]) == pytest.approx(v0, abs=1e-4)


class TestCrossingOnCompiledBoundary:
    def test_brown_on_interior_subdivision_boundary(self):
        # the 20 mA draw subdivides under the dv budget; aim the brown
        # crossing at an interior compiled-interval edge by bisecting
        # the start voltage until the measured brown time sits on it
        spec = WEAK
        duration = 30.0
        bank = Bank.from_system(spec.parameters().device_system(0), True)
        program = compile_segments([(DRAW, duration)], bank)
        assert program.n > 4
        edges = np.cumsum(program.dur)

        def brown_at(v0):
            _sim, _sys, t = _scalar(spec, [(DRAW, duration)],
                                    stop_below=V_OFF, v0=v0)
            assert t is not None
            return t

        lo_v, hi_v = 1.7, 2.5
        # an interior edge strictly inside the reachable brown window
        reach_lo, reach_hi = brown_at(lo_v), brown_at(hi_v)
        inner = edges[(edges > reach_lo) & (edges < reach_hi)]
        assert len(inner) > 1
        target = float(inner[len(inner) // 2])
        for _ in range(60):
            mid = 0.5 * (lo_v + hi_v)
            if brown_at(mid) < target:
                lo_v = mid
            else:
                hi_v = mid
        v0 = 0.5 * (lo_v + hi_v)

        sim, system, brown = _scalar(spec, [(DRAW, duration)],
                                     stop_below=V_OFF, v0=v0)
        assert brown == pytest.approx(target, abs=1e-6)
        assert sim.time == pytest.approx(brown, abs=1e-9)

        state, fleet_brown = _fleet(spec, [(DRAW, duration)],
                                    stop_below=V_OFF, v0=v0)
        assert float(fleet_brown[0]) == pytest.approx(brown, abs=1e-6)

    def test_rail_arrival_on_source_boundary(self):
        spec = FleetSpec(devices=1, seed=0, harvest_power=6e-3)
        v0 = 2.2
        v_max = 2.56

        # time-to-rail via bisection on an idle recharge duration
        def v_after(d):
            _sim, system, _ = _scalar(spec, [(0.0, d)], v0=v0)
            return system.buffer.terminal_voltage

        lo_d, hi_d = 1e-3, 60.0
        assert v_after(lo_d) < v_max and v_after(hi_d) == pytest.approx(
            v_max)
        for _ in range(60):
            mid = 0.5 * (lo_d + hi_d)
            if v_after(mid) < v_max:
                lo_d = mid
            else:
                hi_d = mid
        t_rail = hi_d

        # crossing lands (within float eps) on the boundary between the
        # two idle segments; the pin regime then holds the second one
        sim, system, _ = _scalar(spec, [(0.0, t_rail), (0.0, 1.0)],
                                 v0=v0)
        assert system.buffer.terminal_voltage == pytest.approx(v_max)
        assert sim.time == pytest.approx(t_rail + 1.0)

        state, _ = _fleet(spec, [(0.0, t_rail), (0.0, 1.0)], v0=v0)
        assert float(state.v_term[0]) == pytest.approx(v_max)
        assert float(state.time[0]) == pytest.approx(t_rail + 1.0)


class TestEnvBreakpointOnTaskBoundary:
    """An environment piece edge landing *exactly* on a task boundary.

    Env fleet columns live on a uniform ``grid_dt`` lattice, so a task
    segment ending on a lattice point makes the span horizon, the
    segment commit, and the harvest-power step all coincide at one
    float. Both segalg paths must take the step exactly once — no
    stall on the zero-length sliver, no double-sampled piece — and
    stay within the method band of the stepping fastpath (which clamps
    its step at the same edge).
    """

    def _spec(self):
        env = EnvSpec(model="diurnal-solar", duration=8.0, seed=3,
                      peak_power=5e-3, period=8.0, daylight_fraction=1.0,
                      cloud_rate=6.0, grid_dt=0.25)
        return FleetSpec(devices=1, seed=0, esr_jitter=0.0,
                         capacitance_jitter=0.0, harvest_jitter=0.0,
                         eta_jitter=0.0, env=env)

    def _boundary_with_power_step(self, params):
        harvester = params.device_harvester(0)
        edges, powers = harvester.edges, harvester.powers
        for k in range(2, len(powers) - 4):
            if powers[k - 1] != powers[k]:
                return float(edges[k])
        raise AssertionError("no interior power step found")

    def test_scalar_takes_the_step_exactly_once(self):
        spec = self._spec()
        params = spec.parameters()
        t_b = self._boundary_with_power_step(params)
        segments = [(0.012, t_b), (0.0, 1.0)]

        from repro.sim import fastpath
        system = params.device_system(0)
        system.rest_at(2.2)  # the _scalar helper's start voltage
        sim_fast = PowerSystemSimulator(system, fast=False)
        fastpath.advance_segments(sim_fast, segments, True, None)

        sim, sys_alg, brown = _scalar(spec, segments)
        assert brown is None
        assert sim.time == pytest.approx(t_b + 1.0, abs=1e-9)
        assert sys_alg.buffer.terminal_voltage == pytest.approx(
            system.buffer.terminal_voltage, abs=5e-3)

    def test_fleet_agrees_on_the_tie(self):
        spec = self._spec()
        params = spec.parameters()
        t_b = self._boundary_with_power_step(params)
        segments = [(0.012, t_b), (0.0, 1.0)]

        _sim, sys_alg, _ = _scalar(spec, segments)
        state, brown = _fleet(spec, segments)
        assert np.isnan(float(brown[0]))
        assert float(state.time[0]) == pytest.approx(t_b + 1.0, abs=1e-9)
        assert float(state.v_term[0]) == pytest.approx(
            sys_alg.buffer.terminal_voltage, abs=1e-3)

    def test_splitting_the_task_at_the_edge_changes_nothing(self):
        # The boundary is already a span horizon; making it a *source*
        # boundary as well must not move the physics.
        spec = self._spec()
        params = spec.parameters()
        t_b = self._boundary_with_power_step(params)
        whole = [(0.012, t_b + 1.0)]
        split = [(0.012, t_b), (0.012, 1.0)]

        # Partition sensitivity bounds the drift: a new source boundary
        # re-cuts the compiled intervals (~1e-4 V here), nothing more.
        _sim_a, sys_a, _ = _scalar(spec, whole)
        _sim_b, sys_b, _ = _scalar(spec, split)
        assert sys_b.buffer.terminal_voltage == pytest.approx(
            sys_a.buffer.terminal_voltage, abs=5e-4)

        state_a, _ = _fleet(spec, whole)
        state_b, _ = _fleet(spec, split)
        assert float(state_b.v_term[0]) == pytest.approx(
            float(state_a.v_term[0]), abs=5e-4)


class TestReconfigOnBrownCrossing:
    """A reconfiguration event within a hair of the brown-out crossing.

    The documented semantics: a brown-out inside a sub-span cancels the
    remaining events (a dead device does not switch banks), while an
    event that fires first changes the plant — here merging in a charged
    reserve bank, which postpones the crossing. Both orderings are
    pinned just past the partition sensitivity on each side.
    """

    EPS = 4e-3

    def _t_star(self, spec):
        _sys, res = _scalar_plan(spec, [(DRAW, 30.0)], None)
        assert res.browned_out and 0.0 < res.brown_out_time < 30.0
        return res.brown_out_time

    def test_switch_a_hair_after_the_crossing_never_fires(self):
        spec = _bank_spec(harvest_power=0.1e-3)
        t_star = self._t_star(spec)
        plan = ReconfigPlan.build((t_star + self.EPS, MERGE))
        system, res = _scalar_plan(spec, [(DRAW, 30.0)], plan)
        assert res.browned_out
        assert res.brown_out_time == pytest.approx(t_star, abs=self.EPS)
        assert res.brown_out_time < t_star + self.EPS
        # the dead device kept its configuration
        assert system.buffer.config_id == frozenset({"large"})

        state0 = FleetState(spec.parameters(), v_start=2.2)
        c_before = state0.params.c_main.copy()
        final, brown = advance_fleet_plan(state0, [(DRAW, 30.0)], plan,
                                          True, V_OFF)
        assert float(brown[0]) == pytest.approx(res.brown_out_time,
                                                abs=1e-7)
        assert not bool(final.alive[0])
        assert np.array_equal(final.params.c_main, c_before)

    def test_switch_a_hair_before_the_crossing_postpones_it(self):
        spec = _bank_spec(harvest_power=0.1e-3)
        t_star = self._t_star(spec)
        plan = ReconfigPlan.build((t_star - self.EPS, MERGE))
        system, res = _scalar_plan(spec, [(DRAW, 30.0)], plan)
        # the merge fired: the charged small bank pulls the rail back up
        assert system.buffer.config_id == frozenset(MERGE)
        assert res.browned_out  # the reserve only buys time
        assert res.brown_out_time > t_star + self.EPS

        final, brown = _fleet_plan(spec, [(DRAW, 30.0)], plan)
        assert float(brown[0]) == pytest.approx(res.brown_out_time,
                                                abs=1e-7)

        sys_alg, res_alg = _scalar_plan(spec, [(DRAW, 30.0)], plan,
                                        fast=False, use_segalg=True)
        assert sys_alg.buffer.config_id == frozenset(MERGE)
        assert res_alg.browned_out
        assert res_alg.brown_out_time == pytest.approx(
            res.brown_out_time, abs=0.05)


class TestReconfigOnTaskBoundary:
    """An event landing exactly on a source-segment boundary.

    The splitter's contract: an offset on a boundary needs no cut, and
    every engine advances the identical spans. Physics must vary
    continuously as the event crosses the boundary.
    """

    EPS = 4e-3
    SEGMENTS = [(DRAW, 0.4), (0.0, 0.6)]

    def test_boundary_event_needs_no_split(self):
        spans = split_at_offsets(self.SEGMENTS, (0.4,))
        assert spans[0] == [(DRAW, 0.4)]
        assert spans[1] == [(0.0, 0.6)]

    def _all_engines(self, plan):
        spec = _bank_spec()
        sys_fast, res_fast = _scalar_plan(spec, self.SEGMENTS, plan)
        _sys, res_alg = _scalar_plan(spec, self.SEGMENTS, plan,
                                     fast=False, use_segalg=True)
        fleet_step, _ = _fleet_plan(spec, self.SEGMENTS, plan)
        fleet_alg, _ = _fleet_plan(spec, self.SEGMENTS, plan,
                                   engine="segalg")
        return sys_fast, res_fast, res_alg, fleet_step, fleet_alg

    def test_event_exactly_on_the_boundary(self):
        plan = ReconfigPlan.build((0.4, MERGE))
        sys_fast, res_fast, res_alg, fleet_step, fleet_alg = \
            self._all_engines(plan)
        assert not res_fast.browned_out
        assert sys_fast.buffer.config_id == frozenset(MERGE)
        assert float(fleet_step.v_term[0]) == pytest.approx(
            res_fast.v_final, abs=1e-7)
        assert res_alg.v_final == pytest.approx(res_fast.v_final,
                                                abs=V_METHOD_TOL)
        assert float(fleet_alg.v_term[0]) == pytest.approx(
            res_alg.v_final, abs=1e-3)

    def test_both_orderings_bracket_the_boundary(self):
        finals = []
        for t_e in (0.4 - self.EPS, 0.4, 0.4 + self.EPS):
            plan = ReconfigPlan.build((t_e, MERGE))
            _sys, res_fast, res_alg, fleet_step, _ = \
                self._all_engines(plan)
            assert float(fleet_step.v_term[0]) == pytest.approx(
                res_fast.v_final, abs=1e-7)
            assert res_alg.v_final == pytest.approx(res_fast.v_final,
                                                    abs=V_METHOD_TOL)
            finals.append(res_fast.v_final)
        # moving the switch by 4 ms moves the endpoint by less
        assert max(finals) - min(finals) < 0.02


class TestReconfigOnEnvBreakpoint:
    """An event landing on an environment power-step edge that is also
    a task boundary — span horizon, segment commit, harvest step and
    bank switch all at one float. Both orderings must stay in band."""

    EPS = 4e-3

    def _spec(self):
        env = EnvSpec(model="diurnal-solar", duration=8.0, seed=3,
                      peak_power=5e-3, period=8.0, daylight_fraction=1.0,
                      cloud_rate=6.0, grid_dt=0.25)
        return FleetSpec(devices=1, seed=0, esr_jitter=0.0,
                         capacitance_jitter=0.0, harvest_jitter=0.0,
                         eta_jitter=0.0, env=env, bank=RECONFIG_BANK)

    def _boundary_with_power_step(self, params):
        harvester = params.device_harvester(0)
        edges, powers = harvester.edges, harvester.powers
        for k in range(2, len(powers) - 4):
            if powers[k - 1] != powers[k]:
                return float(edges[k])
        raise AssertionError("no interior power step found")

    def test_switch_on_the_power_step_both_orderings(self):
        spec = self._spec()
        t_b = self._boundary_with_power_step(spec.parameters())
        segments = [(0.012, t_b), (0.0, 1.0)]
        for t_e in (t_b - self.EPS, t_b, t_b + self.EPS):
            plan = ReconfigPlan.build((t_e, MERGE))
            sys_fast, res_fast = _scalar_plan(spec, segments, plan)
            _sys, res_alg = _scalar_plan(spec, segments, plan,
                                         fast=False, use_segalg=True)
            fleet_step, brown = _fleet_plan(spec, segments, plan)
            fleet_alg, _ = _fleet_plan(spec, segments, plan,
                                       engine="segalg")
            assert not res_fast.browned_out
            assert np.isnan(float(brown[0]))
            assert sys_fast.buffer.config_id == frozenset(MERGE)
            assert float(fleet_step.v_term[0]) == pytest.approx(
                res_fast.v_final, abs=1e-7)
            assert res_alg.v_final == pytest.approx(res_fast.v_final,
                                                    abs=V_METHOD_TOL)
            assert float(fleet_alg.v_term[0]) == pytest.approx(
                res_alg.v_final, abs=1e-3)


class TestReconfigOnRailArrival:
    """An event landing on the V_high rail arrival.

    Merging in a lower-rested bank pulls the pinned rail down (the dip
    must show in ``v_min`` — the documented post-switch accounting) and
    the pin regime then recovers. Both orderings: just before arrival
    (still charging) and just after (pinned)."""

    EPS = 4e-3

    def _t_rail(self, spec, v0=2.2):
        """(arrival time, pin level) — the pin overshoots nominal V_high
        by the hysteresis sliver, so the level is measured, not assumed."""
        def v_after(d):
            _sys, res = _scalar_plan(spec, [(0.0, d)], None, v0=v0)
            return res.v_final

        lo_d, hi_d = 1e-3, 60.0
        v_rail = v_after(hi_d)
        assert v_rail > 2.5
        assert v_after(lo_d) < v_rail - 1e-3
        for _ in range(60):
            mid = 0.5 * (lo_d + hi_d)
            if v_after(mid) < v_rail - 1e-9:
                lo_d = mid
            else:
                hi_d = mid
        return hi_d, v_rail

    def test_merge_on_the_rail_both_orderings(self):
        spec = _bank_spec(harvest_power=6e-3)
        t_rail, v_rail = self._t_rail(spec)
        segments = [(0.0, t_rail), (0.0, 1.0)]
        finals = []
        for t_e in (t_rail - self.EPS, t_rail, t_rail + self.EPS):
            plan = ReconfigPlan.build((t_e, MERGE))
            sys_fast, res_fast = _scalar_plan(spec, segments, plan)
            fleet_step, brown = _fleet_plan(spec, segments, plan)
            assert not res_fast.browned_out
            assert np.isnan(float(brown[0]))
            assert sys_fast.buffer.config_id == frozenset(MERGE)
            # the merge dip off the rail is visible to v_min accounting
            assert V_OFF < res_fast.v_min < v_rail - 0.02
            # near the pin the engines differ by the hysteresis sliver
            # (the scalar pin overshoots nominal V_high by ~3e-4 V), so
            # the stepping comparison is banded, not bitwise, here
            assert float(fleet_step.v_term[0]) == pytest.approx(
                res_fast.v_final, abs=1e-3)
            finals.append(res_fast.v_final)
        assert max(finals) - min(finals) < 0.02
