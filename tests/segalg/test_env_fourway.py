"""Four-way equivalence on environment-generated harvest traces.

The environment engine lowers parametric skies into the same
piecewise-constant :class:`TraceHarvester` every engine consumes, so
the permanent equivalence chain must hold unchanged on env-driven
fleets: reference ≡ fastpath bit-exactly, fastpath ≡ scalar segalg at
method tolerance, scalar segalg ≡ fleet segalg within the vector-path
band. Dense dawn/dusk ramps (a short-period diurnal sky subdivides
into many pieces around sunrise) stress the edge-horizon machinery:
every trace edge becomes a span horizon in the scalar algebra and a
chunk boundary in the vector path.
"""

import numpy as np
import pytest

from repro import segalg
from repro.env.spec import EnvSpec
from repro.fleet.kernel import FleetState
from repro.fleet.spec import FleetSpec
from repro.loads.trace import CurrentTrace
from repro.segalg.vector import advance_fleet
from repro.sim import fastpath
from repro.sim.engine import PowerSystemSimulator

#: Stepping-vs-segalg method tolerance (V). Trace-driven harvests sit
#: inside the documented band: the residual is the per-segment commit
#: bias under load, not the harvest sampling (both methods are exact
#: on piecewise-constant power).
V_METHOD_TOL = 5e-3
T_METHOD_TOL = 6e-2
E_METHOD_TOL = 2e-2

#: Scalar segalg vs fleet segalg on one device: same program, same
#: piece edges, but the scalar clips spans at every edge while the
#: vector path chunks per compiled interval — a small method gap.
V_PATH_TOL = 1e-3

MIXED = [
    (0.012, 0.05), (0.0, 0.2), (0.025, 0.02), (0.0, 0.5),
    (0.008, 0.10), (0.0, 0.05), (0.018, 0.03), (0.0, 0.3),
]

#: Long idle tail: the workload outlives the trace's bright stretch so
#: the engines also agree on the hold-last-piece semantics.
SPARSE = [(0.015, 0.8), (0.0, 12.0), (0.020, 0.5), (0.0, 8.0)]


def _env_fleet_spec(env: EnvSpec, **overrides) -> FleetSpec:
    base = dict(devices=1, seed=0, esr_jitter=0.0,
                capacitance_jitter=0.0, harvest_jitter=0.0,
                eta_jitter=0.0, env=env)
    base.update(overrides)
    return FleetSpec(**base)


def _run_scalar(params, segments, harvesting, stop_below, *, mode,
                v0=None):
    system = params.device_system(0)
    if v0 is not None:
        system.rest_at(v0)
    sim = PowerSystemSimulator(system, fast=False)
    trace = CurrentTrace([(float(c), float(d)) for c, d in segments])
    if mode == "reference":
        brown = None
        for current, duration in trace.segments():
            hit = sim._advance(current, duration, harvesting, stop_below)
            if hit is not None:
                brown = hit
                break
    elif mode == "fastpath":
        assert fastpath.supported(system)
        brown = fastpath.advance_segments(sim, trace.segments(),
                                          harvesting, stop_below)
    else:
        assert segalg.supported(system)
        brown = segalg.advance_segments(sim, trace, harvesting, stop_below)
    return dict(
        v_term=system.buffer.terminal_voltage,
        v_min=sim._v_min_seen,
        energy=sim._energy_out,
        time=sim.time,
        brown=brown,
    )


def _fourway(spec, segments, harvesting=True, stop_below=None, v0=None):
    params = spec.parameters()
    assert params.harvest_edges is not None  # env columns present
    ref = _run_scalar(params, segments, harvesting, stop_below,
                      mode="reference", v0=v0)
    fast = _run_scalar(params, segments, harvesting, stop_below,
                       mode="fastpath", v0=v0)
    alg = _run_scalar(params, segments, harvesting, stop_below,
                      mode="segalg", v0=v0)
    state = FleetState(params, v_start=v0)
    brown = advance_fleet(state, list(segments), harvesting, stop_below)

    # reference ≡ fastpath: bit-exact, env trace or not.
    assert fast["v_term"] == ref["v_term"]
    assert fast["v_min"] == ref["v_min"]
    assert fast["energy"] == ref["energy"]
    assert (fast["brown"] is None) == (ref["brown"] is None)

    # fastpath ≡ scalar segalg: method tolerance.
    assert alg["v_term"] == pytest.approx(fast["v_term"],
                                          abs=V_METHOD_TOL)
    assert alg["v_min"] == pytest.approx(fast["v_min"], abs=V_METHOD_TOL)
    assert alg["energy"] == pytest.approx(fast["energy"],
                                          rel=E_METHOD_TOL, abs=1e-6)
    assert (alg["brown"] is None) == (fast["brown"] is None)
    if alg["brown"] is not None:
        assert alg["brown"] == pytest.approx(fast["brown"],
                                             abs=T_METHOD_TOL)

    # scalar segalg ≡ fleet segalg.
    assert float(state.v_term[0]) == pytest.approx(alg["v_term"],
                                                   abs=V_PATH_TOL)
    assert float(state.energy[0]) == pytest.approx(alg["energy"],
                                                   rel=1e-3, abs=1e-7)
    if alg["brown"] is None:
        assert np.isnan(float(brown[0]))
    else:
        assert float(brown[0]) == pytest.approx(alg["brown"], abs=1e-3)
    return ref, fast, alg, state


class TestEnvFourWay:
    @pytest.mark.parametrize("model", ["diurnal-solar", "kinetic-burst",
                                       "thermal-gradient"])
    def test_each_model(self, model):
        env = EnvSpec(model=model, duration=30.0, seed=2,
                      peak_power=4e-3, period=24.0, cloud_rate=5.0,
                      burst_rate=0.3)
        _fourway(_env_fleet_spec(env), MIXED)

    @pytest.mark.parametrize("mppt", ["constant-voltage", "voc-fraction",
                                      "perturb-observe"])
    def test_each_front_end(self, mppt):
        env = EnvSpec(model="diurnal-solar", mppt=mppt, duration=30.0,
                      seed=5, peak_power=4e-3, period=24.0,
                      cloud_rate=5.0)
        _fourway(_env_fleet_spec(env), MIXED)

    def test_dawn_dusk_dense_ramps(self):
        # A 6 s day: three full diurnal cycles inside the workload, so
        # the sine ramps around every dawn/dusk subdivide densely and
        # the engines cross dozens of piece edges per load segment.
        env = EnvSpec(model="diurnal-solar", duration=21.5, seed=9,
                      peak_power=6e-3, period=6.0, cloud_rate=8.0,
                      max_dt=0.25, tol=0.005)
        spec = _env_fleet_spec(env)
        trace = spec.parameters().device_harvester(0)
        assert len(trace.powers) > 60  # genuinely breakpoint-dense
        _fourway(spec, MIXED)

    def test_workload_outliving_the_recording(self):
        env = EnvSpec(model="kinetic-burst", duration=10.0, seed=3,
                      peak_power=4e-3, burst_rate=0.5)
        _fourway(_env_fleet_spec(env), SPARSE)

    def test_brown_out_under_a_dark_sky(self):
        # Night-heavy diurnal sky + sustained draw: all four engines
        # must call the brown-out on the same analytic crossing.
        env = EnvSpec(model="diurnal-solar", duration=40.0, seed=1,
                      peak_power=0.5e-3, period=40.0,
                      daylight_fraction=0.2, cloud_rate=0.0)
        spec = _env_fleet_spec(env)
        ref, fast, alg, state = _fourway(
            spec, [(0.020, 12.0), (0.0, 4.0), (0.020, 12.0)],
            stop_below=spec.v_off, v0=1.9)
        assert alg["brown"] is not None

    def test_env_jittered_lanes_match_their_scalar_plants(self):
        # Site shading: each device's column is scaled by its harvest
        # jitter factor; every lane must still match its own scalar
        # segalg run (the lane and the plant share the same floats).
        env = EnvSpec(model="diurnal-solar", duration=30.0, seed=4,
                      peak_power=4e-3, period=24.0, cloud_rate=5.0,
                      front_delay=0.4)
        spec = _env_fleet_spec(env, devices=8, harvest_jitter=0.3)
        params = spec.parameters()
        state = FleetState(params)
        advance_fleet(state, MIXED, True, None)
        for i in (0, 3, 7):
            system = params.device_system(i)
            sim = PowerSystemSimulator(system, fast=False)
            segalg.advance_segments(
                sim, CurrentTrace([(c, d) for c, d in MIXED]), True, None)
            assert float(state.v_term[i]) == pytest.approx(
                system.buffer.terminal_voltage, abs=V_METHOD_TOL)
