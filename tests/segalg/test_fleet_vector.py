"""The segalg fleet path as a drop-in for the stepping fleet kernel."""

import numpy as np
import pytest

from repro.fleet.kernel import FleetRecorder, FleetState, advance
from repro.fleet.runner import FLEET_ENGINES, run_fleet, run_fleet_raw
from repro.fleet.spec import FleetSpec
from repro.loads.trace import CurrentTrace
from repro.segalg import backends
from repro.segalg.vector import advance_fleet

TRACE = [(0.012, 0.05), (0.0, 0.4), (0.020, 0.03), (0.0, 0.6)]

#: Stepping-vs-segalg method tolerance (see DESIGN §12).
V_TOL = 3e-3


def _spec(devices=8, **overrides):
    base = dict(devices=devices, seed=3, harvest_power=2e-3,
                esr_jitter=0.2, capacitance_jitter=0.1,
                harvest_jitter=0.3)
    base.update(overrides)
    return FleetSpec(**base)


class TestDropInContract:
    def test_matches_stepping_kernel_within_method_tol(self):
        params = _spec().parameters()
        step_state = FleetState(params, v_start=2.3)
        alg_state = FleetState(params, v_start=2.3)
        step_brown = advance(step_state, TRACE, True, None)
        alg_brown = advance_fleet(alg_state, TRACE, True, None)
        np.testing.assert_allclose(alg_state.v_term, step_state.v_term,
                                   atol=V_TOL)
        np.testing.assert_allclose(alg_state.time, step_state.time,
                                   atol=1e-9)
        assert np.isnan(step_brown).all() and np.isnan(alg_brown).all()

    def test_recorder_boundaries_match_stepping_kernel(self):
        params = _spec(devices=4).parameters()
        rows = {}
        for name, engine in (("step", advance), ("alg", advance_fleet)):
            state = FleetState(params, v_start=2.3)
            recorder = FleetRecorder([0, 3])
            engine(state, TRACE, True, None, recorder=recorder)
            rows[name] = recorder.rows
        # same capture schedule: one row per tracked device per source
        # segment, at identical times, voltages within method tolerance
        assert len(rows["alg"]) == len(rows["step"]) \
            == len(TRACE) * 2
        for alg_row, step_row in zip(rows["alg"], rows["step"]):
            assert alg_row[0] == step_row[0]          # device
            assert alg_row[1] == pytest.approx(step_row[1])  # time
            assert alg_row[2] == pytest.approx(step_row[2], abs=V_TOL)

    def test_trace_objects_accepted(self):
        params = _spec(devices=2).parameters()
        a = FleetState(params, v_start=2.3)
        b = FleetState(params, v_start=2.3)
        advance_fleet(a, CurrentTrace(TRACE), True, None)
        advance_fleet(b, list(TRACE), True, None)
        np.testing.assert_array_equal(a.v_term, b.v_term)
        np.testing.assert_array_equal(a.energy, b.energy)

    def test_active_mask_freezes_inactive_lanes(self):
        params = _spec(devices=6).parameters()
        state = FleetState(params, v_start=2.3)
        active = np.array([True, False, True, False, True, False])
        advance_fleet(state, TRACE, True, None, active=active)
        frozen = ~active
        assert (state.time[frozen] == 0.0).all()
        assert (state.v_term[frozen] == 2.3).all()
        assert (state.energy[frozen] == 0.0).all()
        assert (state.time[active] > 0.0).all()

    def test_browned_lane_stops_and_dies(self):
        spec = _spec(devices=3, harvest_power=0.05e-3, esr_jitter=0.0,
                     capacitance_jitter=0.0, harvest_jitter=0.0)
        state = FleetState(spec.parameters(), v_start=1.9)
        brown = advance_fleet(state, [(0.025, 10.0)], True, spec.v_off)
        assert np.isfinite(brown).all()
        assert not state.alive.any()
        np.testing.assert_allclose(state.time, brown)
        np.testing.assert_allclose(state.v_term, spec.v_off, atol=1e-6)

    def test_homogeneous_fleet_stays_in_lockstep(self):
        spec = _spec(devices=8, esr_jitter=0.0, capacitance_jitter=0.0,
                     harvest_jitter=0.0, eta_jitter=0.0)
        state = FleetState(spec.parameters(), v_start=2.3)
        advance_fleet(state, TRACE, True, None)
        assert float(np.ptp(state.v_term)) == 0.0
        assert float(np.ptp(state.energy)) == 0.0


class TestRunnerIntegration:
    def test_engine_kwarg_reaches_the_report(self):
        report = run_fleet(_spec(devices=4), cycles=1, horizon=60.0,
                           engine="segalg")
        assert report.engine == "segalg"
        assert report.to_dict()["config"]["engine"] == "segalg"

    def test_default_engine_is_stepping(self):
        report = run_fleet(_spec(devices=2), cycles=1, horizon=60.0)
        assert report.engine == "stepping"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_fleet_raw(_spec(devices=1), cycles=1, horizon=60.0,
                          engine="verlet")

    def test_engines_registry(self):
        assert FLEET_ENGINES == ("stepping", "segalg")

    def test_segalg_outcomes_track_stepping(self):
        spec = _spec(devices=16, seed=11)
        step = run_fleet(spec, cycles=2, horizon=60.0, engine="stepping")
        alg = run_fleet(spec, cycles=2, horizon=60.0, engine="segalg")
        # same devices, same tasks — outcome *counts* may differ only
        # where a device sits within method tolerance of a threshold
        assert step.devices == alg.devices
        assert alg.cycles == step.cycles


class TestBackendInvariance:
    """The fleet path is numpy-only: reports must be byte-identical
    across ``REPRO_SEGALG_BACKEND`` settings (the CI cmp check)."""

    def _run(self):
        state = FleetState(_spec(devices=8).parameters(), v_start=2.3)
        advance_fleet(state, TRACE, True, None)
        return state

    def test_arrays_bit_identical_across_backends(self, monkeypatch):
        results = {}
        for name in ("numpy", "numba"):
            monkeypatch.setenv(backends._ENV_VAR, name)
            backends.reset()
            try:
                results[name] = self._run()
            finally:
                backends.reset()
        for field in ("v_term", "v_main", "v_redist", "v_min", "energy",
                      "time"):
            a = getattr(results["numpy"], field)
            b = getattr(results["numba"], field)
            assert a.tobytes() == b.tobytes(), field
