"""Segment-program compilation, fingerprints, and the program cache."""

import numpy as np
import pytest

from repro import obs
from repro.loads.trace import CurrentTrace
from repro.power.system import capybara_power_system
from repro.segalg import program as prog
from repro.segalg.model import Bank
from repro.segalg.program import (
    DV_BUDGET,
    MAX_SUB,
    SegmentProgram,
    cache_clear,
    cached_program,
    canonical_fingerprint,
    compile_segments,
    program_for,
    segments_cache_token,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    cache_clear()
    yield
    cache_clear()


@pytest.fixture
def bank():
    return Bank.from_system(capybara_power_system(), True)


class TestCompile:
    def test_canonical_is_one_to_one(self):
        runs = [(0.01, 0.5), (0.0, 1.0), (0.02, 0.25)]
        p = compile_segments(runs)
        assert p.n == 3
        np.testing.assert_array_equal(p.i_out, [0.01, 0.0, 0.02])
        np.testing.assert_array_equal(p.dur, [0.5, 1.0, 0.25])
        np.testing.assert_array_equal(p.seg_bounds, [1, 2, 3])
        assert p.duration == pytest.approx(1.75)

    def test_zero_and_negative_segments_dropped(self):
        runs = [(0.01, 0.5), (0.02, 0.0), (0.03, -1.0), (0.0, 1.0)]
        p = compile_segments(runs)
        assert p.n == 2
        np.testing.assert_array_equal(p.i_out, [0.01, 0.0])
        # dropped source segments contribute a repeated bound, so
        # boundary consumers (the fleet recorder) still see one entry
        # per *source* segment
        np.testing.assert_array_equal(p.seg_bounds, [1, 1, 1, 2])

    def test_empty(self):
        p = compile_segments([])
        assert p.n == 0
        assert p.duration == 0.0

    def test_subdivision_preserves_totals(self, bank):
        runs = [(0.025, 2.0), (0.0, 5.0)]
        p = compile_segments(runs, bank)
        assert p.n > 2  # the draw segment must subdivide under DV_BUDGET
        assert float(p.dur.sum()) == pytest.approx(7.0)
        # every interval carries its source current
        bound0 = int(p.seg_bounds[0])
        assert set(p.i_out[:bound0]) == {0.025}
        assert set(p.i_out[bound0:]) == {0.0}

    def test_dv_budget_bounds_interval_charge(self, bank):
        runs = [(0.030, 1.0)]
        p = compile_segments(runs, bank)
        c_ref = float(np.min(np.asarray(bank.c_tot)))
        from repro.segalg.model import bound_current
        i_bound = bound_current(bank, 0.030)
        moved = p.dur * i_bound / c_ref
        assert float(moved.max()) <= DV_BUDGET * (1.0 + 1e-9)

    def test_subdivision_capped(self, bank):
        # a pathological segment cannot explode past MAX_SUB intervals
        p = compile_segments([(0.030, 1e9)], bank)
        assert p.n == MAX_SUB

    def test_time_columns(self):
        p = compile_segments([(0.01, 1.0), (0.0, 3.0)])
        np.testing.assert_allclose(p.t_start, [0.0, 1.0])
        np.testing.assert_allclose(p.t_mid, [0.5, 2.5])

    def test_arrays_immutable(self):
        p = compile_segments([(0.01, 1.0)])
        with pytest.raises(ValueError):
            p.i_out[0] = 5.0


class TestFingerprint:
    def test_stable_and_content_addressed(self):
        a = compile_segments([(0.01, 1.0), (0.0, 2.0)])
        b = compile_segments([(0.01, 1.0), (0.0, 2.0)])
        c = compile_segments([(0.01, 1.0), (0.0, 2.5)])
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_independent_of_seg_bounds(self):
        bare = SegmentProgram(np.array([0.01]), np.array([1.0]))
        bounded = SegmentProgram(np.array([0.01]), np.array([1.0]),
                                 seg_bounds=np.array([1, 1]))
        assert bare.fingerprint() == bounded.fingerprint()

    def test_canonical_ignores_zero_length_segments(self):
        a = CurrentTrace([(0.01, 1.0), (0.0, 2.0)])
        b = CurrentTrace([(0.01, 1.0), (0.02, 0.0), (0.0, 2.0)])
        assert canonical_fingerprint(a) == canonical_fingerprint(b)

    def test_canonical_is_plant_independent(self, bank):
        trace = CurrentTrace([(0.025, 2.0)])
        # the canonical fingerprint never sees the bank, so it differs
        # from the bank-subdivided program's fingerprint
        assert canonical_fingerprint(trace) != \
            compile_segments(trace.segments(), bank).fingerprint()


class TestCacheToken:
    def test_trace_token_uses_fingerprint(self):
        trace = CurrentTrace([(0.01, 1.0)])
        token = segments_cache_token(trace)
        assert token[0] == "trace"
        assert token[1] == trace.fingerprint()

    def test_runs_token_captures_segments(self):
        token = segments_cache_token([(0.01, 1.0), (0.0, 2.0)])
        assert token[0] == "runs"
        assert token[2] == ((0.01, 1.0), (0.0, 2.0))

    def test_equal_runs_equal_tokens(self):
        a = segments_cache_token([(0.01, 1.0)])
        b = segments_cache_token(((0.01, 1.0),))
        assert a == b


class TestCachedProgram:
    def test_hit_returns_same_object(self):
        built = []

        def build():
            built.append(1)
            return compile_segments([(0.01, 1.0)])

        first = cached_program(("k",), build)
        second = cached_program(("k",), build)
        assert first is second
        assert len(built) == 1

    def test_obs_counters_at_batch_granularity(self):
        with obs.observe() as ob:
            cached_program(("a",), lambda: compile_segments([(0.01, 1.0)]))
            cached_program(("a",), lambda: compile_segments([(0.01, 1.0)]))
            cached_program(("b",), lambda: compile_segments([(0.02, 1.0)]))
        hits = ob.metrics.counter("segalg.program_cache.hits").value
        misses = ob.metrics.counter("segalg.program_cache.misses").value
        assert (hits, misses) == (1, 2)

    def test_lru_eviction(self):
        cap = prog._CACHE_CAP
        for i in range(cap + 1):
            cached_program(("k", i),
                           lambda: compile_segments([(0.01, 1.0)]))
        assert ("k", 0) not in prog._cache
        assert ("k", cap) in prog._cache

    def test_program_for_caches_per_bank_and_trace(self, bank):
        trace = CurrentTrace([(0.01, 1.0), (0.0, 2.0)])
        first = program_for(bank, trace)
        second = program_for(bank, trace)
        assert first is second
        other = program_for(bank, CurrentTrace([(0.02, 1.0)]))
        assert other is not first
