"""Engine dispatch to the segment-algebra core, and its cache keys."""

import pytest

from repro import obs, segalg
from repro.core.profile_guided import CulpeoPG
from repro.loads.trace import CurrentTrace
from repro.power.system import capybara_power_system
from repro.segalg.program import canonical_fingerprint
from repro.sim.adc import Adc, SamplingObserver
from repro.sim.engine import (
    DEFAULT_SEGALG,
    PowerSystemSimulator,
    set_default_segalg,
)

TRACE = CurrentTrace([(0.012, 0.05), (0.0, 0.2), (0.025, 0.02),
                      (0.0, 0.5)])


def _sim(**kwargs):
    system = capybara_power_system()
    system.rest_at(2.2)
    return PowerSystemSimulator(system, **kwargs), system


class TestDispatch:
    def test_off_by_default(self):
        sim, _ = _sim()
        assert sim.segalg is DEFAULT_SEGALG is False
        assert not sim._use_segalg()

    def test_opt_in_dispatches_whole_trace(self):
        sim, _ = _sim(segalg=True)
        assert sim._use_segalg()
        with obs.observe() as ob:
            sim.run_trace(TRACE, stop_on_brownout=False)
        assert ob.metrics.counter("segalg.calls").value >= 1

    def test_segalg_matches_reference_within_method_tol(self):
        alg_sim, alg_system = _sim(segalg=True, fast=False)
        alg_sim.run_trace(TRACE, stop_on_brownout=False)
        ref_sim, ref_system = _sim(segalg=False, fast=False)
        ref_sim.run_trace(TRACE, stop_on_brownout=False)
        assert alg_system.buffer.terminal_voltage == pytest.approx(
            ref_system.buffer.terminal_voltage, abs=3e-3)
        assert alg_sim._energy_out == pytest.approx(
            ref_sim._energy_out, rel=2e-2, abs=1e-6)

    def test_observers_ride_along(self):
        # unlike the fastpath, observers do not force a fallback: their
        # due-times become events
        observer = SamplingObserver(Adc(bits=12), sample_period=0.05,
                                    burden_current=0.0005)
        observer.enable(0.0)
        sim, _ = _sim(segalg=True, observers=[observer])
        assert sim._use_segalg()
        sim.run_trace(TRACE, stop_on_brownout=False)
        assert observer.sample_count > 0

    def test_observer_samples_match_reference(self):
        counts = {}
        for use_segalg in (False, True):
            observer = SamplingObserver(Adc(bits=12), sample_period=0.05)
            observer.enable(0.0)
            sim, _ = _sim(segalg=use_segalg, fast=False,
                          observers=[observer])
            sim.run_trace(TRACE, stop_on_brownout=False)
            counts[use_segalg] = (observer.sample_count, observer.v_min)
        assert counts[True][0] == counts[False][0]
        # ADC quantization: within one LSB of the stepping loop's view
        assert counts[True][1] == pytest.approx(counts[False][1],
                                                abs=2 * 2.56 / 4096)

    def test_set_default_segalg(self):
        old = set_default_segalg(True)
        try:
            assert old is False
            sim, _ = _sim()
            assert sim.segalg
        finally:
            set_default_segalg(old)


class TestEstimatorCacheKey:
    def test_key_carries_canonical_fingerprint(self, model):
        pg = CulpeoPG(model)
        key = pg._cache_key(TRACE, resistance=10.0)
        assert canonical_fingerprint(TRACE) in key

    def test_key_ignores_zero_length_segments(self, model):
        # CurrentTrace normalizes zero-length runs away at construction,
        # and compile_segments drops them independently — either way the
        # canonical program (and hence the key) is invariant to padding
        pg = CulpeoPG(model)
        padded = CurrentTrace([(0.012, 0.05), (0.5, 0.0), (0.0, 0.2),
                               (0.025, 0.02), (0.0, 0.5)])
        assert canonical_fingerprint(padded) == canonical_fingerprint(
            TRACE)
        assert pg._cache_key(padded, 10.0) == pg._cache_key(TRACE, 10.0)

    def test_key_distinguishes_different_programs(self, model):
        pg = CulpeoPG(model)
        other = CurrentTrace([(0.012, 0.05), (0.0, 0.3)])
        assert pg._cache_key(TRACE, 10.0) != pg._cache_key(other, 10.0)
