"""Four-way differential harness: reference ≡ fastpath ≡ segalg ≡ fleet.

The permanent equivalence chain for the segment-algebra core, enforced
over seeded random configurations:

* **reference ≡ fastpath** — bit-exact (the PR1 claim, re-pinned here so
  the chain is anchored);
* **fastpath ≡ scalar segalg** — *method* tolerance: the algebra is a
  different integrator (closed-form between events vs adaptive
  stepping), so it agrees on physics, not on floating point;
* **scalar segalg ≡ fleet segalg** — tight on homogeneous fleets (both
  paths compile the identical segment program and converge to the same
  per-interval fixed points); method-level on jittered fleets, where the
  fleet-wide conservative compile bounds partition intervals differently
  than a per-device compile (partition sensitivity, see DESIGN §12).
"""

import random

import numpy as np
import pytest

from repro import segalg
from repro.fleet.kernel import FleetState
from repro.fleet.spec import FleetSpec
from repro.loads.trace import CurrentTrace
from repro.segalg.vector import advance_fleet
from repro.sim import fastpath
from repro.sim.engine import PowerSystemSimulator

#: Stepping-vs-segalg method tolerance on voltages (V). The documented
#: band is ~1e-4 V for plain workloads; brown-out truncation and solar
#: midpoint sampling push worst cases toward 2e-3 V.
V_METHOD_TOL = 3e-3

#: Stepping-vs-segalg tolerance on brown-out times (s): the stepping
#: loops locate the crossing only to their adaptive step (up to 50 ms
#: idle steps); the algebra bisects the analytic curve.
T_METHOD_TOL = 6e-2

#: Relative energy tolerance between integrators (average-voltage vs
#: endpoint-voltage accounting per step).
E_METHOD_TOL = 2e-2

#: Scalar-segalg vs fleet-segalg on a homogeneous batch: identical
#: programs, identical fixed points — agreement is numerical, not
#: method-level. The only slack beyond float noise is the hover
#: backstop's onset granularity (the scalar stalls three cap events
#: across adaptive spans before holding at the rail; the fleet commits
#: on the split where the free solve rises), which perturbs the hidden
#: branch ledger by ~1e-6 V while both terminals sit at V_max.
V_PATH_TOL = 5e-6

#: Mixed workload: bursts, recharge gaps, hysteresis traffic.
MIXED = [
    (0.012, 0.05), (0.0, 0.2), (0.025, 0.02), (0.0, 0.5),
    (0.008, 0.10), (0.0, 0.05), (0.018, 0.03), (0.0, 0.3),
]

#: Heavy sustained draw that browns a weak-harvest plant mid-trace.
HEAVY = [(0.020, 3.0), (0.0, 5.0), (0.020, 3.0)]


def _random_spec(seed: int, *, jitter: bool, **overrides) -> FleetSpec:
    """Randomized spec (pure function of ``seed``); optionally jittered."""
    rng = random.Random(seed)
    base = dict(
        devices=1,
        seed=seed,
        datasheet_capacitance=rng.uniform(20e-3, 80e-3),
        dc_esr=rng.uniform(1.0, 8.0),
        c_decoupling=rng.choice([100e-6, 220e-6]),
        leakage_current=rng.uniform(0.0, 1e-6),
        redist_fraction=rng.choice([0.10, 0.25]),
        input_efficiency=rng.uniform(0.6, 0.9),
        harvest_power=rng.uniform(1e-3, 8e-3),
        esr_jitter=rng.uniform(0.0, 0.3) if jitter else 0.0,
        capacitance_jitter=rng.uniform(0.0, 0.15) if jitter else 0.0,
        harvest_jitter=rng.uniform(0.0, 0.4) if jitter else 0.0,
        eta_jitter=rng.uniform(0.0, 0.05) if jitter else 0.0,
    )
    base.update(overrides)
    return FleetSpec(**base)


def _run_scalar(params, index, segments, harvesting, stop_below, *,
                mode, v0=None):
    """One device through reference / fastpath / scalar-segalg."""
    system = params.device_system(index)
    if v0 is not None:
        system.rest_at(v0)
    sim = PowerSystemSimulator(system, fast=False)
    trace = CurrentTrace([(float(c), float(d)) for c, d in segments])
    if mode == "reference":
        brown = None
        for current, duration in trace.segments():
            hit = sim._advance(current, duration, harvesting, stop_below)
            if hit is not None:
                brown = hit
                break
    elif mode == "fastpath":
        assert fastpath.supported(system)
        brown = fastpath.advance_segments(sim, trace.segments(),
                                          harvesting, stop_below)
    else:
        assert segalg.supported(system)
        brown = segalg.advance_segments(sim, trace, harvesting, stop_below)
    return dict(
        v_term=system.buffer.terminal_voltage,
        v_min=sim._v_min_seen,
        energy=sim._energy_out,
        time=sim.time,
        brown=brown,
        enabled=system.monitor.output_enabled,
    )


def _run_fleet(params, segments, harvesting, stop_below, *, v0=None):
    state = FleetState(params, v_start=v0)
    brown = advance_fleet(state, list(segments), harvesting, stop_below)
    return state, brown


def _fourway(spec, segments, harvesting=True, stop_below=None, v0=None,
             energy_abs=1e-6, path_v_tol=V_PATH_TOL, path_e_rel=1e-6):
    """Run all four engines and assert the equivalence chain.

    ``energy_abs`` widens the stepping-vs-algebra energy band on
    brown-out workloads: the stepping loop accrues energy up to its
    step-quantized brown time, the algebra cuts at the analytic
    crossing, so the bands differ by up to ``i_peak * v * T_METHOD_TOL``.
    ``path_v_tol``/``path_e_rel`` relax the scalar-vs-fleet leg for
    solar harvests, where the scalar's adaptive spans re-sample the
    sine per sub-span but the fleet samples once per compiled interval
    midpoint — a method difference, not a numerical one.
    """
    params = spec.parameters()
    ref = _run_scalar(params, 0, segments, harvesting, stop_below,
                      mode="reference", v0=v0)
    fast = _run_scalar(params, 0, segments, harvesting, stop_below,
                       mode="fastpath", v0=v0)
    alg = _run_scalar(params, 0, segments, harvesting, stop_below,
                      mode="segalg", v0=v0)
    state, brown = _run_fleet(params, segments, harvesting, stop_below,
                              v0=v0)

    # reference ≡ fastpath: bit-exact.
    assert fast["v_term"] == ref["v_term"]
    assert fast["v_min"] == ref["v_min"]
    assert fast["energy"] == ref["energy"]
    assert (fast["brown"] is None) == (ref["brown"] is None)

    # fastpath ≡ scalar segalg: method tolerance.
    assert alg["v_term"] == pytest.approx(fast["v_term"], abs=V_METHOD_TOL)
    assert alg["v_min"] == pytest.approx(fast["v_min"], abs=V_METHOD_TOL)
    assert alg["energy"] == pytest.approx(
        fast["energy"], rel=E_METHOD_TOL, abs=energy_abs)
    assert (alg["brown"] is None) == (fast["brown"] is None)
    if alg["brown"] is not None:
        assert alg["brown"] == pytest.approx(fast["brown"],
                                             abs=T_METHOD_TOL)

    # scalar segalg ≡ fleet segalg (single device: identical program).
    assert float(state.v_term[0]) == pytest.approx(alg["v_term"],
                                                   abs=path_v_tol)
    assert float(state.v_min[0]) == pytest.approx(alg["v_min"],
                                                  abs=path_v_tol)
    assert float(state.energy[0]) == pytest.approx(
        alg["energy"], rel=path_e_rel, abs=1e-9)
    assert bool(state.enabled[0]) == alg["enabled"]
    fleet_brown = float(brown[0])
    if alg["brown"] is None:
        assert np.isnan(fleet_brown)
    else:
        assert fleet_brown == pytest.approx(alg["brown"], abs=1e-6)
    return ref, fast, alg, state


class TestFourWayEquivalence:
    """reference ≡ fastpath ≡ scalar segalg ≡ fleet segalg."""

    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_workload(self, seed):
        spec = _random_spec(seed, jitter=False)
        _fourway(spec, MIXED)

    @pytest.mark.parametrize("seed", range(4))
    def test_brown_out(self, seed):
        spec = _random_spec(seed, jitter=False, harvest_power=0.2e-3)
        # the 20 mA draw accrues up to i*v*T_METHOD_TOL of energy over
        # the allowed brown-time slack between the two integrators
        ref, fast, alg, state = _fourway(
            spec, HEAVY, stop_below=spec.v_off, v0=1.9,
            energy_abs=0.020 * 2.6 * T_METHOD_TOL)
        assert alg["brown"] is not None

    @pytest.mark.parametrize("seed", range(4))
    def test_solar_harvest(self, seed):
        spec = _random_spec(seed, jitter=False, harvest_period=60.0)
        _fourway(spec, MIXED, path_v_tol=V_METHOD_TOL,
                 path_e_rel=E_METHOD_TOL)

    def test_not_harvesting(self):
        spec = _random_spec(99, jitter=False)
        _fourway(spec, MIXED[:4], harvesting=False)

    def test_rail_hysteresis_cycle(self):
        # Strong harvest pushes to the V_max rail; a burst drops below
        # V_off so the monitor must re-arm at V_high.
        spec = _random_spec(7, jitter=False, harvest_power=6e-3)
        _fourway(spec, [(0.020, 1.5), (0.0, 60.0), (0.010, 0.5)], v0=2.1)


class TestJitteredFleetAgainstScalarSegalg:
    """Each jittered device's fleet lane vs its own scalar segalg run.

    Method-level bounds: the fleet program's conservative partition is
    shared fleet-wide, a scalar compile partitions per-device.
    """

    @pytest.mark.parametrize("seed", range(3))
    def test_jittered_lanes(self, seed):
        spec = _random_spec(seed, jitter=True, devices=16)
        params = spec.parameters()
        state, brown = _run_fleet(params, MIXED, True, None)
        for i in (0, 7, 15):
            alg = _run_scalar(params, i, MIXED, True, None, mode="segalg")
            assert float(state.v_term[i]) == pytest.approx(
                alg["v_term"], abs=V_METHOD_TOL)
            assert float(state.energy[i]) == pytest.approx(
                alg["energy"], rel=E_METHOD_TOL, abs=1e-6)

    def test_homogeneous_fleet_is_tight(self):
        spec = _random_spec(5, jitter=False, devices=8)
        params = spec.parameters()
        state, brown = _run_fleet(params, MIXED, True, None)
        alg = _run_scalar(params, 0, MIXED, True, None, mode="segalg")
        # All lanes identical, and equal to the scalar algebra path.
        assert float(np.ptp(state.v_term)) == 0.0
        assert float(state.v_term[0]) == pytest.approx(alg["v_term"],
                                                       abs=V_PATH_TOL)
