"""Property-based tests on the simulation engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loads.trace import CurrentTrace
from repro.power.system import capybara_power_system
from repro.sim.engine import PowerSystemSimulator

start_voltages = st.floats(min_value=1.7, max_value=2.56)
currents = st.floats(min_value=1e-4, max_value=0.06)
widths = st.floats(min_value=1e-3, max_value=0.2)


def run(v_start, current, width, **kwargs):
    system = capybara_power_system()
    system.rest_at(v_start)
    sim = PowerSystemSimulator(system)
    trace = CurrentTrace.constant(current, width)
    return sim.run_trace(trace, harvesting=False, **kwargs), sim


class TestEngineProperties:
    @given(v=start_voltages, i=currents, w=widths)
    @settings(max_examples=40, deadline=None)
    def test_vmin_never_exceeds_vstart(self, v, i, w):
        result, _ = run(v, i, w)
        assert result.v_min <= result.v_start + 1e-9
        assert result.v_final <= result.v_start + 1e-9

    @given(v=start_voltages, i=currents, w=widths)
    @settings(max_examples=40, deadline=None)
    def test_completed_runs_never_crossed_voff(self, v, i, w):
        result, _ = run(v, i, w)
        if result.completed:
            assert result.v_min >= 1.6 - 1e-9
        else:
            assert result.browned_out
            assert result.brown_out_time is not None

    @given(v=start_voltages, i=currents, w=widths)
    @settings(max_examples=30, deadline=None)
    def test_completion_monotone_in_start_voltage(self, v, i, w):
        low, _ = run(v, i, w)
        high, _ = run(2.56, i, w)
        # If it completes from v, it must complete from a full buffer.
        if low.completed:
            assert high.completed

    @given(v=start_voltages, i=currents, w=widths)
    @settings(max_examples=30, deadline=None)
    def test_buffer_energy_covers_delivered_energy(self, v, i, w):
        result, sim = run(v, i, w)
        if result.completed:
            delivered = CurrentTrace.constant(i, w).energy_at(
                sim.system.v_out)
            # Conversion is lossy: the buffer gave at least what the load
            # received.
            assert result.energy_from_buffer >= delivered * 0.99

    @given(v=start_voltages, i=currents, w=widths)
    @settings(max_examples=30, deadline=None)
    def test_time_advances_exactly_for_completed_runs(self, v, i, w):
        result, sim = run(v, i, w)
        if result.completed:
            assert abs(sim.time - w) < 1e-6

    @given(v=start_voltages, duration=st.floats(0.01, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_idle_without_harvest_holds_charge(self, v, duration):
        system = capybara_power_system()
        system.rest_at(v)
        sim = PowerSystemSimulator(system)
        sim.idle(duration, harvesting=False)
        # Only the 20 nA leakage may move the needle.
        assert abs(system.buffer.terminal_voltage - v) < 1e-3
