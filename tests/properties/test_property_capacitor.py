"""Property-based tests on the energy-buffer physics."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.capacitor import IdealCapacitor, TwoBranchSupercap

voltages = st.floats(min_value=0.5, max_value=3.0)
currents = st.floats(min_value=0.0, max_value=0.2)
small_dts = st.floats(min_value=1e-6, max_value=1e-2)


def make_supercap(voltage):
    return TwoBranchSupercap(c_main=0.040, r_esr=4.0, c_redist=0.004,
                             r_redist=20.0, c_decoupling=100e-6,
                             voltage=voltage)


class TestIdealCapacitorProperties:
    @given(v=voltages, i=currents, dt=small_dts)
    def test_discharge_never_increases_open_circuit_voltage(self, v, i, dt):
        cap = IdealCapacitor(capacitance=0.045, esr=4.0, voltage=v)
        cap.step(i, dt)
        assert cap.open_circuit_voltage <= v + 1e-12

    @given(v=voltages, i=currents)
    def test_terminal_drop_matches_ohms_law(self, v, i):
        cap = IdealCapacitor(capacitance=0.045, esr=4.0, voltage=v)
        cap.step(i, 1e-9)  # negligible charge movement
        expected = max(0.0, v - i * 4.0)
        assert math.isclose(cap.terminal_voltage, expected,
                            rel_tol=1e-6, abs_tol=1e-6)

    @given(v=voltages)
    def test_energy_consistent_with_voltage(self, v):
        cap = IdealCapacitor(capacitance=0.045, voltage=v)
        assert math.isclose(cap.stored_energy, 0.5 * 0.045 * v * v,
                            rel_tol=1e-12)


class TestSupercapProperties:
    @given(v=voltages, i=currents, dt=small_dts)
    @settings(max_examples=60)
    def test_terminal_voltage_stays_nonnegative(self, v, i, dt):
        cap = make_supercap(v)
        for _ in range(5):
            assert cap.step(i, dt) >= 0.0

    @given(v=voltages, i=st.floats(min_value=1e-4, max_value=0.2),
           dt=small_dts)
    @settings(max_examples=60)
    def test_loaded_terminal_below_rest(self, v, i, dt):
        cap = make_supercap(v)
        cap.step(i, dt)
        assert cap.terminal_voltage < v

    @given(v=voltages, i=currents, dt=small_dts, steps=st.integers(1, 20))
    @settings(max_examples=60)
    def test_energy_never_created(self, v, i, dt, steps):
        cap = make_supercap(v)
        e0 = cap.stored_energy
        for _ in range(steps):
            cap.step(i, dt)
        assert cap.stored_energy <= e0 + 1e-12

    @given(v=voltages)
    def test_settle_preserves_charge(self, v):
        cap = make_supercap(v)
        cap.step(0.05, 0.005)
        q_before = (cap.c_main * cap._v_main + cap.c_redist * cap._v_redist
                    + cap.c_decoupling * cap._v_term)
        cap.settle()
        q_after = (cap.c_main + cap.c_redist + cap.c_decoupling) * \
            cap.terminal_voltage
        assert math.isclose(q_before, q_after, rel_tol=1e-9)

    @given(v=voltages, i=st.floats(min_value=1e-3, max_value=0.1))
    @settings(max_examples=40)
    def test_rebound_monotone_after_load_removal(self, v, i):
        cap = make_supercap(v)
        for _ in range(20):
            cap.step(i, 1e-3)
        last = cap.terminal_voltage
        for _ in range(50):
            now = cap.step(0.0, 1e-3)
            assert now >= last - 1e-12
            last = now

    @given(v=voltages, factor_c=st.floats(0.5, 1.0),
           factor_r=st.floats(1.0, 3.0))
    @settings(max_examples=40)
    def test_aging_preserves_rest_voltage(self, v, factor_c, factor_r):
        cap = make_supercap(v)
        aged = cap.aged(factor_c, factor_r)
        assert math.isclose(aged.open_circuit_voltage, v, rel_tol=1e-9)
