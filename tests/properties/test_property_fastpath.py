"""Property-based equivalence: the fast kernel versus the reference loop.

``PowerSystemSimulator(fast=True)`` must be indistinguishable from the
reference stepper on every simulation it accelerates — the kernel replays
the identical recurrence, so the results should agree to well inside the
1e-6 V / 1e-6 s budget (in practice bit-for-bit).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loads.trace import CurrentTrace
from repro.power.capacitor import IdealCapacitor
from repro.power.system import capybara_power_system
from repro.sim.engine import PowerSystemSimulator

V_TOL = 1e-6
T_TOL = 1e-6

segment_lists = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=0.06),
              st.floats(min_value=1e-3, max_value=0.1)),
    min_size=1, max_size=8,
)
start_voltages = st.floats(min_value=1.7, max_value=2.56)
esr_values = st.floats(min_value=0.1, max_value=8.0)
buffer_kinds = st.sampled_from(("two-branch", "decoupled", "ideal"))


def build_system(kind, esr, v_start):
    system = capybara_power_system(dc_esr=esr)
    if kind == "ideal":
        system.buffer = IdealCapacitor(capacitance=45e-3, esr=esr,
                                       voltage=v_start)
    elif kind == "decoupled":
        system.buffer = system.buffer.with_decoupling(800e-6)
    system.rest_at(v_start)
    return system


def run_both(kind, esr, v_start, segs, harvesting, settle):
    trace = CurrentTrace(segs)
    results = []
    for fast in (False, True):
        system = build_system(kind, esr, v_start)
        sim = PowerSystemSimulator(system, fast=fast)
        result = sim.run_trace(trace, harvesting=harvesting,
                               settle_after=settle)
        results.append((result, sim.time, system.buffer.terminal_voltage))
    return results


class TestFastPathEquivalence:
    @given(kind=buffer_kinds, esr=esr_values, v=start_voltages,
           segs=segment_lists, harvesting=st.booleans(),
           settle=st.sampled_from((0.0, 0.05)))
    @settings(max_examples=60, deadline=None)
    def test_fast_matches_reference(self, kind, esr, v, segs, harvesting,
                                    settle):
        (ref, ref_time, ref_v), (fast, fast_time, fast_v) = run_both(
            kind, esr, v, segs, harvesting, settle)
        assert abs(fast.v_min - ref.v_min) <= V_TOL
        assert abs(fast.v_final - ref.v_final) <= V_TOL
        assert fast.browned_out == ref.browned_out
        if ref.brown_out_time is None:
            assert fast.brown_out_time is None
        else:
            assert abs(fast.brown_out_time - ref.brown_out_time) <= T_TOL
        assert abs(fast_time - ref_time) <= T_TOL
        assert abs(fast_v - ref_v) <= V_TOL

    @given(kind=buffer_kinds, esr=esr_values, v=start_voltages,
           segs=segment_lists)
    @settings(max_examples=30, deadline=None)
    def test_fast_matches_reference_bit_exact(self, kind, esr, v, segs):
        """The kernel replays the same float ops — equality, not tolerance."""
        (ref, ref_time, ref_v), (fast, fast_time, fast_v) = run_both(
            kind, esr, v, segs, harvesting=False, settle=0.0)
        assert fast.v_min == ref.v_min
        assert fast.v_final == ref.v_final
        assert fast.browned_out == ref.browned_out
        assert fast.brown_out_time == ref.brown_out_time
        assert fast.energy_from_buffer == ref.energy_from_buffer
        assert fast_time == ref_time
        assert fast_v == ref_v
