"""Property-based tests on the V_safe charge model."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import (
    TaskDemand,
    energy_only_feasible,
    sequence_feasible,
    vsafe_multi,
    vsafe_multi_additive,
    vsafe_single,
)

V_OFF = 1.6

demand_st = st.builds(
    TaskDemand,
    energy_v2=st.floats(min_value=0.0, max_value=1.0),
    v_delta=st.floats(min_value=0.0, max_value=0.5),
)
sequence_st = st.lists(demand_st, min_size=0, max_size=6)


class TestVsafeProperties:
    @given(demand=demand_st)
    def test_single_at_least_v_off_plus_drop(self, demand):
        v = vsafe_single(demand, V_OFF)
        assert v >= V_OFF + demand.v_delta - 1e-12

    @given(demands=sequence_st)
    def test_multi_at_least_v_off(self, demands):
        assert vsafe_multi(demands, V_OFF) >= V_OFF - 1e-12

    @given(demands=sequence_st)
    def test_multi_at_least_any_single(self, demands):
        """A sequence cannot require less than its own first task."""
        if demands:
            assert vsafe_multi(demands, V_OFF) >= \
                vsafe_single(demands[0], V_OFF) - 1e-9

    @given(demands=sequence_st, extra=demand_st)
    def test_appending_a_task_never_lowers_requirement(self, demands, extra):
        base = vsafe_multi(demands, V_OFF)
        assert vsafe_multi(demands + [extra], V_OFF) >= base - 1e-12

    @given(demands=sequence_st)
    def test_additive_dominates_exact(self, demands):
        assert vsafe_multi_additive(demands, V_OFF) >= \
            vsafe_multi(demands, V_OFF) - 1e-9

    @given(demands=sequence_st)
    def test_energy_covered(self, demands):
        """Starting at V_safe_multi leaves at least V_off after paying
        every task's energy in an ideal capacitor."""
        v = vsafe_multi(demands, V_OFF)
        total_v2 = sum(d.energy_v2 for d in demands)
        v_end_sq = v * v - total_v2
        assert v_end_sq >= V_OFF ** 2 - 1e-9

    @given(demands=sequence_st)
    @settings(max_examples=60)
    def test_suffix_invariant(self, demands):
        """After each task's ideal energy drop, the remaining voltage
        still satisfies the remaining suffix's requirement."""
        v = vsafe_multi(demands, V_OFF)
        for i, demand in enumerate(demands):
            assert v >= vsafe_multi(demands[i:], V_OFF) - 1e-9
            v = math.sqrt(max(0.0, v * v - demand.energy_v2))

    @given(demands=sequence_st, v=st.floats(min_value=1.6, max_value=3.0))
    def test_theorem1_stricter_than_energy_only(self, demands, v):
        if sequence_feasible(demands, v, V_OFF):
            assert energy_only_feasible(demands, v, V_OFF)

    @given(demands=sequence_st)
    def test_deterministic(self, demands):
        assert vsafe_multi(demands, V_OFF) == vsafe_multi(demands, V_OFF)
