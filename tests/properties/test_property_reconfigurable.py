"""Property suite for the reconfigurable energy buffer.

The electrical invariants the bank axis leans on, checked over random
bank sets, random rest voltages, and random configuration walks:

* switching conserves charge (the merge voltage is the capacitance-
  weighted mean) and never creates energy — the equalization loss is
  non-negative and bounded by the pre-merge spread;
* aggregate ESR is monotone in the active set (adding a bank never
  raises the group's series resistance) and capacitance is additive;
* parked banks are electrically isolated — any amount of stepping on
  the active group leaves their rest voltages bit-identical;
* configuration walks are deterministic: the same walk from the same
  state lands on bitwise-identical electrical state regardless of dict
  insertion order (the sorted-accumulation contract replay depends on).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.bank import CapacitorBank
from repro.power.reconfigurable import ReconfigurableBuffer

NAMES = ("a", "b", "c", "d")

bank_sets = st.lists(
    st.tuples(st.floats(min_value=2e-3, max_value=50e-3),
              st.floats(min_value=0.5, max_value=20.0)),
    min_size=2, max_size=4,
).map(lambda rows: {
    NAMES[i]: CapacitorBank(capacitance=cap, esr=esr,
                            leakage_current=5e-9, volume_mm3=1.0,
                            part_count=1, max_voltage=2.7)
    for i, (cap, esr) in enumerate(rows)
})
rest_voltages = st.floats(min_value=0.5, max_value=2.6)


def _subsets(names):
    names = sorted(names)
    return st.lists(st.sampled_from(names), min_size=1,
                    max_size=len(names)).map(lambda s: tuple(sorted(set(s))))


@st.composite
def buffer_and_walk(draw):
    banks = draw(bank_sets)
    walk = draw(st.lists(_subsets(banks), min_size=1, max_size=6))
    v0 = draw(rest_voltages)
    return banks, walk, v0


class TestChargeAndEnergy:

    @given(data=buffer_and_walk(),
           per_bank_v=st.lists(rest_voltages, min_size=4, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_merge_is_weighted_mean_and_lossy(self, data, per_bank_v):
        banks, walk, _ = data
        buffer = ReconfigurableBuffer(banks, (sorted(banks)[0],))
        # Rest every bank at its own voltage (public API: activate alone,
        # rest, move on — the last configure parks the rested bank).
        for name, v in zip(sorted(banks), per_bank_v):
            buffer.configure((name,))
            buffer.reset(v)
        rested = {name: v for name, v in zip(sorted(banks), per_bank_v)}
        active = buffer.config_id

        for config in walk:
            members = sorted(config)
            # What the parked/active banks rest at just before the switch.
            pre = dict(rested)
            pre.update({n: buffer.open_circuit_voltage for n in active})
            charge = sum(banks[n].capacitance * pre[n] for n in members)
            cap = sum(banks[n].capacitance for n in members)
            e_before = sum(0.5 * banks[n].capacitance * pre[n] ** 2
                           for n in members)
            buffer.configure(config)
            # Charge conservation: the new rail is the weighted mean.
            assert buffer.open_circuit_voltage == \
                pytest_approx(charge / cap)
            # Equalization never creates energy in the merged set.
            e_after = 0.5 * cap * buffer.open_circuit_voltage ** 2
            assert e_after <= e_before + 1e-12
            rested = pre
            active = buffer.config_id

    @given(banks=bank_sets, v=rest_voltages)
    @settings(max_examples=40, deadline=None)
    def test_equal_voltages_merge_losslessly(self, banks, v):
        buffer = ReconfigurableBuffer(banks, tuple(sorted(banks)))
        buffer.rest_all(v)
        for name in sorted(banks):
            buffer.configure((name,))
            assert buffer.open_circuit_voltage == pytest_approx(v)
        buffer.configure(tuple(sorted(banks)))
        assert buffer.open_circuit_voltage == pytest_approx(v)


class TestGroupComposition:

    @given(banks=bank_sets)
    @settings(max_examples=40, deadline=None)
    def test_esr_monotone_capacitance_additive(self, banks):
        names = sorted(banks)
        buffer = ReconfigurableBuffer(banks, (names[0],))
        grown = []
        for k in range(1, len(names) + 1):
            buffer.configure(tuple(names[:k]))
            grown.append((buffer.total_capacitance, buffer.r_esr))
        for (c_small, r_small), (c_big, r_big) in zip(grown, grown[1:]):
            assert c_big > c_small
            assert r_big <= r_small + 1e-15
        # The full group's capacitance is the bank sum plus decoupling.
        expected = sum(b.capacitance for b in banks.values()) \
            + buffer.c_decoupling
        assert grown[-1][0] == pytest_approx(expected)


class TestIsolationAndDeterminism:

    @given(data=buffer_and_walk(),
           loads=st.lists(st.floats(min_value=0.0, max_value=0.03),
                          min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_parked_banks_are_isolated(self, data, loads):
        banks, walk, v0 = data
        buffer = ReconfigurableBuffer(banks, walk[-1])
        buffer.rest_all(v0)
        parked = [n for n in banks if n not in buffer.config_id]
        before = {n: buffer._idle_voltage[n] for n in parked}
        for i_load in loads:
            buffer.step(i_load, 1e-3)
        for name in parked:
            assert buffer._idle_voltage[name] == before[name]
        # And the energy they hold is still visible in stored_energy.
        parked_e = sum(0.5 * banks[n].capacitance * before[n] ** 2
                       for n in parked)
        assert buffer.stored_energy >= parked_e - 1e-12

    @given(data=buffer_and_walk())
    @settings(max_examples=40, deadline=None)
    def test_walks_are_bitwise_deterministic(self, data):
        banks, walk, v0 = data
        # Same physical banks, reversed dict insertion order: the sorted
        # accumulation contract says iteration order must not leak into
        # the floats.
        reversed_banks = dict(reversed(list(banks.items())))
        a = ReconfigurableBuffer(banks, (sorted(banks)[0],))
        b = ReconfigurableBuffer(reversed_banks, (sorted(banks)[0],))
        for buf in (a, b):
            buf.rest_all(v0)
        for config in walk:
            a.configure(config)
            b.configure(config)
            assert a.terminal_voltage == b.terminal_voltage
            assert a.open_circuit_voltage == b.open_circuit_voltage
            assert a.total_capacitance == b.total_capacitance
            assert a.r_esr == b.r_esr
        assert a.config_key() == b.config_key()

    @given(banks=bank_sets, v=rest_voltages,
           cap_f=st.floats(min_value=0.5, max_value=0.95),
           esr_f=st.floats(min_value=1.1, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_aged_scales_parts_and_preserves_charge_state(self, banks, v,
                                                          cap_f, esr_f):
        buffer = ReconfigurableBuffer(banks, tuple(sorted(banks)[:1]))
        buffer.rest_all(v)
        old = buffer.aged(cap_f, esr_f)
        assert old.config_id == buffer.config_id
        for name in banks:
            assert old.bank(name).capacitance == \
                pytest_approx(banks[name].capacitance * cap_f)
            assert old.bank(name).esr == pytest_approx(banks[name].esr
                                                       * esr_f)
        assert old.open_circuit_voltage == \
            pytest_approx(buffer.open_circuit_voltage)
        for name in banks:
            if name not in buffer.config_id:
                assert old._idle_voltage[name] == \
                    buffer._idle_voltage[name]


def pytest_approx(value, rel=1e-9):
    import pytest

    return pytest.approx(value, rel=rel, abs=1e-12)


def test_module_self_check():
    # The helpers above use floats heavily; keep a plain sanity anchor.
    assert math.isclose(0.1 + 0.2, 0.3, rel_tol=1e-9)
