"""Property-based tests on the CurrentTrace algebra."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loads.trace import CurrentTrace

segment_st = st.tuples(
    st.floats(min_value=0.0, max_value=0.1),    # current
    st.floats(min_value=1e-3, max_value=0.5),   # duration
)
segments_st = st.lists(segment_st, min_size=1, max_size=10)


class TestTraceProperties:
    @given(segments=segments_st)
    def test_duration_is_sum_of_inputs(self, segments):
        trace = CurrentTrace(segments)
        assert math.isclose(trace.duration,
                            sum(d for _, d in segments), rel_tol=1e-9)

    @given(segments=segments_st)
    def test_charge_is_sum_of_products(self, segments):
        trace = CurrentTrace(segments)
        assert math.isclose(trace.charge,
                            sum(c * d for c, d in segments),
                            rel_tol=1e-9, abs_tol=1e-15)

    @given(segments=segments_st)
    def test_peak_bounds_mean(self, segments):
        trace = CurrentTrace(segments)
        assert trace.mean_current <= trace.peak_current + 1e-15

    @given(a=segments_st, b=segments_st)
    def test_concat_adds_charge_and_duration(self, a, b):
        ta, tb = CurrentTrace(a), CurrentTrace(b)
        combined = ta.concat(tb)
        assert math.isclose(combined.duration, ta.duration + tb.duration,
                            rel_tol=1e-9)
        assert math.isclose(combined.charge, ta.charge + tb.charge,
                            rel_tol=1e-9, abs_tol=1e-15)

    @given(segments=segments_st,
           k=st.floats(min_value=0.1, max_value=10.0))
    def test_current_scaling_scales_charge_linearly(self, segments, k):
        trace = CurrentTrace(segments)
        assert math.isclose(trace.scaled(current_factor=k).charge,
                            k * trace.charge, rel_tol=1e-9, abs_tol=1e-15)

    @given(segments=segments_st)
    @settings(max_examples=50)
    def test_sampling_preserves_charge(self, segments):
        trace = CurrentTrace(segments)
        rate = max(1000.0, 20.0 / min(d for _, d in trace.segments()))
        samples = trace.sampled(rate)
        charge = samples.sum() / rate
        assert math.isclose(charge, trace.charge,
                            rel_tol=0.05, abs_tol=1e-9)

    @given(segments=segments_st)
    def test_largest_pulse_at_most_duration(self, segments):
        trace = CurrentTrace(segments)
        assert trace.largest_pulse_width() <= trace.duration + 1e-12

    @given(segments=segments_st)
    def test_canonical_equality_roundtrip(self, segments):
        trace = CurrentTrace(segments)
        rebuilt = CurrentTrace(trace.segments())
        assert trace == rebuilt
        assert hash(trace) == hash(rebuilt)
