"""Shrinker: minimization, determinism, and the evaluation budget."""

import pytest

from repro.loads.trace import CurrentTrace
from repro.verify.shrink import shrink_trace


def _total_charge(trace):
    return sum(c * d for c, d in trace.segments())


class TestShrinkTrace:
    def test_result_still_fails(self):
        trace = CurrentTrace([(0.030, 0.010)] + [(0.001, 0.005)] * 9)
        still_fails = lambda t: max(c for c, _ in t.segments()) >= 0.025
        shrunk = shrink_trace(trace, still_fails)
        assert still_fails(shrunk)

    def test_removes_irrelevant_segments(self):
        """Only the hot pulse matters to the predicate; the filler goes."""
        trace = CurrentTrace([(0.001, 0.005)] * 8 + [(0.030, 0.010)]
                             + [(0.001, 0.005)] * 8)
        shrunk = shrink_trace(
            trace, lambda t: max(c for c, _ in t.segments()) >= 0.025)
        assert len(list(shrunk.segments())) == 1

    def test_reduces_magnitudes(self):
        trace = CurrentTrace([(0.040, 0.020)])
        shrunk = shrink_trace(trace, lambda t: _total_charge(t) >= 1e-5)
        assert _total_charge(shrunk) < _total_charge(trace)
        assert _total_charge(shrunk) >= 1e-5

    def test_deterministic(self):
        trace = CurrentTrace([(0.002 * (i % 5 + 1), 0.003) for i in range(12)])
        still_fails = lambda t: _total_charge(t) >= 5e-5
        first = shrink_trace(trace, still_fails)
        second = shrink_trace(trace, still_fails)
        assert list(first.segments()) == list(second.segments())

    def test_respects_evaluation_budget(self):
        calls = []

        def still_fails(t):
            calls.append(1)
            return True

        trace = CurrentTrace([(0.010, 0.010)] * 16)
        shrink_trace(trace, still_fails, max_evaluations=7)
        assert len(calls) <= 7

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            shrink_trace(CurrentTrace([(0.01, 0.01)]), lambda t: True,
                         max_evaluations=0)
