"""Repro cases: JSON round-trip fidelity and replay."""

import pytest

from repro.verify.cases import ReproCase, load_case, save_case
from repro.verify.generators import random_system_spec, random_trace, \
    trace_segments, trial_rng
from repro.verify.oracle import Verdict


def _sample_case(seed=0, index=0, estimator="energy-direct"):
    rng = trial_rng(seed, index)
    spec = random_system_spec(rng)
    trace = random_trace(rng, spec)
    return ReproCase.build(estimator, spec, trace,
                           tolerance=0.002, conservative_margin=0.25,
                           seed=seed, index=index)


class TestRoundTrip:
    def test_save_load_is_bit_faithful(self, tmp_path):
        case = _sample_case()
        path = tmp_path / "case.json"
        save_case(case, path)
        loaded = load_case(path)
        assert loaded == case
        assert loaded.to_dict() == case.to_dict()

    def test_trace_property_rebuilds_segments(self):
        case = _sample_case()
        assert trace_segments(case.trace) == case.segments

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            ReproCase.from_dict({"format": "something-else"})
        good = _sample_case().to_dict()
        good["version"] = 99
        with pytest.raises(ValueError):
            ReproCase.from_dict(good)


class TestReplay:
    def test_replay_runs_the_recorded_check(self):
        result = _sample_case().replay()
        assert result.verdict in tuple(Verdict)
        assert result.estimator   # display name resolved via the registry

    def test_energy_only_case_replays_unsound(self, tmp_path):
        """The known-unsound baseline on the seed-0 trial convicts — and
        keeps convicting after a disk round trip."""
        case = _sample_case(estimator="energy-direct")
        assert case.replay().verdict is Verdict.UNSOUND
        path = tmp_path / "case.json"
        save_case(case, path)
        assert load_case(path).replay().verdict is Verdict.UNSOUND
