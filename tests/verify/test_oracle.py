"""Differential oracle verdicts, driven by stub estimators.

A stub that answers a fixed voltage lets each verdict class be reached
on purpose: at ground truth (SOUND), far below it (UNSOUND), pinned at
V_high on a light load (OVERLY_CONSERVATIVE), and on a monster load
(INFEASIBLE).
"""

import math
from types import SimpleNamespace

import pytest

from repro.harness.ground_truth import find_true_vsafe
from repro.loads.synthetic import uniform_load
from repro.loads.trace import CurrentTrace
from repro.verify.oracle import Verdict, differential_check


class _FixedEstimator:
    """Answers the same V_safe for every load."""

    def __init__(self, v_safe, name="stub"):
        self._v = v_safe
        self.name = name

    def estimate(self, system, trace):
        return SimpleNamespace(v_safe=self._v)


@pytest.fixture()
def trace():
    return uniform_load(0.050, 0.010).trace


class TestVerdicts:
    def test_truth_itself_is_sound(self, system, trace):
        truth = find_true_vsafe(system, trace, tolerance=0.002)
        result = differential_check(system, trace,
                                    _FixedEstimator(truth.v_safe))
        assert result.verdict is Verdict.SOUND
        assert not result.browned_out
        assert result.margin == pytest.approx(0.0, abs=1e-9)

    def test_far_below_truth_is_unsound(self, system, trace):
        result = differential_check(system, trace, _FixedEstimator(1.7))
        assert result.verdict is Verdict.UNSOUND
        assert result.browned_out
        assert result.margin < -0.002

    def test_within_tolerance_bracket_never_convicts(self, system, trace):
        """A brown-out from inside the search bracket is the oracle's own
        resolution limit, not evidence against the estimator."""
        truth = find_true_vsafe(system, trace, tolerance=0.002)
        result = differential_check(
            system, trace, _FixedEstimator(truth.v_safe - 0.0015),
            truth, tolerance=0.002,
        )
        assert result.verdict is not Verdict.UNSOUND

    def test_vhigh_on_light_load_is_overly_conservative(self, system):
        light = uniform_load(0.003, 0.005).trace
        result = differential_check(
            system, light, _FixedEstimator(system.monitor.v_high))
        assert result.verdict is Verdict.OVERLY_CONSERVATIVE
        assert result.margin_fraction > 0.25

    def test_infeasible_load(self, system):
        monster = CurrentTrace.constant(0.050, 3.0)
        result = differential_check(system, monster, _FixedEstimator(2.5))
        assert result.verdict is Verdict.INFEASIBLE
        assert math.isnan(result.margin)

    def test_shared_truth_matches_recomputed(self, system, trace):
        truth = find_true_vsafe(system, trace, tolerance=0.002)
        stub = _FixedEstimator(2.5)
        shared = differential_check(system, trace, stub, truth,
                                    tolerance=0.002)
        recomputed = differential_check(system, trace, stub,
                                        tolerance=0.002)
        assert shared == recomputed

    def test_conservative_margin_validation(self, system, trace):
        with pytest.raises(ValueError):
            differential_check(system, trace, _FixedEstimator(2.0),
                               conservative_margin=0.0)

    def test_result_serializes(self, system, trace):
        result = differential_check(system, trace, _FixedEstimator(2.5))
        data = result.to_dict()
        assert data["estimator"] == "stub"
        assert data["verdict"] in {v.value for v in Verdict}
