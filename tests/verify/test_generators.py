"""Seeded generation: determinism, serializability, and regime bounds."""

import numpy as np
import pytest

from repro.verify.generators import (
    _MIN_SEGMENT_WIDTH,
    SystemSpec,
    bank_rng,
    env_rng,
    random_bank_scenario,
    random_env_spec,
    random_system_spec,
    random_trace,
    trace_from_segments,
    trace_segments,
    trial_rng,
)


class TestTrialRng:
    def test_same_tuple_same_stream(self):
        a = trial_rng(7, 3).random(8)
        b = trial_rng(7, 3).random(8)
        assert np.array_equal(a, b)

    def test_different_index_different_stream(self):
        a = trial_rng(7, 3).random(8)
        b = trial_rng(7, 4).random(8)
        assert not np.array_equal(a, b)


class TestRandomSystemSpec:
    def test_deterministic_per_trial(self):
        assert (random_system_spec(trial_rng(0, 11))
                == random_system_spec(trial_rng(0, 11)))

    def test_rails_inside_adc_reference(self):
        """V_high must stay visible to the 2.56 V full-scale profiling ADCs."""
        for index in range(40):
            spec = random_system_spec(trial_rng(1, index))
            assert spec.v_off < spec.v_high <= 2.56
            assert spec.v_out < spec.v_high

    def test_builds_characterizable_system(self):
        spec = random_system_spec(trial_rng(2, 0))
        system = spec.build()
        model = system.characterize()
        assert model.v_off == pytest.approx(spec.v_off)
        assert model.v_high == pytest.approx(spec.v_high)

    def test_both_kinds_generated(self):
        kinds = {random_system_spec(trial_rng(3, i)).kind for i in range(40)}
        assert kinds == {"fixed", "reconfigurable"}

    def test_reconfigurable_model_capacitance_tracks_active_banks(self):
        """A reconfigurable spec must not claim an unrelated datasheet C —
        the model's capacitance comes from the live bank set."""
        for index in range(60):
            spec = random_system_spec(trial_rng(4, index))
            if spec.kind != "reconfigurable":
                continue
            active_c = sum(c for name, c, _ in spec.banks
                           if name in spec.active)
            model = spec.build().characterize()
            # The rail carries the active banks plus the decoupling cap.
            assert model.capacitance == pytest.approx(
                active_c + spec.c_decoupling)
            break
        else:  # pragma: no cover - 1/4 odds per draw make this unreachable
            pytest.fail("no reconfigurable spec in 60 draws")

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemSpec(kind="nonsense", datasheet_capacitance=0.05,
                       capacitance_tolerance=0.0, dc_esr=1.0,
                       c_decoupling=1e-4, leakage_current=1e-8,
                       v_off=1.6, v_high=2.5, v_out=2.49,
                       redist_fraction=0.1, eta_base=0.85, eta_slope=0.05,
                       eta_curvature=0.015, eta_v_ref=2.0, input_eta=0.8)

    def test_round_trips_through_dict(self):
        for index in (0, 5, 9):
            spec = random_system_spec(trial_rng(5, index))
            assert SystemSpec.from_dict(spec.to_dict()) == spec

    def test_reconfigurable_specs_stay_in_the_fixed_regime(self):
        """The regression the generator branch fixed: reconfigurable
        draws must come from the same bounded electrical regime as fixed
        buffers — rails inside the ADC reference, bank parts inside the
        documented ranges, a canonical (sorted, non-empty) active set."""
        seen = 0
        for index in range(200):
            spec = random_system_spec(trial_rng(8, index))
            if spec.kind != "reconfigurable":
                continue
            seen += 1
            assert spec.v_off < spec.v_high <= 2.56
            assert 2 <= len(spec.banks) <= 3
            for name, capacitance, esr in spec.banks:
                assert 5e-3 <= capacitance <= 40e-3
                assert 1.0 <= esr <= 6.0
            assert spec.active
            assert spec.active == tuple(sorted(set(spec.active)))
            assert set(spec.active) <= {n for n, _, _ in spec.banks}
            assert 0.0 <= spec.switch_resistance <= 0.2
            # And the spec is actually simulable end to end.
            if seen <= 3:
                model = spec.build().characterize()
                assert model.capacitance > 0
        assert seen >= 20  # ~1/4 odds per draw


class TestRandomBankScenario:
    def test_deterministic_per_trial(self):
        spec = random_system_spec(trial_rng(0, 2))
        a = random_bank_scenario(bank_rng(0, 2), spec)
        b = random_bank_scenario(bank_rng(0, 2), spec)
        assert a == b

    def test_bank_stream_is_independent_of_trial_stream(self):
        assert bank_rng(9, 2).random(4).tolist() \
            != trial_rng(9, 2).random(4).tolist()

    def test_live_config_is_strict_subset_of_stale(self):
        for index in range(20):
            spec = random_system_spec(trial_rng(1, index))
            live, stale = random_bank_scenario(bank_rng(1, index), spec)
            assert live.kind == "reconfigurable"
            names = sorted(n for n, _, _ in live.banks)
            assert tuple(stale) == tuple(names)
            assert set(live.active) < set(stale)
            assert live.active  # never empty

    def test_fixed_specs_convert_without_touching_their_draws(self):
        for index in range(40):
            spec = random_system_spec(trial_rng(2, index))
            if spec.kind != "fixed":
                continue
            live, _stale = random_bank_scenario(bank_rng(2, index), spec)
            assert live.kind == "reconfigurable"
            # the electrical draws the trial already made are untouched
            assert live.v_off == spec.v_off
            assert live.v_high == spec.v_high
            assert live.eta_base == spec.eta_base
            assert live.c_decoupling == spec.c_decoupling
            break
        else:  # pragma: no cover
            pytest.fail("no fixed spec in 40 draws")

    def test_stale_and_live_specs_both_build(self):
        import dataclasses
        spec = random_system_spec(trial_rng(3, 0))
        live, stale = random_bank_scenario(bank_rng(3, 0), spec)
        live_model = live.build().characterize()
        stale_model = dataclasses.replace(
            live, active=tuple(stale)).build().characterize()
        # the stale table always claims at least the live capacitance
        assert stale_model.capacitance > live_model.capacitance


class TestRandomTrace:
    def test_deterministic_per_trial(self):
        rng_a = trial_rng(0, 21)
        trace_a = random_trace(rng_a, random_system_spec(rng_a))
        rng_b = trial_rng(0, 21)
        trace_b = random_trace(rng_b, random_system_spec(rng_b))
        assert list(trace_a.segments()) == list(trace_b.segments())

    def test_segment_widths_floored(self):
        """Every pulse must span the ISR's 1 ms sample period — sub-period
        pulses are the documented Figure 10 blind spot, out of regime."""
        for index in range(30):
            rng = trial_rng(6, index)
            trace = random_trace(rng, random_system_spec(rng))
            assert all(duration >= _MIN_SEGMENT_WIDTH - 1e-15
                       for _, duration in trace.segments())

    def test_segments_round_trip(self):
        rng = trial_rng(7, 0)
        trace = random_trace(rng, random_system_spec(rng))
        rebuilt = trace_from_segments(trace_segments(trace))
        assert list(rebuilt.segments()) == list(trace.segments())


class TestRandomEnvSpec:
    def test_deterministic_per_trial(self):
        for index in (0, 3, 11):
            assert random_env_spec(env_rng(4, index)) \
                == random_env_spec(env_rng(4, index))

    def test_env_stream_is_independent_of_trial_stream(self):
        # Drawing the environment must never consume the trial stream:
        # the same (seed, index) yields different generators.
        assert env_rng(9, 2).random(4).tolist() \
            != trial_rng(9, 2).random(4).tolist()

    def test_specs_are_valid_and_varied(self):
        models = set()
        mppts = set()
        for index in range(24):
            spec = random_env_spec(env_rng(0, index))
            models.add(spec.model)
            mppts.add(spec.mppt)
            assert 30.0 <= spec.duration <= 90.0
            assert 0.0 < spec.peak_power <= 8e-3
        assert len(models) == 3
        assert len(mppts) == 3

    def test_specs_lower_cleanly(self):
        for index in range(4):
            trace = random_env_spec(env_rng(1, index)).lower()
            assert np.all(trace.powers >= 0.0)
