"""Replay round-trips: a persisted case re-runs to the identical verdict.

Both case formats (``repro verify --replay`` / ``repro chaos --replay``)
promise the same thing: a trial is a pure function of its recorded
inputs, so save → load → replay must reproduce the classification of the
in-memory original bit for bit. These tests build cases from
deterministic parameters (no campaign needed), push them through disk,
and compare the full replay result — not just the verdict name.
"""

from repro.resilience.cases import (
    ChaosCase,
    load_chaos_case,
    save_chaos_case,
)
from repro.verify.cases import ReproCase, load_case, save_case
from repro.verify.generators import (
    random_bank_scenario,
    random_system_spec,
    random_trace,
    trace_segments,
    trial_rng,
)
from repro.verify.oracle import Verdict


def _verify_case(estimator: str, seed=0, index=0) -> ReproCase:
    rng = trial_rng(seed, index)
    spec = random_system_spec(rng)
    trace = random_trace(rng, spec)
    return ReproCase(
        estimator=estimator,
        system=spec,
        segments=trace_segments(trace),
        tolerance=0.002,
        conservative_margin=0.25,
        seed=seed,
        index=index,
    )


def _chaos_case(estimator: str, injector: dict, seed=7,
                index=0) -> ChaosCase:
    return ChaosCase(
        seed=seed,
        index=index,
        app="sense-store",
        estimator=estimator,
        injector=injector,
        horizon=20.0,
        stall_tolerance=6,
        dropout_grace=5.0,
        stuck_limit=3,
    )


class TestVerifyReplayRoundTrip:
    def test_unsound_classification_survives_disk(self, tmp_path):
        case = _verify_case("energy-direct")
        direct = case.replay()
        assert direct.verdict is Verdict.UNSOUND   # the known-bad baseline

        path = tmp_path / "case.json"
        save_case(case, path)
        replayed = load_case(path).replay()
        assert replayed.to_dict() == direct.to_dict()

    def test_sound_classification_survives_disk(self, tmp_path):
        case = _verify_case("culpeo-pg")
        direct = case.replay()
        assert direct.verdict is not Verdict.UNSOUND

        path = tmp_path / "case.json"
        save_case(case, path)
        replayed = load_case(path).replay()
        assert replayed.to_dict() == direct.to_dict()

    def test_json_document_is_stable_across_round_trips(self, tmp_path):
        case = _verify_case("energy-direct")
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_case(case, first)
        save_case(load_case(first), second)
        assert first.read_text() == second.read_text()


def _bank_case(estimator: str, seed=0, index=0) -> ReproCase:
    """A deterministic bank-axis trial: live spec on a strict-subset
    configuration, the full bank set recorded as the stale pre-switch
    configuration (what the convicted baseline characterized)."""
    rng = trial_rng(seed, index)
    spec = random_system_spec(rng)
    trace = random_trace(rng, spec)
    live, stale = random_bank_scenario(rng, spec)
    return ReproCase(
        estimator=estimator,
        system=live,
        segments=trace_segments(trace),
        tolerance=0.002,
        conservative_margin=0.25,
        seed=seed,
        index=index,
        bank_axis=True,
        stale_active=stale,
    )


class TestBankAxisReplayRoundTrip:
    def test_stale_config_conviction_survives_disk(self, tmp_path):
        # The configuration-unaware baseline is the bank axis's canonical
        # unsound estimator; scan a few indices for a deterministic hit.
        unsound = None
        for index in range(8):
            case = _bank_case("stale-config", seed=1, index=index)
            if case.replay().verdict is Verdict.UNSOUND:
                unsound = case
                break
        assert unsound is not None, "expected an unsound index in range(8)"

        direct = unsound.replay()
        path = tmp_path / "bank.json"
        save_case(unsound, path)
        loaded = load_case(path)
        assert loaded.bank_axis
        assert loaded.stale_active == unsound.stale_active
        assert loaded.replay().to_dict() == direct.to_dict()

    def test_sound_estimator_on_bank_case_survives_disk(self, tmp_path):
        case = _bank_case("culpeo-pg", seed=1, index=0)
        direct = case.replay()
        assert direct.verdict is not Verdict.UNSOUND

        path = tmp_path / "bank.json"
        save_case(case, path)
        assert load_case(path).replay().to_dict() == direct.to_dict()

    def test_bank_json_document_is_stable_across_round_trips(
            self, tmp_path):
        case = _bank_case("stale-config", seed=1, index=0)
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_case(case, first)
        save_case(load_case(first), second)
        assert first.read_text() == second.read_text()

    def test_pre_bank_documents_still_load(self, tmp_path):
        # Cases persisted before the bank axis existed have neither the
        # bank_axis nor the stale_active key; they must load (axis off)
        # and replay exactly as a non-bank case does.
        import json
        case = _verify_case("energy-direct", seed=0, index=0)
        document = case.to_dict()
        del document["bank_axis"]
        del document["stale_active"]
        path = tmp_path / "old.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        loaded = load_case(path)
        assert not loaded.bank_axis
        assert loaded.stale_active == ()
        assert loaded.replay().to_dict() == case.replay().to_dict()


class TestChaosReplayRoundTrip:
    def test_safe_trial_replays_identically(self, tmp_path):
        case = _chaos_case("culpeo-isr", {"injector": "none"})
        direct = case.replay()
        assert not direct.unsafe

        path = tmp_path / "chaos.json"
        save_chaos_case(case, path)
        replayed = load_chaos_case(path).replay()
        assert replayed.outcome == direct.outcome
        assert replayed.details == direct.details
        assert (replayed.app, replayed.estimator, replayed.injector) == \
            (direct.app, direct.estimator, direct.injector)

    def test_unsafe_trial_replays_identically(self, tmp_path):
        # The energy baseline under ESR aging is the campaign's canonical
        # unsafe combination; scan a few indices for a deterministic hit.
        injector = {"injector": "esr-aging", "params": {}}
        unsafe = None
        for index in range(6):
            case = _chaos_case("energy-v", injector, seed=3, index=index)
            if case.replay().unsafe:
                unsafe = case
                break
        assert unsafe is not None, "expected an unsafe index in range(6)"

        direct = unsafe.replay()
        path = tmp_path / "chaos.json"
        save_chaos_case(unsafe, path)
        replayed = load_chaos_case(path).replay()
        assert replayed.outcome == direct.outcome
        assert replayed.unsafe
        assert replayed.details == direct.details

    def test_json_document_is_stable_across_round_trips(self, tmp_path):
        case = _chaos_case("culpeo-isr", {"injector": "none"})
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_chaos_case(case, first)
        save_chaos_case(load_chaos_case(first), second)
        assert first.read_text() == second.read_text()

    def test_env_axis_flag_survives_disk(self, tmp_path):
        import dataclasses
        case = dataclasses.replace(
            _chaos_case("culpeo-isr", {"injector": "none"}),
            env_axis=True)
        path = tmp_path / "chaos.json"
        save_chaos_case(case, path)
        loaded = load_chaos_case(path)
        assert loaded.env_axis
        # The replay regenerates the recorded environment: same outcome
        # and details as the in-memory original.
        direct = case.replay()
        replayed = loaded.replay()
        assert replayed.outcome == direct.outcome
        assert replayed.details == direct.details

    def test_pre_env_documents_still_load(self, tmp_path):
        # Cases persisted before the environment axis existed have no
        # env_axis key; they must load (and replay dark) unchanged.
        import json
        case = _chaos_case("culpeo-isr", {"injector": "none"})
        path = tmp_path / "old.json"
        document = case.to_dict()
        del document["env_axis"]
        path.write_text(json.dumps(document), encoding="utf-8")
        loaded = load_chaos_case(path)
        assert not loaded.env_axis

    def test_bank_axis_flag_survives_disk(self, tmp_path):
        import dataclasses
        case = dataclasses.replace(
            _chaos_case("culpeo-isr", {"injector": "none"}),
            bank_axis=True)
        path = tmp_path / "chaos.json"
        save_chaos_case(case, path)
        loaded = load_chaos_case(path)
        assert loaded.bank_axis
        # The replay rebuilds the same reconfigurable plant and
        # configuration-aware scheduler: same outcome and details.
        direct = case.replay()
        replayed = loaded.replay()
        assert replayed.outcome == direct.outcome
        assert replayed.details == direct.details

    def test_bank_injector_case_replays_identically(self, tmp_path):
        import dataclasses
        case = dataclasses.replace(
            _chaos_case("culpeo-isr",
                        {"injector": "bank-switch-stuck", "params": {}}),
            bank_axis=True)
        direct = case.replay()
        path = tmp_path / "chaos.json"
        save_chaos_case(case, path)
        replayed = load_chaos_case(path).replay()
        assert replayed.outcome == direct.outcome
        assert replayed.details == direct.details

    def test_pre_bank_documents_still_load(self, tmp_path):
        import json
        case = _chaos_case("culpeo-isr", {"injector": "none"})
        path = tmp_path / "old.json"
        document = case.to_dict()
        del document["bank_axis"]
        path.write_text(json.dumps(document), encoding="utf-8")
        loaded = load_chaos_case(path)
        assert not loaded.bank_axis
        direct = case.replay()
        replayed = loaded.replay()
        assert replayed.outcome == direct.outcome
        assert replayed.details == direct.details
