"""Verification runner: trial execution, aggregation, determinism."""

import json

import pytest

from repro.verify.runner import (
    BASELINE_ESTIMATORS,
    KNOWN_ESTIMATORS,
    STOCK_ESTIMATORS,
    TrialConfig,
    build_estimator,
    run_trial,
    run_verification,
)


class TestBuildEstimator:
    def test_every_known_name_builds(self, system):
        model = system.characterize()
        for name in KNOWN_ESTIMATORS:
            estimator = build_estimator(name, system, model)
            assert hasattr(estimator, "estimate")

    def test_unknown_name_rejected(self, system):
        with pytest.raises(ValueError):
            build_estimator("no-such-estimator", system)

    def test_registry_is_partitioned(self):
        assert set(STOCK_ESTIMATORS).isdisjoint(BASELINE_ESTIMATORS)
        assert set(KNOWN_ESTIMATORS) \
            == set(STOCK_ESTIMATORS) | set(BASELINE_ESTIMATORS)


class TestRunTrial:
    def test_outcome_covers_every_estimator(self):
        cfg = TrialConfig(seed=0, metamorphic=False)
        outcome = run_trial((0, cfg))
        assert outcome.index == 0
        assert len(outcome.oracle) == len(cfg.estimators)
        keys = {entry["estimator_key"] for entry in outcome.oracle}
        assert keys == set(cfg.estimators)

    def test_trial_is_deterministic(self):
        cfg = TrialConfig(seed=3, metamorphic=False)
        assert run_trial((1, cfg)).oracle == run_trial((1, cfg)).oracle

    def test_unsound_verdict_carries_shrunk_case(self):
        cfg = TrialConfig(seed=0, estimators=("energy-direct",),
                          metamorphic=False)
        outcome = run_trial((0, cfg))
        assert outcome.oracle[0]["verdict"] == "UNSOUND"
        assert outcome.cases
        case = outcome.cases[0]
        assert case["estimator"] == "energy-direct"
        # Shrinking never grows the trace.
        assert len(case["segments"]) <= len(case["original"]) + 50


class TestRunVerification:
    def test_parallel_report_is_bit_identical(self):
        kwargs = dict(seed=0, metamorphic_checks=False, shrink=False)
        serial = run_verification(4, jobs=1, **kwargs)
        parallel = run_verification(4, jobs=2, **kwargs)
        assert json.dumps(serial.to_dict(), sort_keys=True) \
            == json.dumps(parallel.to_dict(), sort_keys=True)

    def test_stock_run_is_ok(self):
        report = run_verification(3, seed=0)
        assert report.ok
        assert report.unsound == 0
        assert report.violated == 0
        assert not report.failures
        assert "verdict: OK" in report.render()

    def test_unsound_estimator_fails_and_persists(self, tmp_path):
        report = run_verification(
            2, seed=0, estimators=("energy-direct",),
            metamorphic_checks=False,
            failures_dir=str(tmp_path / "failures"),
        )
        assert not report.ok
        assert report.unsound >= 1
        assert report.failures
        for path in report.failures:
            assert (tmp_path / "failures") in __import__("pathlib").Path(
                path).parents
        assert "verdict: FAIL" in report.render()

    def test_unpersisted_cases_still_reported(self):
        report = run_verification(2, seed=0, estimators=("energy-direct",),
                                  metamorphic_checks=False)
        assert report.failures
        assert all(f.startswith("<unpersisted") for f in report.failures)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_verification(0)
        with pytest.raises(ValueError):
            run_verification(1, estimators=("bogus",))


class TestEnvAxis:
    """The environment scenario axis: harvesting-on admission runs.

    Ground truth stays the rested-buffer, harvesting-off search, so a
    sound estimator must stay sound when a randomized environment adds
    charge during the admission run — the axis can only make the run
    easier, never harder.
    """

    def test_stock_estimators_stay_sound_under_environments(self):
        report = run_verification(4, seed=0, env_axis=True,
                                  metamorphic_checks=False)
        assert report.ok
        assert report.unsound == 0
        assert report.env_axis
        assert "env axis on" in report.render()

    def test_axis_recorded_in_the_report_document(self):
        on = run_verification(2, seed=0, env_axis=True,
                              metamorphic_checks=False, shrink=False)
        off = run_verification(2, seed=0, metamorphic_checks=False,
                               shrink=False)
        assert on.to_dict()["config"]["env_axis"] is True
        assert off.to_dict()["config"]["env_axis"] is False

    def test_axis_off_report_is_unchanged_by_the_feature(self):
        # The env stream is independent: with the axis off, reports are
        # byte-identical whether or not the feature exists — pinned by
        # running the same config twice.
        kwargs = dict(seed=7, metamorphic_checks=False, shrink=False)
        a = run_verification(3, **kwargs)
        b = run_verification(3, **kwargs)
        assert json.dumps(a.to_dict(), sort_keys=True) \
            == json.dumps(b.to_dict(), sort_keys=True)

    def test_env_axis_run_is_deterministic_and_parallel_stable(self):
        kwargs = dict(seed=1, env_axis=True, metamorphic_checks=False,
                      shrink=False)
        serial = run_verification(4, jobs=1, **kwargs)
        parallel = run_verification(4, jobs=2, **kwargs)
        assert json.dumps(serial.to_dict(), sort_keys=True) \
            == json.dumps(parallel.to_dict(), sort_keys=True)

    def test_trial_attaches_the_environment_harvester(self):
        from repro.verify.generators import env_rng, random_env_spec
        cfg = TrialConfig(seed=5, env_axis=True, metamorphic=False)
        outcome = run_trial((2, cfg))
        assert outcome.oracle
        # The same (seed, index) regenerates the same scenario the
        # trial used — the axis is replayable from the report alone.
        spec = random_env_spec(env_rng(5, 2))
        assert spec == random_env_spec(env_rng(5, 2))
