"""Metamorphic invariants hold on the reference system — and the checks
actually detect violations when handed a broken relation."""

import numpy as np
import pytest

from repro.loads.synthetic import pulse_with_compute_tail, uniform_load
from repro.verify.metamorphic import (
    check_all,
    check_cache_consistency,
    check_capacitance_antitone,
    check_current_monotone,
    check_esr_monotone,
    check_fastpath_equivalence,
    check_multi_vs_single,
)


@pytest.fixture()
def trace():
    return pulse_with_compute_tail(0.025, 0.010).trace


class TestInvariantsHoldOnReference:
    def test_esr_monotone(self, model, trace):
        assert check_esr_monotone(model, trace).passed

    def test_current_monotone(self, model, trace):
        assert check_current_monotone(model, trace).passed

    def test_capacitance_antitone(self, model, trace):
        assert check_capacitance_antitone(model, trace).passed

    def test_capacitance_antitone_tolerates_ir_floor_growth(self):
        # Regression from the bank-axis campaign (seed 0, trial 22): a
        # larger buffer keeps v_required lower through the backward walk,
        # Algorithm 1's EstVCap evaluates the pessimistic input current
        # at that lower voltage, and the v_off + v_delta floor rises a
        # few tens of microvolts — pure conservatism, not a violation.
        # The check must forgive a rise bounded by the reported floor
        # growth (and the raw v_safe comparison must indeed rise here,
        # or this regression stops testing anything).
        from dataclasses import replace

        from repro.core.profile_guided import CulpeoPG
        from repro.verify.generators import (
            bank_rng,
            random_bank_scenario,
            random_system_spec,
            random_trace,
            trial_rng,
        )

        rng = trial_rng(0, 22)
        spec, _ = random_bank_scenario(
            bank_rng(0, 22), random_system_spec(rng))
        bank_trace = random_trace(rng, spec, active=spec.active)
        model = spec.build().characterize()
        factor = 1.55684
        base = CulpeoPG(model, use_cache=False).analyze(bank_trace)
        bigger = CulpeoPG(
            replace(model, capacitance=model.capacitance * factor),
            use_cache=False).analyze(bank_trace)
        assert bigger.v_safe > base.v_safe          # the raw rise is real
        assert bigger.v_delta > base.v_delta        # and the floor grew more
        assert check_capacitance_antitone(model, bank_trace, factor).passed

    def test_multi_vs_single(self, model, trace):
        assert check_multi_vs_single(model, trace).passed

    def test_multi_vs_single_degenerate_single_segment(self, model):
        result = check_multi_vs_single(model,
                                       uniform_load(0.010, 0.010).trace)
        assert result.passed
        assert "single-segment" in result.detail

    def test_fastpath_equivalence(self, system, trace):
        assert check_fastpath_equivalence(system, trace).passed

    def test_cache_consistency(self, model, trace):
        assert check_cache_consistency(model, trace).passed

    def test_check_all_runs_full_suite(self, system, model, trace):
        results = check_all(system, model, trace,
                            np.random.default_rng(0))
        assert len(results) == 6
        assert all(r.passed for r in results)
        assert len({r.invariant for r in results}) == 6

    def test_check_all_deterministic_under_seed(self, system, model, trace):
        a = check_all(system, model, trace, np.random.default_rng(5))
        b = check_all(system, model, trace, np.random.default_rng(5))
        assert [r.to_dict() for r in a] == [r.to_dict() for r in b]

    def test_results_serialize(self, model, trace):
        data = check_esr_monotone(model, trace).to_dict()
        assert data == {"invariant": "esr-monotone", "passed": True,
                        "detail": ""}
