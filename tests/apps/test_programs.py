"""Shared task programs: the single definition campaigns and fleets use."""

import pytest

from repro.apps.programs import TASK_PROGRAMS, build_program
from repro.power.system import capybara_power_system
from repro.sched.gating import program_gates
from repro.verify.runner import build_estimator


class TestBuildProgram:
    def test_registry_names(self):
        assert set(TASK_PROGRAMS) == {"sense-store", "sense-tx",
                                      "crypto-tx"}

    def test_cycles_unroll(self):
        one = build_program("sense-store", cycles=1)
        three = build_program("sense-store", cycles=3)
        assert len(three.tasks) == 3 * len(one.tasks)
        assert [t.name for t in three.tasks[:3]] == \
            [t.name for t in one.tasks]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown program"):
            build_program("doom")

    def test_bad_cycles_rejected(self):
        with pytest.raises(ValueError, match="cycles"):
            build_program("sense-store", cycles=0)

    def test_programs_are_fresh_instances(self):
        a = build_program("sense-tx")
        b = build_program("sense-tx")
        assert a is not b
        a.commit()
        assert b.pc == 0


class TestProgramGates:
    def test_one_gate_per_unique_task(self):
        system = capybara_power_system()
        system.rest_at(2.56)
        estimator = build_estimator("culpeo-pg", system)
        program = build_program("sense-store", cycles=4)
        gates, fallback = program_gates(estimator, system, program)
        assert set(gates) == {"sample", "compute", "store"}
        assert all(v > 0 for v in gates.values())
        assert fallback == []

    def test_gates_independent_of_unroll_count(self):
        system = capybara_power_system()
        system.rest_at(2.56)
        estimator = build_estimator("culpeo-pg", system)
        short, _ = program_gates(estimator, system,
                                 build_program("crypto-tx", cycles=1))
        long, _ = program_gates(estimator, system,
                                build_program("crypto-tx", cycles=6))
        assert short == long
