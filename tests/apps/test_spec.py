"""Application specifications."""

import numpy as np
import pytest

from repro.apps.spec import AppSpec, ChainSpec
from repro.loads.trace import CurrentTrace
from repro.power.system import capybara_power_system
from repro.sched.task import Task, TaskChain


def make_chain_spec(kind="periodic", interval=5.0):
    task = Task("t", CurrentTrace.constant(0.01, 0.01))
    chain = TaskChain("c", [task], deadline=interval)
    return ChainSpec(chain=chain, arrival=(kind, interval))


class TestChainSpec:
    def test_periodic_generation_staggers_first(self):
        spec = make_chain_spec("periodic", 5.0)
        times = spec.generate_arrivals(20.0, np.random.default_rng(0))
        assert times[0] == pytest.approx(5.0)

    def test_poisson_generation(self):
        spec = make_chain_spec("poisson", 5.0)
        times = spec.generate_arrivals(100.0, np.random.default_rng(0))
        assert times
        assert times == sorted(times)

    def test_with_interval(self):
        spec = make_chain_spec("periodic", 5.0)
        faster = spec.with_interval(2.0)
        assert faster.arrival == ("periodic", 2.0)
        assert faster.chain is spec.chain

    def test_validation(self):
        with pytest.raises(ValueError):
            make_chain_spec("uniform", 5.0)
        with pytest.raises(ValueError):
            make_chain_spec("periodic", 0.0)


class TestAppSpec:
    def test_with_intervals(self):
        spec = AppSpec(
            name="x", system_factory=capybara_power_system,
            harvest_power=1e-3,
            chains=[make_chain_spec(), make_chain_spec("poisson", 30.0)],
        )
        swept = spec.with_intervals([2.0, 10.0])
        assert swept.chains[0].arrival[1] == 2.0
        assert swept.chains[1].arrival[1] == 10.0
        assert swept.name == spec.name

    def test_with_intervals_length_checked(self):
        spec = AppSpec(name="x", system_factory=capybara_power_system,
                       harvest_power=1e-3, chains=[make_chain_spec()])
        with pytest.raises(ValueError):
            spec.with_intervals([1.0, 2.0])

    def test_task_chains(self):
        spec = AppSpec(name="x", system_factory=capybara_power_system,
                       harvest_power=1e-3, chains=[make_chain_spec()])
        assert [c.name for c in spec.task_chains()] == ["c"]

    def test_validation(self):
        with pytest.raises(ValueError):
            AppSpec(name="x", system_factory=capybara_power_system,
                    harvest_power=-1.0, chains=[make_chain_spec()])
        with pytest.raises(ValueError):
            AppSpec(name="x", system_factory=capybara_power_system,
                    harvest_power=1e-3, chains=[])
        with pytest.raises(ValueError):
            AppSpec(name="x", system_factory=capybara_power_system,
                    harvest_power=1e-3, chains=[make_chain_spec()],
                    trial_duration=0.0)
