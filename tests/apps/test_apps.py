"""The three paper applications: structure and parameters."""

import pytest

from repro.apps.noise_monitoring import noise_monitoring_app
from repro.apps.periodic_sensing import periodic_sensing_app, ps_power_system
from repro.apps.responsive_reporting import responsive_reporting_app


class TestPeriodicSensing:
    def test_small_buffer(self):
        system = ps_power_system()
        # 15 mF datasheet bank with ~3x the ESR of the 45 mF bank.
        assert system.datasheet_capacitance == pytest.approx(15e-3)
        assert system.buffer.r_esr == pytest.approx(10.0)

    def test_chain_structure(self):
        spec = periodic_sensing_app()
        assert len(spec.chains) == 1
        chain_spec = spec.chains[0]
        assert chain_spec.arrival == ("periodic", 4.5)
        assert chain_spec.chain.deadline == pytest.approx(4.5)
        assert chain_spec.chain.task_names() == ["ps-imu"]
        assert spec.background is not None

    def test_custom_period_sets_deadline(self):
        spec = periodic_sensing_app(period=6.0)
        assert spec.chains[0].arrival == ("periodic", 6.0)
        assert spec.chains[0].chain.deadline == pytest.approx(6.0)


class TestResponsiveReporting:
    def test_chain_structure(self):
        spec = responsive_reporting_app()
        chain = spec.chains[0].chain
        assert chain.task_names() == ["rr-sense", "rr-encrypt", "rr-send"]
        assert chain.deadline == pytest.approx(3.0)
        assert spec.chains[0].arrival == ("poisson", 45.0)

    def test_send_includes_listen(self):
        spec = responsive_reporting_app()
        send = spec.chains[0].chain.tasks[2]
        assert send.duration > 2.0  # radio + 2 s listen


class TestNoiseMonitoring:
    def test_two_chains(self):
        spec = noise_monitoring_app()
        names = [c.chain.name for c in spec.chains]
        assert names == ["NMR-mic", "NMR-BLE"]

    def test_mic_chain(self):
        spec = noise_monitoring_app()
        mic = spec.chains[0]
        assert mic.arrival == ("periodic", 7.0)
        # 256 samples at 12 kHz is ~21 ms of capture.
        assert mic.chain.total_duration == pytest.approx(0.022, abs=0.005)

    def test_report_chain(self):
        spec = noise_monitoring_app()
        report = spec.chains[1]
        assert report.arrival == ("poisson", 30.0)
        assert report.chain.deadline == pytest.approx(15.0)

    def test_background_is_fft(self):
        spec = noise_monitoring_app()
        assert spec.background.name == "nmr-fft"
