"""Arrival processes."""

import numpy as np
import pytest

from repro.apps.events import periodic_arrivals, poisson_arrivals


class TestPeriodic:
    def test_spacing(self):
        times = periodic_arrivals(4.5, 20.0)
        assert times == [0.0, 4.5, 9.0, 13.5, 18.0]

    def test_first_offset(self):
        times = periodic_arrivals(5.0, 20.0, first=2.0)
        assert times[0] == 2.0
        assert all(b - a == pytest.approx(5.0)
                   for a, b in zip(times, times[1:]))

    def test_excludes_duration_boundary(self):
        assert 20.0 not in periodic_arrivals(5.0, 20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            periodic_arrivals(0.0, 10.0)
        with pytest.raises(ValueError):
            periodic_arrivals(1.0, 0.0)
        with pytest.raises(ValueError):
            periodic_arrivals(1.0, 10.0, first=-1.0)


class TestPoisson:
    def test_deterministic_given_seed(self):
        a = poisson_arrivals(30.0, 300.0, np.random.default_rng(1))
        b = poisson_arrivals(30.0, 300.0, np.random.default_rng(1))
        assert a == b

    def test_mean_interval_roughly_respected(self):
        rng = np.random.default_rng(0)
        times = poisson_arrivals(10.0, 100000.0, rng)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(10.0, rel=0.05)

    def test_all_within_duration(self):
        rng = np.random.default_rng(2)
        times = poisson_arrivals(5.0, 60.0, rng)
        assert all(0.0 < t < 60.0 for t in times)

    def test_sorted(self):
        rng = np.random.default_rng(3)
        times = poisson_arrivals(5.0, 200.0, rng)
        assert times == sorted(times)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10.0, rng)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 0.0, rng)
