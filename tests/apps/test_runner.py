"""Application trial runner (kept small: one short trial per test)."""

import pytest

from repro.apps.periodic_sensing import periodic_sensing_app
from repro.apps.runner import AppTrialResult, build_policy, run_app, run_trial


@pytest.fixture(scope="module")
def short_ps():
    spec = periodic_sensing_app()
    # 60-second trials keep the suite fast while exercising several events.
    return type(spec)(
        name=spec.name, system_factory=spec.system_factory,
        harvest_power=spec.harvest_power, chains=spec.chains,
        background=spec.background, trial_duration=60.0,
        description=spec.description,
    )


class TestBuildPolicy:
    def test_kinds(self, short_ps):
        catnap = build_policy(short_ps, "catnap")
        culpeo = build_policy(short_ps, "culpeo")
        assert catnap.name == "catnap"
        assert culpeo.name == "culpeo"
        assert culpeo.gate("PS", 0) > catnap.gate("PS", 0)

    def test_unknown_kind(self, short_ps):
        with pytest.raises(ValueError):
            build_policy(short_ps, "edf")


class TestRunTrial:
    def test_trial_is_deterministic_given_seed(self, short_ps):
        policy = build_policy(short_ps, "culpeo")
        a = run_trial(short_ps, policy, seed=5)
        b = run_trial(short_ps, policy, seed=5)
        assert a.capture_fraction() == b.capture_fraction()
        assert len(a.events) == len(b.events)

    def test_culpeo_captures_everything(self, short_ps):
        policy = build_policy(short_ps, "culpeo")
        result = run_trial(short_ps, policy, seed=1)
        assert result.capture_fraction() == 1.0
        assert result.brownout_count == 0


class TestRunApp:
    def test_aggregates_trials(self, short_ps):
        result = run_app(short_ps, "culpeo", trials=2)
        assert isinstance(result, AppTrialResult)
        assert len(result.trials) == 2
        assert result.capture_percent("PS") == pytest.approx(100.0)
        assert "PS" in result.chain_names()

    def test_trials_validation(self, short_ps):
        with pytest.raises(ValueError):
            run_app(short_ps, "culpeo", trials=0)

    def test_empty_result_percent(self):
        assert AppTrialResult("a", "b").capture_percent() == 0.0
