"""Device sessions: the on-device backoff arithmetic, relocated.

A centrally-served fleet must back off exactly like a fleet of
self-scheduling devices, so the session constants are *imported* from
the adaptive scheduler and the raise/decay sequences are asserted to
match its arithmetic step for step.
"""

import pytest

from repro.sched.adaptive import AdaptiveCulpeoScheduler
from repro.serve.sessions import (
    DERATE_EPSILON,
    DERATE_INITIAL,
    DERATE_MAX,
    DeviceSession,
    SessionStore,
)


class TestDerateMirror:
    def test_constants_are_the_schedulers(self):
        assert DERATE_INITIAL == AdaptiveCulpeoScheduler.DERATE_INITIAL
        assert DERATE_MAX == AdaptiveCulpeoScheduler.DERATE_MAX
        assert DERATE_EPSILON == AdaptiveCulpeoScheduler.DERATE_EPSILON

    def test_brownouts_double_up_to_the_cap(self):
        session = DeviceSession("d")
        expected = 0.0
        for _ in range(12):
            session.note_brownout()
            expected = (DERATE_INITIAL if expected <= 0.0
                        else min(DERATE_MAX, expected * 2.0))
            assert session.derate == expected
        assert session.derate == DERATE_MAX
        assert session.brownouts == 12

    def test_successes_halve_then_snap_to_zero(self):
        session = DeviceSession("d")
        session.note_brownout()
        session.note_brownout()          # 2 * DERATE_INITIAL
        session.note_success()
        assert session.derate == DERATE_INITIAL
        while session.derate > 0.0:
            session.note_success()
        assert session.derate == 0.0
        # Once at zero, further successes stay at zero.
        session.note_success()
        assert session.derate == 0.0

    def test_decay_snaps_below_epsilon(self):
        session = DeviceSession("d", derate=DERATE_EPSILON * 1.5)
        session.note_success()
        assert session.derate == 0.0

    def test_gate_is_capped_at_v_high(self):
        session = DeviceSession("d", derate=0.5)
        assert session.gate(2.2, 2.56) == pytest.approx(2.56)
        session.derate = 0.02
        assert session.gate(2.2, 2.56) == pytest.approx(2.22)

    def test_capture_registers_record_last_served_v_safe(self):
        session = DeviceSession("d")
        session.capture("fp-a", 2.1)
        session.capture("fp-a", 2.2)
        session.capture("fp-b", 1.9)
        assert session.captures == {"fp-a": 2.2, "fp-b": 1.9}
        assert session.to_dict()["captures"] == 2


class TestSessionStore:
    def test_get_or_create_then_get(self):
        store = SessionStore()
        assert store.get("d0") is None
        session = store.get_or_create("d0")
        assert store.get("d0") is session
        assert store.get_or_create("d0") is session
        assert "d0" in store and len(store) == 1

    def test_lru_eviction_counts_and_forgets(self):
        store = SessionStore(max_sessions=2)
        store.get_or_create("a").note_brownout()
        store.get_or_create("b")
        store.get_or_create("a")          # refresh "a"
        store.get_or_create("c")          # evicts "b"
        assert store.get("b") is None
        assert store.evictions == 1
        # The evicted device starts fresh — derate zero, the
        # conservative-direction reasoning the module docstring gives.
        fresh = store.get_or_create("b")
        assert fresh.derate == 0.0

    def test_stats_shape(self):
        store = SessionStore(max_sessions=8)
        store.get_or_create("a")
        assert store.stats() == {"sessions": 1, "max_sessions": 8,
                                 "evictions": 0}

    def test_bound_validated(self):
        with pytest.raises(ValueError):
            SessionStore(max_sessions=0)
