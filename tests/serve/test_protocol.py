"""Wire protocol: canonical encoding and structural validation.

The serving correctness bar is byte identity, so the encoding layer has
exactly one job: every JSON value has one and only one wire
representation. The validation layer's job is to keep garbage out of the
engine with ``bad-request`` errors the client can act on.
"""

import math

import pytest

from repro.serve.protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    canonical,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)


class TestCanonicalEncoding:
    def test_sorted_compact_no_spaces(self):
        assert canonical({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_floats_round_trip_exactly(self):
        # CPython's repr/parse is lossless; the disk cache tier and the
        # differential client both rely on it.
        for value in (0.1 + 0.2, 1.0 / 3.0, 2.5600000000000005, 1e-17):
            line = encode_line({"v": value})
            assert decode_line(line)["v"] == value
            # ...and re-encoding the decoded value is byte-stable.
            assert encode_line(decode_line(line)) == line

    def test_nan_is_rejected_not_emitted(self):
        with pytest.raises(ValueError):
            canonical({"v": math.nan})

    def test_encode_line_is_newline_delimited_utf8(self):
        line = encode_line({"op": "ping"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_decode_line_rejects_bad_json_and_bad_utf8(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{not json}\n")
        with pytest.raises(ProtocolError):
            decode_line(b"\xff\xfe\n")


class TestEnvelopes:
    def test_ok_response_carries_envelope_and_payload(self):
        body = ok_response("q1", "ping", {"version": PROTOCOL_VERSION})
        assert body == {"id": "q1", "ok": True, "op": "ping",
                        "version": PROTOCOL_VERSION}

    def test_error_response_shape(self):
        body = error_response("q2", "overloaded", "queue full")
        assert body["ok"] is False
        assert body["error"] == "overloaded"

    def test_protocol_error_default_code(self):
        assert ProtocolError("nope").code == "bad-request"


def _admit(**overrides):
    req = {"op": "admit", "id": "q", "v_bank": 2.0,
           "app": "sense-store", "task": "sample"}
    req.update(overrides)
    return req


class TestParseRequest:
    def test_every_op_is_known(self):
        assert set(OPS) == {"ping", "admit", "simulate", "report",
                            "flush", "stats", "shutdown"}

    def test_valid_requests_pass_through_unchanged(self):
        for req in (
            {"op": "ping"},
            _admit(),
            _admit(trace=[[0.01, 0.2]], app=None, task=None,
                   system={"dc_esr": 6.0}, device="dev-1",
                   deadline_ms=100.0),
            {"op": "simulate", "id": "s", "v_start": 2.2,
             "app": "sense-tx", "harvesting": True, "stop": False,
             "env": {"model": "diurnal-solar"}},
            {"op": "report", "id": "r", "device": "dev-1",
             "outcome": "brownout"},
            {"op": "stats", "id": "st"},
            {"op": "shutdown", "id": "bye"},
        ):
            assert parse_request(req) is req

    @pytest.mark.parametrize("bad", [
        "ping",                                 # not an object
        {"op": "noop", "id": "q"},              # unknown op
        {"op": "admit", "v_bank": 2.0, "app": "a"},   # missing id
        _admit(v_bank=-0.1),                    # negative
        _admit(v_bank=True),                    # bool is not a number
        _admit(v_bank="2.0"),                   # string
        _admit(app=None, task=None),            # no task at all
        _admit(trace=[]),                       # empty trace
        _admit(trace=[[0.01]]),                 # not a pair
        _admit(trace=[[0.01, True]]),           # bool inside a segment
        _admit(trace="0.01,0.2"),               # not a list
        _admit(app=7),                          # non-string app
        _admit(task=7),                         # non-string task
        _admit(system=[1, 2]),                  # system not an object
        _admit(system={"bogus": 1.0}),          # unknown system field
        _admit(system={"dc_esr": True}),        # bool system value
        _admit(device=4),                       # non-string device
        _admit(deadline_ms=-1.0),               # negative deadline
        {"op": "simulate", "id": "s", "app": "a"},        # no v_start
        {"op": "simulate", "id": "s", "v_start": 2.0,
         "app": "a", "harvesting": 1},          # non-bool flag
        {"op": "simulate", "id": "s", "v_start": 2.0,
         "app": "a", "env": "sunny"},           # env not an object
        {"op": "report", "id": "r", "outcome": "brownout"},  # no device
        {"op": "report", "id": "r", "device": "",
         "outcome": "brownout"},                # empty device
        {"op": "report", "id": "r", "device": "d",
         "outcome": "meh"},                     # unknown outcome
    ])
    def test_malformed_requests_are_rejected(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(bad)
