"""The admission engine vs the library oracle, byte for byte.

Every assertion here reduces to the serving bar: a response produced by
the batching, coalescing, caching engine must be *byte-identical* (under
canonical encoding) to the answer the library computes from first
principles — for any batch composition, any cache temperature, and any
session history.
"""

import pytest

from repro import obs
from repro.env.spec import EnvSpec
from repro.serve.cache import PersistentVsafeCache
from repro.serve.client import ExpectedAnswers
from repro.serve.engine import AdmissionEngine
from repro.serve.protocol import canonical
from repro.serve.sessions import DERATE_INITIAL

ADMIT = {"op": "admit", "id": "a0", "v_bank": 2.1,
         "app": "sense-store", "task": "sample"}
SIMULATE = {"op": "simulate", "id": "s0", "v_start": 2.2,
            "trace": [[0.01, 0.2], [0.004, 0.35]]}
ENV = EnvSpec(model="diurnal-solar", duration=60.0, seed=3).to_dict()


def _req(base, **overrides):
    req = dict(base)
    req.update(overrides)
    return req


def _assert_oracle_identical(engine, requests):
    """Engine answers == library answers, byte for byte, in order."""
    oracle = ExpectedAnswers()
    for req in requests:
        served = engine.handle(req)
        assert canonical(served) == canonical(oracle.expect(req)), req


class TestAdmitAgainstOracle:
    def test_default_system_all_estimators(self):
        engine = AdmissionEngine()
        _assert_oracle_identical(engine, [
            _req(ADMIT, id=f"a{i}", estimator=name)
            for i, name in enumerate(
                ("culpeo-pg", "culpeo-isr", "energy-direct"))
        ])

    def test_system_overrides_and_explicit_trace(self):
        engine = AdmissionEngine()
        _assert_oracle_identical(engine, [
            _req(ADMIT, system={"dc_esr": 6.0, "v_high": 2.50,
                                "v_out": 2.45}),
            _req(ADMIT, id="a1", app=None, task=None,
                 trace=[[0.012, 0.05], [0.0, 0.2]]),
            _req(ADMIT, id="a2", task=None, cycles=2),  # whole program
        ])

    def test_admitted_flag_tracks_the_gate(self):
        engine = AdmissionEngine()
        low = engine.handle(_req(ADMIT, v_bank=0.0))
        high = engine.handle(_req(ADMIT, v_bank=2.56))
        assert low["ok"] and not low["admitted"]
        assert high["ok"] and high["admitted"]
        assert low["v_safe"] == high["v_safe"]


class TestCoalescing:
    def test_same_key_admits_coalesce_in_one_batch(self):
        engine = AdmissionEngine()
        batch = [_req(ADMIT, id=f"a{i}") for i in range(4)]
        responses = engine.handle_batch(batch)
        assert engine.coalesced == 3
        bodies = {canonical({**r, "id": None}) for r in responses}
        assert len(bodies) == 1          # only the id differed

    def test_coalesced_answers_equal_solo_answers(self):
        solo = AdmissionEngine().handle(dict(ADMIT))
        batched = AdmissionEngine().handle_batch(
            [_req(ADMIT, id=f"a{i}") for i in range(3)])
        for response in batched:
            assert canonical({**response, "id": "a0"}) == canonical(solo)

    def test_distinct_keys_do_not_coalesce(self):
        engine = AdmissionEngine()
        engine.handle_batch([
            dict(ADMIT),
            _req(ADMIT, id="a1", estimator="energy-direct"),
        ])
        assert engine.coalesced == 0


class TestBatchedEqualsSequential:
    def test_mixed_batch_with_session_effects(self):
        # One batch through engine A; the same requests one at a time
        # through engine B. Session effects (report between admits for
        # the same device) must land identically.
        requests = [
            _req(ADMIT, device="dev-1"),
            {"op": "report", "id": "r0", "device": "dev-1",
             "outcome": "brownout"},
            _req(ADMIT, id="a1", device="dev-1"),
            dict(SIMULATE),
            {"op": "ping", "id": "p0"},
            {"op": "report", "id": "r1", "device": "dev-1",
             "outcome": "success"},
            _req(ADMIT, id="a2", device="dev-1"),
        ]
        batched = AdmissionEngine().handle_batch(
            [dict(r) for r in requests])
        engine_b = AdmissionEngine()
        sequential = [engine_b.handle(dict(r)) for r in requests]
        assert [canonical(r) for r in batched] == \
            [canonical(r) for r in sequential]


class TestSimulate:
    def test_against_oracle_all_variants(self):
        engine = AdmissionEngine()
        _assert_oracle_identical(engine, [
            dict(SIMULATE),
            _req(SIMULATE, id="s1", harvesting=True),
            _req(SIMULATE, id="s2", stop=False),
            _req(SIMULATE, id="s3", trace=None, app="sense-tx", cycles=2),
            _req(SIMULATE, id="s4", harvesting=True, env=ENV),
            _req(SIMULATE, id="s5",
                 system={"datasheet_capacitance": 33e-3,
                         "capacitance_tolerance": 0.1}),
        ])

    def test_shared_key_groups_ride_one_kernel_call(self):
        engine = AdmissionEngine()
        batch = [_req(SIMULATE, id=f"s{i}", v_start=2.0 + 0.1 * i)
                 for i in range(4)]
        responses = engine.handle_batch(batch)
        assert all(r["ok"] for r in responses)
        assert engine.kernel_calls == 1
        assert engine.kernel_lanes == 4
        # Each lane byte-identical to its solo answer.
        for req, response in zip(batch, responses):
            solo = AdmissionEngine().handle(dict(req))
            assert canonical({**response, "id": None}) == \
                canonical({**solo, "id": None})

    def test_repeat_simulate_hits_the_cache(self):
        engine = AdmissionEngine()
        engine.handle(dict(SIMULATE))
        assert engine.kernel_calls == 1
        engine.handle(_req(SIMULATE, id="s9"))
        assert engine.kernel_calls == 1   # served from cache, no kernel

    def test_different_v_start_misses_different_env_regroups(self):
        engine = AdmissionEngine()
        engine.handle(dict(SIMULATE))
        engine.handle(_req(SIMULATE, id="s1", v_start=1.9))
        assert engine.kernel_calls == 2
        # Env-backed queries group by EnvSpec fingerprint.
        engine.handle_batch([
            _req(SIMULATE, id="s2", harvesting=True, env=ENV),
            _req(SIMULATE, id="s3", harvesting=True,
                 env=dict(ENV, seed=4)),
        ])
        assert engine.kernel_calls == 4   # two groups, two calls


class TestSessions:
    def test_report_backoff_moves_the_gate(self):
        engine = AdmissionEngine()
        before = engine.handle(_req(ADMIT, device="dev-2"))
        assert before["derate"] == 0.0
        report = engine.handle({"op": "report", "id": "r", "device":
                                "dev-2", "outcome": "brownout"})
        assert report["derate"] == DERATE_INITIAL
        after = engine.handle(_req(ADMIT, id="a1", device="dev-2"))
        assert after["derate"] == DERATE_INITIAL
        assert after["gate"] == pytest.approx(
            min(2.56, after["v_safe"] + DERATE_INITIAL))
        assert after["v_safe"] == before["v_safe"]

    def test_admit_writes_capture_register(self):
        engine = AdmissionEngine()
        served = engine.handle(_req(ADMIT, device="dev-3"))
        session = engine.sessions.get("dev-3")
        assert session.queries == 1
        assert list(session.captures.values()) == [served["v_safe"]]


class TestErrorContainment:
    @pytest.mark.parametrize("req", [
        _req(ADMIT, estimator="bogus"),
        _req(ADMIT, app="bogus", task=None),
        _req(ADMIT, task="bogus"),
        _req(ADMIT, task=None, cycles=0),
        _req(SIMULATE, harvesting=True, env={"model": "bogus"}),
        {"op": "bogus", "id": "x"},
    ])
    def test_bad_requests_answer_bad_request(self, req):
        response = AdmissionEngine().handle(req)
        assert response["ok"] is False
        assert response["error"] == "bad-request"
        assert response["id"] == req.get("id")

    def test_one_bad_request_does_not_poison_the_batch(self):
        responses = AdmissionEngine().handle_batch([
            dict(ADMIT),
            _req(ADMIT, id="bad", estimator="bogus"),
            _req(ADMIT, id="a1"),
        ])
        assert responses[0]["ok"] and responses[2]["ok"]
        assert not responses[1]["ok"]
        assert canonical({**responses[0], "id": None}) == \
            canonical({**responses[2], "id": None})


class TestPersistentTier:
    def test_warm_restart_serves_identical_bytes(self, tmp_path):
        path = tmp_path / "vsafe.json"
        first = AdmissionEngine(cache=PersistentVsafeCache(path))
        cold = first.handle(dict(ADMIT))
        first.handle(dict(SIMULATE))
        first.cache.flush()

        second = AdmissionEngine(cache=PersistentVsafeCache(path))
        assert second.cache.load_status == "loaded"
        warm = second.handle(dict(ADMIT))
        assert canonical(warm) == canonical(cold)
        assert second.cache.stats()["hits"] >= 1
        # The simulate is also warm: no kernel call on the restart.
        second.handle(dict(SIMULATE))
        assert second.kernel_calls == 0

    def test_envspec_change_invalidates_structurally(self, tmp_path):
        path = tmp_path / "vsafe.json"
        first = AdmissionEngine(cache=PersistentVsafeCache(path))
        first.handle(_req(SIMULATE, harvesting=True, env=ENV))
        first.cache.flush()

        second = AdmissionEngine(cache=PersistentVsafeCache(path))
        second.handle(_req(SIMULATE, harvesting=True, env=ENV))
        assert second.kernel_calls == 0          # same env: warm
        second.handle(_req(SIMULATE, id="s1", harvesting=True,
                           env=dict(ENV, seed=4)))
        assert second.kernel_calls == 1          # new fingerprint: miss


class TestIntrospection:
    def test_ping_and_stats(self):
        engine = AdmissionEngine()
        ping = engine.handle({"op": "ping"})
        assert ping["version"] >= 1
        engine.handle(dict(ADMIT))
        stats = engine.handle({"op": "stats", "id": "st"})
        assert stats["ok"]
        assert stats["cache"]["entries"] >= 1
        assert stats["kernel_calls"] == 0

    def test_batch_telemetry_one_obs_fetch(self):
        obs.enable()
        try:
            engine = AdmissionEngine()
            engine.handle_batch([
                dict(ADMIT), _req(ADMIT, id="a1"), dict(SIMULATE),
                {"op": "report", "id": "r", "device": "d",
                 "outcome": "success"},
            ])
            snapshot = obs.current().metrics.snapshot()
            counters = snapshot["counters"]
            assert counters["serve.requests"] == 4
            assert counters["serve.admits"] == 2
            assert counters["serve.simulates"] == 1
            assert counters["serve.reports"] == 1
            assert counters["serve.coalesced"] == 1
        finally:
            obs.disable()
