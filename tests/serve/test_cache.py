"""The persistent V_safe cache tier: warm restarts, hostile files.

The disk tier's contract is asymmetric: it may only ever *add* hits. A
valid snapshot must restore estimates that serve byte-identical answers;
anything less than a valid snapshot (truncation, corruption, tampering,
format drift) must reject the whole file and fall back to recomputing.
"""

import json
import threading

import pytest

from repro.core.model import TaskDemand, VsafeEstimate
from repro.serve.cache import (
    FORMAT,
    PersistentVsafeCache,
    entry_estimate,
    estimate_entry,
    key_digest,
)
from repro.serve.protocol import canonical


def _estimate(v_safe=2.2000000000000003, v_delta=0.12345678901234567):
    return VsafeEstimate(
        v_safe=v_safe, v_delta=v_delta,
        demand=TaskDemand(energy_v2=0.1 + 0.2, v_delta=v_delta),
        method="culpeo-pg")


KEY = ("vsafe", ("culpeo-pg", ("batch-plant", 45e-3)), "fp", "canon")


class TestEntryRoundTrip:
    def test_lossless_floats_through_json(self):
        # The whole point of the JSON tier: an estimate that went
        # entry -> json text -> entry serves the same bytes.
        entry = estimate_entry(_estimate())
        rehydrated = json.loads(canonical(entry))
        restored = entry_estimate(rehydrated)
        original = _estimate()
        assert restored.v_safe == original.v_safe
        assert restored.v_delta == original.v_delta
        assert restored.demand.energy_v2 == original.demand.energy_v2
        assert restored.method == original.method

    def test_key_digest_is_stable_and_discriminating(self):
        assert key_digest(KEY) == key_digest(KEY)
        assert key_digest(KEY) != key_digest(KEY + ("x",))


class TestInMemoryTier:
    def test_miss_then_hit_with_stats(self):
        cache = PersistentVsafeCache()
        assert cache.get(KEY) is None
        cache.put_estimate(KEY, _estimate())
        assert cache.get_estimate(KEY).v_safe == _estimate().v_safe
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["load_status"] == "no-file"

    def test_lru_eviction_at_maxsize(self):
        cache = PersistentVsafeCache(maxsize=2)
        cache.put("a", {"kind": "sim"})
        cache.put("b", {"kind": "sim"})
        assert cache.get("a") is not None   # refresh "a"
        cache.put("c", {"kind": "sim"})     # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert len(cache) == 2

    def test_get_estimate_ignores_foreign_kinds(self):
        cache = PersistentVsafeCache()
        cache.put(KEY, {"kind": "sim", "v_end": 2.0})
        assert cache.get_estimate(KEY) is None

    def test_put_rejects_non_dict(self):
        with pytest.raises(TypeError):
            PersistentVsafeCache().put(KEY, _estimate())

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PersistentVsafeCache(maxsize=0)


class TestDiskTier:
    def test_warm_restart_serves_identical_entries(self, tmp_path):
        path = tmp_path / "vsafe.json"
        first = PersistentVsafeCache(path)
        assert first.load_status == "no-file"
        first.put_estimate(KEY, _estimate())
        first.put(("sim", "k"), {"kind": "sim", "v_end": 2.5, "v_min": 1.9,
                                 "time": 0.7, "energy": 0.01,
                                 "brownout": None})
        first.flush()

        second = PersistentVsafeCache(path)
        assert second.load_status == "loaded"
        assert second.loaded_entries == 2
        # Byte-level identity of the restored estimate's entry — the
        # property the served-answer byte bar rests on.
        assert canonical(second.get(KEY)) == canonical(estimate_entry(
            _estimate()))
        assert second.get(("sim", "k"))["brownout"] is None

    def test_pathless_flush_is_a_noop(self):
        PersistentVsafeCache().flush()   # must not raise

    @pytest.mark.parametrize("reason, mutate", [
        ("corrupt-json", lambda text: text[: len(text) // 2]),  # truncated
        ("corrupt-json", lambda text: "garbage\x00" + text),
        ("bad-format", lambda text: text.replace(FORMAT, "other-format")),
        ("bad-format", lambda text: '{"entries":{}}'),
        ("checksum-mismatch",
         lambda text: text.replace('"v_safe":2.2', '"v_safe":9.2')),
    ])
    def test_invalid_files_reject_and_start_empty(self, tmp_path, reason,
                                                  mutate):
        path = tmp_path / "vsafe.json"
        good = PersistentVsafeCache(path)
        good.put_estimate(KEY, _estimate(v_safe=2.2))
        good.flush()
        path.write_text(mutate(path.read_text(encoding="utf-8")),
                        encoding="utf-8")

        cache = PersistentVsafeCache(path)
        assert cache.load_status == f"rejected:{reason}"
        assert len(cache) == 0
        assert cache.get(KEY) is None        # falls back to recompute

    def test_tampered_entry_fails_checksum(self, tmp_path):
        path = tmp_path / "vsafe.json"
        good = PersistentVsafeCache(path)
        good.put(("k",), {"kind": "sim", "v_end": 1.0})
        good.flush()
        payload = json.loads(path.read_text(encoding="utf-8"))
        digest = next(iter(payload["entries"]))
        payload["entries"][digest]["v_end"] = 9.0   # checksum left stale
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert PersistentVsafeCache(path).load_status == \
            "rejected:checksum-mismatch"

    def test_loaded_entries_respect_maxsize(self, tmp_path):
        path = tmp_path / "vsafe.json"
        big = PersistentVsafeCache(path)
        for i in range(8):
            big.put(("k", i), {"kind": "sim", "v_end": float(i)})
        big.flush()
        small = PersistentVsafeCache(path, maxsize=3)
        assert small.load_status == "loaded"
        assert len(small) == 3

    def test_concurrent_writers_leave_a_valid_snapshot(self, tmp_path):
        # Unique temp name + os.replace: any interleaving of flushes
        # leaves *some* writer's complete checksummed file.
        path = tmp_path / "vsafe.json"
        errors = []

        def writer(worker):
            try:
                cache = PersistentVsafeCache(path)
                for i in range(20):
                    cache.put(("w", worker, i),
                              {"kind": "sim", "v_end": float(i)})
                    cache.flush()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        final = PersistentVsafeCache(path)
        assert final.load_status == "loaded"
        assert final.loaded_entries >= 20
        assert not list(tmp_path.glob("*.tmp"))   # no litter left behind
