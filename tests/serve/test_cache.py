"""The persistent V_safe cache tier: warm restarts, hostile files.

The disk tier's contract is asymmetric: it may only ever *add* hits.
The journal replays exactly the verifiable records — a torn tail, a
flipped byte or a foreign file costs entries (recompute), never
correctness; and the first disk error flips the tier into degraded
mode, where every lookup falls back to memo + compute.
"""

import json
import threading

import pytest

from repro.core.model import TaskDemand, VsafeEstimate
from repro.serve.cache import (
    FORMAT,
    PersistentVsafeCache,
    entry_estimate,
    estimate_entry,
    key_digest,
)
from repro.serve.faultfs import FaultyDiskOps
from repro.serve.protocol import canonical


def _estimate(v_safe=2.2000000000000003, v_delta=0.12345678901234567):
    return VsafeEstimate(
        v_safe=v_safe, v_delta=v_delta,
        demand=TaskDemand(energy_v2=0.1 + 0.2, v_delta=v_delta),
        method="culpeo-pg")


KEY = ("vsafe", ("culpeo-pg", ("batch-plant", 45e-3)), "fp", "canon")


class TestEntryRoundTrip:
    def test_lossless_floats_through_json(self):
        # The whole point of the JSON tier: an estimate that went
        # entry -> json text -> entry serves the same bytes.
        entry = estimate_entry(_estimate())
        rehydrated = json.loads(canonical(entry))
        restored = entry_estimate(rehydrated)
        original = _estimate()
        assert restored.v_safe == original.v_safe
        assert restored.v_delta == original.v_delta
        assert restored.demand.energy_v2 == original.demand.energy_v2
        assert restored.method == original.method

    def test_key_digest_is_stable_and_discriminating(self):
        assert key_digest(KEY) == key_digest(KEY)
        assert key_digest(KEY) != key_digest(KEY + ("x",))


class TestInMemoryTier:
    def test_miss_then_hit_with_stats(self):
        cache = PersistentVsafeCache()
        assert cache.get(KEY) is None
        cache.put_estimate(KEY, _estimate())
        assert cache.get_estimate(KEY).v_safe == _estimate().v_safe
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["load_status"] == "no-file"

    def test_lru_eviction_at_maxsize(self):
        cache = PersistentVsafeCache(maxsize=2)
        cache.put("a", {"kind": "sim"})
        cache.put("b", {"kind": "sim"})
        assert cache.get("a") is not None   # refresh "a"
        cache.put("c", {"kind": "sim"})     # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert len(cache) == 2

    def test_get_estimate_ignores_foreign_kinds(self):
        cache = PersistentVsafeCache()
        cache.put(KEY, {"kind": "sim", "v_end": 2.0})
        assert cache.get_estimate(KEY) is None

    def test_put_rejects_non_dict(self):
        with pytest.raises(TypeError):
            PersistentVsafeCache().put(KEY, _estimate())

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PersistentVsafeCache(maxsize=0)


class TestDiskTier:
    def test_warm_restart_serves_identical_entries(self, tmp_path):
        path = tmp_path / "vsafe.json"
        first = PersistentVsafeCache(path)
        assert first.load_status == "no-file"
        first.put_estimate(KEY, _estimate())
        first.put(("sim", "k"), {"kind": "sim", "v_end": 2.5, "v_min": 1.9,
                                 "time": 0.7, "energy": 0.01,
                                 "brownout": None})
        first.flush()

        second = PersistentVsafeCache(path)
        assert second.load_status == "loaded"
        assert second.loaded_entries == 2
        # Byte-level identity of the restored estimate's entry — the
        # property the served-answer byte bar rests on.
        assert canonical(second.get(KEY)) == canonical(estimate_entry(
            _estimate()))
        assert second.get(("sim", "k"))["brownout"] is None

    def test_pathless_flush_is_a_noop(self):
        PersistentVsafeCache().flush()   # must not raise

    @pytest.mark.parametrize("status, mutate", [
        # A crash mid-append tears the last record: dropped whole,
        # everything before it replays.
        ("recovered", lambda text: text[: len(text) - 9]),
        # A flipped byte fails that record's checksum: dropped whole.
        ("recovered",
         lambda text: text.replace('"v_safe":2.2', '"v_safe":9.2')),
        # Garbage fused onto the header line invalidates it; the first
        # *valid* record is then a put, so the file is foreign.
        ("rejected:bad-format", lambda text: "garbage\x00" + text),
        ("rejected:bad-format",
         lambda text: text.replace(FORMAT, "other-format")),
        ("rejected:bad-format", lambda text: '{"entries":{}}'),
    ])
    def test_damaged_files_drop_never_corrupt(self, tmp_path, status,
                                              mutate):
        path = tmp_path / "vsafe.json"
        good = PersistentVsafeCache(path)
        good.put_estimate(KEY, _estimate(v_safe=2.2))
        good.flush()
        good.close()
        path.write_text(mutate(path.read_text(encoding="utf-8")),
                        encoding="utf-8")

        cache = PersistentVsafeCache(path)
        assert cache.load_status == status
        assert len(cache) == 0               # the one record was damaged
        assert cache.get(KEY) is None        # falls back to recompute
        cache.close()
        # Every recovery/rejection compacts the damage away: the next
        # start sees a clean journal again.
        clean = PersistentVsafeCache(path)
        assert clean.load_status in ("loaded", "no-file")
        clean.close()

    def test_damage_drops_only_the_damaged_record(self, tmp_path):
        path = tmp_path / "vsafe.json"
        good = PersistentVsafeCache(path)
        good.put(("keep",), {"kind": "sim", "v_end": 1.0})
        good.put(("tamper",), {"kind": "sim", "v_end": 2.0})
        good.put(("keep2",), {"kind": "sim", "v_end": 3.0})
        good.flush()
        good.close()
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace('"v_end":2.0', '"v_end":9.0'),
                        encoding="utf-8")

        cache = PersistentVsafeCache(path)
        assert cache.load_status == "recovered"
        assert cache.dropped_records == 1
        # Surviving records replay byte-exactly; the damaged one is
        # gone whole — never a wrong value.
        assert cache.get(("keep",))["v_end"] == 1.0
        assert cache.get(("keep2",))["v_end"] == 3.0
        assert cache.get(("tamper",)) is None
        cache.close()

    def test_loaded_entries_respect_maxsize(self, tmp_path):
        path = tmp_path / "vsafe.json"
        big = PersistentVsafeCache(path)
        for i in range(8):
            big.put(("k", i), {"kind": "sim", "v_end": float(i)})
        big.flush()
        small = PersistentVsafeCache(path, maxsize=3)
        assert small.load_status == "loaded"
        assert len(small) == 3

    def test_concurrent_writers_interleave_at_record_granularity(
            self, tmp_path):
        # O_APPEND single-write records: any interleaving of appenders
        # leaves every record independently verifiable. (Racing
        # constructors may write duplicate headers, which recovery
        # drops — costing nothing.)
        path = tmp_path / "vsafe.json"
        errors = []

        def writer(worker):
            try:
                cache = PersistentVsafeCache(path)
                for i in range(20):
                    cache.put(("w", worker, i),
                              {"kind": "sim", "v_end": float(i)})
                    cache.flush()
                cache.close()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        final = PersistentVsafeCache(path)
        assert final.load_status in ("loaded", "recovered")
        # Every writer's every record survives, exact-valued.
        for worker in range(4):
            for i in range(20):
                assert final.get(("w", worker, i))["v_end"] == float(i)
        assert not list(tmp_path.glob("*.tmp"))   # no litter left behind
        final.close()


class TestDegradedMode:
    def test_enospc_degrades_but_keeps_serving(self, tmp_path):
        disk = FaultyDiskOps(enospc_after_bytes=400)
        cache = PersistentVsafeCache(tmp_path / "vsafe.json", disk=disk)
        for i in range(16):
            cache.put(("k", i), {"kind": "sim", "v_end": float(i)})
        assert cache.degraded
        assert any(f.startswith("enospc") for f in disk.fired)
        # Memo tier is intact: every put still serves.
        for i in range(16):
            assert cache.get(("k", i))["v_end"] == float(i)
        stats = cache.stats()
        assert stats["degraded"] and stats["disk_errors"] >= 1
        assert "last_disk_error" in stats
        cache.close()
        # Whatever made it to disk before the wall replays exactly —
        # a subset of the puts, never a wrong value.
        warm = PersistentVsafeCache(tmp_path / "vsafe.json")
        for i in range(16):
            entry = warm.get(("k", i))
            assert entry is None or entry["v_end"] == float(i)
        warm.close()

    def test_failing_fsync_degrades_on_flush(self, tmp_path):
        disk = FaultyDiskOps(fsync_fail_after=0)
        cache = PersistentVsafeCache(tmp_path / "vsafe.json", disk=disk)
        cache.put(("k",), {"kind": "sim", "v_end": 1.0})
        assert not cache.degraded
        cache.flush()
        assert cache.degraded
        assert cache.get(("k",))["v_end"] == 1.0
        cache.close()

    def test_short_write_degrades_and_recovery_drops_the_torn_record(
            self, tmp_path):
        # Write #0 is the header; write #1 (the first put) is torn.
        disk = FaultyDiskOps(short_write_at=1, short_write_bytes=11)
        cache = PersistentVsafeCache(tmp_path / "vsafe.json", disk=disk)
        cache.put(("torn",), {"kind": "sim", "v_end": 1.0})
        assert cache.degraded
        cache.close()
        warm = PersistentVsafeCache(tmp_path / "vsafe.json")
        assert warm.load_status == "recovered"
        assert warm.get(("torn",)) is None
        assert not warm.degraded
        warm.close()

    def test_degraded_cache_stops_journaling(self, tmp_path):
        disk = FaultyDiskOps(fsync_fail_after=0)
        cache = PersistentVsafeCache(tmp_path / "vsafe.json", disk=disk)
        cache.flush()                     # first fsync fails: degraded
        assert cache.degraded
        size = (tmp_path / "vsafe.json").stat().st_size
        cache.put(("k",), {"kind": "sim", "v_end": 1.0})
        assert (tmp_path / "vsafe.json").stat().st_size == size
        assert cache.get(("k",))["v_end"] == 1.0   # memo still serves
        cache.close()
