"""The journal's recovery invariants, pinned down byte by byte.

The headline test is *kill-at-every-byte-offset*: for a journal of N
records, truncate the file at every possible byte offset — simulating a
crash whose last append persisted only a prefix — and assert that
recovery always yields exactly the records fully contained in that
prefix, exact-valued, and never raises. The companion byte-flip sweep
does the same for silent corruption. Together they are the proof behind
the cache tier's claim that a damaged journal costs recomputes, never
wrong answers.
"""

import os
import signal
import subprocess
import sys
import time
from collections import OrderedDict

import pytest

from repro.serve.cache import PersistentVsafeCache
from repro.serve.faultfs import FaultyDiskOps
from repro.serve.journal import (
    JournalWriter,
    decode_record,
    encode_record,
    header_record,
    read_journal,
)


def _build_journal(path, entries):
    """A clean journal holding ``entries`` (an OrderedDict), via the
    real writer."""
    writer = JournalWriter(path)
    writer.open(write_header=True)
    for digest, entry in entries.items():
        writer.append(digest, entry)
    writer.sync()
    writer.close()


def _entries(n):
    return OrderedDict(
        (f"digest-{i:02d}",
         {"kind": "sim", "v_end": 2.0 + i * 0.125, "seq": i})
        for i in range(n))


class TestRecordFraming:
    def test_roundtrip(self):
        obj = {"k": "abc", "e": {"v": 1.5}}
        assert decode_record(encode_record(obj)) == obj

    @pytest.mark.parametrize("damage", [
        lambda line: line[:-1],                      # torn: no newline
        lambda line: b"X" + line[1:],                # bad tag
        lambda line: line.replace(b"1.5", b"9.5"),   # checksum mismatch
        lambda line: line[:3] + b" notjson\n",       # bad framing
    ])
    def test_damaged_lines_raise(self, damage):
        line = encode_record({"k": "abc", "e": {"v": 1.5}})
        with pytest.raises(ValueError):
            decode_record(damage(line))

    def test_non_object_payload_rejected(self):
        import hashlib
        payload = b"[1,2,3]"
        checksum = hashlib.blake2b(payload, digest_size=8).hexdigest()
        line = b"J2 " + checksum.encode() + b" " + payload + b"\n"
        with pytest.raises(ValueError):
            decode_record(line)


class TestKillAtEveryByteOffset:
    def test_every_truncation_recovers_the_exact_prefix(self, tmp_path):
        """The acceptance test: crash after persisting any byte prefix
        of the journal, and recovery replays exactly the fully-persisted
        records — an exact-valued subset, never an exception, never a
        partial or altered record."""
        path = tmp_path / "journal"
        entries = _entries(6)
        _build_journal(path, entries)
        raw = path.read_bytes()

        # Record boundaries, independently derived from the encoder.
        lines = [encode_record(header_record())]
        lines += [encode_record({"k": k, "e": e})
                  for k, e in entries.items()]
        assert b"".join(lines) == raw
        boundaries = []
        total = 0
        for line in lines:
            total += len(line)
            boundaries.append(total)

        keys = list(entries)
        for cut in range(len(raw) + 1):
            path.write_bytes(raw[:cut])
            recovery = read_journal(path)        # must never raise
            complete = sum(1 for b in boundaries if b <= cut)
            if cut == 0:
                assert recovery.status == "no-file"
                continue
            if complete == 0:
                # Not even the header persisted whole: the file can
                # contribute nothing.
                assert recovery.status == "rejected:bad-format"
                continue
            expected = OrderedDict(
                (k, entries[k]) for k in keys[:complete - 1])
            assert recovery.entries == expected, f"cut at byte {cut}"
            torn = cut not in boundaries
            assert recovery.status == (
                "recovered" if torn else "loaded")
            assert recovery.dropped_records == (1 if torn else 0)

    def test_truncated_journal_loads_into_a_working_cache(self, tmp_path):
        # End to end: the cache built on a torn journal serves the
        # surviving records exactly and rewrites the file clean.
        path = tmp_path / "journal"
        entries = _entries(4)
        _build_journal(path, entries)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 5])    # tear the last record

        cache = PersistentVsafeCache(path)
        assert cache.load_status == "recovered"
        assert cache.loaded_entries == 3
        cache.close()
        assert read_journal(path).status == "loaded"   # compacted clean


class TestByteFlipSweep:
    def test_flips_drop_records_never_alter_them(self, tmp_path):
        path = tmp_path / "journal"
        entries = _entries(5)
        _build_journal(path, entries)
        raw = path.read_bytes()

        for offset in range(0, len(raw), 7):     # sampled sweep
            flipped = bytearray(raw)
            flipped[offset] ^= 0x40
            path.write_bytes(bytes(flipped))
            recovery = read_journal(path)        # must never raise
            assert recovery.status in (
                "loaded", "recovered", "rejected:bad-format")
            # Whatever survives is byte-exactly a subset of what was
            # written; a flip may merge/damage records, never mutate
            # one into a different valid value.
            for digest, entry in recovery.entries.items():
                assert entries[digest] == entry, f"flip at byte {offset}"


class TestCompaction:
    def test_compact_rewrites_to_exactly_the_live_set(self, tmp_path):
        path = tmp_path / "journal"
        writer = JournalWriter(path)
        writer.open(write_header=True)
        for i in range(50):
            writer.append("hot", {"v": float(i)})   # 49 dead versions
        writer.append("cold", {"v": -1.0})
        writer.compact({"hot": {"v": 49.0}, "cold": {"v": -1.0}})
        writer.sync()
        # The writer keeps appending to the *new* file.
        writer.append("post", {"v": 7.0})
        writer.close()
        recovery = read_journal(path)
        assert recovery.status == "loaded"
        assert recovery.entries == {"hot": {"v": 49.0},
                                    "cold": {"v": -1.0},
                                    "post": {"v": 7.0}}
        assert writer.compactions == 1

    def test_should_compact_thresholds(self, tmp_path):
        writer = JournalWriter(tmp_path / "journal")
        writer.records = 100
        assert not writer.should_compact(10)       # below absolute floor
        writer.records = 2000
        assert writer.should_compact(10)
        assert not writer.should_compact(1000)     # live set comparable

    def test_failed_replace_leaves_old_journal_and_no_litter(
            self, tmp_path):
        path = tmp_path / "journal"
        entries = _entries(3)
        _build_journal(path, entries)
        before = path.read_bytes()
        writer = JournalWriter(path, FaultyDiskOps(replace_fail=True))
        writer.open(write_header=False)
        with pytest.raises(OSError):
            writer.compact({"only": {"v": 1.0}})
        writer.close()
        assert path.read_bytes() == before       # old file untouched
        assert not list(tmp_path.glob("*.tmp"))  # temp cleaned up


_CRASH_WRITER = r"""
import sys
from repro.serve.cache import PersistentVsafeCache
cache = PersistentVsafeCache(sys.argv[1])
print("ready", flush=True)
i = 0
while True:
    cache.put(("child", i), {"kind": "sim", "v_end": float(i)})
    cache.flush()
    i += 1
"""


class TestConcurrentWriterCrash:
    def test_sigkill_mid_write_costs_at_most_a_torn_tail(self, tmp_path):
        """A second writer process is SIGKILLed at an arbitrary point in
        its append loop while the survivor keeps writing; the survivor
        and a cold restart both see every surviving record exact-valued
        and at most one torn tail dropped."""
        path = tmp_path / "journal"
        survivor = PersistentVsafeCache(path)
        survivor.put(("parent", 0), {"kind": "sim", "v_end": 100.0})
        survivor.flush()

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"),
                        os.path.join(os.getcwd(), "src")) if p)
        child = subprocess.Popen(
            [sys.executable, "-c", _CRASH_WRITER, str(path)],
            stdout=subprocess.PIPE, env=env)
        try:
            assert child.stdout.readline().strip() == b"ready"
            time.sleep(0.2)                      # let it write a while
            child.send_signal(signal.SIGKILL)    # crash mid-loop
            child.wait(timeout=10)
        finally:
            if child.poll() is None:             # pragma: no cover
                child.kill()
                child.wait()

        # The survivor is unaffected and keeps appending.
        survivor.put(("parent", 1), {"kind": "sim", "v_end": 101.0})
        survivor.flush()
        survivor.close()

        recovery = read_journal(path)
        assert recovery.status in ("loaded", "recovered")
        assert recovery.dropped_records <= 1     # at most the torn tail
        child_records = 0
        for digest, entry in recovery.entries.items():
            assert entry["kind"] == "sim"
            if entry["v_end"] >= 100.0:
                continue
            child_records += 1
        cold = PersistentVsafeCache(path)
        assert cold.get(("parent", 0))["v_end"] == 100.0
        assert cold.get(("parent", 1))["v_end"] == 101.0
        for i in range(child_records):
            assert cold.get(("child", i))["v_end"] == float(i)
        cold.close()
