"""The self-healing client: deadlines, backoff, reconnect, resend.

These tests script misbehaving servers directly (no daemon, no engine):
each scenario is a handler coroutine that reads request lines and
answers — or stalls, resets, sheds, or truncates — exactly as the fault
being tested requires, so every retry path is exercised deterministically
and fast.
"""

import asyncio
import json

import pytest

from repro.serve.errors import (
    DeadlineBudgetExceeded,
    MalformedRequestError,
    OverloadedError,
    ServeTimeoutError,
)
from repro.serve.protocol import canonical
from repro.serve.vsafe_client import RetryPolicy, VsafeClient


def _line(obj) -> bytes:
    return (canonical(obj) + "\n").encode("utf-8")


async def _serve(handler):
    """A scripted server on an ephemeral port; returns (server, port)."""
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


def _run(coro):
    return asyncio.run(coro)


class TestRetryPolicy:
    def test_seeded_sequences_replay(self):
        first = RetryPolicy(seed=7)
        a = [first.next_delay() for _ in range(5)]
        b = RetryPolicy(seed=7)
        assert [b.next_delay() for _ in range(5)] == a
        c = RetryPolicy(seed=8)
        assert [c.next_delay() for _ in range(5)] != a

    def test_delays_bounded_by_base_and_cap(self):
        policy = RetryPolicy(seed=0, base=0.01, cap=0.08)
        for _ in range(200):
            assert 0.01 <= policy.next_delay() <= 0.08

    def test_reset_restarts_the_ramp(self):
        policy = RetryPolicy(seed=3)
        first = policy.next_delay()
        for _ in range(10):
            policy.next_delay()
        policy.reset()
        assert policy.next_delay() == RetryPolicy(seed=3).next_delay() \
            or policy._prev <= policy.cap   # ramp restarted from base

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base=0.5, cap=0.1)


class TestSequentialRequests:
    def test_retries_retryable_server_errors(self):
        sheds = 2

        async def handler(reader, writer):
            nonlocal sheds
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                req = json.loads(raw)
                if sheds > 0:
                    sheds -= 1
                    writer.write(_line({"id": req["id"], "ok": False,
                                        "error": "overloaded",
                                        "message": "queue full"}))
                else:
                    writer.write(_line({"id": req["id"], "ok": True,
                                        "op": req["op"], "version": 1}))
                await writer.drain()

        async def scenario():
            server, port = await _serve(handler)
            async with VsafeClient("127.0.0.1", port, seed=1,
                                   backoff_base=0.001,
                                   backoff_cap=0.002) as client:
                body = await client.request({"op": "ping", "id": "p"})
                assert body["ok"] and client.retries == 2
            server.close()
            await server.wait_closed()

        _run(scenario())

    def test_non_retryable_error_raises_typed(self):
        async def handler(reader, writer):
            raw = await reader.readline()
            req = json.loads(raw)
            writer.write(_line({"id": req["id"], "ok": False,
                                "error": "bad-request",
                                "message": "nope"}))
            await writer.drain()

        async def scenario():
            server, port = await _serve(handler)
            async with VsafeClient("127.0.0.1", port) as client:
                with pytest.raises(MalformedRequestError):
                    await client.request({"op": "ping", "id": "p"})
                assert client.retries == 0
            server.close()
            await server.wait_closed()

        _run(scenario())

    def test_retryable_error_raises_when_retries_disabled(self):
        async def handler(reader, writer):
            raw = await reader.readline()
            req = json.loads(raw)
            writer.write(_line({"id": req["id"], "ok": False,
                                "error": "overloaded", "message": "full"}))
            await writer.drain()

        async def scenario():
            server, port = await _serve(handler)
            async with VsafeClient("127.0.0.1", port) as client:
                with pytest.raises(OverloadedError):
                    await client.request({"op": "ping", "id": "p"},
                                         retry_server_errors=False)
            server.close()
            await server.wait_closed()

        _run(scenario())

    def test_reconnects_and_resends_after_reset(self):
        drops = 1

        async def handler(reader, writer):
            nonlocal drops
            raw = await reader.readline()
            if not raw:
                return
            if drops > 0:
                drops -= 1
                writer.transport.abort()     # read it, answer nothing
                return
            req = json.loads(raw)
            writer.write(_line({"id": req["id"], "ok": True,
                                "op": req["op"], "version": 1}))
            await writer.drain()

        async def scenario():
            server, port = await _serve(handler)
            async with VsafeClient("127.0.0.1", port, seed=1,
                                   backoff_base=0.001,
                                   backoff_cap=0.002) as client:
                body = await client.request({"op": "ping", "id": "p"})
                assert body["ok"]
                assert client.reconnects == 2    # initial + one rebuild
                assert client.resends == 1       # ambiguous: resent
            server.close()
            await server.wait_closed()

        _run(scenario())

    def test_truncated_response_is_a_transport_error(self):
        truncate = True

        async def handler(reader, writer):
            nonlocal truncate
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                req = json.loads(raw)
                full = _line({"id": req["id"], "ok": True,
                              "op": req["op"], "version": 1})
                if truncate:
                    truncate = False
                    # A parseable fragment with no newline, then cut:
                    # must be rejected, not trusted.
                    writer.write(full[:-1])
                    await writer.drain()
                    writer.transport.abort()
                    return
                writer.write(full)
                await writer.drain()

        async def scenario():
            server, port = await _serve(handler)
            async with VsafeClient("127.0.0.1", port, seed=1,
                                   backoff_base=0.001,
                                   backoff_cap=0.002) as client:
                body = await client.request({"op": "ping", "id": "p"})
                assert body["ok"] and client.resends == 1
            server.close()
            await server.wait_closed()

        _run(scenario())

    def test_stalled_attempt_times_out_then_budget_exhausts(self):
        async def handler(reader, writer):
            while True:
                raw = await reader.readline()
                if not raw:
                    return                       # stall: never answer

        async def scenario():
            server, port = await _serve(handler)
            client = VsafeClient("127.0.0.1", port, deadline_s=0.5,
                                 attempt_timeout_s=0.1, seed=1,
                                 backoff_base=0.001, backoff_cap=0.002)
            try:
                with pytest.raises(DeadlineBudgetExceeded) as info:
                    await client.request({"op": "ping", "id": "p"})
                assert isinstance(info.value.last_error, ServeTimeoutError)
                assert client.retries >= 2
            finally:
                await client.close()
            server.close()
            await server.wait_closed()

        _run(scenario())

    def test_degraded_responses_are_counted(self):
        async def handler(reader, writer):
            raw = await reader.readline()
            req = json.loads(raw)
            writer.write(_line({"id": req["id"], "ok": True,
                                "op": req["op"], "degraded": True,
                                "entries": 0}))
            await writer.drain()

        async def scenario():
            server, port = await _serve(handler)
            async with VsafeClient("127.0.0.1", port) as client:
                body = await client.request({"op": "flush", "id": "f"})
                assert body["degraded"] and client.degraded_seen == 1
            server.close()
            await server.wait_closed()

        _run(scenario())


class TestPipelinedRequests:
    def test_request_many_requires_unique_ids(self):
        async def scenario():
            client = VsafeClient("127.0.0.1", 1)
            with pytest.raises(ValueError):
                await client.request_many([{"op": "ping", "id": "a"},
                                           {"op": "ping", "id": "a"}])
            with pytest.raises(ValueError):
                await client.request_many([{"op": "ping"}])
            with pytest.raises(ValueError):
                await client.request_many([{"op": "ping", "id": "a"}],
                                          window=0)

        _run(scenario())

    def test_resends_unanswered_after_mid_stream_reset(self):
        answered = 0

        async def handler(reader, writer):
            nonlocal answered
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                req = json.loads(raw)
                if answered == 3:
                    answered += 1                # reset exactly once
                    writer.transport.abort()
                    return
                answered += 1
                writer.write(_line({"id": req["id"], "ok": True,
                                    "op": req["op"], "version": 1}))
                await writer.drain()

        async def scenario():
            server, port = await _serve(handler)
            reqs = [{"op": "ping", "id": f"p{i}"} for i in range(8)]
            async with VsafeClient("127.0.0.1", port, seed=1,
                                   backoff_base=0.001,
                                   backoff_cap=0.002) as client:
                results = await client.request_many(reqs, window=4)
                assert sorted(results) == sorted(r["id"] for r in reqs)
                for rid, line in results.items():
                    assert json.loads(line)["id"] == rid
                assert client.resends >= 1 and client.reconnects == 2
            server.close()
            await server.wait_closed()

        _run(scenario())

    def test_shed_lines_returned_as_results_by_default(self):
        async def handler(reader, writer):
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                req = json.loads(raw)
                if req["id"].endswith("1"):
                    writer.write(_line({"id": req["id"], "ok": False,
                                        "error": "overloaded",
                                        "message": "full"}))
                else:
                    writer.write(_line({"id": req["id"], "ok": True,
                                        "op": req["op"], "version": 1}))
                await writer.drain()

        async def scenario():
            server, port = await _serve(handler)
            reqs = [{"op": "ping", "id": f"p{i}"} for i in range(4)]
            async with VsafeClient("127.0.0.1", port) as client:
                results = await client.request_many(reqs)
                shed = json.loads(results["p1"])
                assert shed["error"] == "overloaded"
                assert json.loads(results["p0"])["ok"]
            server.close()
            await server.wait_closed()

        _run(scenario())

    def test_retry_server_errors_requeues_sheds(self):
        shed_once = set()

        async def handler(reader, writer):
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                req = json.loads(raw)
                if req["id"] not in shed_once:
                    shed_once.add(req["id"])
                    writer.write(_line({"id": req["id"], "ok": False,
                                        "error": "overloaded",
                                        "message": "full"}))
                else:
                    writer.write(_line({"id": req["id"], "ok": True,
                                        "op": req["op"], "version": 1}))
                await writer.drain()

        async def scenario():
            server, port = await _serve(handler)
            reqs = [{"op": "ping", "id": f"p{i}"} for i in range(4)]
            async with VsafeClient("127.0.0.1", port, seed=1,
                                   backoff_base=0.001,
                                   backoff_cap=0.002) as client:
                results = await client.request_many(
                    reqs, retry_server_errors=True)
                assert all(json.loads(line)["ok"]
                           for line in results.values())
                assert client.retries == 4
            server.close()
            await server.wait_closed()

        _run(scenario())
