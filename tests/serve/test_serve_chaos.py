"""The service-level chaos campaign: injectors, proxy, trials, cases.

Unit tests cover the seeded machinery (injector round-trips, workload
determinism, the degraded-flag comparator, the misbehaving proxy); a
small set of real trials then boots actual daemon subprocesses to pin
the four-way classification end to end. Trials are deliberately tiny —
the full campaign is CI's job (``repro chaos --serve``).
"""

import asyncio
import json
from random import Random

import pytest

from repro.serve.chaos import (
    SERVICE_INJECTORS,
    STORM_DEADLINE_MS,
    ChaosProxy,
    ServeCampaignConfig,
    ServeChaosCase,
    ServeChaosReport,
    default_service_injector_dicts,
    lines_match,
    load_serve_chaos_case,
    make_trial_workload,
    run_serve_campaign,
    run_serve_trial,
    save_serve_chaos_case,
    service_injector_from_dict,
)
from repro.serve.protocol import encode_line


class TestInjectorRegistry:
    def test_default_dicts_cover_every_registered_injector(self):
        dicts = default_service_injector_dicts()
        assert sorted(d["injector"] for d in dicts) == \
            sorted(SERVICE_INJECTORS)
        assert "none" in SERVICE_INJECTORS

    @pytest.mark.parametrize("data", default_service_injector_dicts())
    def test_round_trip_through_dict(self, data):
        injector = service_injector_from_dict(data)
        assert injector.to_dict() == data
        again = service_injector_from_dict(injector.to_dict())
        assert again.to_dict() == data

    def test_unknown_injector_rejected(self):
        with pytest.raises(ValueError):
            service_injector_from_dict({"injector": "meteor-strike",
                                        "params": {}})

    def test_param_validation(self):
        with pytest.raises(ValueError):
            service_injector_from_dict(
                {"injector": "deadline-storm",
                 "params": {"fraction": 1.5}})

    def test_kinds_partition_the_fault_surface(self):
        kinds = {service_injector_from_dict(d).kind
                 for d in default_service_injector_dicts()}
        assert kinds == {"none", "proxy", "disk", "signal", "workload"}


class TestTrialWorkload:
    def test_seeded_workloads_replay_byte_identically(self):
        a = make_trial_workload(Random(42), 60, flush_ops=True,
                                storm_fraction=0.3)
        b = make_trial_workload(Random(42), 60, flush_ops=True,
                                storm_fraction=0.3)
        assert [encode_line(r) for r in a] == [encode_line(r) for r in b]

    def test_session_free_workloads_carry_no_device_state(self):
        reqs = make_trial_workload(Random(7), 80, session_ops=False)
        assert all("device" not in r for r in reqs)
        assert all(r["op"] != "report" for r in reqs)

    def test_storms_mark_only_queued_ops(self):
        reqs = make_trial_workload(Random(7), 120, flush_ops=True,
                                   storm_fraction=0.5)
        stormed = [r for r in reqs if r.get("deadline_ms")
                   == STORM_DEADLINE_MS]
        assert stormed
        assert all(r["op"] in ("admit", "simulate", "report")
                   for r in stormed)
        assert any(r["op"] == "flush" for r in reqs)


class TestLinesMatch:
    OK = b'{"id":"a","ok":true,"v_safe":2.2}\n'

    def test_byte_identity(self):
        assert lines_match(self.OK, self.OK)
        assert not lines_match(self.OK, self.OK.replace(b"2.2", b"2.3"))

    def test_strips_exactly_a_true_degraded_flag(self):
        degraded = b'{"degraded":true,"id":"a","ok":true,"v_safe":2.2}\n'
        assert not lines_match(degraded, self.OK)
        assert lines_match(degraded, self.OK, strip_degraded=True)

    def test_stripping_never_forgives_real_differences(self):
        wrong = b'{"degraded":true,"id":"a","ok":true,"v_safe":9.9}\n'
        assert not lines_match(wrong, self.OK, strip_degraded=True)
        false_flag = b'{"degraded":false,"id":"a","ok":true,"v_safe":2.2}\n'
        assert not lines_match(false_flag, self.OK, strip_degraded=True)
        assert not lines_match(b"not json\n", self.OK, strip_degraded=True)


class TestChaosProxy:
    def test_reset_profile_aborts_after_n_lines(self):
        async def echo(reader, writer):
            while True:
                line = await reader.readline()
                if not line:
                    return
                writer.write(line)
                await writer.drain()

        async def scenario():
            upstream = await asyncio.start_server(echo, "127.0.0.1", 0)
            port = upstream.sockets[0].getsockname()[1]
            proxy = ChaosProxy("127.0.0.1", port,
                               {"mode": "reset", "every": 3, "jitter": 0},
                               seed=1)
            await proxy.start()
            reader, writer = await asyncio.open_connection(
                proxy.host, proxy.port)
            try:
                for i in range(3):
                    writer.write(b'{"n":%d}\n' % i)
                    await writer.drain()
                    echoed = await asyncio.wait_for(reader.readline(), 5)
                    if not echoed:
                        break
                # The 4th line trips the abort: the stream dies.
                writer.write(b'{"n":99}\n')
                with pytest.raises((ConnectionError, asyncio.TimeoutError)):
                    tail = await asyncio.wait_for(reader.readline(), 5)
                    if not tail:
                        raise ConnectionResetError("proxy reset")
            finally:
                writer.close()
                await proxy.stop()
                upstream.close()
                await upstream.wait_closed()
            assert proxy.resets == 1 and proxy.faults_fired >= 1

        asyncio.run(scenario())

    def test_stall_profile_blackholes_responses(self):
        async def echo(reader, writer):
            while True:
                line = await reader.readline()
                if not line:
                    return
                writer.write(line)
                await writer.drain()

        async def scenario():
            upstream = await asyncio.start_server(echo, "127.0.0.1", 0)
            port = upstream.sockets[0].getsockname()[1]
            proxy = ChaosProxy("127.0.0.1", port,
                               {"mode": "stall", "after": 2, "jitter": 0},
                               seed=1)
            await proxy.start()
            reader, writer = await asyncio.open_connection(
                proxy.host, proxy.port)
            try:
                for i in range(2):
                    writer.write(b'{"n":%d}\n' % i)
                    await writer.drain()
                    assert await asyncio.wait_for(reader.readline(), 5)
                writer.write(b'{"n":2}\n')
                await writer.drain()
                # Half-open: the socket stays up, the answer never comes.
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(reader.readline(), 0.3)
            finally:
                writer.close()
                await proxy.stop()
                upstream.close()
                await upstream.wait_closed()
            assert proxy.stalled >= 1

        asyncio.run(scenario())


class TestRealTrials:
    """Tiny end-to-end trials against real daemon subprocesses."""

    def _config(self, injector_name):
        injectors = tuple(d for d in default_service_injector_dicts()
                          if d["injector"] == injector_name)
        assert injectors, injector_name
        return ServeCampaignConfig(seed=5, injectors=injectors, queries=10)

    def test_no_fault_trial_completes(self):
        outcome = run_serve_trial((0, self._config("none")))
        assert outcome.outcome == "completed" and not outcome.unsafe

    def test_connection_reset_trial_degrades_but_stays_safe(self):
        outcome = run_serve_trial((0, self._config("connection-reset")))
        assert outcome.outcome == "degraded_but_safe"

    def test_sigkill_trial_restarts_and_stays_safe(self):
        outcome = run_serve_trial((0, self._config("sigkill")))
        assert outcome.outcome == "degraded_but_safe"

    def test_small_campaign_report_is_pure_data(self):
        report = run_serve_campaign(
            2, seed=5, queries=10,
            injectors=[{"injector": "none", "params": {}},
                       {"injector": "deadline-storm",
                        "params": {"fraction": 0.4}}])
        assert report.ok
        data = report.to_dict()
        again = json.dumps(data, sort_keys=True)
        assert json.loads(again) == data
        assert data["counts"]["completed"] + \
            data["counts"]["degraded_but_safe"] == 2
        assert report.render()


class TestCases:
    def test_case_save_load_round_trip(self, tmp_path):
        case = ServeChaosCase(
            seed=5, index=3,
            injector={"injector": "sigkill",
                      "params": {"at_fraction": 0.5}},
            queries=10, queue_limit=256, drain_timeout=5.0,
            deadline_s=20.0, watchdog_s=120.0,
            original={"outcome": "brown_out"})
        path = tmp_path / "case.json"
        save_serve_chaos_case(case, path)
        loaded = load_serve_chaos_case(path)
        assert loaded == case
        assert loaded.to_dict() == case.to_dict()

    def test_foreign_documents_rejected(self, tmp_path):
        path = tmp_path / "case.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_serve_chaos_case(path)

    def test_replay_runs_the_recorded_trial(self):
        case = ServeChaosCase(
            seed=5, index=0,
            injector={"injector": "none", "params": {}},
            queries=8, queue_limit=256, drain_timeout=5.0,
            deadline_s=20.0, watchdog_s=120.0)
        outcome = case.replay()
        assert outcome.outcome == "completed"
