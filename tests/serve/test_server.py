"""The asyncio daemon end to end: bytes, backpressure, clean exits.

In-process servers (fast, deterministic — the dispatcher can be paused
to force queue states) plus one real-subprocess differential smoke via
:mod:`repro.serve.check`, which is the same entry point the CI
``serve-smoke`` job runs.
"""

import asyncio
import json
import time

import pytest

from repro import obs
from repro.serve.check import main as check_main, make_smoke_workload
from repro.serve.client import ExpectedAnswers, ServeClient, ServerProcess
from repro.serve.faultfs import FaultyDiskOps
from repro.serve.protocol import encode_line
from repro.serve.server import ServeConfig, VsafeServer

ADMIT = {"op": "admit", "id": "a0", "v_bank": 2.1,
         "app": "sense-store", "task": "sample"}


def _run(coro):
    return asyncio.run(coro)


async def _with_server(config, body):
    """Start a server, run ``body(server, client)``, stop, clean up."""
    server = VsafeServer(config)
    await server.start()
    runner = asyncio.ensure_future(server.serve_until_stopped())
    client = await ServeClient.connect(server.host, server.port)
    try:
        result = await body(server, client)
    finally:
        await client.close()
        server.stop()
        await runner
    return result


class TestEndToEnd:
    def test_served_bytes_match_the_oracle(self):
        async def body(server, client):
            oracle = ExpectedAnswers()
            for req in (
                {"op": "ping", "id": "p"},
                dict(ADMIT),
                {"op": "simulate", "id": "s", "v_start": 2.2,
                 "trace": [[0.01, 0.2]]},
                {"op": "report", "id": "r", "device": "d",
                 "outcome": "brownout"},
            ):
                assert await client.request_line(req) == \
                    oracle.expect_line(req)

        _run(_with_server(ServeConfig(), body))

    def test_malformed_lines_answer_inline_errors(self):
        async def body(server, client):
            client.writer.write(b"{not json}\n")
            await client.writer.drain()
            bad = json.loads(await client.recv_line())
            assert bad["ok"] is False and bad["error"] == "bad-request"
            # The connection survives a bad line.
            pong = json.loads(await client.request_line(
                {"op": "ping", "id": "p"}))
            assert pong["ok"]
            # A structurally invalid (but decodable) request too.
            missing = json.loads(await client.request_line(
                {"op": "admit", "id": "x"}))
            assert missing["error"] == "bad-request"

        _run(_with_server(ServeConfig(), body))

    def test_blank_lines_are_ignored(self):
        async def body(server, client):
            client.writer.write(b"\n\n" + encode_line({"op": "ping",
                                                       "id": "p"}))
            await client.writer.drain()
            assert json.loads(await client.recv_line())["ok"]

        _run(_with_server(ServeConfig(), body))

    def test_stats_are_deep_and_live(self):
        async def body(server, client):
            await client.request_line(dict(ADMIT))
            stats = json.loads(await client.request_line(
                {"op": "stats", "id": "st"}))
            assert stats["ok"]
            assert stats["batches"] == 1
            assert stats["engine"]["cache"]["entries"] >= 1
            assert stats["queue_limit"] == server.config.queue_limit

        _run(_with_server(ServeConfig(), body))


class TestBackpressure:
    def test_full_queue_sheds_with_overloaded(self):
        async def body(server, client):
            # Pause the dispatcher so the queue can only fill.
            server._dispatcher.cancel()
            await asyncio.gather(server._dispatcher,
                                 return_exceptions=True)
            first = dict(ADMIT)
            shed = {**ADMIT, "id": "a1"}
            await client.send(first)       # occupies the single slot
            await asyncio.sleep(0.05)      # let the handler enqueue it
            await client.send(shed)
            rejected = json.loads(await client.recv_line())
            assert rejected["id"] == "a1"
            assert rejected["error"] == "overloaded"
            assert server.shed == 1
            # Resume dispatch: the queued request must still be answered
            # and drain cleanly through shutdown.
            server._dispatcher = asyncio.ensure_future(
                server._dispatch_loop())
            answered = json.loads(await client.recv_line())
            assert answered["id"] == "a0" and answered["ok"]

        config = ServeConfig(queue_limit=1)
        _run(_with_server(config, body))

    def test_expired_deadline_rejects_before_the_kernel(self):
        async def body(server, client):
            server._dispatcher.cancel()
            await asyncio.gather(server._dispatcher,
                                 return_exceptions=True)
            await client.send({**ADMIT, "deadline_ms": 1.0})
            await asyncio.sleep(0.05)      # queued past its deadline
            server._dispatcher = asyncio.ensure_future(
                server._dispatch_loop())
            rejected = json.loads(await client.recv_line())
            assert rejected["error"] == "deadline"
            assert server.deadline_expired == 1
            assert server.engine.kernel_calls == 0
            assert server.engine.cache.stats()["misses"] == 0

        _run(_with_server(ServeConfig(deadline_ms=1.0), body))


class TestLifecycle:
    def test_shutdown_op_acks_drains_and_leaves_no_tasks(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"

        async def run():
            obs.enable()
            try:
                server = VsafeServer(ServeConfig(
                    metrics_out=str(metrics_path)))
                await server.start()
                runner = asyncio.ensure_future(
                    server.serve_until_stopped())
                client = await ServeClient.connect(server.host,
                                                   server.port)
                await client.request_line(dict(ADMIT))
                ack = json.loads(await client.request_line(
                    {"op": "shutdown", "id": "bye"}))
                assert ack["stopping"] is True
                await client.close()
                assert await runner == 0
                # Nothing left behind but this coroutine.
                leftovers = [t for t in asyncio.all_tasks()
                             if t is not asyncio.current_task()]
                assert leftovers == []
            finally:
                obs.disable()

        _run(run())
        payload = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert payload["serve"]["batches"] >= 1
        counters = payload["metrics"]["counters"]
        assert counters["serve.requests"] >= 1
        assert "serve.batch_size" in payload["metrics"]["histograms"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServeConfig(queue_limit=0)
        with pytest.raises(ValueError):
            ServeConfig(deadline_ms=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(drain_timeout=0.0)

    def test_wedged_flush_cannot_hang_shutdown(self, tmp_path):
        """The satellite contract: SIGTERM/stop() drains within
        ``drain_timeout`` even when the cache flush never returns."""
        async def run():
            config = ServeConfig(cache_path=str(tmp_path / "cache"),
                                 drain_timeout=0.5)
            server = VsafeServer(config)
            await server.start()
            runner = asyncio.ensure_future(server.serve_until_stopped())
            client = await ServeClient.connect(server.host, server.port)
            await client.request_line(dict(ADMIT))
            await client.close()

            def wedged_flush():
                time.sleep(60.0)       # a disk that never answers

            server.engine.cache.flush = wedged_flush
            started = time.perf_counter()
            server.stop()
            assert await runner == 0
            elapsed = time.perf_counter() - started
            assert elapsed < 10.0      # bounded, not the 60s wedge
            assert server.drain_timed_out

        _run(run())


class TestCrashSafety:
    def test_flush_op_reports_durable_entries(self, tmp_path):
        async def body(server, client):
            await client.request_line(dict(ADMIT))
            flushed = json.loads(await client.request_line(
                {"op": "flush", "id": "f"}))
            assert flushed["ok"] and flushed["entries"] >= 1
            assert "degraded" not in flushed

        _run(_with_server(
            ServeConfig(cache_path=str(tmp_path / "cache")), body))

    def test_degraded_tier_flags_responses_and_fails_flush(self, tmp_path):
        async def run():
            config = ServeConfig(cache_path=str(tmp_path / "cache"))
            server = VsafeServer(config)
            # Fail the first fsync: the tier degrades on the first flush.
            server.engine.cache._writer.disk = FaultyDiskOps(
                fsync_fail_after=0)
            await server.start()
            runner = asyncio.ensure_future(server.serve_until_stopped())
            client = await ServeClient.connect(server.host, server.port)
            try:
                degraded = json.loads(await client.request_line(
                    {"op": "flush", "id": "f"}))
                assert degraded["ok"] is False
                assert degraded["error"] == "degraded"
                # Queries still answer — with the degraded marker.
                answer = json.loads(await client.request_line(dict(ADMIT)))
                assert answer["ok"] and answer["degraded"] is True
                stats = json.loads(await client.request_line(
                    {"op": "stats", "id": "st"}))
                assert stats["engine"]["cache"]["degraded"] is True
            finally:
                await client.close()
                server.stop()
                await runner

        _run(run())

    def test_byte_identical_reports_are_deduplicated(self):
        async def body(server, client):
            report = {"op": "report", "id": "r", "device": "d",
                      "outcome": "brownout"}
            first = await client.request_line(report)
            # A byte-identical resend replays the recorded response
            # instead of double-counting the brownout.
            second = await client.request_line(report)
            assert second == first
            assert json.loads(first)["brownouts"] == 1
            assert server.engine.replayed_reports == 1
            # A *different* report still applies.
            third = json.loads(await client.request_line(
                {**report, "id": "r2"}))
            assert third["brownouts"] == 2

        _run(_with_server(ServeConfig(), body))

    def test_warm_restart_survives_sigkill(self, tmp_path):
        """The daemon is SIGKILLed; a successor on the same journal
        serves the same bytes for the same queries."""
        async def ask(host, port, reqs):
            client = await ServeClient.connect(host, port)
            try:
                return [await client.request_line(dict(r)) for r in reqs]
            finally:
                await client.close()

        reqs = [dict(ADMIT), {"op": "admit", "id": "a1", "v_bank": 1.9,
                              "app": "sense-tx", "task": "radio"}]
        cache = str(tmp_path / "cache")
        with ServerProcess("--cache", cache) as first:
            before = asyncio.run(ask(first.host, first.port, reqs))
            flushed = asyncio.run(ask(first.host, first.port,
                                      [{"op": "flush", "id": "f"}]))
            assert json.loads(flushed[0])["ok"]
            port = first.port
            first.kill()
        with ServerProcess("--cache", cache, port=port) as second:
            after = asyncio.run(ask(second.host, second.port, reqs))
            stats = asyncio.run(ask(second.host, second.port,
                                    [{"op": "stats", "id": "st"}]))
            assert asyncio.run(ask(
                second.host, second.port,
                [{"op": "shutdown", "id": "bye"}]))
            assert second.wait() == 0
        assert after == before
        loaded = json.loads(stats[0])["engine"]["cache"]
        assert loaded["load_status"] in ("loaded", "recovered")
        assert loaded["loaded_entries"] >= 1

    def test_sigterm_drains_to_exit_zero(self):
        with ServerProcess() as server:
            async def ping():
                client = await ServeClient.connect(server.host,
                                                   server.port)
                try:
                    return json.loads(await client.request_line(
                        {"op": "ping", "id": "p"}))
                finally:
                    await client.close()

            assert asyncio.run(ping())["ok"]
            server.terminate()             # SIGTERM, not the shutdown op
            assert server.wait(timeout=30) == 0


class TestSubprocessSmoke:
    def test_differential_check_entry_point(self, tmp_path):
        # The CI serve-smoke job, miniaturized: a real `python -m repro
        # serve` subprocess, a seeded mixed workload, every response
        # byte-compared against the library oracle, rc 0, metrics file.
        metrics = tmp_path / "serve-metrics.json"
        rc = check_main(["--queries", "40", "--devices", "4",
                         "--connections", "3", "--seed", "1",
                         "--metrics-out", str(metrics)])
        assert rc == 0
        payload = json.loads(metrics.read_text(encoding="utf-8"))
        assert payload["serve"]["shed"] == 0

    def test_workload_generator_is_seeded_and_partitioned(self):
        lanes = make_smoke_workload(seed=3, queries=60, devices=5,
                                    connections=4)
        again = make_smoke_workload(seed=3, queries=60, devices=5,
                                    connections=4)
        assert lanes == again
        assert sum(len(lane) for lane in lanes) == 60
        # Device affinity: every device's requests live on one lane.
        home = {}
        for lane_no, lane in enumerate(lanes):
            for req in lane:
                device = req.get("device")
                if device is not None:
                    assert home.setdefault(device, lane_no) == lane_no
