"""V_safe estimators: the broken baselines and the Culpeo adapters."""

import pytest

from repro.harness.ground_truth import find_true_vsafe
from repro.loads.synthetic import pulse_with_compute_tail, uniform_load
from repro.sched.estimators import (
    CatnapEstimator,
    CulpeoPgEstimator,
    CulpeoREstimator,
    EnergyDirectEstimator,
    EnergyVEstimator,
    standard_estimators,
)


class TestEnergyDirect:
    def test_scales_with_energy(self, system, model):
        est = EnergyDirectEstimator(model)
        small = est.estimate(system, uniform_load(0.005, 0.010).trace)
        large = est.estimate(system, uniform_load(0.005, 0.100).trace)
        assert large.v_safe > small.v_safe

    def test_no_drop_term(self, system, model):
        est = EnergyDirectEstimator(model)
        result = est.estimate(system, uniform_load(0.050, 0.010).trace)
        assert result.v_delta == 0.0
        assert result.demand.v_delta == 0.0

    def test_unsafe_for_high_current(self, system, model):
        est = EnergyDirectEstimator(model)
        load = uniform_load(0.050, 0.010)
        truth = find_true_vsafe(system, load.trace)
        assert est.estimate(system, load.trace).v_safe < truth.v_safe - 0.1


class TestEnergyV:
    def test_tracks_energy_direct(self, system, model):
        load = uniform_load(0.010, 0.100)
        ev = EnergyVEstimator(model).estimate(system, load.trace)
        ed = EnergyDirectEstimator(model).estimate(system, load.trace)
        # The paper notes Energy-V "closely tracks" direct measurement.
        assert ev.v_safe == pytest.approx(ed.v_safe, abs=0.05)

    def test_misses_esr_entirely(self, system, model):
        load = uniform_load(0.050, 0.010)
        truth = find_true_vsafe(system, load.trace)
        ev = EnergyVEstimator(model).estimate(system, load.trace)
        assert ev.v_safe < truth.v_safe - 0.2


class TestCatnap:
    def test_named_variants(self, model):
        assert CatnapEstimator.measured(model).name == "Catnap-Measured"
        assert CatnapEstimator.slow(model).name == "Catnap-Slow"

    def test_fast_read_more_conservative_than_slow(self, system, model):
        # On a uniform load, a prompt read catches pre-rebound voltage.
        load = uniform_load(0.050, 0.010)
        fast = CatnapEstimator.measured(model).estimate(system, load.trace)
        slow = CatnapEstimator.slow(model).estimate(system, load.trace)
        assert fast.v_safe > slow.v_safe

    def test_compute_tail_hides_the_pulse_drop(self, system, model):
        # With a 100 ms tail, both reads land long after the pulse
        # rebounded: they converge and both miss the ESR requirement.
        load = pulse_with_compute_tail(0.050, 0.010)
        fast = CatnapEstimator.measured(model).estimate(system, load.trace)
        slow = CatnapEstimator.slow(model).estimate(system, load.trace)
        assert fast.v_safe == pytest.approx(slow.v_safe, abs=0.03)
        truth = find_true_vsafe(system, load.trace)
        assert fast.v_safe < truth.v_safe - 0.15

    def test_validation(self, model):
        with pytest.raises(ValueError):
            CatnapEstimator(model, measure_delay=-1.0)


class TestCulpeoAdapters:
    def test_pg_adapter(self, system, model):
        est = CulpeoPgEstimator(model)
        result = est.estimate(system, uniform_load(0.010, 0.010).trace)
        assert result.method == "culpeo-pg"
        assert est.name == "Culpeo-PG"

    def test_r_adapter_variants(self, system, calculator):
        isr = CulpeoREstimator(calculator, "isr")
        uarch = CulpeoREstimator(calculator, "uarch")
        assert isr.name == "Culpeo-ISR"
        assert uarch.name == "Culpeo-uArch"
        load = uniform_load(0.025, 0.010)
        assert isr.estimate(system, load.trace).v_safe > 1.6
        assert uarch.estimate(system, load.trace).v_safe > 1.6

    def test_r_adapter_rejects_unknown_variant(self, calculator):
        with pytest.raises(ValueError):
            CulpeoREstimator(calculator, "fpga")

    def test_standard_lineup(self, system, model):
        names = [e.name for e in standard_estimators(system, model)]
        assert names == ["Catnap-Measured", "Culpeo-PG", "Culpeo-ISR",
                         "Culpeo-uArch"]
