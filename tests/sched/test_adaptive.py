"""Adaptive re-profiling scheduler under changing harvest."""

import pytest

from repro.loads.trace import CurrentTrace
from repro.power.harvester import CallableHarvester, ConstantPowerHarvester
from repro.power.system import capybara_power_system
from repro.sched.adaptive import AdaptiveCulpeoScheduler
from repro.sched.scheduler import EventOutcome
from repro.sched.task import Task, TaskChain
from repro.sim.engine import PowerSystemSimulator


def sweep_chain(deadline=30.0):
    """An energy-dominated sensor sweep: 4 mA for 2.5 s."""
    task = Task("sweep", CurrentTrace.constant(0.004, 2.5))
    return TaskChain("SWEEP", [task], deadline=deadline)


def step_harvester(strong=10e-3, weak=0.5e-3, t_drop=45.0):
    """Strong harvest that collapses at ``t_drop`` (clouds roll in)."""
    return CallableHarvester(
        lambda t: strong if t < t_drop else weak)


def make_engine(harvester):
    system = capybara_power_system(harvester=harvester)
    system.rest_at(system.monitor.v_high)
    return PowerSystemSimulator(system)


class TestAdaptiveScheduler:
    def test_initial_profile_pass_compiles_policy(self):
        engine = make_engine(ConstantPowerHarvester(5e-3))
        chain = sweep_chain()
        sched = AdaptiveCulpeoScheduler(engine, [chain])
        assert sched.reprofile_count == 1
        assert sched.policy.gate("SWEEP", 0) > 1.6

    def test_steady_power_never_reprofiles(self):
        engine = make_engine(ConstantPowerHarvester(5e-3))
        chain = sweep_chain()
        sched = AdaptiveCulpeoScheduler(engine, [chain])
        arrivals = [(t, chain) for t in (10.0, 40.0, 70.0)]
        result = sched.run(arrivals, duration=100.0)
        assert sched.reprofile_count == 1
        assert result.capture_fraction() == 1.0

    def test_power_drop_triggers_reprofile_and_raises_gate(self):
        engine = make_engine(step_harvester())
        chain = sweep_chain(deadline=20.0)
        sched = AdaptiveCulpeoScheduler(engine, [chain])
        stale_gate = sched.policy.gate("SWEEP", 0)
        # After the drop, demand (30 mJ / 20 s) outruns income: the buffer
        # ratchets down toward the gate with every event.
        arrivals = [(t, chain) for t in
                    [10.0] + [60.0 + 20.0 * i for i in range(9)]]
        result = sched.run(arrivals, duration=250.0)
        assert sched.reprofile_count >= 2
        fresh_gate = sched.policy.gate("SWEEP", 0)
        # Profiling under strong harvest understated the energy demand;
        # the post-drop profile must demand a higher start voltage.
        assert fresh_gate > stale_gate + 0.02
        # And with the corrected gate the scheduler never browns out —
        # deadline losses are acceptable under an energy deficit,
        # brown-outs (and their forced full recharges) are not.
        assert result.brownout_count == 0

    def test_stale_gates_brown_out_without_adaptation(self):
        """The failure the adaptive policy prevents, shown on the plain
        scheduler: profile at 10 mW, run at 1.5 mW."""
        engine = make_engine(step_harvester())
        chain = sweep_chain(deadline=20.0)
        sched = AdaptiveCulpeoScheduler(engine, [chain])
        # Freeze the stale policy by disabling the monitor's trigger.
        sched.monitor.threshold = float("inf")
        arrivals = [(t, chain) for t in
                    [10.0] + [60.0 + 20.0 * i for i in range(9)]]
        result = sched.run(arrivals, duration=250.0)
        assert result.brownout_count >= 1
        reasons = result.losses_by_reason()
        assert EventOutcome.LOST_BROWNOUT in reasons
