"""Brown-out backoff: policy derates and the adaptive scheduler's use."""

import pytest

from repro.loads.trace import CurrentTrace
from repro.power.harvester import ConstantPowerHarvester
from repro.power.system import capybara_power_system
from repro.sched.adaptive import AdaptiveCulpeoScheduler
from repro.sched.estimators import CulpeoREstimator
from repro.sched.policy import CulpeoPolicy
from repro.sched.task import Task, TaskChain
from repro.sim.engine import PowerSystemSimulator
from repro.sim.faults import FaultyAdc


@pytest.fixture
def chains():
    sense = Task("sense", CurrentTrace.constant(0.003, 0.3))
    return [TaskChain("report", [sense], deadline=5.0)]


@pytest.fixture
def policy(system, calculator, chains):
    return CulpeoPolicy.build(system, CulpeoREstimator(calculator, "isr"),
                              chains, [])


class TestPolicyDerate:
    def test_no_derate_means_base_gate(self, policy):
        assert policy.derate == {}
        base = policy.gate("report", 0)
        assert policy.v_off < base <= policy.v_high

    def test_derate_adds_on_top_of_the_compiled_gate(self, policy):
        base = policy.gate("report", 0)
        policy.derate["report"] = 0.04
        assert policy.gate("report", 0) == pytest.approx(base + 0.04)

    def test_derated_gate_caps_at_v_high(self, policy):
        policy.derate["report"] = 10.0
        assert policy.gate("report", 0) == pytest.approx(policy.v_high)

    def test_unknown_chain_still_raises(self, policy):
        policy.derate["ghost"] = 0.1
        with pytest.raises(KeyError):
            policy.gate("ghost", 0)


def make_scheduler():
    system = capybara_power_system(harvester=ConstantPowerHarvester(5e-3))
    system.rest_at(system.monitor.v_high)
    engine = PowerSystemSimulator(system)
    sense = Task("sense", CurrentTrace.constant(0.003, 0.3))
    chain = TaskChain("report", [sense], deadline=5.0)
    return AdaptiveCulpeoScheduler(engine, [chain]), chain


class TestAdaptiveBackoff:
    def test_backoff_doubles_per_brownout(self):
        sched, chain = make_scheduler()
        sched._raise_derate(chain.name)
        assert sched.policy.derate[chain.name] == pytest.approx(0.02)
        sched._raise_derate(chain.name)
        assert sched.policy.derate[chain.name] == pytest.approx(0.04)
        assert sched.brownout_backoffs == 2

    def test_backoff_caps_at_derate_max(self):
        sched, chain = make_scheduler()
        for _ in range(16):
            sched._raise_derate(chain.name)
        assert sched.policy.derate[chain.name] == pytest.approx(
            AdaptiveCulpeoScheduler.DERATE_MAX)

    def test_success_decays_and_clears(self):
        sched, chain = make_scheduler()
        sched._raise_derate(chain.name)
        sched._decay_derate(chain.name)
        assert sched.policy.derate[chain.name] == pytest.approx(0.01)
        for _ in range(8):
            sched._decay_derate(chain.name)
        assert chain.name not in sched.policy.derate

    def test_decay_without_derate_is_a_noop(self):
        sched, chain = make_scheduler()
        sched._decay_derate(chain.name)
        assert chain.name not in sched.policy.derate

    def test_discarded_profiles_degrade_to_v_high_gating(self):
        # Corrupt the runtime's ADC so every re-profile capture is
        # discarded, forget the earlier estimate, and re-profile: the
        # policy must compile a V_high fallback, not crash or gate low.
        sched, chain = make_scheduler()
        bad = FaultyAdc(bits=12, v_ref=2.56, dropout_rate=1.0, seed=3)
        sched.runtime._adc = bad
        sched.runtime._sampler.adc = bad
        sched.policy.estimates.pop("sense")
        sched._profile_all()
        estimate = sched.policy.estimates["sense"]
        assert "fallback" in estimate.method
        assert estimate.v_safe == pytest.approx(sched.policy.v_high)
        assert sched.policy.gate("report", 0) == pytest.approx(
            sched.policy.v_high)

    def test_prior_estimate_survives_a_discarded_reprofile(self):
        # With a previous good estimate on file, a poisoned re-profile
        # keeps the stale-but-trusted value instead of jumping to V_high.
        sched, chain = make_scheduler()
        before = sched.policy.estimates["sense"]
        bad = FaultyAdc(bits=12, v_ref=2.56, dropout_rate=1.0, seed=4)
        sched.runtime._adc = bad
        sched.runtime._sampler.adc = bad
        sched._profile_all()
        assert sched.policy.estimates["sense"] == before
