"""Task and TaskChain models."""

import pytest

from repro.loads.trace import CurrentTrace
from repro.sched.task import Priority, Task, TaskChain


def make_task(name="t", current=0.01, duration=0.01,
              priority=Priority.HIGH):
    return Task(name, CurrentTrace.constant(current, duration), priority)


class TestTask:
    def test_duration_from_trace(self):
        assert make_task(duration=0.25).duration == pytest.approx(0.25)

    def test_default_priority_high(self):
        task = Task("x", CurrentTrace.constant(0.01, 0.01))
        assert task.priority is Priority.HIGH

    def test_name_required(self):
        with pytest.raises(ValueError):
            Task("", CurrentTrace.constant(0.01, 0.01))

    def test_str(self):
        assert str(make_task("radio")) == "radio"


class TestTaskChain:
    def test_total_duration(self):
        chain = TaskChain("c", [make_task("a", duration=0.1),
                                make_task("b", duration=0.2)],
                          deadline=1.0)
        assert chain.total_duration == pytest.approx(0.3)

    def test_task_names(self):
        chain = TaskChain("c", [make_task("a"), make_task("b")],
                          deadline=1.0)
        assert chain.task_names() == ["a", "b"]

    def test_tasks_frozen_as_tuple(self):
        tasks = [make_task("a")]
        chain = TaskChain("c", tasks, deadline=1.0)
        tasks.append(make_task("b"))
        assert len(chain.tasks) == 1

    def test_default_deadline_infinite(self):
        chain = TaskChain("c", [make_task()])
        assert chain.deadline == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskChain("c", [], deadline=1.0)
        with pytest.raises(ValueError):
            TaskChain("c", [make_task()], deadline=0.0)
