"""Retry-after-reboot chain semantics (the paper's RR failure mode)."""

import pytest

from repro.loads.trace import CurrentTrace
from repro.power.harvester import ConstantPowerHarvester
from repro.power.system import capybara_power_system
from repro.sched.estimators import CatnapEstimator
from repro.sched.policy import CatnapPolicy
from repro.sched.scheduler import EventOutcome, IntermittentScheduler
from repro.sched.task import Task, TaskChain
from repro.sim.engine import PowerSystemSimulator


def heavy_chain():
    sense = Task("sense", CurrentTrace.constant(0.003, 0.400))
    burst = Task("burst", CurrentTrace.constant(0.050, 0.100))
    return TaskChain("report", [sense, burst], deadline=3.0)


def make_sched(retry, harvest=8e-3):
    system = capybara_power_system(
        harvester=ConstantPowerHarvester(harvest))
    system.rest_at(system.monitor.v_high)
    model = system.characterize()
    chain = heavy_chain()
    policy = CatnapPolicy.build(system, CatnapEstimator.measured(model),
                                [chain])
    engine = PowerSystemSimulator(system)
    # Start right at the (too-low) energy gate so the burst browns out.
    engine.discharge_to(policy.gate("report", 0) + 0.01)
    system.monitor.force_enabled(True)
    sched = IntermittentScheduler(engine, policy,
                                  retry_after_reboot=retry)
    return sched, chain


class TestRetryAfterReboot:
    def test_without_retry_event_is_simply_lost(self):
        sched, chain = make_sched(retry=False)
        result = sched.run([(0.1, chain)], duration=120.0)
        assert result.events[0].outcome is EventOutcome.LOST_BROWNOUT
        assert result.events[0].completion_time is None

    def test_with_retry_chain_finishes_late(self):
        sched, chain = make_sched(retry=True)
        result = sched.run([(0.1, chain)], duration=120.0)
        event = result.events[0]
        # The chain resumed after the reboot and completed — but far past
        # its 3-second deadline, so the event still counts as lost.
        assert event.outcome is EventOutcome.LOST_LATE
        assert event.completion_time is not None
        assert event.completion_time > event.deadline

    def test_retry_burns_extra_energy(self):
        # Weak harvest, trial cut shortly after the post-reboot window:
        # the retrying system spends its freshly recharged energy on a
        # report that is already late, ending visibly lower.
        plain, chain_a = make_sched(retry=False, harvest=2e-3)
        retrying, chain_b = make_sched(retry=True, harvest=2e-3)
        r_plain = plain.run([(0.1, chain_a)], duration=45.5)
        r_retry = retrying.run([(0.1, chain_b)], duration=45.5)
        # Capture rate is identical (the event is lost either way)...
        assert r_plain.capture_fraction() == r_retry.capture_fraction() == 0.0
        # ...but only the retrying system ran the chain to (late)
        # completion, paying for it out of the buffer.
        v_plain = plain.engine.system.buffer.terminal_voltage
        v_retry = retrying.engine.system.buffer.terminal_voltage
        assert v_retry < v_plain - 0.01

    def test_retry_does_not_loop_on_repeated_failure(self):
        # Nearly no harvest: the retry's recharge stalls and the chain
        # cannot finish; the scheduler must not spin forever.
        sched, chain = make_sched(retry=True, harvest=1e-5)
        result = sched.run([(0.1, chain)], duration=60.0)
        assert result.events[0].outcome in (
            EventOutcome.LOST_BROWNOUT, EventOutcome.LOST_DEADLINE_WAITING)
