"""The event-driven intermittent scheduler."""

import pytest

from repro.loads.trace import CurrentTrace
from repro.power.harvester import ConstantPowerHarvester
from repro.power.system import capybara_power_system
from repro.sched.estimators import CatnapEstimator, CulpeoREstimator
from repro.sched.policy import CatnapPolicy, CulpeoPolicy
from repro.sched.scheduler import (
    EventOutcome,
    IntermittentScheduler,
    ScheduleResult,
)
from repro.sched.task import Priority, Task, TaskChain
from repro.sim.engine import PowerSystemSimulator


def powered_system(harvest=3e-3):
    system = capybara_power_system(
        harvester=ConstantPowerHarvester(harvest))
    system.rest_at(system.monitor.v_high)
    return system


def easy_chain(deadline=5.0):
    task = Task("blink", CurrentTrace.constant(0.002, 0.010))
    return TaskChain("easy", [task], deadline=deadline)


def heavy_chain(deadline=5.0):
    task = Task("burst", CurrentTrace.constant(0.050, 0.100))
    return TaskChain("heavy", [task], deadline=deadline)


def build_sched(system, chains, kind="culpeo", background=None):
    model = system.characterize()
    bg = [background] if background else []
    if kind == "culpeo":
        from repro.core.runtime import CulpeoRCalculator
        calc = CulpeoRCalculator(efficiency=model.efficiency,
                                 v_off=model.v_off, v_high=model.v_high)
        policy = CulpeoPolicy.build(system, CulpeoREstimator(calc, "isr"),
                                    chains, bg)
    else:
        policy = CatnapPolicy.build(system, CatnapEstimator.measured(model),
                                    chains, bg)
    engine = PowerSystemSimulator(system)
    return IntermittentScheduler(engine, policy, background=background)


class TestBasicOperation:
    def test_captures_easy_periodic_events(self):
        system = powered_system()
        chain = easy_chain()
        sched = build_sched(system, [chain])
        arrivals = [(t, chain) for t in (1.0, 3.0, 5.0)]
        result = sched.run(arrivals, duration=10.0)
        assert result.capture_fraction() == 1.0
        assert result.brownout_count == 0

    def test_events_after_duration_ignored(self):
        system = powered_system()
        chain = easy_chain()
        sched = build_sched(system, [chain])
        result = sched.run([(1.0, chain), (99.0, chain)], duration=10.0)
        assert len(result.events) == 1

    def test_empty_arrivals(self):
        system = powered_system()
        sched = build_sched(system, [easy_chain()])
        result = sched.run([], duration=2.0)
        assert result.capture_fraction() == 1.0
        assert result.events == []

    def test_duration_validation(self):
        system = powered_system()
        sched = build_sched(system, [easy_chain()])
        with pytest.raises(ValueError):
            sched.run([], duration=0.0)


class TestGating:
    def test_waits_for_charge_before_heavy_task(self):
        system = powered_system(harvest=5e-3)
        system.rest_at(1.75)  # below the heavy chain's gate
        chain = heavy_chain(deadline=60.0)
        sched = build_sched(system, [chain])
        result = sched.run([(0.5, chain)], duration=90.0)
        assert result.capture_fraction() == 1.0
        event = result.events[0]
        # Completion must come after a recharge wait, not instantly.
        assert event.completion_time > 1.0

    def test_deadline_expires_while_waiting(self):
        system = powered_system(harvest=1e-4)  # nearly no power
        system.rest_at(1.75)
        chain = heavy_chain(deadline=2.0)
        sched = build_sched(system, [chain])
        result = sched.run([(0.5, chain)], duration=20.0)
        assert result.capture_fraction() == 0.0
        assert result.events[0].outcome is \
            EventOutcome.LOST_DEADLINE_WAITING


class TestBrownout:
    def test_energy_only_policy_browns_out_on_heavy_chain(self):
        system = powered_system(harvest=3e-3)
        chain = heavy_chain(deadline=30.0)
        sched = build_sched(system, [chain], kind="catnap")
        # Drain near the (too-low) catnap gate first, then the event hits.
        sched.engine.system.rest_at(sched.policy.gate("heavy", 0) + 0.01)
        result = sched.run([(0.1, chain)], duration=30.0)
        assert result.brownout_count >= 1
        assert result.events[0].outcome is EventOutcome.LOST_BROWNOUT

    def test_device_off_window_expires_events(self):
        system = powered_system(harvest=2e-3)
        chain = heavy_chain(deadline=3.0)
        sched = build_sched(system, [chain], kind="catnap")
        sched.engine.system.rest_at(sched.policy.gate("heavy", 0) + 0.01)
        # First event browns out; the recharge to V_high takes ~40 s, so
        # the second event expires while the device is off.
        result = sched.run([(0.1, chain), (5.0, chain)], duration=60.0)
        outcomes = [e.outcome for e in result.events]
        assert outcomes[0] is EventOutcome.LOST_BROWNOUT
        assert outcomes[1] in (EventOutcome.LOST_DEVICE_OFF,
                               EventOutcome.LOST_DEADLINE_WAITING)
        assert result.time_off > 1.0


class TestBackground:
    def test_background_runs_only_above_threshold(self):
        system = powered_system(harvest=2e-3)
        chain = easy_chain()
        background = Task("bg", CurrentTrace.constant(0.0025, 0.050),
                          Priority.LOW)
        sched = build_sched(system, [chain], background=background)
        result = sched.run([], duration=20.0)
        assert result.background_time > 0
        # Voltage must not have been dragged below the reserve threshold
        # by more than one slice's worth of drain.
        assert sched.engine.system.buffer.terminal_voltage >= \
            sched.policy.background_threshold - 0.05

    def test_no_background_configured(self):
        system = powered_system()
        sched = build_sched(system, [easy_chain()])
        result = sched.run([], duration=5.0)
        assert result.background_time == 0.0


class TestScheduleResult:
    def test_capture_fraction_by_chain(self):
        result = ScheduleResult(policy_name="x", duration=10.0)
        from repro.sched.scheduler import EventRecord
        result.events = [
            EventRecord("a", 0.0, 1.0, EventOutcome.CAPTURED),
            EventRecord("a", 2.0, 3.0, EventOutcome.LOST_BROWNOUT),
            EventRecord("b", 0.0, 1.0, EventOutcome.CAPTURED),
        ]
        assert result.capture_fraction("a") == pytest.approx(0.5)
        assert result.capture_fraction("b") == pytest.approx(1.0)
        assert result.capture_fraction() == pytest.approx(2 / 3)

    def test_losses_by_reason(self):
        result = ScheduleResult(policy_name="x", duration=10.0)
        from repro.sched.scheduler import EventRecord
        result.events = [
            EventRecord("a", 0.0, 1.0, EventOutcome.LOST_BROWNOUT),
            EventRecord("a", 2.0, 3.0, EventOutcome.LOST_BROWNOUT),
            EventRecord("a", 4.0, 5.0, EventOutcome.CAPTURED),
        ]
        reasons = result.losses_by_reason()
        assert reasons[EventOutcome.LOST_BROWNOUT] == 2

    def _latency_result(self):
        from repro.sched.scheduler import EventRecord
        result = ScheduleResult(policy_name="x", duration=10.0)
        result.events = [
            EventRecord("a", 0.0, 9.0, EventOutcome.CAPTURED,
                        completion_time=0.5),
            EventRecord("a", 2.0, 9.0, EventOutcome.CAPTURED,
                        completion_time=4.0),
            EventRecord("b", 3.0, 9.0, EventOutcome.CAPTURED,
                        completion_time=3.1),
            EventRecord("a", 5.0, 6.0, EventOutcome.LOST_BROWNOUT),
        ]
        return result

    def test_response_times(self):
        result = self._latency_result()
        assert sorted(result.response_times()) == \
            pytest.approx([0.1, 0.5, 2.0])
        assert result.response_times("b") == pytest.approx([0.1])

    def test_response_percentile(self):
        result = self._latency_result()
        assert result.response_percentile(0) == pytest.approx(0.1)
        assert result.response_percentile(100) == pytest.approx(2.0)
        assert result.response_percentile(50) == pytest.approx(0.5)

    def test_response_percentile_validation(self):
        result = self._latency_result()
        with pytest.raises(ValueError):
            result.response_percentile(101)
        empty = ScheduleResult(policy_name="x", duration=1.0)
        with pytest.raises(ValueError):
            empty.response_percentile(50)
