"""Chain gate helpers."""

import math

import pytest

from repro.core.model import TaskDemand
from repro.sched.feasibility import chain_gate_voltage, energy_only_gate

V_OFF = 1.6


class TestGates:
    def test_energy_only_ignores_drops(self):
        demands = [TaskDemand(0.2, 0.5)]
        assert energy_only_gate(demands, V_OFF) == \
            pytest.approx(math.sqrt(V_OFF ** 2 + 0.2))

    def test_chain_gate_includes_drops(self):
        demands = [TaskDemand(0.2, 0.5)]
        assert chain_gate_voltage(demands, V_OFF) > \
            energy_only_gate(demands, V_OFF)

    def test_gates_equal_without_drops(self):
        demands = [TaskDemand(0.2, 0.0), TaskDemand(0.1, 0.0)]
        assert chain_gate_voltage(demands, V_OFF) == \
            pytest.approx(energy_only_gate(demands, V_OFF))

    def test_empty_chain(self):
        assert chain_gate_voltage([], V_OFF) == pytest.approx(V_OFF)
        assert energy_only_gate([], V_OFF) == pytest.approx(V_OFF)
