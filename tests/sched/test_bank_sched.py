"""Configuration-aware gating: composition rules and bank policy.

DESIGN §16's contract, unit-by-unit: the canonical configuration tag,
the transition guard band (zero when nothing switches, monotone in its
inputs), the composed gate (never below the per-config V_safe, capped at
V_high), and the AdaptiveBankScheduler policy — energy-based preference,
feasibility-aware escalation, the §V-B V_high default on tag mismatch,
and derate doubling with the pin-to-heavy fallback.
"""

import pytest

from repro.loads.trace import CurrentTrace
from repro.power.reconfigurable import (
    ReconfigurableBuffer,
    capybara_bank_set,
)
from repro.power.system import capybara_power_system
from repro.sched.bank import (
    AdaptiveBankScheduler,
    build_config_gates,
    compose_gate,
    config_tag,
    switch_penalty,
)
from repro.sched.task import Task

V_OFF = 1.6
V_HIGH = 2.56
CONFIGS = {"small": ("small",), "large": ("large",),
           "both": ("large", "small")}
GATES = {"small": {"sense": 1.9, "crunch": 2.4},
         "large": {"sense": 1.8, "crunch": 2.1},
         "both": {"sense": 1.78, "crunch": 2.05}}
ENERGY = {"sense": 1e-4, "crunch": 5e-3}


def _task(name):
    return Task(name, CurrentTrace.constant(0.004, 0.05))


def _buffer(initial=("large", "small")):
    buffer = ReconfigurableBuffer(capybara_bank_set(), initial)
    buffer.rest_all(2.2)
    return buffer


def _sched(buffer=None, gates=GATES, **kw):
    kw.setdefault("task_peaks", {"crunch": 0.03})
    return AdaptiveBankScheduler(
        buffer if buffer is not None else _buffer(),
        CONFIGS, gates, ENERGY,
        v_off=V_OFF, v_high=V_HIGH, energy_threshold=1e-3, **kw)


class TestConfigTag:
    def test_canonical_sorted_join(self):
        assert config_tag(("b", "a")) == "a+b"
        assert config_tag(["small"]) == "small"
        assert config_tag(("large", "small")) == \
            config_tag(("small", "large"))


class TestSwitchPenalty:
    def test_zero_when_nothing_switches(self):
        assert switch_penalty(i_peak=0.0, switch_resistance=0.05,
                              config_capacitance=45e-3,
                              incoming_capacitance=0.0,
                              v_window=1.0) == 0.0

    def test_monotone_in_peak_and_incoming(self):
        kw = dict(switch_resistance=0.05, config_capacitance=45e-3,
                  v_window=1.0)
        base = switch_penalty(i_peak=0.01, incoming_capacitance=10e-3,
                              **kw)
        assert switch_penalty(i_peak=0.02, incoming_capacitance=10e-3,
                              **kw) > base
        assert switch_penalty(i_peak=0.01, incoming_capacitance=20e-3,
                              **kw) > base

    def test_redistribution_term_bounded_by_window(self):
        # C_in/(C_on+C_in) < 1, so the sag term never exceeds the window
        penalty = switch_penalty(i_peak=0.0, switch_resistance=0.0,
                                 config_capacitance=1e-3,
                                 incoming_capacitance=1.0, v_window=0.9)
        assert penalty < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            switch_penalty(i_peak=-1.0, switch_resistance=0.0,
                           config_capacitance=1e-3,
                           incoming_capacitance=0.0, v_window=0.0)
        with pytest.raises(ValueError):
            switch_penalty(i_peak=0.0, switch_resistance=0.0,
                           config_capacitance=0.0,
                           incoming_capacitance=0.0, v_window=0.0)


class TestComposeGate:
    def test_no_penalty_is_the_row_itself(self):
        assert compose_gate(1.9, v_high=V_HIGH) == 1.9

    def test_gate_never_below_the_row(self):
        gate = compose_gate(1.9, v_high=V_HIGH, i_peak=0.03,
                            switch_resistance=0.05,
                            config_capacitance=45e-3,
                            incoming_capacitance=11e-3, v_window=0.96)
        assert gate > 1.9

    def test_capped_at_v_high(self):
        assert compose_gate(2.55, v_high=V_HIGH, i_peak=1.0,
                            switch_resistance=1.0,
                            config_capacitance=1e-3,
                            incoming_capacitance=1e-3,
                            v_window=1.0) == V_HIGH


class TestConfigPolicy:
    def test_cheap_task_prefers_reactive(self):
        assert _sched().config_for("sense") == "small"

    def test_heavy_task_prefers_large(self):
        assert _sched().config_for("crunch") == "large"

    def test_unknown_task_gets_the_biggest_bank(self):
        # no table row can certify an unprofiled task (every lookup
        # defaults to V_high), so escalation ends on the largest set
        assert _sched().config_for("mystery") == "both"

    def test_infeasible_row_escalates_by_capacitance(self):
        gates = {"small": {"sense": V_HIGH}, "large": {"sense": 1.8},
                 "both": {"sense": 1.78}}
        # the reactive row cannot certify the task even from a full
        # buffer; the next candidate is the biggest configuration
        assert _sched(gates=gates).config_for("sense") == "both"

    def test_nothing_feasible_falls_back_to_biggest(self):
        gates = {name: {} for name in CONFIGS}  # all rows default V_high
        assert _sched(gates=gates).config_for("sense") == "both"

    def test_requires_reactive_and_heavy_configs(self):
        with pytest.raises(ValueError):
            AdaptiveBankScheduler(
                _buffer(), {"only": ("small",)}, {"only": {}}, {},
                v_off=V_OFF, v_high=V_HIGH, energy_threshold=1e-3)


class TestGateComposition:
    def test_shrinking_switch_pays_no_redistribution(self):
        # both -> small drops a bank: nothing merges in, no peak given,
        # so the gate is exactly the per-config row
        sched = _sched(_buffer(("large", "small")))
        gate = sched(_task("sense"))
        assert gate == GATES["small"]["sense"]
        assert sched.buffer.config_id == frozenset({"small"})
        assert sched.switches == 1

    def test_growing_switch_pays_the_guard_band(self):
        sched = _sched(_buffer(("small",)))
        gate = sched(_task("crunch"))  # small -> large merges a bank in
        row = GATES["large"]["crunch"]
        assert row < gate <= V_HIGH
        assert sched.buffer.config_id == frozenset({"large"})

    def test_steady_state_drops_the_redistribution_term(self):
        sched = _sched(_buffer(("small",)))
        first = sched(_task("crunch"))
        second = sched(_task("crunch"))  # already in "large": no merge
        assert sched.switches == 1
        assert second < first
        # the IR term (peak through the closed switch) still applies
        assert second > GATES["large"]["crunch"]

    def test_tag_mismatch_answers_v_high(self):
        class StuckBuffer:
            """Reports a configuration other than the one requested."""

            def __init__(self, inner):
                self._inner = inner

            def configure(self, names):
                return self._inner.configure(names)

            @property
            def config_id(self):
                return frozenset({"small"})  # the lie

            def bank(self, name):
                return self._inner.bank(name)

            @property
            def total_capacitance(self):
                return self._inner.total_capacitance

            @property
            def switch_resistance(self):
                return self._inner.switch_resistance

        sched = _sched(StuckBuffer(_buffer(("small",))))
        gate = sched(_task("crunch"))  # asks for "large", hardware lies
        assert gate == V_HIGH
        assert sched.tag_mismatches == 1


class TestDerateFallback:
    def test_brownout_doubles_derate_and_raises_gate(self):
        sched = _sched(_buffer(("small",)))
        base = sched(_task("sense"))
        sched.on_brownout(_task("sense"))
        assert sched.derate["sense"] == sched.DERATE_INITIAL
        assert sched(_task("sense")) == pytest.approx(
            base + sched.DERATE_INITIAL)
        sched.on_brownout(_task("sense"))
        assert sched.derate["sense"] == 2 * sched.DERATE_INITIAL

    def test_derate_caps_at_maximum(self):
        sched = _sched()
        for _ in range(12):
            sched.on_brownout(_task("sense"))
        assert sched.derate["sense"] == sched.DERATE_MAX

    def test_repeated_brownouts_pin_to_heavy(self):
        sched = _sched()
        assert sched.config_for("sense") == "small"
        sched.on_brownout(_task("sense"))
        assert sched.config_for("sense") == "small"  # one strike only
        sched.on_brownout(_task("sense"))
        assert sched.config_for("sense") == "large"  # pinned
        assert sched.pinned["sense"] == "large"

    def test_success_halves_then_clears_derate(self):
        sched = _sched()
        sched.on_brownout(_task("sense"))
        sched.on_success(_task("sense"))
        assert sched.derate["sense"] == sched.DERATE_INITIAL / 2
        for _ in range(8):
            sched.on_success(_task("sense"))
        assert "sense" not in sched.derate

    def test_success_on_clean_task_is_a_no_op(self):
        sched = _sched()
        sched.on_success(_task("sense"))
        assert sched.derate == {}


class TestBuildConfigGates:
    def test_every_row_derived_from_its_own_configuration(self):
        from repro.verify.runner import build_estimator

        system = capybara_power_system()
        system.buffer = ReconfigurableBuffer(
            capybara_bank_set(), ("large", "small"))
        system.datasheet_capacitance = None
        program = [_task("sense"), _task("crunch")]
        gates, fallbacks = build_config_gates(
            system, program, CONFIGS,
            lambda sys, model: build_estimator("culpeo-pg", sys, model))
        assert set(gates) == set(CONFIGS)
        for name in CONFIGS:
            assert set(gates[name]) == {"sense", "crunch"}
            for row in gates[name].values():
                assert V_OFF <= row <= V_HIGH
        # different configurations, different electricals, different rows
        assert gates["small"]["sense"] != gates["large"]["sense"]
        assert set(fallbacks) == set(CONFIGS)
