"""Scheduler policies: gates and background thresholds."""

import pytest

from repro.loads.peripherals import ble_listen, ble_radio, light_sampling_loop
from repro.loads.trace import CurrentTrace
from repro.sched.estimators import CatnapEstimator, CulpeoREstimator
from repro.sched.policy import CatnapPolicy, CulpeoPolicy
from repro.sched.task import Priority, Task, TaskChain


@pytest.fixture
def chains():
    sense = Task("sense", CurrentTrace.constant(0.003, 0.3))
    send = Task("send",
                ble_radio().trace.concat(ble_listen(0.5).trace))
    return [TaskChain("report", [sense, send], deadline=3.0)]


@pytest.fixture
def background():
    return Task("light", light_sampling_loop().trace, Priority.LOW)


@pytest.fixture
def catnap_policy(system, model, chains, background):
    return CatnapPolicy.build(system, CatnapEstimator.measured(model),
                              chains, [background])


@pytest.fixture
def culpeo_policy(system, calculator, chains, background):
    return CulpeoPolicy.build(system, CulpeoREstimator(calculator, "isr"),
                              chains, [background])


class TestPolicyBuild:
    def test_every_task_estimated(self, catnap_policy):
        for name in ("sense", "send", "light"):
            assert name in catnap_policy.estimates

    def test_gates_compiled_per_suffix(self, catnap_policy):
        g0 = catnap_policy.gate("report", 0)
        g1 = catnap_policy.gate("report", 1)
        assert g0 > g1 > catnap_policy.v_off

    def test_unknown_gate_raises(self, catnap_policy):
        with pytest.raises(KeyError):
            catnap_policy.gate("ghost", 0)
        with pytest.raises(KeyError):
            catnap_policy.gate("report", 9)

    def test_unknown_demand_raises(self, catnap_policy):
        with pytest.raises(KeyError):
            catnap_policy.demand("ghost")


class TestEsrAwareness:
    def test_culpeo_gates_exceed_catnap(self, catnap_policy, culpeo_policy):
        assert culpeo_policy.gate("report", 0) > \
            catnap_policy.gate("report", 0)

    def test_culpeo_background_threshold_reserves_more(
            self, catnap_policy, culpeo_policy):
        assert culpeo_policy.background_threshold > \
            catnap_policy.background_threshold

    def test_background_threshold_covers_worst_chain(self, culpeo_policy):
        assert culpeo_policy.background_threshold >= \
            culpeo_policy.gate("report", 0)

    def test_gates_capped_at_v_high(self, culpeo_policy):
        assert culpeo_policy.gate("report", 0) <= culpeo_policy.v_high

    def test_task_vsafe_accessor(self, culpeo_policy):
        assert culpeo_policy.task_vsafe("send") > culpeo_policy.v_off
