"""Feasibility planner: plans, verdicts, and execution against reality."""

import pytest

from repro.core.model import TaskDemand
from repro.errors import ScheduleError
from repro.loads.peripherals import ble_listen, ble_radio
from repro.loads.trace import CurrentTrace
from repro.power.system import capybara_power_system
from repro.sched.estimators import CatnapEstimator, standard_estimators
from repro.sched.planner import (
    FeasibilityPlanner,
    PeriodicTask,
    simulate_plan,
)

CHARGE_POWER = 4e-3


@pytest.fixture(scope="module")
def scenario():
    """The Figure 5 cast: a cheap periodic sense and a hungry radio."""
    system = capybara_power_system()
    model = system.characterize()
    sense_trace = CurrentTrace.constant(0.003, 0.400)
    radio_trace = ble_radio().trace.concat(ble_listen(2.0).trace)

    catnap = CatnapEstimator.measured(model)
    culpeo = standard_estimators(system, model)[2]  # Culpeo-R-ISR

    def task(name, trace, period, estimator):
        return PeriodicTask(name=name, trace=trace, period=period,
                            demand=estimator.estimate(system, trace).demand)

    planner = FeasibilityPlanner(
        capacitance=model.capacitance, charge_power=CHARGE_POWER,
        v_off=model.v_off, v_high=model.v_high)
    return dict(system=system, planner=planner,
                catnap_tasks=[task("sense", sense_trace, 3.0, catnap),
                              task("radio", radio_trace, 6.5, catnap)],
                culpeo_tasks=[task("sense", sense_trace, 3.0, culpeo),
                              task("radio", radio_trace, 6.5, culpeo)])


class TestPlanConstruction:
    def test_plan_covers_all_releases(self, scenario):
        plan = scenario["planner"].plan(scenario["catnap_tasks"], 13.0,
                                        esr_aware=False)
        assert plan.feasible
        names = [job.task for job in plan.jobs]
        assert names.count("sense") == 5   # releases at 0,3,6,9,12
        assert names.count("radio") == 2   # releases at 0,6.5

    def test_jobs_start_after_release(self, scenario):
        plan = scenario["planner"].plan(scenario["catnap_tasks"], 13.0,
                                        esr_aware=False)
        for job in plan.jobs:
            assert job.start >= job.release - 1e-9
            assert job.start <= job.deadline

    def test_esr_aware_plans_more_recharge(self, scenario):
        energy_plan = scenario["planner"].plan(
            scenario["catnap_tasks"], 13.0, esr_aware=False,
            v_start=1.75)
        culpeo_plan = scenario["planner"].plan(
            scenario["culpeo_tasks"], 13.0, esr_aware=True,
            v_start=1.75)
        assert culpeo_plan.total_recharge_time >= \
            energy_plan.total_recharge_time

    def test_impossible_rate_is_rejected(self, scenario):
        greedy = PeriodicTask(
            name="greedy", trace=CurrentTrace.constant(0.010, 0.5),
            demand=TaskDemand(energy_v2=3.0, v_delta=0.0), period=1.0)
        plan = scenario["planner"].plan([greedy], 5.0, esr_aware=False)
        assert not plan.feasible
        assert "greedy" in plan.rejection

    def test_render(self, scenario):
        plan = scenario["planner"].plan(scenario["catnap_tasks"], 13.0,
                                        esr_aware=False)
        assert "energy-only" in plan.render()

    def test_validation(self, scenario):
        with pytest.raises(ValueError):
            scenario["planner"].plan(scenario["catnap_tasks"], 0.0,
                                     esr_aware=False)
        with pytest.raises(ValueError):
            FeasibilityPlanner(capacitance=0.0, charge_power=1e-3,
                               v_off=1.6, v_high=2.56)
        with pytest.raises(ValueError):
            PeriodicTask(name="x", trace=CurrentTrace.constant(0.01, 2.0),
                         demand=TaskDemand(0.1, 0.0), period=1.0)


class TestPlanAgainstReality:
    """The Figure 5 punchline, at planner scale."""

    def test_energy_only_plan_is_admitted_then_dies(self, scenario):
        """A slow energy deficit drains the buffer toward CatNap's gate;
        its planner still calls the schedule feasible, but executing the
        timetable browns out on the radio — while the Theorem 1 plan at
        the same rate and power completes every job (Figure 5)."""
        weak = FeasibilityPlanner(
            capacitance=scenario["planner"].capacitance,
            charge_power=2.0e-3,
            v_off=scenario["planner"].v_off,
            v_high=scenario["planner"].v_high)
        plan = weak.plan(scenario["catnap_tasks"], 45.0,
                         esr_aware=False, v_start=1.70)
        assert plan.feasible
        execution = simulate_plan(plan, scenario["catnap_tasks"],
                                  scenario["system"], 2.0e-3,
                                  v_start=1.70)
        assert execution.browned_out
        assert execution.failed_job == "radio"
        # The Theorem 1 plan holds every radio launch at its composed
        # V_safe and survives the identical conditions.
        honest = weak.plan(scenario["culpeo_tasks"], 45.0,
                           esr_aware=True, v_start=1.70)
        assert honest.feasible
        honest_exec = simulate_plan(honest, scenario["culpeo_tasks"],
                                    scenario["system"], 2.0e-3,
                                    v_start=1.70)
        assert honest_exec.all_completed

    def test_theorem1_plan_survives_execution(self, scenario):
        plan = scenario["planner"].plan(scenario["culpeo_tasks"], 13.0,
                                        esr_aware=True, v_start=1.75)
        assert plan.feasible
        execution = simulate_plan(plan, scenario["culpeo_tasks"],
                                  scenario["system"], CHARGE_POWER,
                                  v_start=1.75)
        assert execution.all_completed
        assert execution.completed_jobs == len(plan.jobs)

    def test_infeasible_plan_refuses_execution(self, scenario):
        greedy = PeriodicTask(
            name="greedy", trace=CurrentTrace.constant(0.010, 0.5),
            demand=TaskDemand(energy_v2=3.0, v_delta=0.0), period=1.0)
        plan = scenario["planner"].plan([greedy], 5.0, esr_aware=False)
        with pytest.raises(ScheduleError):
            simulate_plan(plan, [greedy], scenario["system"], CHARGE_POWER)
