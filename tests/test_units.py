"""Unit helpers and OperatingRange."""

import math

import pytest

from repro.units import (
    OperatingRange,
    capacitor_energy,
    micro,
    milli,
    nano,
    voltage_for_energy,
)


class TestScalers:
    def test_milli(self):
        assert milli(45) == pytest.approx(0.045)

    def test_micro(self):
        assert micro(100) == pytest.approx(1e-4)

    def test_nano(self):
        assert nano(20) == pytest.approx(2e-8)


class TestCapacitorEnergy:
    def test_known_value(self):
        # 45 mF at 2.56 V stores about 147 mJ.
        assert capacitor_energy(0.045, 2.56) == pytest.approx(0.1475, rel=1e-3)

    def test_zero_voltage(self):
        assert capacitor_energy(0.045, 0.0) == 0.0

    def test_negative_capacitance_rejected(self):
        with pytest.raises(ValueError):
            capacitor_energy(-1.0, 2.0)

    def test_roundtrip_with_voltage_for_energy(self):
        c = 0.033
        for v in (0.5, 1.6, 2.56):
            e = capacitor_energy(c, v)
            assert voltage_for_energy(c, e) == pytest.approx(v)

    def test_voltage_for_energy_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            voltage_for_energy(0.0, 1.0)
        with pytest.raises(ValueError):
            voltage_for_energy(0.045, -1.0)


class TestOperatingRange:
    def test_span(self):
        r = OperatingRange(v_off=1.6, v_high=2.56)
        assert r.span == pytest.approx(0.96)

    def test_contains_boundaries(self):
        r = OperatingRange(v_off=1.6, v_high=2.56)
        assert r.contains(1.6)
        assert r.contains(2.56)
        assert not r.contains(1.599)
        assert not r.contains(2.561)

    def test_clamp(self):
        r = OperatingRange(v_off=1.6, v_high=2.56)
        assert r.clamp(1.0) == 1.6
        assert r.clamp(3.0) == 2.56
        assert r.clamp(2.0) == 2.0

    def test_fraction(self):
        r = OperatingRange(v_off=1.6, v_high=2.6)
        assert r.fraction(1.6) == pytest.approx(0.0)
        assert r.fraction(2.6) == pytest.approx(1.0)
        assert r.fraction(2.1) == pytest.approx(0.5)

    def test_as_percent_of_range(self):
        r = OperatingRange(v_off=1.6, v_high=2.56)
        assert r.as_percent_of_range(0.096) == pytest.approx(10.0)
        assert r.as_percent_of_range(-0.048) == pytest.approx(-5.0)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            OperatingRange(v_off=0.0, v_high=1.0)
        with pytest.raises(ValueError):
            OperatingRange(v_off=2.0, v_high=2.0)
        with pytest.raises(ValueError):
            OperatingRange(v_off=2.5, v_high=1.6)

    def test_frozen(self):
        r = OperatingRange(v_off=1.6, v_high=2.56)
        with pytest.raises(Exception):
            r.v_off = 1.0
