"""Peripheral load models: envelopes must match the paper's Table III."""

import pytest

from repro.loads.peripherals import (
    ble_listen,
    ble_radio,
    encrypt_block,
    fft_compute,
    gesture_recognition,
    imu_read,
    light_sampling_loop,
    lora_packet,
    microphone_read,
    mnist_inference,
    photoresistor_read,
    real_peripheral_suite,
)


class TestTableIIIEnvelopes:
    def test_gesture_envelope(self):
        load = gesture_recognition()
        assert load.trace.peak_current == pytest.approx(0.025)
        assert load.trace.largest_pulse_width() == pytest.approx(0.0035)

    def test_ble_envelope(self):
        load = ble_radio()
        assert load.trace.peak_current == pytest.approx(0.013)
        # Total radio event spans ~17 ms.
        assert load.trace.duration == pytest.approx(0.017, abs=0.005)

    def test_mnist_envelope(self):
        load = mnist_inference()
        assert load.trace.peak_current == pytest.approx(0.005, abs=0.0005)
        assert load.trace.duration == pytest.approx(1.1, abs=0.05)

    def test_lora_envelope(self):
        load = lora_packet()
        assert load.trace.peak_current == pytest.approx(0.050)
        assert load.trace.largest_pulse_width() == pytest.approx(0.100)

    def test_suite_contents(self):
        names = [p.name for p in real_peripheral_suite()]
        assert names == ["Gesture", "BLE", "MNIST"]


class TestSensorLoads:
    def test_imu_scales_with_sample_count(self):
        short = imu_read(16)
        long = imu_read(64)
        assert long.trace.duration > short.trace.duration

    def test_imu_ends_with_low_current_tail(self):
        trace = imu_read(32).trace
        *_, (last_current, last_duration) = trace.segments()
        assert last_current < 0.001

    def test_imu_validation(self):
        with pytest.raises(ValueError):
            imu_read(0)
        with pytest.raises(ValueError):
            imu_read(32, odr_hz=0.0)

    def test_microphone_duration_matches_samples(self):
        load = microphone_read(256, 12000.0)
        assert load.trace.duration == pytest.approx(256 / 12000.0 + 0.0005)

    def test_microphone_validation(self):
        with pytest.raises(ValueError):
            microphone_read(0)

    def test_photoresistor_is_tiny(self):
        load = photoresistor_read()
        assert load.trace.energy_at(2.55) < 1e-5

    def test_light_loop_is_sustained(self):
        load = light_sampling_loop(0.050)
        assert load.trace.duration == pytest.approx(0.050)
        assert load.trace.peak_current == pytest.approx(0.0025)

    def test_light_loop_validation(self):
        with pytest.raises(ValueError):
            light_sampling_loop(0.0)


class TestSoftwareLoads:
    def test_fft_scales_superlinearly(self):
        small = fft_compute(64)
        big = fft_compute(1024)
        assert big.trace.duration > 16 * small.trace.duration / 2

    def test_fft_validation(self):
        with pytest.raises(ValueError):
            fft_compute(1)

    def test_encrypt_scales_with_bytes(self):
        assert encrypt_block(320).trace.duration > \
            encrypt_block(160).trace.duration

    def test_encrypt_validation(self):
        with pytest.raises(ValueError):
            encrypt_block(0)


class TestBleListen:
    def test_duration_respected(self):
        load = ble_listen(2.0)
        assert load.trace.duration == pytest.approx(2.0, abs=0.01)

    def test_duty_cycled(self):
        load = ble_listen(1.0)
        # Mean current far below the RX peak.
        assert load.trace.mean_current < 0.002
        assert load.trace.peak_current == pytest.approx(0.005)

    def test_short_listen(self):
        load = ble_listen(0.050)
        assert load.trace.duration == pytest.approx(0.050, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            ble_listen(0.0)

    def test_lora_validation(self):
        with pytest.raises(ValueError):
            lora_packet(0.0)
