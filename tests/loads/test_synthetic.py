"""Table III synthetic load generators."""

import pytest

from repro.loads.synthetic import (
    COMPUTE_CURRENT,
    COMPUTE_DURATION,
    PULSE_CURRENTS,
    PULSE_WIDTHS,
    fig6_load_matrix,
    fig10_load_matrix,
    pulse_with_compute_tail,
    uniform_load,
)


class TestUniformLoad:
    def test_shape(self):
        load = uniform_load(0.050, 0.010)
        assert load.shape == "uniform"
        assert load.trace.duration == pytest.approx(0.010)
        assert load.trace.peak_current == pytest.approx(0.050)

    def test_label(self):
        assert uniform_load(0.050, 0.010).label == "50mA 10ms"
        assert uniform_load(0.005, 0.100).label == "5mA 100ms"

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_load(0.0, 0.01)
        with pytest.raises(ValueError):
            uniform_load(0.05, 0.0)


class TestPulseWithComputeTail:
    def test_shape(self):
        load = pulse_with_compute_tail(0.050, 0.010)
        assert load.shape == "pulse+compute"
        assert load.trace.duration == pytest.approx(0.010 + COMPUTE_DURATION)
        assert load.trace.current_at(0.05) == pytest.approx(COMPUTE_CURRENT)

    def test_custom_tail(self):
        load = pulse_with_compute_tail(0.050, 0.010,
                                       i_compute=0.002, t_compute=0.050)
        assert load.trace.duration == pytest.approx(0.060)

    def test_zero_tail_duration(self):
        load = pulse_with_compute_tail(0.050, 0.010, t_compute=0.0)
        assert load.trace.duration == pytest.approx(0.010)

    def test_validation(self):
        with pytest.raises(ValueError):
            pulse_with_compute_tail(0.05, 0.01, i_compute=-1e-3)


class TestLoadMatrices:
    def test_fig10_has_nine_of_each_shape(self):
        loads = fig10_load_matrix()
        uniform = [l for l in loads if l.shape == "uniform"]
        pulse = [l for l in loads if l.shape == "pulse+compute"]
        assert len(uniform) == 9
        assert len(pulse) == 9

    def test_fig10_omits_high_energy_and_low_signal_points(self):
        labels = {l.label for l in fig10_load_matrix()}
        assert "50mA 100ms" not in labels
        assert "25mA 100ms" not in labels
        assert "5mA 1ms" not in labels
        assert "50mA 10ms" in labels

    def test_fig6_is_pulse_only(self):
        loads = fig6_load_matrix()
        assert len(loads) == 6
        assert all(l.shape == "pulse+compute" for l in loads)

    def test_parameter_grids_match_paper(self):
        assert PULSE_CURRENTS == (0.005, 0.010, 0.025, 0.050)
        assert PULSE_WIDTHS == (0.001, 0.010, 0.100)

    def test_str(self):
        assert str(uniform_load(0.025, 0.001)) == "25mA 1ms"
