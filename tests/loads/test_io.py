"""Trace serialization round-trips."""

import pytest

from repro.loads.io import (
    load_trace_csv,
    load_trace_json,
    save_trace_csv,
    save_trace_json,
    trace_from_csv,
    trace_from_json,
    trace_to_csv,
    trace_to_json,
)
from repro.loads.peripherals import ble_radio
from repro.loads.trace import CurrentTrace


@pytest.fixture
def trace():
    return CurrentTrace([(0.025, 0.010), (0.0015, 0.100)])


class TestJsonRoundTrip:
    def test_exact(self, trace):
        assert trace_from_json(trace_to_json(trace)) == trace

    def test_peripheral_trace(self):
        trace = ble_radio().trace
        assert trace_from_json(trace_to_json(trace)) == trace

    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace_json(trace, path)
        assert load_trace_json(path) == trace

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            trace_from_json('{"format": "something-else"}')

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError):
            trace_from_json(
                '{"format": "repro.current-trace", "version": 99}')


class TestCsvRoundTrip:
    def test_charge_preserved(self, trace):
        rebuilt = trace_from_csv(trace_to_csv(trace, sample_rate=125e3))
        assert rebuilt.charge == pytest.approx(trace.charge, rel=1e-3)
        assert rebuilt.duration == pytest.approx(trace.duration, rel=1e-3)

    def test_header_written(self, trace):
        assert trace_to_csv(trace).startswith("time_s,current_a")

    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        rebuilt = load_trace_csv(path)
        assert rebuilt.peak_current == pytest.approx(trace.peak_current)

    def test_rejects_missing_header(self):
        with pytest.raises(ValueError):
            trace_from_csv("a,b\n1,2\n")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            trace_from_csv("time_s,current_a\n")

    def test_rejects_uneven_spacing(self):
        text = "time_s,current_a\n0.0,0.01\n0.001,0.01\n0.005,0.01\n"
        with pytest.raises(ValueError):
            trace_from_csv(text)

    def test_single_sample(self):
        rebuilt = trace_from_csv("time_s,current_a\n0.0,0.02\n")
        assert rebuilt.peak_current == pytest.approx(0.02)
