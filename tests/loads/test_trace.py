"""CurrentTrace representation and queries."""

import numpy as np
import pytest

from repro.loads.trace import CurrentTrace


class TestConstruction:
    def test_constant(self):
        t = CurrentTrace.constant(0.010, 0.5)
        assert t.duration == pytest.approx(0.5)
        assert t.peak_current == pytest.approx(0.010)
        assert len(t) == 1

    def test_merges_equal_adjacent_segments(self):
        t = CurrentTrace([(0.01, 0.1), (0.01, 0.2), (0.02, 0.1)])
        assert len(t) == 2
        assert t.duration == pytest.approx(0.4)

    def test_drops_zero_duration_segments(self):
        t = CurrentTrace([(0.01, 0.1), (0.05, 0.0), (0.02, 0.1)])
        assert len(t) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CurrentTrace([])
        with pytest.raises(ValueError):
            CurrentTrace([(0.01, 0.0)])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            CurrentTrace([(-0.01, 0.1)])
        with pytest.raises(ValueError):
            CurrentTrace([(0.01, -0.1)])

    def test_from_samples(self):
        t = CurrentTrace.from_samples([0.01, 0.01, 0.02], dt=0.001)
        assert t.duration == pytest.approx(0.003)
        assert len(t) == 2  # first two merge

    def test_from_samples_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            CurrentTrace.from_samples([0.01], dt=0.0)


class TestIntegrals:
    def test_charge(self):
        t = CurrentTrace([(0.010, 0.5), (0.020, 0.25)])
        assert t.charge == pytest.approx(0.010 * 0.5 + 0.020 * 0.25)

    def test_energy_at_rail(self):
        t = CurrentTrace.constant(0.010, 1.0)
        assert t.energy_at(2.55) == pytest.approx(0.0255)

    def test_energy_rejects_bad_rail(self):
        with pytest.raises(ValueError):
            CurrentTrace.constant(0.01, 1.0).energy_at(0.0)

    def test_mean_current(self):
        t = CurrentTrace([(0.010, 0.5), (0.030, 0.5)])
        assert t.mean_current == pytest.approx(0.020)


class TestQueries:
    def test_current_at(self):
        t = CurrentTrace([(0.010, 0.1), (0.050, 0.1)])
        assert t.current_at(0.05) == pytest.approx(0.010)
        assert t.current_at(0.15) == pytest.approx(0.050)
        assert t.current_at(1.0) == 0.0

    def test_current_at_rejects_negative(self):
        with pytest.raises(ValueError):
            CurrentTrace.constant(0.01, 1.0).current_at(-1.0)

    def test_largest_pulse_width_simple(self):
        t = CurrentTrace([(0.050, 0.010), (0.0015, 0.100)])
        assert t.largest_pulse_width() == pytest.approx(0.010)

    def test_largest_pulse_width_merges_near_peak_runs(self):
        t = CurrentTrace([(0.050, 0.005), (0.045, 0.005), (0.001, 0.1)])
        assert t.largest_pulse_width() == pytest.approx(0.010)

    def test_largest_pulse_width_ignores_low_noise(self):
        t = CurrentTrace([(0.050, 0.002), (0.001, 0.001), (0.050, 0.003)])
        assert t.largest_pulse_width() == pytest.approx(0.003)

    def test_largest_pulse_width_threshold_validation(self):
        with pytest.raises(ValueError):
            CurrentTrace.constant(0.01, 1.0).largest_pulse_width(0.0)

    def test_segments_iteration(self):
        t = CurrentTrace([(0.01, 0.1), (0.02, 0.2)])
        assert list(t.segments()) == [(0.01, 0.1), (0.02, 0.2)]


class TestTransformations:
    def test_concat(self):
        a = CurrentTrace.constant(0.01, 0.1)
        b = CurrentTrace.constant(0.02, 0.2)
        c = a.concat(b)
        assert c.duration == pytest.approx(0.3)
        assert c.charge == pytest.approx(a.charge + b.charge)

    def test_concat_merges_boundary(self):
        a = CurrentTrace.constant(0.01, 0.1)
        assert len(a.concat(a)) == 1

    def test_scaled(self):
        t = CurrentTrace.constant(0.01, 0.1).scaled(current_factor=2.0,
                                                    time_factor=0.5)
        assert t.peak_current == pytest.approx(0.02)
        assert t.duration == pytest.approx(0.05)

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            CurrentTrace.constant(0.01, 0.1).scaled(time_factor=0.0)

    def test_with_tail(self):
        t = CurrentTrace.constant(0.05, 0.01).with_tail(0.0015, 0.1)
        assert t.duration == pytest.approx(0.11)
        assert t.current_at(0.05) == pytest.approx(0.0015)

    def test_sampled_reconstructs_charge(self):
        t = CurrentTrace([(0.050, 0.010), (0.0015, 0.100)])
        samples = t.sampled(125e3)
        charge = samples.sum() / 125e3
        assert charge == pytest.approx(t.charge, rel=1e-3)

    def test_sampled_length(self):
        t = CurrentTrace.constant(0.01, 0.010)
        assert len(t.sampled(1000.0)) == 10

    def test_sampled_validation(self):
        with pytest.raises(ValueError):
            CurrentTrace.constant(0.01, 0.1).sampled(0.0)


class TestDunder:
    def test_equality_and_hash(self):
        a = CurrentTrace([(0.01, 0.1), (0.02, 0.2)])
        b = CurrentTrace([(0.01, 0.1), (0.02, 0.2)])
        c = CurrentTrace([(0.01, 0.1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_equality_other_type(self):
        assert CurrentTrace.constant(0.01, 0.1) != "trace"

    def test_repr(self):
        assert "segments" in repr(CurrentTrace.constant(0.01, 0.1))
