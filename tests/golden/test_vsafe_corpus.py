"""Golden-corpus check: V_safe across the catalog × every estimator.

The committed ``vsafe_corpus.json`` must equal what ``regen.py`` computes
from the current code — exactly, not approximately. An intentional change
to estimator math regenerates the corpus (``PYTHONPATH=src python -m
tests.golden.regen``) and commits the diff; an *unintentional* drift
fails here.

The regen module is loaded by file path (like the bench-compare tests)
so the suite does not depend on ``tests`` being importable as a package.
"""

import importlib.util
import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SPEC = importlib.util.spec_from_file_location(
    "golden_regen", _HERE / "regen.py")
regen = importlib.util.module_from_spec(_SPEC)
sys.modules["golden_regen"] = regen
_SPEC.loader.exec_module(regen)


def _committed() -> dict:
    return json.loads((_HERE / "vsafe_corpus.json").read_text(
        encoding="utf-8"))


class TestCorpusShape:
    def test_header_and_coverage(self):
        corpus = _committed()
        assert corpus["format"] == "repro.golden-vsafe"
        assert corpus["version"] == 3
        # Technology-complete: all four technologies appear.
        technologies = {e["technology"] for e in corpus["entries"]}
        assert technologies == {"electrolytic", "ceramic", "tantalum",
                                "supercapacitor"}
        # Every surveyed entry covers every estimator.
        estimators = set(corpus["estimators"])
        surveyed = [e for e in corpus["entries"] if e["surveyed"]]
        assert surveyed, "corpus must survey at least one bank"
        for entry in surveyed:
            assert set(entry["vsafe"]) == estimators

    def test_vsafe_values_are_physical(self):
        corpus = _committed()
        v_off = corpus["plant"]["v_off"]
        for entry in corpus["entries"]:
            if not entry["surveyed"]:
                continue
            for name, record in entry["vsafe"].items():
                assert record["v_safe"] >= v_off, (entry["part_number"],
                                                   name)

    def test_environment_entries_cover_every_model_and_front_end(self):
        corpus = _committed()
        env = corpus["environment"]
        combos = {(e["model"], e["mppt"]) for e in env["entries"]}
        assert len(env["entries"]) == 9
        assert combos == {
            (m, f)
            for m in ("diurnal-solar", "kinetic-burst", "thermal-gradient")
            for f in ("constant-voltage", "voc-fraction",
                      "perturb-observe")}
        estimators = set(corpus["estimators"])
        v_off = corpus["plant"]["v_off"]
        fingerprints = set()
        for entry in env["entries"]:
            assert set(entry["vsafe"]) == estimators
            assert entry["pieces"] > 1
            assert entry["energy_j"] > 0.0
            assert len(entry["trace_fingerprint"]) == 32
            fingerprints.add(entry["trace_fingerprint"])
            for name, record in entry["vsafe"].items():
                assert record["v_safe"] >= v_off, (entry["model"], name)
        # Distinct environments lower to distinct traces.
        assert len(fingerprints) == len(env["entries"])

    def test_bank_entries_cover_every_set_and_configuration(self):
        corpus = _committed()
        bank = corpus["bank"]
        assert len(bank["entries"]) >= 6
        combos = {(e["set"], e["tag"]) for e in bank["entries"]}
        assert combos == {
            (s, t)
            for s in ("capybara-default", "capybara-dense")
            for t in ("small", "large", "large+small")}
        estimators = set(corpus["estimators"])
        v_off = corpus["plant"]["v_off"]
        for entry in bank["entries"]:
            assert set(entry["vsafe"]) == estimators
            assert entry["group"]["capacitance"] > 0
            assert entry["group"]["r_esr"] > 0
            for name, record in entry["vsafe"].items():
                assert record["v_safe"] >= v_off, (entry["tag"], name)
        # Composition algebra sanity, pinned per set: the merged group
        # holds both banks' capacitance and beats either lone bank's ESR.
        for set_name in ("capybara-default", "capybara-dense"):
            rows = {e["tag"]: e["group"] for e in bank["entries"]
                    if e["set"] == set_name}
            assert rows["large+small"]["capacitance"] > \
                rows["large"]["capacitance"] > rows["small"]["capacitance"]
            assert rows["large+small"]["r_esr"] < min(
                rows["large"]["r_esr"], rows["small"]["r_esr"])


class TestCorpusMatchesCode:
    def test_regeneration_reproduces_committed_corpus_exactly(self):
        fresh = regen.build_corpus()
        committed = _committed()
        assert fresh == committed, (
            "golden V_safe corpus drifted — if the estimator/catalog "
            "change is intentional, regenerate with "
            "`PYTHONPATH=src python -m tests.golden.regen` and commit "
            "the diff")
