"""Regenerate the golden V_safe corpus (``vsafe_corpus.json``).

The corpus pins the V_safe estimate of **every estimator** on a bank
survey built from the deterministic synthetic part catalog
(:func:`repro.power.catalog.reference_catalog`) — one power system per
catalog entry, one fixed reference load, seven estimators. Any change to
the estimator math, the catalog synthesis, the bank composition algebra,
or the characterization path shows up as a corpus diff, reviewed like any
other golden-file change.

A second section pins the **environment engine**: one entry per
environment model × MPPT front-end, each recording the lowered trace's
content fingerprint (the identity that keys the V_safe and
segment-program caches) alongside every estimator's V_safe on the
standard Capybara plant driven by that trace. A drift in the model
sampling, the MPPT math, or the lowering pass moves the fingerprint; a
drift in how estimators see trace harvesters moves the V_safe values.

A third section pins the **bank axis**: two Capybara-flavoured bank
sets, each in every candidate configuration, recording the canonical
configuration tag, the composed group electricals, and every
estimator's V_safe on a plant in that configuration — the rows the
§V-B per-configuration tables are made of.

Regenerate (from the repository root) with::

    PYTHONPATH=src python -m tests.golden.regen

and commit the updated JSON together with the change that moved it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.env.spec import ENV_MODELS, ENV_MPPTS, EnvSpec
from repro.loads.trace import CurrentTrace
from repro.power.booster import (
    CurvedEfficiency,
    InputBooster,
    LinearEfficiency,
    OutputBooster,
)
from repro.power.catalog import build_bank_survey, reference_catalog
from repro.power.harvester import ConstantPowerHarvester
from repro.power.monitor import VoltageMonitor
from repro.power.system import PowerSystem, capybara_power_system
from repro.verify.runner import KNOWN_ESTIMATORS, build_estimator

#: Small but technology-complete: 3 parts per technology, the paper's
#: catalog seed. Every part that survives the survey's part-count cap
#: contributes one corpus entry.
PARTS_PER_TECHNOLOGY = 3
CATALOG_SEED = 2022

#: The fixed reference load every estimator is judged on: a sense-like
#: burst with a compute tail (amperes, seconds).
REFERENCE_SEGMENTS = [[0.012, 0.05], [0.004, 0.10]]

#: Plant parameters shared by every corpus entry (Capybara-class rails).
V_HIGH = 2.56
V_OFF = 1.6
V_OUT = 2.55
C_DECOUPLING = 100e-6
HARVEST_POWER = 4e-3

#: Environment golden entries: a fixed seed and duration small enough to
#: lower in milliseconds but long enough to exercise every model's
#: stochastic structure (clouds, bursts) and the stateful P&O tracker.
ENV_SEED = 2022
ENV_DURATION = 30.0

#: Bank-axis golden entries: two Capybara-flavoured bank sets, each
#: pinned in every candidate configuration (6 config entries total).
#: The group electricals pin the bank composition algebra
#: (``ReconfigurableBuffer._build_group``); the per-estimator V_safe
#: values pin the per-configuration characterization path the §V-B
#: tables are built from.
BANK_SETS = {
    "capybara-default": dict(small=7.5e-3, large=37.5e-3, part_esr=20.0),
    "capybara-dense": dict(small=11.25e-3, large=33.75e-3, part_esr=10.0),
}
BANK_CONFIGS = [["small"], ["large"], ["large", "small"]]

CORPUS_PATH = Path(__file__).resolve().parent / "vsafe_corpus.json"


def _system_for_bank(bank) -> PowerSystem:
    """A Capybara-style plant around ``bank`` (same converter/monitor
    stack as ``capybara_power_system``, buffer swapped for the bank)."""
    system = PowerSystem(
        buffer=bank.as_buffer(redist_fraction=0.10,
                              c_decoupling=C_DECOUPLING),
        output_booster=OutputBooster(
            v_out=V_OUT,
            efficiency_model=CurvedEfficiency(),
            min_input_voltage=0.5,
            power_derating=0.6,
        ),
        input_booster=InputBooster(
            efficiency_model=LinearEfficiency(slope=0.0, intercept=0.80),
            v_max=V_HIGH,
        ),
        monitor=VoltageMonitor(v_high=V_HIGH, v_off=V_OFF),
        harvester=ConstantPowerHarvester(HARVEST_POWER),
        name="golden-bank",
    )
    system.rest_at(V_HIGH)
    return system


def _env_entries(trace: CurrentTrace) -> list:
    """One pinned entry per environment model × MPPT front-end."""
    entries = []
    for model_name in ENV_MODELS:
        for mppt_name in ENV_MPPTS:
            spec = EnvSpec(model=model_name, mppt=mppt_name,
                           duration=ENV_DURATION, seed=ENV_SEED,
                           peak_power=HARVEST_POWER, period=24.0,
                           cloud_rate=5.0, burst_rate=0.3)
            harvester = spec.lower()
            system = capybara_power_system(harvester=harvester)
            system.rest_at(V_HIGH)
            model = system.characterize()
            vsafe = {}
            for name in KNOWN_ESTIMATORS:
                estimator = build_estimator(name, system, model)
                estimate = estimator.estimate(system, trace)
                vsafe[name] = {
                    "v_safe": estimate.v_safe,
                    "method": estimate.method,
                }
            entries.append({
                "model": model_name,
                "mppt": mppt_name,
                "env_fingerprint": spec.fingerprint,
                "trace_fingerprint": harvester.fingerprint,
                "pieces": int(len(harvester.powers)),
                "energy_j": harvester.energy(ENV_DURATION),
                "vsafe": vsafe,
            })
    return entries


def _bank_entries(trace: CurrentTrace) -> list:
    """One pinned entry per bank set × configuration."""
    from repro.power.reconfigurable import (
        ReconfigurableBuffer,
        capybara_bank_set,
    )
    from repro.sched.bank import config_tag

    entries = []
    for set_name in sorted(BANK_SETS):
        banks = capybara_bank_set(**BANK_SETS[set_name])
        for config in BANK_CONFIGS:
            buffer = ReconfigurableBuffer(banks, tuple(config))
            system = capybara_power_system()
            system.buffer = buffer
            system.datasheet_capacitance = None
            system.rest_at(V_HIGH)
            buffer.rest_all(V_HIGH)
            model = system.characterize()
            vsafe = {}
            for name in KNOWN_ESTIMATORS:
                estimator = build_estimator(name, system, model)
                estimate = estimator.estimate(system, trace)
                vsafe[name] = {
                    "v_safe": estimate.v_safe,
                    "method": estimate.method,
                }
            entries.append({
                "set": set_name,
                "config": sorted(config),
                "tag": config_tag(config),
                "group": {
                    "capacitance": buffer.total_capacitance,
                    "r_esr": buffer.r_esr,
                },
                "vsafe": vsafe,
            })
    return entries


def build_corpus() -> dict:
    """The corpus document, a pure function of the constants above."""
    catalog = reference_catalog(
        parts_per_technology=PARTS_PER_TECHNOLOGY, seed=CATALOG_SEED)
    trace = CurrentTrace([(c, d) for c, d in REFERENCE_SEGMENTS])

    entries = []
    for part in catalog:
        banks = build_bank_survey([part])
        if not banks:
            # Needs more parts than the survey cap allows; record the
            # exclusion so corpus coverage is explicit, not silent.
            entries.append({
                "part_number": part.part_number,
                "technology": part.technology.value,
                "surveyed": False,
            })
            continue
        bank = banks[0]
        system = _system_for_bank(bank)
        model = system.characterize()
        vsafe = {}
        for name in KNOWN_ESTIMATORS:
            estimator = build_estimator(name, system, model)
            estimate = estimator.estimate(system, trace)
            vsafe[name] = {
                "v_safe": estimate.v_safe,
                "method": estimate.method,
            }
        entries.append({
            "part_number": part.part_number,
            "technology": part.technology.value,
            "surveyed": True,
            "bank": {
                "capacitance": bank.capacitance,
                "esr": bank.esr,
                "leakage_current": bank.leakage_current,
                "part_count": bank.part_count,
            },
            "vsafe": vsafe,
        })

    return {
        "format": "repro.golden-vsafe",
        "version": 3,
        "catalog": {
            "parts_per_technology": PARTS_PER_TECHNOLOGY,
            "seed": CATALOG_SEED,
        },
        "load_segments": REFERENCE_SEGMENTS,
        "plant": {
            "v_high": V_HIGH,
            "v_off": V_OFF,
            "v_out": V_OUT,
            "c_decoupling": C_DECOUPLING,
            "harvest_power": HARVEST_POWER,
        },
        "estimators": list(KNOWN_ESTIMATORS),
        "entries": entries,
        "environment": {
            "seed": ENV_SEED,
            "duration_s": ENV_DURATION,
            "entries": _env_entries(trace),
        },
        "bank": {
            "sets": {name: dict(BANK_SETS[name]) for name in BANK_SETS},
            "configs": [list(c) for c in BANK_CONFIGS],
            "entries": _bank_entries(trace),
        },
    }


def main() -> int:
    corpus = build_corpus()
    CORPUS_PATH.write_text(json.dumps(corpus, indent=2) + "\n",
                           encoding="utf-8")
    surveyed = sum(1 for e in corpus["entries"] if e["surveyed"])
    print(f"wrote {CORPUS_PATH} "
          f"({surveyed}/{len(corpus['entries'])} parts surveyed, "
          f"{len(corpus['estimators'])} estimators, "
          f"{len(corpus['environment']['entries'])} environment entries, "
          f"{len(corpus['bank']['entries'])} bank-config entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
