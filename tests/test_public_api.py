"""Public API surface: every exported name must resolve."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.power",
    "repro.loads",
    "repro.sim",
    "repro.core",
    "repro.sched",
    "repro.apps",
    "repro.harness",
    "repro.intermittent",
    "repro.obs",
    "repro.verify",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_version():
    import repro
    assert repro.__version__


def test_quickstart_docstring_imports_work():
    """The imports promised in the package docstring must exist."""
    from repro.core import CulpeoPG, CulpeoRCalculator  # noqa: F401
    from repro.harness import attempt_load, find_true_vsafe  # noqa: F401
    from repro.loads import ble_listen, ble_radio  # noqa: F401
    from repro.power import capybara_power_system  # noqa: F401
    from repro.sched import CatnapEstimator, CulpeoREstimator  # noqa: F401
