"""Table I API: call ordering, defaults, and the profiling driver.

Exercises the shared runtime machinery through the ISR implementation
(the µArch variant shares the base class; its specifics are covered in
test_uarch_runtime.py).
"""

import pytest

from repro.core.api import CulpeoInterface
from repro.core.isr import CulpeoIsrRuntime
from repro.errors import ProfileError
from repro.loads.synthetic import uniform_load
from repro.sim.engine import PowerSystemSimulator


@pytest.fixture
def runtime(system, calculator):
    engine = PowerSystemSimulator(system)
    return CulpeoIsrRuntime(engine, calculator)


class TestCallOrdering:
    def test_is_a_culpeo_interface(self, runtime):
        assert isinstance(runtime, CulpeoInterface)

    def test_double_profile_start_rejected(self, runtime):
        runtime.profile_start()
        with pytest.raises(ProfileError):
            runtime.profile_start()

    def test_profile_end_requires_start(self, runtime):
        with pytest.raises(ProfileError):
            runtime.profile_end("t")

    def test_rebound_end_requires_profile_end(self, runtime):
        with pytest.raises(ProfileError):
            runtime.rebound_end("t")

    def test_rebound_end_id_must_match(self, runtime):
        runtime.profile_start()
        runtime.profile_end("a")
        with pytest.raises(ProfileError):
            runtime.rebound_end("b")

    def test_full_sequence(self, runtime):
        runtime.profile_start()
        runtime.engine.run_trace(uniform_load(0.010, 0.010).trace,
                                 harvesting=False)
        runtime.profile_end("t")
        runtime.engine.idle(0.2, harvesting=False)
        runtime.rebound_end("t")
        assert runtime.profiles.lookup("t") is not None


class TestComputeAndAccess:
    def test_compute_without_profile_is_noop(self, runtime):
        runtime.compute_vsafe("never")
        assert runtime.get_vsafe("never") == pytest.approx(
            runtime.calculator.v_high)
        assert runtime.get_vdrop("never") == -1.0

    def test_profile_task_populates_tables(self, runtime):
        runtime.profile_task(uniform_load(0.025, 0.010).trace, "t",
                             harvesting=False)
        assert runtime.get_vsafe("t") < runtime.calculator.v_high
        assert runtime.get_vdrop("t") >= 0.0
        assert runtime.get_estimate("t") is not None

    def test_buffer_config_scopes_queries(self, runtime):
        runtime.set_buffer_config("bank-A")
        runtime.profile_task(uniform_load(0.025, 0.010).trace, "t",
                             harvesting=False)
        vsafe_a = runtime.get_vsafe("t")
        runtime.set_buffer_config("bank-B")
        assert runtime.get_vsafe("t") == pytest.approx(
            runtime.calculator.v_high)
        runtime.set_buffer_config("bank-A")
        assert runtime.get_vsafe("t") == pytest.approx(vsafe_a)

    def test_reprofile_overwrites(self, runtime):
        trace = uniform_load(0.010, 0.010).trace
        runtime.profile_task(trace, "t", harvesting=False)
        first = runtime.get_vsafe("t")
        # Re-profile a heavier variant under the same id.
        runtime.engine.system.rest_at(runtime.calculator.v_high)
        runtime.profile_task(uniform_load(0.050, 0.010).trace, "t",
                             harvesting=False)
        assert runtime.get_vsafe("t") > first
