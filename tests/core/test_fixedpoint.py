"""Fixed-point Culpeo-R arithmetic."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixedpoint import (
    ONE,
    FixedPointCulpeoR,
    from_fixed,
    fx_div,
    fx_mul,
    fx_sqrt,
    to_fixed,
)
from repro.core.runtime import CulpeoRCalculator
from repro.power.booster import LinearEfficiency

SLOPE, INTERCEPT = 0.052, 0.754
V_OFF, V_HIGH = 1.6, 2.56


class TestPrimitives:
    def test_to_from_roundtrip(self):
        for v in (0.0, 1.6, 2.56, 0.000015):
            assert from_fixed(to_fixed(v)) == pytest.approx(v, abs=2 / ONE)

    def test_to_fixed_rounds_up(self):
        # One third is inexact in binary: the fixed value must not be low.
        assert from_fixed(to_fixed(1 / 3)) >= 1 / 3

    def test_to_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            to_fixed(-1.0)

    def test_mul(self):
        assert from_fixed(fx_mul(to_fixed(1.5), to_fixed(2.0))) == \
            pytest.approx(3.0, abs=1e-4)

    def test_div(self):
        assert from_fixed(fx_div(to_fixed(3.0), to_fixed(2.0))) == \
            pytest.approx(1.5, abs=1e-4)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            fx_div(ONE, 0)

    def test_sqrt_exact_values(self):
        assert fx_sqrt(to_fixed(4.0)) == pytest.approx(to_fixed(2.0), abs=2)
        assert fx_sqrt(0) == 0

    def test_sqrt_rounds_up(self):
        for v in (2.0, 2.56, 3.1415, 6.5536):
            fx = fx_sqrt(to_fixed(v))
            assert from_fixed(fx) >= math.sqrt(v) - 1e-9

    def test_sqrt_rejects_negative(self):
        with pytest.raises(ValueError):
            fx_sqrt(-1)

    @given(v=st.floats(min_value=1e-4, max_value=16.0))
    @settings(max_examples=100)
    def test_sqrt_accuracy_property(self, v):
        # Below ~1 LSB the conservative round-up dominates (sqrt of one
        # LSB is 2^-8), so the accuracy claim starts above the floor.
        result = from_fixed(fx_sqrt(to_fixed(v)))
        assert result == pytest.approx(math.sqrt(v), abs=5e-4)
        assert result >= math.sqrt(v) - 1e-9


class TestAgainstFloatImplementation:
    @pytest.fixture(scope="class")
    def pair(self):
        eta = LinearEfficiency(slope=SLOPE, intercept=INTERCEPT)
        float_calc = CulpeoRCalculator(efficiency=eta, v_off=V_OFF,
                                       v_high=V_HIGH, guard_band=0.0)
        fixed_calc = FixedPointCulpeoR(eta_slope=SLOPE,
                                       eta_intercept=INTERCEPT,
                                       v_off=V_OFF, v_high=V_HIGH,
                                       guard_band=0.0)
        return float_calc, fixed_calc

    @pytest.mark.parametrize("profile", [
        (2.56, 2.30, 2.50),
        (2.56, 2.47, 2.55),
        (2.20, 1.95, 2.15),
        (2.56, 1.70, 2.40),
    ])
    def test_matches_float_within_millivolts(self, pair, profile):
        float_calc, fixed_calc = pair
        f = float_calc.estimate(*profile).v_safe
        x = fixed_calc.estimate(*profile).v_safe
        assert x == pytest.approx(f, abs=0.003)

    @pytest.mark.parametrize("profile", [
        (2.56, 2.30, 2.50),
        (2.20, 1.95, 2.15),
    ])
    def test_never_less_conservative_than_float(self, pair, profile):
        float_calc, fixed_calc = pair
        f = float_calc.estimate(*profile).v_safe
        x = fixed_calc.estimate(*profile).v_safe
        # Every fixed-point rounding rounds the requirement up.
        assert x >= f - 1e-9

    @given(
        v_start=st.floats(min_value=1.9, max_value=2.56),
        drop=st.floats(min_value=0.0, max_value=0.4),
        rebound=st.floats(min_value=0.0, max_value=0.3),
    )
    @settings(max_examples=80)
    def test_agreement_property(self, pair, v_start, drop, rebound):
        float_calc, fixed_calc = pair
        v_final = max(1.6, v_start - drop)
        v_min = max(1.0, v_final - rebound)
        f = float_calc.estimate(v_start, v_min, v_final).v_safe
        x = fixed_calc.estimate(v_start, v_min, v_final).v_safe
        assert x == pytest.approx(f, abs=0.004)
        assert x >= f - 1e-9

    def test_guard_band_applied(self):
        bare = FixedPointCulpeoR(eta_slope=SLOPE, eta_intercept=INTERCEPT,
                                 v_off=V_OFF, v_high=V_HIGH)
        guarded = FixedPointCulpeoR(eta_slope=SLOPE,
                                    eta_intercept=INTERCEPT,
                                    v_off=V_OFF, v_high=V_HIGH,
                                    guard_band=0.02)
        b = bare.estimate(2.56, 2.30, 2.50).v_safe
        g = guarded.estimate(2.56, 2.30, 2.50).v_safe
        assert g == pytest.approx(b + 0.02, abs=1e-4)

    def test_capped_at_v_high(self):
        calc = FixedPointCulpeoR(eta_slope=SLOPE, eta_intercept=INTERCEPT,
                                 v_off=V_OFF, v_high=V_HIGH)
        assert calc.estimate(2.56, 1.62, 1.65).v_safe <= V_HIGH

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedPointCulpeoR(eta_slope=-1.0, eta_intercept=0.8,
                              v_off=V_OFF, v_high=V_HIGH)
        with pytest.raises(ValueError):
            FixedPointCulpeoR(eta_slope=0.05, eta_intercept=0.8,
                              v_off=2.0, v_high=1.0)
