"""Culpeo-R-µArch: profiling through the peripheral block."""

import pytest

from repro.core.isr import CulpeoIsrRuntime
from repro.core.uarch_runtime import CulpeoUArchRuntime
from repro.harness.ground_truth import attempt_load
from repro.loads.synthetic import uniform_load
from repro.sim.engine import PowerSystemSimulator
from repro.sim.uarch import CulpeoUArchBlock


def make_runtime(system, calculator, **kwargs):
    engine = PowerSystemSimulator(system)
    return CulpeoUArchRuntime(engine, calculator, **kwargs)


class TestProfiling:
    def test_profile_records_quantised_voltages(self, system, calculator):
        runtime = make_runtime(system, calculator)
        runtime.profile_task(uniform_load(0.025, 0.010).trace, "t",
                             harvesting=False)
        record = runtime.profiles.lookup("t")
        assert record.v_min <= record.v_final <= record.v_start
        # 8-bit quantisation: v_min sits on a 10 mV grid.
        assert (record.v_min / 0.010) == pytest.approx(
            round(record.v_min / 0.010), abs=1e-6)

    def test_catches_1ms_pulse_min(self, system, calculator):
        """100 kHz sampling sees what the 1 kHz ISR misses."""
        isr = CulpeoIsrRuntime(PowerSystemSimulator(system.copy()),
                               calculator)
        isr.engine.system.rest_at(calculator.v_high)
        isr.profile_task(uniform_load(0.050, 0.001).trace, "t",
                         harvesting=False)
        uarch = make_runtime(system.copy(), calculator)
        uarch.engine.system.rest_at(calculator.v_high)
        uarch.profile_task(uniform_load(0.050, 0.001).trace, "t",
                           harvesting=False)
        drop_isr = (isr.profiles.lookup("t").v_final
                    - isr.profiles.lookup("t").v_min)
        drop_uarch = (uarch.profiles.lookup("t").v_final
                      - uarch.profiles.lookup("t").v_min)
        assert drop_uarch > drop_isr

    def test_more_conservative_than_isr(self, system, calculator):
        load = uniform_load(0.025, 0.010)
        isr = CulpeoIsrRuntime(PowerSystemSimulator(system.copy()),
                               calculator)
        isr.engine.system.rest_at(calculator.v_high)
        isr.profile_task(load.trace, "t", harvesting=False)
        uarch = make_runtime(system.copy(), calculator)
        uarch.engine.system.rest_at(calculator.v_high)
        uarch.profile_task(load.trace, "t", harvesting=False)
        assert uarch.get_vsafe("t") >= isr.get_vsafe("t")

    def test_estimates_are_safe_even_for_1ms(self, system, calculator):
        load = uniform_load(0.050, 0.001)
        runtime = make_runtime(system.copy(), calculator)
        runtime.profile_task(load.trace, "t", harvesting=False)
        run = attempt_load(system, load.trace, runtime.get_vsafe("t"))
        assert run.completed

    def test_custom_block(self, system, calculator):
        block = CulpeoUArchBlock(clock_hz=10e3)
        runtime = make_runtime(system, calculator, block=block)
        assert runtime.block is block
        runtime.profile_task(uniform_load(0.010, 0.010).trace, "t",
                             harvesting=False)
        assert runtime.get_vsafe("t") < calculator.v_high

    def test_block_disabled_after_rebound_end(self, system, calculator):
        runtime = make_runtime(system, calculator)
        runtime.profile_task(uniform_load(0.010, 0.010).trace, "t",
                             harvesting=False)
        assert runtime.block.next_event_time() is None
        assert runtime.block.burden_current == 0.0
