"""VsafeCache behavior: hits, eviction, and structural invalidation."""

import pytest

from repro.core.analysis import analyze_tasks
from repro.core.profile_guided import CulpeoPG
from repro.core.vsafe_cache import VsafeCache, cache_stats, default_cache
from repro.loads.synthetic import pulse_with_compute_tail, uniform_load
from repro.power.system import capybara_power_system
from repro.sched.estimators import CatnapEstimator, estimator_cache_key
from repro.sched.policy import cached_estimate


@pytest.fixture()
def system():
    return capybara_power_system()


@pytest.fixture()
def trace():
    return pulse_with_compute_tail(0.025, 0.010).trace


class TestVsafeCacheMechanics:
    def test_miss_then_hit(self):
        cache = VsafeCache()
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_get_or_compute_computes_once(self):
        cache = VsafeCache()
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_lru_eviction(self):
        cache = VsafeCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now least recent
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_invalidate_clears_entries(self):
        cache = VsafeCache()
        cache.put("a", 1)
        cache.invalidate()
        assert cache.get("a") is None
        assert cache.stats.invalidations == 1
        assert len(cache) == 0

    def test_disabled_cache_is_passthrough(self):
        cache = VsafeCache(enabled=False)
        cache.put("a", 1)
        assert cache.get("a") is None   # put stored nothing
        assert cache.stats.misses == 1
        assert len(cache) == 0

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            VsafeCache(maxsize=0)


class TestCulpeoPGCaching:
    def test_repeat_analysis_hits(self, system, trace):
        cache = VsafeCache()
        pg = CulpeoPG(system.characterize(), cache=cache)
        first = pg.analyze(trace)
        second = pg.analyze(trace)
        assert second == first
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1

    def test_cached_equals_uncached(self, system, trace):
        model = system.characterize()
        cached = CulpeoPG(model, cache=VsafeCache())
        uncached = CulpeoPG(model, use_cache=False)
        warm = cached.analyze(trace)
        warm = cached.analyze(trace)  # second call: a hit
        assert warm == uncached.analyze(trace)

    def test_record_steps_bypasses_cache(self, system, trace):
        cache = VsafeCache()
        pg = CulpeoPG(system.characterize(), cache=cache,
                      record_steps=True)
        pg.analyze(trace)
        assert pg.last_steps
        pg.analyze(trace)
        assert cache.stats.hits == 0

    def test_analyze_tasks_hit_rate(self, system, trace):
        cache = VsafeCache()
        pg = CulpeoPG(system.characterize(), cache=cache)
        tasks = {"sense": uniform_load(0.003, 0.050).trace,
                 "radio": trace}
        analyze_tasks(pg, tasks)
        analyze_tasks(pg, tasks)        # repeated feasibility check
        stats = cache.stats
        assert stats.hits >= len(tasks)
        assert stats.hit_rate > 0


class TestStructuralInvalidation:
    """Derived configurations must never hit entries of the original."""

    def test_aged_buffer_changes_key_and_misses(self, system, trace):
        cache = VsafeCache()
        fresh_model = system.characterize()
        CulpeoPG(fresh_model, cache=cache).analyze(trace)

        aged_system = system.copy()
        aged_system.buffer = aged_system.buffer.aged()
        aged_model = aged_system.characterize()
        assert aged_model.config_key() != fresh_model.config_key()

        hits_before = cache.stats.hits
        aged_estimate = CulpeoPG(aged_model, cache=cache).analyze(trace)
        assert cache.stats.hits == hits_before            # no stale hit
        fresh_estimate = CulpeoPG(fresh_model, cache=cache).analyze(trace)
        assert aged_estimate.v_safe > fresh_estimate.v_safe

    def test_temperature_derating_changes_key(self, system, trace):
        cache = VsafeCache()
        warm_model = system.characterize()
        CulpeoPG(warm_model, cache=cache).analyze(trace)

        cold_system = system.copy()
        cold_system.buffer = cold_system.buffer.at_temperature(-20.0)
        cold_model = cold_system.characterize()
        assert cold_model.config_key() != warm_model.config_key()

        hits_before = cache.stats.hits
        CulpeoPG(cold_model, cache=cache).analyze(trace)
        assert cache.stats.hits == hits_before

    def test_reconfiguration_changes_system_key(self):
        from repro.power.reconfigurable import (
            ReconfigurableBuffer,
            capybara_bank_set,
        )
        buffer = ReconfigurableBuffer(capybara_bank_set(),
                                      initial_config=("small",))
        key_small = buffer.config_key()
        buffer.configure(("small", "large"))
        assert buffer.config_key() != key_small

    def test_trace_fingerprint_distinguishes_content(self):
        a = uniform_load(0.025, 0.010).trace
        b = uniform_load(0.026, 0.010).trace
        assert a.fingerprint() != b.fingerprint()


class TestDeratingRestoreRoundTrip:
    """Mutate the configuration, then restore it: the original entries must
    still be live — invalidation is structural (key-based), not a flush."""

    def test_restore_after_aging_hits_original_entry(self, system, trace):
        cache = VsafeCache()
        fresh_model = system.characterize()
        baseline = CulpeoPG(fresh_model, cache=cache).analyze(trace)

        aged_system = system.copy()
        aged_system.buffer = aged_system.buffer.aged()
        aged = CulpeoPG(aged_system.characterize(),
                        cache=cache).analyze(trace)
        assert aged.v_safe > baseline.v_safe    # recomputed, not stale

        # Re-characterizing the untouched system reproduces the original
        # key, so the very first analysis on the "restored" part is a hit.
        hits_before = cache.stats.hits
        restored_model = system.characterize()
        assert restored_model.config_key() == fresh_model.config_key()
        restored = CulpeoPG(restored_model, cache=cache).analyze(trace)
        assert cache.stats.hits == hits_before + 1
        assert restored == baseline

    def test_restore_after_temperature_excursion_hits(self, system, trace):
        cache = VsafeCache()
        warm_model = system.characterize()
        baseline = CulpeoPG(warm_model, cache=cache).analyze(trace)

        cold_system = system.copy()
        cold_system.buffer = cold_system.buffer.at_temperature(-20.0)
        CulpeoPG(cold_system.characterize(), cache=cache).analyze(trace)
        assert len(cache) == 2                  # both configs resident

        hits_before = cache.stats.hits
        back_warm = CulpeoPG(system.characterize(),
                             cache=cache).analyze(trace)
        assert cache.stats.hits == hits_before + 1
        assert back_warm == baseline

    def test_aging_misses_at_scheduler_level(self, system, trace):
        """``cached_estimate`` keys on ``system.config_key()`` too: an aged
        plant must recompute even through the estimator-level cache."""
        model = system.characterize()
        estimator = CatnapEstimator.measured(model)
        default_cache().invalidate()
        default_cache().reset_stats()
        fresh = cached_estimate(estimator, system, trace)
        aged_system = system.copy()
        aged_system.buffer = aged_system.buffer.aged()
        assert aged_system.config_key() != system.config_key()
        aged = cached_estimate(estimator, aged_system, trace)
        assert cache_stats().hits == 0
        # Restoring the original plant (a fresh copy keys identically)
        # hits the entry computed before the excursion.
        restored = cached_estimate(estimator, system.copy(), trace)
        assert cache_stats().hits == 1
        assert restored == fresh
        assert aged != fresh


class TestSchedulerCachedEstimate:
    def test_cached_estimate_hits_shared_cache(self, system, trace):
        model = system.characterize()
        estimator = CatnapEstimator.measured(model)
        assert estimator_cache_key(estimator) is not None
        default_cache().invalidate()
        default_cache().reset_stats()
        first = cached_estimate(estimator, system, trace)
        second = cached_estimate(estimator, system, trace)
        assert second == first
        stats = cache_stats()
        assert stats.hits >= 1
