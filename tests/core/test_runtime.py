"""Culpeo-R math: Equations 1a-1c and 3."""

import math

import pytest

from repro.core.runtime import CulpeoRCalculator, vdelta_safe, vsafe_energy
from repro.power.booster import LinearEfficiency

ETA = LinearEfficiency(slope=0.052, intercept=0.754)
V_OFF = 1.6
V_HIGH = 2.56


class TestVdeltaSafe:
    def test_scales_drop_up_toward_v_off(self):
        # A drop observed at a high V_min grows when referred to V_off.
        scaled = vdelta_safe(0.2, v_min=2.3, v_off=V_OFF, efficiency=ETA)
        assert scaled > 0.2

    def test_identity_at_v_off(self):
        scaled = vdelta_safe(0.2, v_min=V_OFF, v_off=V_OFF, efficiency=ETA)
        assert scaled == pytest.approx(0.2)

    def test_exact_ratio(self):
        v_min = 2.0
        expected = 0.1 * (v_min * ETA.efficiency(v_min)) / (
            V_OFF * ETA.efficiency(V_OFF))
        assert vdelta_safe(0.1, v_min, V_OFF, ETA) == pytest.approx(expected)

    def test_zero_drop(self):
        assert vdelta_safe(0.0, 2.0, V_OFF, ETA) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            vdelta_safe(-0.1, 2.0, V_OFF, ETA)
        with pytest.raises(ValueError):
            vdelta_safe(0.1, 0.0, V_OFF, ETA)


class TestVsafeEnergy:
    def test_no_drop_means_v_off(self):
        assert vsafe_energy(2.5, 2.5, V_OFF, ETA) == pytest.approx(V_OFF)

    def test_matches_closed_form(self):
        v_start, v_final = 2.56, 2.40
        ratio = ETA.efficiency(v_start) / ETA.efficiency(V_OFF)
        expected = math.sqrt(ratio * (v_start ** 2 - v_final ** 2)
                             + V_OFF ** 2)
        assert vsafe_energy(v_start, v_final, V_OFF, ETA) == \
            pytest.approx(expected)

    def test_efficiency_ratio_inflates_requirement(self):
        # The same measured V^2 drop demands more when starting at V_off
        # (lower efficiency there), so the ratio must exceed 1.
        naive = math.sqrt(2.56 ** 2 - 2.40 ** 2 + V_OFF ** 2)
        assert vsafe_energy(2.56, 2.40, V_OFF, ETA) > naive

    def test_validation(self):
        with pytest.raises(ValueError):
            vsafe_energy(0.0, 0.0, V_OFF, ETA)
        with pytest.raises(ValueError):
            vsafe_energy(2.0, 2.2, V_OFF, ETA)


class TestCulpeoRCalculator:
    @pytest.fixture
    def calc(self):
        return CulpeoRCalculator(efficiency=ETA, v_off=V_OFF, v_high=V_HIGH,
                                 guard_band=0.0)

    def test_estimate_is_sum_of_terms(self, calc):
        v_start, v_min, v_final = 2.56, 2.30, 2.50
        est = calc.estimate(v_start, v_min, v_final)
        expected = (vsafe_energy(v_start, v_final, V_OFF, ETA)
                    + vdelta_safe(v_final - v_min, v_min, V_OFF, ETA))
        assert est.v_safe == pytest.approx(expected)
        assert est.method == "culpeo-r"

    def test_guard_band_adds_margin(self):
        guarded = CulpeoRCalculator(efficiency=ETA, v_off=V_OFF,
                                    v_high=V_HIGH, guard_band=0.02)
        bare = CulpeoRCalculator(efficiency=ETA, v_off=V_OFF,
                                 v_high=V_HIGH, guard_band=0.0)
        g = guarded.estimate(2.56, 2.30, 2.50).v_safe
        b = bare.estimate(2.56, 2.30, 2.50).v_safe
        assert g == pytest.approx(b + 0.02)

    def test_capped_at_v_high(self, calc):
        est = calc.estimate(2.56, 1.62, 1.65)
        assert est.v_safe <= V_HIGH

    def test_quantisation_artifacts_clamped(self, calc):
        # v_final a hair above v_start (possible with ADC bins) is clamped.
        est = calc.estimate(2.50, 2.49, 2.5001)
        assert est.v_safe >= V_OFF

    def test_demand_fields(self, calc):
        est = calc.estimate(2.56, 2.30, 2.50)
        assert est.demand.energy_v2 > 0
        assert est.demand.v_delta == pytest.approx(est.v_delta)

    def test_validation(self):
        with pytest.raises(ValueError):
            CulpeoRCalculator(efficiency=ETA, v_off=0.0, v_high=V_HIGH)
        with pytest.raises(ValueError):
            CulpeoRCalculator(efficiency=ETA, v_off=2.0, v_high=1.0)
        with pytest.raises(ValueError):
            CulpeoRCalculator(efficiency=ETA, v_off=V_OFF, v_high=V_HIGH,
                              guard_band=-0.01)
