"""Development-time task analysis."""

import pytest

from repro.core.analysis import (
    analyze_tasks,
    plan_discharge_groups,
    recommend_configuration,
    suggest_split,
)
from repro.core.profile_guided import CulpeoPG
from repro.errors import ScheduleError
from repro.loads.peripherals import lora_packet
from repro.loads.trace import CurrentTrace
from repro.power.reconfigurable import ReconfigurableBuffer, capybara_bank_set
from repro.power.system import capybara_power_system


@pytest.fixture(scope="module")
def pg(model):
    return CulpeoPG(model)


@pytest.fixture
def greedy_trace():
    """Long sampling plus two radio packets: infeasible as one task."""
    sampling = CurrentTrace.constant(0.004, 4.0)
    packet = lora_packet().trace
    return sampling.concat(packet).concat(packet)


class TestAnalyzeTasks:
    def test_reports_feasibility(self, pg, greedy_trace):
        reports = analyze_tasks(pg, {
            "small": CurrentTrace.constant(0.005, 0.010),
            "greedy": greedy_trace,
        })
        assert reports["small"].feasible
        assert not reports["greedy"].feasible
        assert reports["small"].headroom > 0 > reports["greedy"].headroom

    def test_margin_tightens(self, pg):
        trace = CurrentTrace.constant(0.010, 2.0)
        loose = analyze_tasks(pg, {"t": trace}, margin=0.0)["t"]
        tight = analyze_tasks(pg, {"t": trace}, margin=0.3)["t"]
        assert loose.headroom > tight.headroom

    def test_str(self, pg):
        report = analyze_tasks(pg, {"t": CurrentTrace.constant(0.005, 0.01)})
        assert "V_safe" in str(report["t"])

    def test_validation(self, pg):
        with pytest.raises(ValueError):
            analyze_tasks(pg, {}, margin=-1.0)


class TestSuggestSplit:
    def test_feasible_task_stays_whole(self, pg):
        trace = CurrentTrace.constant(0.005, 0.010)
        assert suggest_split(pg, trace) == [trace]

    def test_infeasible_task_splits(self, pg, greedy_trace):
        pieces = suggest_split(pg, greedy_trace)
        assert len(pieces) >= 2
        # Every piece fits on a single discharge...
        for piece in pieces:
            assert pg.analyze(piece).v_safe <= pg.model.v_high - 0.02
        # ...and the pieces reassemble the original trace exactly.
        total = pieces[0]
        for piece in pieces[1:]:
            total = total.concat(piece)
        assert total == greedy_trace

    def test_atomic_segment_too_big_raises(self, pg):
        impossible = CurrentTrace.constant(0.050, 3.0)
        with pytest.raises(ScheduleError):
            suggest_split(pg, impossible)


class TestPlanDischargeGroups:
    def test_small_tasks_share_a_discharge(self, pg):
        tiny = CurrentTrace.constant(0.003, 0.010)
        groups = plan_discharge_groups(
            pg, [("a", tiny), ("b", tiny), ("c", tiny)])
        assert groups == [["a", "b", "c"]]

    def test_heavy_tasks_get_recharge_points(self, pg):
        # Each fits alone (~2.2 V) but no two fit on one discharge.
        heavy = CurrentTrace.constant(0.010, 1.5)
        groups = plan_discharge_groups(
            pg, [("a", heavy), ("b", heavy), ("c", heavy)])
        assert len(groups) == 3

    def test_order_preserved(self, pg):
        small = CurrentTrace.constant(0.003, 0.010)
        heavy = CurrentTrace.constant(0.010, 1.5)
        groups = plan_discharge_groups(
            pg, [("s1", small), ("h", heavy), ("h2", heavy),
                 ("s2", small)])
        flattened = [name for group in groups for name in group]
        assert flattened == ["s1", "h", "h2", "s2"]
        assert len(groups) >= 2

    def test_single_infeasible_task_raises(self, pg):
        with pytest.raises(ScheduleError):
            plan_discharge_groups(
                pg, [("monster", CurrentTrace.constant(0.050, 3.0))])


class TestRecommendConfiguration:
    @pytest.fixture
    def reconfigurable_system(self):
        system = capybara_power_system()
        system.buffer = ReconfigurableBuffer(
            capybara_bank_set(), initial_config=("small", "large"))
        system.datasheet_capacitance = None
        return system

    def test_small_config_suffices_for_light_load(self,
                                                  reconfigurable_system):
        light = CurrentTrace.constant(0.003, 0.050)
        rec = recommend_configuration(
            reconfigurable_system, light,
            [("small",), ("large",), ("small", "large")])
        assert rec.config == frozenset({"small"})

    def test_heavy_load_needs_bigger_config(self, reconfigurable_system):
        heavy = CurrentTrace.constant(0.020, 1.2)
        rec = recommend_configuration(
            reconfigurable_system, heavy,
            [("small",), ("large",), ("small", "large")])
        assert rec.config != frozenset({"small"})
        assert "small" in rec.rejected

    def test_no_safe_config_raises(self, reconfigurable_system):
        monster = CurrentTrace.constant(0.050, 5.0)
        with pytest.raises(ScheduleError):
            recommend_configuration(
                reconfigurable_system, monster,
                [("small",), ("small", "large")])

    def test_requires_reconfigurable_buffer(self):
        system = capybara_power_system()
        with pytest.raises(ScheduleError):
            recommend_configuration(system,
                                    CurrentTrace.constant(0.003, 0.01),
                                    [("small",)])

    def test_str(self, reconfigurable_system):
        rec = recommend_configuration(
            reconfigurable_system, CurrentTrace.constant(0.003, 0.050),
            [("small",)])
        assert "V_safe" in str(rec)
