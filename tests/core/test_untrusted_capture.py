"""Untrusted captures degrade to V_high, never into a garbage gate."""

import pytest

from repro.core.isr import CulpeoIsrRuntime
from repro.core.uarch_runtime import CulpeoUArchRuntime
from repro.loads.synthetic import uniform_load
from repro.sched.estimators import CulpeoREstimator
from repro.sim.engine import PowerSystemSimulator
from repro.sim.faults import FaultyAdc

LOAD = uniform_load(0.010, 0.100)


def make_isr(system, calculator):
    engine = PowerSystemSimulator(system.copy())
    return CulpeoIsrRuntime(engine, calculator)


class TestIsrDiscard:
    def test_dropout_poisoned_capture_is_discarded(self, system, calculator):
        runtime = make_isr(system, calculator)
        bad = FaultyAdc(bits=12, v_ref=2.56, dropout_rate=0.3, seed=13)
        runtime._adc = bad
        runtime._sampler.adc = bad
        runtime.profile_task(LOAD.trace, "t", harvesting=False)
        assert runtime.untrusted_captures >= 1
        assert runtime.profiles.lookup("t") is None
        assert runtime.get_estimate("t") is None
        # Queries fall back to the conservative defaults (Table I).
        assert runtime.get_vsafe("t") == pytest.approx(calculator.v_high)
        assert runtime.get_vdrop("t") == -1

    def test_clean_capture_is_kept(self, system, calculator):
        runtime = make_isr(system, calculator)
        runtime.profile_task(LOAD.trace, "t", harvesting=False)
        assert runtime.untrusted_captures == 0
        assert runtime.profiles.lookup("t") is not None
        assert runtime.get_vsafe("t") < calculator.v_high


class TestUarchDistrust:
    def make_runtime(self, system, calculator):
        engine = PowerSystemSimulator(system.copy())
        return CulpeoUArchRuntime(engine, calculator)

    def test_max_below_min_is_impossible(self, system, calculator):
        runtime = self.make_runtime(system, calculator)
        runtime._v_min = 2.0
        runtime._v_final = 1.5  # rebound "maximum" below the minimum
        assert not runtime._capture_trusted()

    def test_flat_capture_stays_trusted(self, system, calculator):
        # Equal registers are possible (a truly flat trace) — distrust
        # only starts beyond one LSB of inversion.
        runtime = self.make_runtime(system, calculator)
        runtime._v_min = 2.0
        runtime._v_final = 2.0
        assert runtime._capture_trusted()

    def test_normal_profile_is_trusted(self, system, calculator):
        runtime = self.make_runtime(system, calculator)
        runtime.profile_task(LOAD.trace, "t", harvesting=False)
        assert runtime.untrusted_captures == 0
        assert runtime.get_vsafe("t") < calculator.v_high


class TestEstimatorFloorCheck:
    def test_stuck_adc_estimate_rejected_by_physics_floor(self, system,
                                                          calculator):
        # A mid-scale stuck ADC yields a flat capture whose implied V_safe
        # sits barely above V_off; for a multi-millijoule task that is
        # physically impossible and the estimator must fall back.
        model = system.characterize()

        def stick_the_adc(runtime):
            bad = FaultyAdc(bits=12, v_ref=2.56, stuck_code=3200,
                            stuck_after=0)
            runtime._adc = bad
            runtime._sampler.adc = bad

        estimator = CulpeoREstimator(calculator, "isr",
                                     runtime_hook=stick_the_adc,
                                     model=model)
        heavy = uniform_load(0.010, 0.300)  # ~7 mJ on the rail
        estimate = estimator.estimate(system, heavy.trace)
        assert "fallback" in estimate.method
        assert estimate.v_safe == pytest.approx(calculator.v_high)

    def test_honest_estimate_passes_the_floor(self, system, calculator):
        model = system.characterize()
        estimator = CulpeoREstimator(calculator, "isr", model=model)
        heavy = uniform_load(0.010, 0.300)
        estimate = estimator.estimate(system, heavy.trace)
        assert "fallback" not in estimate.method
        assert estimate.v_safe < calculator.v_high
