"""V_safe table serialization."""

import pytest

from repro.core.model import TaskDemand, VsafeEstimate
from repro.core.persistence import (
    load_table,
    save_table,
    table_from_json,
    table_to_json,
)
from repro.core.pg_profiler import CulpeoPgProfiler
from repro.core.tables import VsafeTable
from repro.loads.peripherals import ble_radio, gesture_recognition


def make_table():
    table = VsafeTable(v_high=2.56)
    table.store("radio", VsafeEstimate(
        v_safe=1.71, v_delta=0.12,
        demand=TaskDemand(0.16, 0.12), method="culpeo-pg"))
    table.store("sense", VsafeEstimate(
        v_safe=1.85, v_delta=0.04,
        demand=TaskDemand(0.73, 0.04), method="culpeo-pg"),
        buffer_config="small")
    return table


class TestRoundTrip:
    def test_values_preserved(self):
        table = make_table()
        rebuilt = table_from_json(table_to_json(table))
        assert rebuilt.v_high == pytest.approx(2.56)
        assert rebuilt.get_vsafe("radio") == pytest.approx(1.71)
        assert rebuilt.get_vdrop("radio") == pytest.approx(0.12)
        assert rebuilt.get_vsafe("sense", "small") == pytest.approx(1.85)

    def test_demands_preserved(self):
        rebuilt = table_from_json(table_to_json(make_table()))
        entry = rebuilt.lookup("sense", "small")
        assert entry.demand.energy_v2 == pytest.approx(0.73)
        assert entry.method == "culpeo-pg"

    def test_missing_entries_still_default(self):
        rebuilt = table_from_json(table_to_json(make_table()))
        assert rebuilt.get_vsafe("ghost") == pytest.approx(2.56)
        assert rebuilt.get_vdrop("ghost") == -1.0

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "vsafe.json"
        save_table(make_table(), path)
        rebuilt = load_table(path)
        assert rebuilt.get_vsafe("radio") == pytest.approx(1.71)

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            table_from_json('{"format": "nope"}')
        with pytest.raises(ValueError):
            table_from_json('{"format": "repro.vsafe-table", "version": 9}')


class TestDeploymentFlow:
    def test_pg_analysis_ships_as_artifact(self, model, tmp_path):
        """The §V-A workflow: analyze offline, bake the table in."""
        profiler = CulpeoPgProfiler(model)
        profiler.profile_task([gesture_recognition().trace], "gesture")
        profiler.profile_task([ble_radio().trace], "ble")
        path = tmp_path / "firmware_vsafe.json"
        save_table(profiler.results, path)

        onboard = load_table(path)
        for task in ("gesture", "ble"):
            assert onboard.get_vsafe(task) == pytest.approx(
                profiler.get_vsafe(task))
            assert onboard.get_vdrop(task) == pytest.approx(
                profiler.get_vdrop(task))
