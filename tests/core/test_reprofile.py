"""Re-profiling on harvest-power change."""

import pytest

from repro.core.isr import CulpeoIsrRuntime
from repro.core.reprofile import ReprofilingMonitor
from repro.loads.synthetic import uniform_load
from repro.sim.engine import PowerSystemSimulator


@pytest.fixture
def runtime(system, calculator):
    return CulpeoIsrRuntime(PowerSystemSimulator(system), calculator)


@pytest.fixture
def profiled_runtime(runtime):
    runtime.profile_task(uniform_load(0.025, 0.010).trace, "radio",
                         harvesting=False)
    return runtime


class TestReprofilingMonitor:
    def test_first_observation_sets_baseline(self, profiled_runtime):
        monitor = ReprofilingMonitor(profiled_runtime)
        assert not monitor.observe_power(2.0e-3)
        assert monitor.baseline_power == pytest.approx(2.0e-3)

    def test_small_change_keeps_profiles(self, profiled_runtime):
        monitor = ReprofilingMonitor(profiled_runtime, threshold=0.25)
        monitor.observe_power(2.0e-3)
        assert not monitor.observe_power(2.2e-3)
        assert profiled_runtime.get_vdrop("radio") >= 0.0

    def test_large_change_invalidates(self, profiled_runtime):
        monitor = ReprofilingMonitor(profiled_runtime, threshold=0.25)
        monitor.observe_power(2.0e-3)
        assert monitor.observe_power(4.0e-3)
        # Tables fall back to the paper's defaults until re-profiled.
        assert profiled_runtime.get_vsafe("radio") == pytest.approx(
            profiled_runtime.calculator.v_high)
        assert profiled_runtime.get_vdrop("radio") == -1.0
        assert monitor.invalidation_count == 1
        assert monitor.baseline_power == pytest.approx(4.0e-3)

    def test_only_current_buffer_config_invalidated(self, runtime):
        runtime.set_buffer_config("big")
        runtime.profile_task(uniform_load(0.025, 0.010).trace, "radio",
                             harvesting=False)
        big_vsafe = runtime.get_vsafe("radio")
        runtime.set_buffer_config("small")
        runtime.engine.system.rest_at(runtime.calculator.v_high)
        runtime.profile_task(uniform_load(0.025, 0.010).trace, "radio",
                             harvesting=False)
        monitor = ReprofilingMonitor(runtime)
        monitor.observe_power(2.0e-3)
        monitor.observe_power(8.0e-3)     # invalidates "small" only
        assert runtime.get_vsafe("radio") == pytest.approx(
            runtime.calculator.v_high)
        runtime.set_buffer_config("big")
        assert runtime.get_vsafe("radio") == pytest.approx(big_vsafe)

    def test_reprofile_restores(self, profiled_runtime):
        monitor = ReprofilingMonitor(profiled_runtime)
        monitor.observe_power(2.0e-3)
        monitor.observe_power(6.0e-3)
        profiled_runtime.engine.system.rest_at(
            profiled_runtime.calculator.v_high)
        profiled_runtime.profile_task(uniform_load(0.025, 0.010).trace,
                                      "radio", harvesting=False)
        assert profiled_runtime.get_vsafe("radio") < \
            profiled_runtime.calculator.v_high

    def test_relative_change_math(self, profiled_runtime):
        monitor = ReprofilingMonitor(profiled_runtime)
        monitor.record_profile_conditions(4.0e-3)
        assert monitor.relative_change(5.0e-3) == pytest.approx(0.25)
        assert monitor.relative_change(4.0e-3) == 0.0

    def test_validation(self, profiled_runtime):
        with pytest.raises(ValueError):
            ReprofilingMonitor(profiled_runtime, threshold=0.0)
        monitor = ReprofilingMonitor(profiled_runtime)
        with pytest.raises(ValueError):
            monitor.observe_power(-1.0)
        with pytest.raises(ValueError):
            monitor.record_profile_conditions(-1.0)


class TestInterruptedProfile:
    def test_browned_out_profile_is_discarded(self, system, calculator):
        """A profile run that dies must not poison the tables."""
        system.rest_at(1.7)  # far too low for this load
        runtime = CulpeoIsrRuntime(PowerSystemSimulator(system), calculator)
        result = runtime.profile_task(uniform_load(0.050, 0.100).trace,
                                      "heavy", harvesting=False)
        assert result.browned_out
        assert runtime.profiles.lookup("heavy") is None
        assert runtime.get_vsafe("heavy") == pytest.approx(calculator.v_high)
        assert runtime.get_vdrop("heavy") == -1.0
