"""Profile and V_safe tables with buffer-configuration tagging."""

import pytest

from repro.core.model import TaskDemand, VsafeEstimate
from repro.core.tables import (
    DEFAULT_BUFFER,
    ProfileRecord,
    ProfileTable,
    VsafeTable,
)


def make_estimate(v_safe=1.9, v_delta=0.2):
    return VsafeEstimate(v_safe=v_safe, v_delta=v_delta,
                         demand=TaskDemand(0.1, v_delta), method="test")


class TestProfileTable:
    def test_store_and_lookup(self):
        table = ProfileTable()
        record = ProfileRecord(v_start=2.5, v_min=2.2, v_final=2.45)
        table.store("radio", record)
        assert table.lookup("radio") is record
        assert len(table) == 1

    def test_lookup_missing_returns_none(self):
        assert ProfileTable().lookup("ghost") is None

    def test_buffer_config_isolation(self):
        table = ProfileTable()
        a = ProfileRecord(2.5, 2.2, 2.45, buffer_config="bank-A")
        b = ProfileRecord(2.4, 2.0, 2.35, buffer_config="bank-B")
        table.store("radio", a)
        table.store("radio", b)
        assert table.lookup("radio", "bank-A") is a
        assert table.lookup("radio", "bank-B") is b
        assert table.lookup("radio") is None  # default config not written

    def test_invalidate(self):
        table = ProfileTable()
        table.store("t", ProfileRecord(2.5, 2.2, 2.45))
        table.invalidate("t")
        assert table.lookup("t") is None
        table.invalidate("t")  # idempotent

    def test_clear(self):
        table = ProfileTable()
        table.store("a", ProfileRecord(2.5, 2.2, 2.45))
        table.store("b", ProfileRecord(2.5, 2.2, 2.45))
        table.clear()
        assert len(table) == 0

    def test_contains(self):
        table = ProfileTable()
        table.store("a", ProfileRecord(2.5, 2.2, 2.45))
        assert ("a", DEFAULT_BUFFER) in table

    def test_record_validation(self):
        with pytest.raises(ValueError):
            ProfileRecord(v_start=-1.0, v_min=0.0, v_final=0.0)


class TestVsafeTable:
    def test_defaults_match_paper(self):
        table = VsafeTable(v_high=2.56)
        assert table.get_vsafe("never-profiled") == pytest.approx(2.56)
        assert table.get_vdrop("never-profiled") == -1.0

    def test_store_and_get(self):
        table = VsafeTable(v_high=2.56)
        table.store("radio", make_estimate(1.9, 0.25))
        assert table.get_vsafe("radio") == pytest.approx(1.9)
        assert table.get_vdrop("radio") == pytest.approx(0.25)

    def test_buffer_config_tagging(self):
        table = VsafeTable(v_high=2.56)
        table.store("radio", make_estimate(1.9), buffer_config="big")
        assert table.get_vsafe("radio", "big") == pytest.approx(1.9)
        assert table.get_vsafe("radio", "small") == pytest.approx(2.56)

    def test_invalidate_restores_defaults(self):
        table = VsafeTable(v_high=2.56)
        table.store("radio", make_estimate())
        table.invalidate("radio")
        assert table.get_vdrop("radio") == -1.0

    def test_clear(self):
        table = VsafeTable(v_high=2.56)
        table.store("a", make_estimate())
        table.clear()
        assert len(table) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            VsafeTable(v_high=0.0)
