"""Culpeo-PG: Algorithm 1 over current traces."""

import pytest

from repro.core.profile_guided import CulpeoPG
from repro.harness.ground_truth import attempt_load, find_true_vsafe
from repro.loads.synthetic import pulse_with_compute_tail, uniform_load
from repro.loads.trace import CurrentTrace


@pytest.fixture(scope="module")
def pg(model):
    return CulpeoPG(model)


class TestVsafeBasics:
    def test_result_above_v_off(self, pg):
        est = pg.analyze(CurrentTrace.constant(0.001, 0.001))
        assert est.v_safe > pg.model.v_off

    def test_higher_current_needs_higher_vsafe(self, pg):
        low = pg.analyze(uniform_load(0.005, 0.010).trace)
        high = pg.analyze(uniform_load(0.050, 0.010).trace)
        assert high.v_safe > low.v_safe

    def test_longer_pulse_needs_higher_vsafe(self, pg):
        short = pg.analyze(uniform_load(0.010, 0.010).trace)
        long = pg.analyze(uniform_load(0.010, 0.100).trace)
        assert long.v_safe > short.v_safe

    def test_vdelta_scales_with_current(self, pg):
        low = pg.analyze(uniform_load(0.005, 0.010).trace)
        high = pg.analyze(uniform_load(0.050, 0.010).trace)
        assert high.v_delta > 5 * low.v_delta

    def test_demand_populated(self, pg):
        est = pg.analyze(uniform_load(0.010, 0.010).trace)
        assert est.demand.energy_v2 > 0
        assert est.demand.v_delta == pytest.approx(est.v_delta)
        assert est.method == "culpeo-pg"


class TestEsrSelection:
    def test_selects_from_curve_by_pulse_width(self, pg, model):
        trace = uniform_load(0.010, 0.010).trace
        expected = model.esr_curve.esr_for_pulse_width(0.010)
        assert pg.select_esr(trace) == pytest.approx(expected)

    def test_short_pulse_selects_lower_esr(self, pg):
        short = pg.select_esr(uniform_load(0.010, 0.001).trace)
        long = pg.select_esr(uniform_load(0.010, 0.100).trace)
        assert short < long

    def test_esr_override(self, pg):
        trace = uniform_load(0.025, 0.010).trace
        base = pg.analyze(trace)
        doubled = pg.analyze(trace, esr=2 * pg.select_esr(trace))
        assert doubled.v_safe > base.v_safe
        with pytest.raises(ValueError):
            pg.analyze(trace, esr=-1.0)


class TestAgainstGroundTruth:
    """PG must be near-accurate on low loads and drift unsafe on the
    highest-power loads (the paper's efficiency-compounding failure)."""

    def test_accurate_for_low_loads(self, pg, system):
        load = uniform_load(0.010, 0.010)
        truth = find_true_vsafe(system, load.trace)
        error = pg.analyze(load.trace).v_safe - truth.v_safe
        assert abs(error) < 0.02  # within ~2% of the range

    def test_unsafe_for_high_power_loads(self, pg, system):
        load = uniform_load(0.050, 0.010)
        truth = find_true_vsafe(system, load.trace)
        assert pg.analyze(load.trace).v_safe < truth.v_safe

    def test_run_from_pg_vsafe_for_moderate_load(self, pg, system):
        load = pulse_with_compute_tail(0.010, 0.010)
        est = pg.analyze(load.trace)
        result = attempt_load(system, load.trace, est.v_safe + 0.01)
        assert result.completed


class TestStepRecording:
    def test_records_when_asked(self, model):
        pg = CulpeoPG(model, record_steps=True)
        pg.analyze(uniform_load(0.010, 0.005).trace)
        assert pg.last_steps
        # Requirements grow monotonically toward the trace start.
        reqs = [s.v_required for s in pg.last_steps]
        assert reqs == sorted(reqs)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            CulpeoPG(model, step_limit=0.0)
