"""Culpeo-R-ISR: timer-driven ADC profiling."""

import pytest

from repro.core.isr import CulpeoIsrRuntime
from repro.harness.ground_truth import attempt_load, find_true_vsafe
from repro.loads.synthetic import pulse_with_compute_tail, uniform_load
from repro.sim.engine import PowerSystemSimulator


def make_runtime(system, calculator, **kwargs):
    engine = PowerSystemSimulator(system)
    return CulpeoIsrRuntime(engine, calculator, **kwargs)


class TestProfiling:
    def test_profile_records_three_voltages(self, system, calculator):
        runtime = make_runtime(system, calculator)
        runtime.profile_task(uniform_load(0.025, 0.010).trace, "t",
                             harvesting=False)
        record = runtime.profiles.lookup("t")
        assert record.v_min <= record.v_final <= record.v_start

    def test_vmin_captures_esr_drop_for_10ms_pulse(self, system, calculator):
        runtime = make_runtime(system, calculator)
        runtime.profile_task(uniform_load(0.050, 0.010).trace, "t",
                             harvesting=False)
        record = runtime.profiles.lookup("t")
        # The 1 kHz ISR lands ~10 samples inside a 10 ms pulse; the drop
        # at 50 mA is several hundred millivolts.
        assert record.v_final - record.v_min > 0.15

    def test_1ms_pulse_min_is_missed(self, system, calculator):
        """The variant's documented weakness (paper Figure 10)."""
        runtime = make_runtime(system, calculator)
        runtime.profile_task(uniform_load(0.050, 0.001).trace, "t",
                             harvesting=False)
        record = runtime.profiles.lookup("t")
        # The 1 kHz timer's expected sample lands mid-pulse, before the
        # drop fully develops; the full drop at this start voltage is
        # ~0.23 V and the ISR reads meaningfully less.
        assert record.v_final - record.v_min < 0.19

    def test_sampling_burden_charged_to_system(self, system, calculator):
        # Profile with an artificially huge ADC burden; the estimate must
        # grow because Culpeo-R folds its own cost into the task.
        light = make_runtime(system.copy(), calculator)
        light.profile_task(uniform_load(0.010, 0.100).trace, "t",
                           harvesting=False)
        from repro.sim.mcu import McuModel
        hungry = make_runtime(
            system.copy(),
            calculator,
            mcu=McuModel(name="hog", active_current=1.7e-3,
                         sleep_current=1e-6, adc_current=5e-3),
        )
        hungry.engine.system.rest_at(calculator.v_high)
        hungry.profile_task(uniform_load(0.010, 0.100).trace, "t",
                            harvesting=False)
        assert hungry.get_vsafe("t") > light.get_vsafe("t")


class TestVsafeQuality:
    @pytest.mark.parametrize("load", [
        uniform_load(0.010, 0.100),
        uniform_load(0.050, 0.010),
        pulse_with_compute_tail(0.025, 0.010),
    ])
    def test_estimates_are_safe(self, system, calculator, load):
        runtime = make_runtime(system.copy(), calculator)
        runtime.profile_task(load.trace, "t", harvesting=False)
        v_safe = runtime.get_vsafe("t")
        run = attempt_load(system, load.trace, v_safe)
        assert run.completed, f"ISR V_safe {v_safe:.3f} browned out"

    def test_estimates_are_tight(self, system, calculator):
        load = uniform_load(0.025, 0.010)
        runtime = make_runtime(system.copy(), calculator)
        runtime.profile_task(load.trace, "t", harvesting=False)
        truth = find_true_vsafe(system, load.trace)
        # Within 10% of the operating range above truth (paper Fig 10).
        assert runtime.get_vsafe("t") - truth.v_safe < 0.096
