"""The voltage-aware charge model: composition rules and Theorem 1."""

import math

import pytest

from repro.core.model import (
    TaskDemand,
    VsafeEstimate,
    energy_only_feasible,
    penalty,
    sequence_feasible,
    vsafe_multi,
    vsafe_multi_additive,
    vsafe_single,
)

V_OFF = 1.6


class TestTaskDemand:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskDemand(energy_v2=-0.1, v_delta=0.0)
        with pytest.raises(ValueError):
            TaskDemand(energy_v2=0.1, v_delta=-0.1)

    def test_estimate_validation(self):
        with pytest.raises(ValueError):
            VsafeEstimate(v_safe=-1.0, v_delta=0.0,
                          demand=TaskDemand(0.0, 0.0), method="x")


class TestPenalty:
    def test_zero_when_successor_absorbs_drop(self):
        # Successor requirement already above V_off + V_delta.
        assert penalty(V_OFF, v_delta=0.1, vsafe_next=1.8) == 0.0

    def test_positive_when_drop_would_cross_threshold(self):
        assert penalty(V_OFF, v_delta=0.3, vsafe_next=1.7) == \
            pytest.approx(0.2)

    def test_exact_boundary(self):
        assert penalty(V_OFF, v_delta=0.1, vsafe_next=1.7) == \
            pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            penalty(0.0, 0.1, 1.7)
        with pytest.raises(ValueError):
            penalty(V_OFF, -0.1, 1.7)


class TestVsafeSingle:
    def test_energy_only_task(self):
        demand = TaskDemand(energy_v2=0.5, v_delta=0.0)
        assert vsafe_single(demand, V_OFF) == \
            pytest.approx(math.sqrt(V_OFF ** 2 + 0.5))

    def test_drop_only_task(self):
        demand = TaskDemand(energy_v2=0.0, v_delta=0.3)
        assert vsafe_single(demand, V_OFF) == pytest.approx(1.9)

    def test_both_demands(self):
        demand = TaskDemand(energy_v2=0.2, v_delta=0.3)
        assert vsafe_single(demand, V_OFF) == \
            pytest.approx(math.sqrt(1.9 ** 2 + 0.2))

    def test_null_task(self):
        assert vsafe_single(TaskDemand(0.0, 0.0), V_OFF) == \
            pytest.approx(V_OFF)


class TestVsafeMulti:
    def test_empty_sequence_is_v_off(self):
        assert vsafe_multi([], V_OFF) == pytest.approx(V_OFF)

    def test_single_task_matches_vsafe_single(self):
        demand = TaskDemand(energy_v2=0.3, v_delta=0.2)
        assert vsafe_multi([demand], V_OFF) == \
            pytest.approx(vsafe_single(demand, V_OFF))

    def test_energy_composes_in_v2_space(self):
        a = TaskDemand(energy_v2=0.2, v_delta=0.0)
        b = TaskDemand(energy_v2=0.3, v_delta=0.0)
        combined = vsafe_multi([a, b], V_OFF)
        assert combined == pytest.approx(math.sqrt(V_OFF ** 2 + 0.5))

    def test_order_matters_with_drops(self):
        heavy_drop = TaskDemand(energy_v2=0.05, v_delta=0.4)
        energy = TaskDemand(energy_v2=0.5, v_delta=0.0)
        drop_first = vsafe_multi([heavy_drop, energy], V_OFF)
        drop_last = vsafe_multi([energy, heavy_drop], V_OFF)
        # Running the high-drop task first is cheaper: the successor's
        # requirement absorbs the drop ("the rebound repays the penalty").
        assert drop_first < drop_last

    def test_rebound_repays_penalty(self):
        # If the successor's requirement alone exceeds V_off + V_delta,
        # adding the drop task costs only its energy.
        drop_task = TaskDemand(energy_v2=0.0, v_delta=0.1)
        big_next = TaskDemand(energy_v2=1.0, v_delta=0.0)
        with_drop = vsafe_multi([drop_task, big_next], V_OFF)
        without = vsafe_multi([big_next], V_OFF)
        assert with_drop == pytest.approx(without)

    def test_monotone_in_every_component(self):
        base = [TaskDemand(0.2, 0.1), TaskDemand(0.1, 0.3)]
        v0 = vsafe_multi(base, V_OFF)
        more_energy = [TaskDemand(0.3, 0.1), TaskDemand(0.1, 0.3)]
        more_drop = [TaskDemand(0.2, 0.1), TaskDemand(0.1, 0.4)]
        assert vsafe_multi(more_energy, V_OFF) > v0
        assert vsafe_multi(more_drop, V_OFF) > v0

    def test_validation(self):
        with pytest.raises(ValueError):
            vsafe_multi([], 0.0)


class TestAdditiveFormulation:
    def test_additive_at_least_as_conservative(self):
        demands = [TaskDemand(0.2, 0.1), TaskDemand(0.3, 0.25),
                   TaskDemand(0.05, 0.0)]
        additive = vsafe_multi_additive(demands, V_OFF)
        exact = vsafe_multi(demands, V_OFF)
        assert additive >= exact - 1e-12

    def test_single_energy_task_matches(self):
        demands = [TaskDemand(0.4, 0.0)]
        assert vsafe_multi_additive(demands, V_OFF) == \
            pytest.approx(vsafe_multi(demands, V_OFF))

    def test_empty(self):
        assert vsafe_multi_additive([], V_OFF) == pytest.approx(V_OFF)

    def test_validation(self):
        with pytest.raises(ValueError):
            vsafe_multi_additive([], -1.0)


class TestTheorem1:
    def test_feasible_at_exact_vsafe(self):
        demands = [TaskDemand(0.2, 0.1), TaskDemand(0.1, 0.2)]
        gate = vsafe_multi(demands, V_OFF)
        assert sequence_feasible(demands, gate, V_OFF)
        assert not sequence_feasible(demands, gate - 1e-6, V_OFF)

    def test_energy_only_test_admits_more(self):
        demands = [TaskDemand(0.2, 0.3)]
        gate_energy = math.sqrt(V_OFF ** 2 + 0.2)
        assert energy_only_feasible(demands, gate_energy, V_OFF)
        assert not sequence_feasible(demands, gate_energy, V_OFF)

    def test_energy_only_equals_theorem1_without_drops(self):
        demands = [TaskDemand(0.2, 0.0), TaskDemand(0.1, 0.0)]
        for v in (1.7, 1.75, 1.8):
            assert energy_only_feasible(demands, v, V_OFF) == \
                sequence_feasible(demands, v, V_OFF)

    def test_validation(self):
        with pytest.raises(ValueError):
            sequence_feasible([], -1.0, V_OFF)


class TestCorrectnessProofSketch:
    """The paper's inductive argument: starting at V_safe_multi, the
    voltage before every task suffix is at least that suffix's V_safe."""

    def test_suffix_invariant(self):
        demands = [TaskDemand(0.15, 0.2), TaskDemand(0.3, 0.05),
                   TaskDemand(0.02, 0.35)]
        v = vsafe_multi(demands, V_OFF)
        for i, demand in enumerate(demands):
            suffix_req = vsafe_multi(demands[i:], V_OFF)
            assert v >= suffix_req - 1e-12
            # Voltage after consuming this task's energy (ideal model):
            v = math.sqrt(max(0.0, v * v - demand.energy_v2))
            # It must still clear the ESR floor of the task just run.
            assert v >= V_OFF - 1e-12
