"""Culpeo-PG's bench profiling front-end."""

import pytest

from repro.core.pg_profiler import CulpeoPgProfiler, CurrentProbe, envelope_trace
from repro.core.profile_guided import CulpeoPG
from repro.errors import ProfileError
from repro.loads.peripherals import ble_radio
from repro.loads.synthetic import uniform_load
from repro.loads.trace import CurrentTrace


class TestCurrentProbe:
    def test_capture_preserves_charge(self):
        probe = CurrentProbe()
        trace = ble_radio().trace
        captured = probe.capture(trace)
        assert captured.charge == pytest.approx(trace.charge, rel=0.01)

    def test_quantisation_rounds_up(self):
        probe = CurrentProbe(bits=8, full_scale=0.2)
        captured = probe.capture(CurrentTrace.constant(0.0101, 0.001))
        assert captured.peak_current >= 0.0101

    def test_slow_probe_blurs_short_pulses(self):
        fast = CurrentProbe(sample_rate=125e3)
        slow = CurrentProbe(sample_rate=1e3)
        trace = uniform_load(0.050, 0.0005).trace.with_tail(0.001, 0.010)
        assert len(fast.capture(trace)) >= len(slow.capture(trace))

    def test_noise_is_seeded(self):
        import numpy as np
        a = CurrentProbe(noise_sigma=1e-4, rng=np.random.default_rng(3))
        b = CurrentProbe(noise_sigma=1e-4, rng=np.random.default_rng(3))
        trace = uniform_load(0.010, 0.010).trace
        assert a.capture(trace) == b.capture(trace)

    @pytest.mark.parametrize("kwargs", [
        dict(sample_rate=0.0), dict(full_scale=0.0), dict(bits=0),
        dict(noise_sigma=-1.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CurrentProbe(**kwargs)


class TestEnvelopeTrace:
    def test_single_capture_passthrough(self):
        trace = uniform_load(0.010, 0.010).trace
        assert envelope_trace([trace]) is trace

    def test_envelope_dominates_every_run(self):
        a = CurrentTrace([(0.010, 0.005), (0.002, 0.005)])
        b = CurrentTrace([(0.005, 0.005), (0.008, 0.005)])
        env = envelope_trace([a, b])
        for t in (0.002, 0.007):
            assert env.current_at(t) >= a.current_at(t) - 1e-9
            assert env.current_at(t) >= b.current_at(t) - 1e-9

    def test_envelope_length_is_longest_run(self):
        short = CurrentTrace.constant(0.010, 0.005)
        long = CurrentTrace.constant(0.008, 0.015)
        env = envelope_trace([short, long])
        assert env.duration == pytest.approx(0.015, rel=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            envelope_trace([])


class TestCulpeoPgProfiler:
    @pytest.fixture
    def profiler(self, model):
        return CulpeoPgProfiler(model)

    def test_table1_choreography(self, profiler):
        profiler.profile_start()
        profiler.record_run(ble_radio().trace)
        profiler.profile_end("radio")
        profiler.rebound_end("radio")  # no-op, API symmetry
        profiler.compute_vsafe("radio")
        assert profiler.get_vsafe("radio") < profiler.model.v_high
        assert profiler.get_vdrop("radio") > 0

    def test_defaults_before_profiling(self, profiler):
        assert profiler.get_vsafe("ghost") == pytest.approx(
            profiler.model.v_high)
        assert profiler.get_vdrop("ghost") == -1.0
        profiler.compute_vsafe("ghost")  # no-op

    def test_worst_case_over_runs(self, profiler):
        light = uniform_load(0.010, 0.010).trace
        heavy = uniform_load(0.025, 0.010).trace
        single = CulpeoPgProfiler(profiler.model)
        single.profile_task([light], "t")
        multi = CulpeoPgProfiler(profiler.model)
        multi.profile_task([light, heavy], "t")
        assert multi.get_vsafe("t") > single.get_vsafe("t")

    def test_matches_direct_analysis_closely(self, profiler, model):
        trace = uniform_load(0.025, 0.010).trace
        profiler.profile_task([trace], "t")
        direct = CulpeoPG(model, envelope_margin=0.0).analyze(trace)
        assert profiler.get_vsafe("t") == pytest.approx(direct.v_safe,
                                                        abs=0.01)

    def test_call_ordering_enforced(self, profiler):
        with pytest.raises(ProfileError):
            profiler.record_run(ble_radio().trace)
        with pytest.raises(ProfileError):
            profiler.profile_end("t")
        profiler.profile_start()
        with pytest.raises(ProfileError):
            profiler.profile_start()
        with pytest.raises(ProfileError):
            profiler.profile_end("t")  # no runs recorded
