"""Program structure and non-volatile progress."""

import pytest

from repro.intermittent.program import AtomicTask, Program
from repro.loads.trace import CurrentTrace


def make_task(name="t", current=0.005, duration=0.01):
    return AtomicTask(name, CurrentTrace.constant(current, duration))


class TestAtomicTask:
    def test_duration(self):
        assert make_task(duration=0.5).duration == pytest.approx(0.5)

    def test_name_required(self):
        with pytest.raises(ValueError):
            AtomicTask("", CurrentTrace.constant(0.01, 0.01))

    def test_str(self):
        assert str(make_task("send")) == "send"


class TestProgram:
    def test_progress_lifecycle(self):
        program = Program([make_task("a"), make_task("b")])
        assert not program.finished
        assert program.current.name == "a"
        program.commit()
        assert program.current.name == "b"
        program.commit()
        assert program.finished

    def test_commit_past_end_raises(self):
        program = Program([make_task("a")])
        program.commit()
        with pytest.raises(IndexError):
            program.commit()
        with pytest.raises(IndexError):
            program.current

    def test_reset(self):
        program = Program([make_task("a"), make_task("b")])
        program.commit()
        program.reset()
        assert program.pc == 0

    def test_remaining(self):
        program = Program([make_task("a"), make_task("b"), make_task("c")])
        program.commit()
        assert [t.name for t in program.remaining()] == ["b", "c"]

    def test_iteration_and_len(self):
        program = Program([make_task("a"), make_task("b")])
        assert len(program) == 2
        assert [t.name for t in program] == ["a", "b"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Program([])
        with pytest.raises(ValueError):
            Program([make_task()], pc=5)
