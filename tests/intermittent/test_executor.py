"""Intermittent executor: re-execution, gating, non-termination."""

import pytest

from repro.core.profile_guided import CulpeoPG
from repro.intermittent.executor import IntermittentExecutor, NonTermination
from repro.intermittent.program import AtomicTask, Program
from repro.loads.peripherals import ble_listen, ble_radio
from repro.loads.trace import CurrentTrace
from repro.power.harvester import CallableHarvester, ConstantPowerHarvester
from repro.power.system import capybara_power_system
from repro.sim.engine import PowerSystemSimulator


def make_engine(harvest=3e-3, v_start=None):
    system = capybara_power_system(
        harvester=ConstantPowerHarvester(harvest))
    system.rest_at(v_start if v_start is not None
                   else system.monitor.v_high)
    return PowerSystemSimulator(system)


def radio_task(name="radio"):
    return AtomicTask(name, ble_radio().trace.concat(ble_listen(1.0).trace))


def light_task(name="light"):
    return AtomicTask(name, CurrentTrace.constant(0.002, 0.050))


class TestHappyPath:
    def test_light_program_runs_straight_through(self):
        engine = make_engine()
        program = Program([light_task(f"t{i}") for i in range(5)])
        report = IntermittentExecutor(engine).run(program, until=60.0)
        assert report.finished
        assert report.tasks_committed == 5
        assert report.total_reexecutions == 0

    def test_heavy_program_recharges_between_tasks(self):
        engine = make_engine()
        program = Program([radio_task("r1"), radio_task("r2"),
                           radio_task("r3")])
        model = engine.system.characterize()
        pg = CulpeoPG(model)
        gates = {t.name: pg.analyze(t.trace).v_safe for t in program}
        executor = IntermittentExecutor(engine,
                                        gate=lambda t: gates[t.name])
        report = executor.run(program, until=600.0)
        assert report.finished
        assert report.total_reexecutions == 0
        assert report.wasted_energy == 0.0


class TestReexecutionWaste:
    def test_opportunistic_launch_from_low_voltage_wastes_energy(self):
        # Start just above the booster floor: the opportunistic executor
        # fires the radio immediately and browns out; the gated one waits.
        engine = make_engine(harvest=4e-3, v_start=2.56)
        engine.discharge_to(1.66)
        engine.system.monitor.force_enabled(True)
        program = Program([radio_task()])
        report = IntermittentExecutor(engine).run(program, until=400.0)
        assert report.reexecutions.get("radio", 0) >= 1
        assert report.wasted_energy > 0
        assert report.finished  # eventually succeeds from V_high

    def test_gated_launch_avoids_the_waste(self):
        engine = make_engine(harvest=4e-3, v_start=2.56)
        engine.discharge_to(1.66)
        engine.system.monitor.force_enabled(True)
        model = engine.system.characterize()
        pg = CulpeoPG(model)
        program = Program([radio_task()])
        executor = IntermittentExecutor(
            engine, gate=lambda t: pg.analyze(t.trace).v_safe)
        report = executor.run(program, until=400.0)
        assert report.finished
        assert report.total_reexecutions == 0


class TestNonTermination:
    def test_impossible_task_detected(self):
        engine = make_engine(harvest=10e-3)
        monster = AtomicTask("monster", CurrentTrace.constant(0.050, 3.0))
        program = Program([monster])
        report = IntermittentExecutor(engine).run(program, until=1200.0)
        assert not report.finished
        assert report.stuck_on == "monster"

    def test_raise_on_stuck(self):
        engine = make_engine(harvest=10e-3)
        monster = AtomicTask("monster", CurrentTrace.constant(0.050, 3.0))
        with pytest.raises(NonTermination) as excinfo:
            IntermittentExecutor(engine).run(
                Program([monster]), until=1200.0, raise_on_stuck=True)
        assert excinfo.value.task.name == "monster"

    def test_progress_survives_detection(self):
        engine = make_engine(harvest=10e-3)
        program = Program([
            light_task("ok"),
            AtomicTask("monster", CurrentTrace.constant(0.050, 3.0)),
        ])
        report = IntermittentExecutor(engine).run(program, until=1200.0)
        assert report.tasks_committed == 1
        assert program.pc == 1  # non-volatile progress preserved

    def test_validation(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            IntermittentExecutor(engine).run(Program([light_task()]),
                                             until=0.0)

    def test_stuck_limit_is_configurable(self):
        engine = make_engine(harvest=10e-3)
        monster = AtomicTask("monster", CurrentTrace.constant(0.050, 3.0))
        report = IntermittentExecutor(engine, stuck_limit=1).run(
            Program([monster]), until=1200.0)
        assert report.stuck_on == "monster"
        assert report.reexecutions["monster"] == 1  # gave up after one

    def test_constructor_validation(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            IntermittentExecutor(engine, stuck_limit=0)
        with pytest.raises(ValueError):
            IntermittentExecutor(engine, stall_tolerance=0)
        with pytest.raises(ValueError):
            IntermittentExecutor(engine, dropout_grace=-1.0)


class TestBrownoutAccounting:
    def test_opportunistic_brownouts_surface_in_the_report(self):
        engine = make_engine(harvest=4e-3, v_start=2.56)
        engine.discharge_to(1.66)
        engine.system.monitor.force_enabled(True)
        report = IntermittentExecutor(engine).run(Program([radio_task()]),
                                                  until=400.0)
        assert report.brownouts.get("radio", 0) >= 1
        assert report.total_brownouts >= 1
        assert report.total_brownouts <= report.total_reexecutions

    def test_gate_feedback_hooks_are_called(self):
        events = []

        class RecordingGate:
            def __call__(self, task):
                return 2.2

            def on_brownout(self, task):
                events.append(("brownout", task.name))

            def on_success(self, task):
                events.append(("success", task.name))

        engine = make_engine()
        report = IntermittentExecutor(engine, RecordingGate()).run(
            Program([light_task("a"), light_task("b")]), until=60.0)
        assert report.finished
        assert events == [("success", "a"), ("success", "b")]


def gapped_harvester(power, dark_from, dark_until):
    """Constant supply that goes fully dark inside one time window."""
    return CallableHarvester(
        lambda t: 0.0 if dark_from <= t < dark_until else power)


class TestDropoutRecovery:
    def test_gate_wait_rides_out_a_temporary_dropout(self):
        # The harvester cuts out for 2 s while the executor waits for a
        # gate above the current voltage. The old stall counter gave up
        # ~0.4 s into any flat stretch regardless of cause; outage time
        # must instead draw on the dropout grace window.
        system = capybara_power_system(
            harvester=gapped_harvester(4e-3, dark_from=0.5, dark_until=2.5))
        system.rest_at(2.30)
        system.monitor.force_enabled(True)
        engine = PowerSystemSimulator(system)
        executor = IntermittentExecutor(engine, gate=lambda t: 2.45,
                                        dropout_grace=5.0)
        report = executor.run(Program([light_task()]), until=120.0)
        assert report.finished
        assert report.total_reexecutions == 0

    def test_recharge_rides_out_a_temporary_dropout(self):
        # Same outage, but hit while recharging from below the booster
        # floor (output disabled): charge_until aborts at the dropout and
        # the executor must retry once power returns.
        system = capybara_power_system(
            harvester=gapped_harvester(4e-3, dark_from=0.5, dark_until=2.5))
        system.rest_at(1.70)
        engine = PowerSystemSimulator(system)
        executor = IntermittentExecutor(engine, dropout_grace=5.0)
        report = executor.run(Program([light_task()]), until=400.0)
        assert report.finished

    def test_permanent_dropout_still_gives_up(self):
        system = capybara_power_system(
            harvester=gapped_harvester(4e-3, dark_from=0.5,
                                       dark_until=1e9))
        system.rest_at(2.30)
        system.monitor.force_enabled(True)
        engine = PowerSystemSimulator(system)
        executor = IntermittentExecutor(engine, gate=lambda t: 2.45,
                                        dropout_grace=5.0)
        report = executor.run(Program([light_task()]), until=120.0)
        assert not report.finished
        # Gave up shortly after the grace window, not at the horizon.
        assert report.elapsed < 30.0

    def test_equilibrium_stall_still_gives_up_quickly(self):
        # Power present but the system sits at an equilibrium below the
        # gate: waiting longer cannot help, and the dropout grace must
        # not apply (the harvester is *not* dark).
        system = capybara_power_system(
            harvester=ConstantPowerHarvester(1e-8))
        system.rest_at(2.30)
        system.monitor.force_enabled(True)
        engine = PowerSystemSimulator(system)
        executor = IntermittentExecutor(engine, gate=lambda t: 2.45,
                                        stall_tolerance=3,
                                        dropout_grace=1e6)
        report = executor.run(Program([light_task()]), until=120.0)
        assert not report.finished
        assert report.elapsed < 5.0
