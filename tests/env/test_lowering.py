"""Lowering: environment model + front-end -> piecewise harvest trace.

Two contracts carry the whole stack. **Breakpoint exactness**: every
model breakpoint lands on a trace edge verbatim (or the power is
genuinely constant across it, in which case the merge pass may drop
the edge — same physics either way). **Energy conservation**: the
trace's ``sum(P_k * dt_k)`` tracks the model's true ``integral(P dt)``
within the refinement tolerance, and exactly for piecewise-constant
models.
"""

import numpy as np
import pytest

from repro.env import EnvSpec, lower_environment
from repro.env.lowering import MIN_DT

DURATION = 60.0

#: All nine model x front-end combinations the spec can express.
COMBOS = [(model, mppt)
          for model in ("diurnal-solar", "kinetic-burst",
                        "thermal-gradient")
          for mppt in ("constant-voltage", "voc-fraction",
                       "perturb-observe")]


def _spec(model, mppt, **overrides):
    base = dict(model=model, mppt=mppt, duration=DURATION, seed=3,
                peak_power=4e-3, period=40.0, cloud_rate=6.0,
                burst_rate=0.3)
    base.update(overrides)
    return EnvSpec(**base)


def _trace_energy(trace):
    return float(np.sum(trace.powers * np.diff(trace.edges)))


def _model_energy(spec, dt=0.002):
    """Fine midpoint quadrature of the front-end power over the model.

    Stateful front-ends are integrated on the trace's own semantics
    elsewhere; this reference is only used for stateless ones, where
    evaluation order does not matter.
    """
    model = spec.build_model()
    pv = spec.build_transducer()
    mppt = spec.build_mppt()
    mppt.reset()
    mids = np.arange(dt / 2.0, spec.duration, dt)
    return float(sum(mppt.harvest_power(pv, model.intensity(float(t)))
                     for t in mids) * dt)


class TestTraceShape:
    @pytest.mark.parametrize("model,mppt", COMBOS)
    def test_lowered_trace_is_well_formed(self, model, mppt):
        trace = _spec(model, mppt).lower()
        assert trace.edges[0] == 0.0
        assert trace.edges[-1] == pytest.approx(DURATION, abs=1e-9)
        assert np.all(np.diff(trace.edges) > 0.0)
        assert np.all(trace.powers >= 0.0)
        assert np.all(np.isfinite(trace.powers))

    @pytest.mark.parametrize("model,mppt", COMBOS)
    def test_power_never_exceeds_full_sun_mpp(self, model, mppt):
        spec = _spec(model, mppt)
        _v, p_max = spec.build_transducer().mpp(1.0)
        trace = spec.lower()
        assert float(trace.powers.max()) <= p_max + 1e-15

    def test_same_spec_lowers_to_identical_trace(self):
        a = _spec("diurnal-solar", "voc-fraction").lower()
        b = _spec("diurnal-solar", "voc-fraction").lower()
        np.testing.assert_array_equal(a.edges, b.edges)
        np.testing.assert_array_equal(a.powers, b.powers)
        assert a.fingerprint == b.fingerprint


class TestBreakpointExactness:
    @pytest.mark.parametrize("model", ["diurnal-solar", "kinetic-burst",
                                       "thermal-gradient"])
    def test_model_breakpoints_survive_verbatim(self, model):
        spec = _spec(model, "voc-fraction")
        trace = spec.lower()
        edges = set(trace.edges.tolist())
        breaks = spec.build_model().breakpoints(DURATION)
        assert len(breaks) > 0
        for b in breaks:
            if float(b) in edges:
                continue
            # The merge pass may only drop an edge when the power is
            # constant across it (e.g. a cloud edge at night).
            eps = 1e-9
            assert trace.power_at(float(b) - eps) == \
                trace.power_at(float(b) + eps), b

    def test_cloud_step_lands_on_an_edge_in_daylight(self):
        # Permanent daylight: every cloud edge changes the power, so
        # none may be merged away.
        spec = _spec("diurnal-solar", "constant-voltage",
                     daylight_fraction=1.0, period=DURATION,
                     cloud_rate=8.0)
        model = spec.build_model()
        assert len(model.cloud_starts) > 0
        edges = set(spec.lower().edges.tolist())
        for b in model.breakpoints(DURATION):
            assert float(b) in edges, b


class TestEnergyConservation:
    @pytest.mark.parametrize("model", ["diurnal-solar",
                                       "thermal-gradient"])
    @pytest.mark.parametrize("mppt", ["constant-voltage", "voc-fraction"])
    def test_energy_within_refinement_tolerance(self, model, mppt):
        spec = _spec(model, mppt)
        trace = spec.lower()
        _v, p_scale = spec.build_transducer().mpp(1.0)
        budget = 2.0 * spec.tol * p_scale * DURATION
        assert abs(_trace_energy(trace) - _model_energy(spec)) <= budget

    def test_tighter_tolerance_tightens_energy(self):
        spec = _spec("diurnal-solar", "voc-fraction")
        loose = spec.lower()
        tight = _spec("diurnal-solar", "voc-fraction", tol=0.002,
                      max_dt=0.5).lower()
        reference = _model_energy(spec)
        assert abs(_trace_energy(tight) - reference) <= \
            abs(_trace_energy(loose) - reference) + 1e-9
        assert len(tight.powers) > len(loose.powers)

    def test_piecewise_constant_model_is_exact(self):
        # Kinetic bursts are flat between breakpoints: the midpoint
        # sample *is* the piece value, so lowering loses no energy.
        spec = _spec("kinetic-burst", "constant-voltage")
        trace = spec.lower()
        model = spec.build_model()
        pv = spec.build_transducer()
        mppt = spec.build_mppt()
        cuts = np.concatenate([[0.0],
                               model.breakpoints(DURATION),
                               [DURATION]])
        exact = float(sum(
            mppt.harvest_power(pv, model.intensity(0.5 * (a + b)))
            * (b - a) for a, b in zip(cuts[:-1], cuts[1:])))
        assert _trace_energy(trace) == pytest.approx(exact, rel=1e-12)


class TestRefinementControls:
    def test_max_dt_caps_piece_length_between_breakpoints(self):
        # A strictly monotone ramp (half a thermal period spans the
        # whole duration): no two pieces hold equal power, so the merge
        # pass can never fuse neighbours past the cap.
        trace = _spec("thermal-gradient", "voc-fraction",
                      period=2.0 * DURATION, max_dt=1.0).lower()
        assert float(np.diff(trace.edges).max()) <= 1.0 + 1e-9

    def test_min_dt_floors_subdivision(self):
        trace = _spec("diurnal-solar", "voc-fraction", cloud_rate=8.0,
                      tol=1e-6).lower()
        widths = np.diff(trace.edges)
        assert float(widths.min()) >= 0.25 * MIN_DT

    def test_stateful_front_end_uses_sequential_grid(self):
        # P&O cannot be sampled out of order: the grid is breakpoints
        # plus the uniform sample_dt lattice, nothing finer.
        spec = _spec("thermal-gradient", "perturb-observe")
        trace = spec.lower()
        lattice = np.arange(1, int(DURATION / spec.po_dt)) * spec.po_dt
        expected = sorted({0.0, DURATION}
                          | set(lattice.tolist())
                          | set(spec.build_model()
                                .breakpoints(DURATION).tolist()))
        # Edges are a subset of the sequential grid (merge may drop
        # equal-power interior points), in grid order.
        grid = set(expected)
        assert all(float(e) in grid for e in trace.edges)

    def test_rejects_nonpositive_duration(self):
        spec = _spec("diurnal-solar", "voc-fraction")
        with pytest.raises(ValueError):
            lower_environment(spec.build_model(), spec.build_transducer(),
                              spec.build_mppt(), 0.0)
