"""EnvSpec: validation, serialization, fingerprints, builders."""

import dataclasses

import pytest

from repro.env import ENV_MODELS, ENV_MPPTS, EnvSpec
from repro.env.models import (
    DiurnalSolarModel,
    KineticBurstModel,
    ThermalGradientModel,
)
from repro.env.mppt import (
    ConstantVoltageMPPT,
    PerturbObserveMPPT,
    VocFractionMPPT,
)
from repro.power.harvester import TraceHarvester


class TestValidation:
    def test_rejects_unknown_model_and_mppt(self):
        with pytest.raises(ValueError, match="unknown environment model"):
            EnvSpec(model="lunar")
        with pytest.raises(ValueError, match="unknown MPPT"):
            EnvSpec(model="diurnal-solar", mppt="oracle")

    def test_rejects_degenerate_scalars(self):
        with pytest.raises(ValueError):
            EnvSpec(model="diurnal-solar", duration=0.0)
        with pytest.raises(ValueError):
            EnvSpec(model="diurnal-solar", peak_power=-1e-3)
        with pytest.raises(ValueError):
            EnvSpec(model="diurnal-solar", grid_dt=0.0)
        with pytest.raises(ValueError):
            EnvSpec(model="diurnal-solar", front_delay=-0.1)


class TestSerialization:
    def test_round_trip_every_model(self):
        for model in ENV_MODELS:
            for mppt in ENV_MPPTS:
                spec = EnvSpec(model=model, mppt=mppt, duration=45.0,
                               seed=9, front_delay=0.2)
                again = EnvSpec.from_dict(spec.to_dict())
                assert again == spec

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="not an env spec"):
            EnvSpec.from_dict({"format": "repro.fleet-spec",
                               "model": "diurnal-solar"})

    def test_fingerprint_is_stable_and_field_sensitive(self):
        spec = EnvSpec(model="diurnal-solar", seed=1)
        assert spec.fingerprint == EnvSpec(model="diurnal-solar",
                                           seed=1).fingerprint
        assert spec.fingerprint != \
            dataclasses.replace(spec, seed=2).fingerprint
        assert spec.fingerprint != \
            dataclasses.replace(spec, cloud_rate=5.0).fingerprint


class TestBuilders:
    def test_model_dispatch(self):
        assert isinstance(EnvSpec(model="diurnal-solar").build_model(),
                          DiurnalSolarModel)
        assert isinstance(EnvSpec(model="kinetic-burst").build_model(),
                          KineticBurstModel)
        assert isinstance(EnvSpec(model="thermal-gradient").build_model(),
                          ThermalGradientModel)

    def test_mppt_dispatch(self):
        base = dict(model="diurnal-solar")
        assert isinstance(EnvSpec(mppt="constant-voltage",
                                  **base).build_mppt(),
                          ConstantVoltageMPPT)
        assert isinstance(EnvSpec(mppt="voc-fraction", **base).build_mppt(),
                          VocFractionMPPT)
        assert isinstance(EnvSpec(mppt="perturb-observe",
                                  **base).build_mppt(),
                          PerturbObserveMPPT)

    def test_horizon_extends_stochastic_draw(self):
        spec = EnvSpec(model="kinetic-burst", duration=30.0,
                       burst_rate=0.5, seed=2)
        short = spec.build_model()
        long = spec.build_model(horizon=120.0)
        assert long.horizon == 120.0
        assert len(long.burst_starts) >= len(short.burst_starts)

    def test_lower_returns_trace_harvester_for_all_combos(self):
        for model in ENV_MODELS:
            for mppt in ENV_MPPTS:
                trace = EnvSpec(model=model, mppt=mppt,
                                duration=20.0).lower()
                assert isinstance(trace, TraceHarvester)
                assert trace.duration == pytest.approx(20.0)
                assert trace.fingerprint
