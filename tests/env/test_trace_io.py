"""Recorded-trace npz format: round-trips, fingerprints, byte identity.

The CI byte-identity gates rest on the writer being deterministic:
save -> load -> save must reproduce the file byte for byte, and two
generations from the same spec must produce identical archives. The
fingerprint is the trace's identity — load refuses archives whose
recorded digest no longer matches the arrays.
"""

import json
import zipfile

import numpy as np
import pytest

from repro.env import (
    EnvFleetTrace,
    EnvSpec,
    generate_fleet_trace,
    load_trace,
    save_trace,
)
from repro.env.trace_io import trace_fingerprint


def _spec(**overrides):
    base = dict(model="diurnal-solar", duration=20.0, seed=6,
                cloud_rate=6.0, front_delay=0.3, grid_dt=0.25)
    base.update(overrides)
    return EnvSpec(**base)


@pytest.fixture
def trace():
    return generate_fleet_trace(_spec(), devices=5)


class TestEnvFleetTrace:
    def test_generation_is_deterministic(self, trace):
        again = generate_fleet_trace(_spec(), devices=5)
        np.testing.assert_array_equal(trace.edges, again.edges)
        np.testing.assert_array_equal(trace.powers, again.powers)
        assert trace.fingerprint == again.fingerprint

    def test_fingerprint_tracks_content(self, trace):
        bent = EnvFleetTrace(edges=trace.edges,
                             powers=trace.powers + 1e-6,
                             spec=trace.spec)
        assert bent.fingerprint != trace.fingerprint
        assert trace.fingerprint == trace_fingerprint(trace.edges,
                                                      trace.powers)

    def test_device_harvester_shares_the_column_floats(self, trace):
        harvester = trace.device_harvester(2)
        np.testing.assert_array_equal(harvester.edges, trace.edges)
        np.testing.assert_array_equal(harvester.powers, trace.powers[2])

    def test_summary_fields(self, trace):
        summary = trace.summary()
        assert summary["format"] == "repro.env-trace"
        assert summary["devices"] == 5
        assert summary["fingerprint"] == trace.fingerprint
        assert summary["spec"]["model"] == "diurnal-solar"
        json.dumps(summary)  # must be a plain JSON document

    def test_rejects_malformed_arrays(self):
        with pytest.raises(ValueError):
            EnvFleetTrace(edges=np.array([0.0, 1.0]),
                          powers=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            EnvFleetTrace(edges=np.array([0.5, 1.0]),
                          powers=np.zeros((1, 1)))
        with pytest.raises(ValueError):
            EnvFleetTrace(edges=np.array([0.0, 1.0]),
                          powers=np.full((1, 1), -1e-3))


class TestRoundTrip:
    def test_save_load_preserves_everything(self, trace, tmp_path):
        path = tmp_path / "sky.npz"
        save_trace(path, trace)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.edges, trace.edges)
        np.testing.assert_array_equal(loaded.powers, trace.powers)
        assert loaded.spec == trace.spec
        assert loaded.fingerprint == trace.fingerprint

    def test_save_load_save_is_byte_identical(self, trace, tmp_path):
        first = tmp_path / "a.npz"
        second = tmp_path / "b.npz"
        save_trace(first, trace)
        save_trace(second, load_trace(first))
        assert first.read_bytes() == second.read_bytes()

    def test_two_saves_of_the_same_spec_are_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_trace(a, generate_fleet_trace(_spec(), devices=5))
        save_trace(b, generate_fleet_trace(_spec(), devices=5))
        assert a.read_bytes() == b.read_bytes()

    def test_specless_trace_round_trips(self, trace, tmp_path):
        raw = EnvFleetTrace(edges=trace.edges, powers=trace.powers)
        path = tmp_path / "recorded.npz"
        save_trace(path, raw)
        loaded = load_trace(path)
        assert loaded.spec is None
        assert loaded.fingerprint == raw.fingerprint

    def test_archive_is_plain_npz(self, trace, tmp_path):
        path = tmp_path / "sky.npz"
        save_trace(path, trace)
        with np.load(path, allow_pickle=False) as data:
            assert set(data.files) == {"edges", "header", "powers"}
        with zipfile.ZipFile(path) as archive:
            for info in archive.infolist():
                assert info.date_time == (1980, 1, 1, 0, 0, 0)
                assert info.compress_type == zipfile.ZIP_STORED


class TestLoadRejections:
    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, edges=np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="not an environment trace"):
            load_trace(path)

    def test_rejects_tampered_content(self, trace, tmp_path):
        path = tmp_path / "sky.npz"
        save_trace(path, trace)
        with np.load(path, allow_pickle=False) as data:
            header = str(data["header"])
            edges = data["edges"]
            powers = np.array(data["powers"])
        powers[0, 0] += 1e-6  # corrupt one sample, keep the header
        import io
        import zipfile as zf
        with zf.ZipFile(path, "w", zf.ZIP_STORED) as archive:
            for name, arr in (("edges", edges),
                              ("header", np.array(header)),
                              ("powers", powers)):
                buf = io.BytesIO()
                np.lib.format.write_array(buf, np.asarray(arr),
                                          version=(1, 0))
                archive.writestr(name + ".npy", buf.getvalue())
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            load_trace(path)

    def test_rejects_future_version(self, trace, tmp_path):
        import io
        import zipfile as zf
        path = tmp_path / "sky.npz"
        header = json.dumps({"format": "repro.env-trace", "version": 99})
        with zf.ZipFile(path, "w", zf.ZIP_STORED) as archive:
            for name, arr in (("edges", trace.edges),
                              ("header", np.array(header)),
                              ("powers", trace.powers)):
                buf = io.BytesIO()
                np.lib.format.write_array(buf, np.asarray(arr),
                                          version=(1, 0))
                archive.writestr(name + ".npy", buf.getvalue())
        with pytest.raises(ValueError, match="unsupported trace version"):
            load_trace(path)
