"""Spatio-temporal correlation: a front sweeping the fleet in index order.

The fleet representation must be a pure, shard-stable function of the
spec: shared grid, per-device columns that are whole-step shifts of one
base sample array, clamp-before-arrival semantics, and zero per-device
float arithmetic that could reorder across processes.
"""

import numpy as np
import pytest

from repro.env import EnvSpec, fleet_columns
from repro.env.correlate import base_grid, device_shifts


def _spec(**overrides):
    base = dict(model="diurnal-solar", duration=30.0, seed=4,
                cloud_rate=6.0, front_delay=0.5, grid_dt=0.25)
    base.update(overrides)
    return EnvSpec(**base)


class TestBaseGrid:
    def test_grid_spans_duration_uniformly(self):
        edges, base = base_grid(_spec())
        assert edges[0] == 0.0
        assert edges[-1] >= 30.0
        np.testing.assert_allclose(np.diff(edges), 0.25)
        assert len(base) == len(edges) - 1
        assert np.all(base >= 0.0)

    def test_pure_function_of_spec(self):
        edges_a, base_a = base_grid(_spec())
        edges_b, base_b = base_grid(_spec())
        np.testing.assert_array_equal(edges_a, edges_b)
        np.testing.assert_array_equal(base_a, base_b)


class TestDeviceShifts:
    def test_shifts_are_whole_grid_steps_in_index_order(self):
        shifts = device_shifts(_spec(front_delay=0.5, grid_dt=0.25), 8)
        assert shifts.dtype == np.int64
        assert shifts.tolist() == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_fractional_delays_quantize_to_nearest_step(self):
        shifts = device_shifts(_spec(front_delay=0.3, grid_dt=0.25), 4)
        # raw delays 0.0, 0.3, 0.6, 0.9 -> 0, 1, 2, 4 steps
        assert shifts.tolist() == [0, 1, 2, 4]

    def test_zero_delay_is_an_uncorrelated_identical_sky(self):
        edges, powers = fleet_columns(_spec(front_delay=0.0), 5)
        for i in range(1, 5):
            np.testing.assert_array_equal(powers[i], powers[0])


class TestFleetColumns:
    def test_each_column_is_a_shift_of_the_base(self):
        spec = _spec()
        edges, powers = fleet_columns(spec, 6)
        _edges, base = base_grid(spec)
        shifts = device_shifts(spec, 6)
        pieces = len(base)
        for i in range(6):
            s = int(shifts[i])
            np.testing.assert_array_equal(powers[i, s:],
                                          base[:pieces - s])
            # before the front arrives the device holds the initial sky
            np.testing.assert_array_equal(powers[i, :s],
                                          np.full(s, base[0]))

    def test_front_sweeps_in_index_order(self):
        # A kinetic sky: the brightest burst's arrival piece must step
        # through the fleet in index order, one front delay at a time.
        spec = _spec(model="kinetic-burst", burst_rate=0.3,
                     front_delay=1.0)
        edges, powers = fleet_columns(spec, 4)
        _edges, base = base_grid(spec)
        shifts = device_shifts(spec, 4)
        peak = int(np.argmax(base))
        assert peak + int(shifts[-1]) < powers.shape[1]
        arrivals = [int(np.argmax(powers[i])) for i in range(4)]
        assert arrivals == [peak + int(s) for s in shifts]

    def test_shift_past_recording_end_holds_initial_value(self):
        spec = _spec(front_delay=100.0)
        _edges, powers = fleet_columns(spec, 3)
        _e, base = base_grid(spec)
        np.testing.assert_array_equal(powers[2],
                                      np.full(powers.shape[1], base[0]))

    def test_zero_devices_is_an_empty_fleet(self):
        edges, powers = fleet_columns(_spec(), 0)
        assert powers.shape == (0, len(edges) - 1)

    def test_rejects_negative_devices(self):
        with pytest.raises(ValueError):
            fleet_columns(_spec(), -1)
