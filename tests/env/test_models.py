"""Parametric environment models: invariants and seeded determinism.

The models feed the lowering pass, so everything downstream leans on
three promises checked here: intensity stays inside ``[0, 1]``, the
reported breakpoints are exactly the non-smooth points (strictly inside
the duration), and the stochastic structure is a pure function of the
seed — the same seed always yields the same sky.
"""

import numpy as np
import pytest

from repro.env import (
    DiurnalSolarModel,
    KineticBurstModel,
    ThermalGradientModel,
)

DURATION = 120.0


def _models():
    return [
        DiurnalSolarModel(period=60.0, seed=3, horizon=DURATION),
        KineticBurstModel(seed=5, burst_rate=0.2, horizon=DURATION),
        ThermalGradientModel(period=40.0),
    ]


class TestIntensityRange:
    @pytest.mark.parametrize("model", _models(),
                             ids=lambda m: type(m).__name__)
    def test_intensity_in_unit_interval(self, model):
        for t in np.linspace(0.0, DURATION, 4001):
            e = model.intensity(float(t))
            assert 0.0 <= e <= 1.0, (type(model).__name__, t, e)

    def test_solar_night_is_dark(self):
        model = DiurnalSolarModel(period=60.0, daylight_fraction=0.5,
                                  seed=0, cloud_rate=0.0, horizon=DURATION)
        for t in np.linspace(30.0, 59.9, 100):
            assert model.intensity(float(t)) == 0.0

    def test_overlapping_bursts_cap_at_one(self):
        # Deterministic overlap: force many long bursts into a short
        # horizon so several are always simultaneously active.
        model = KineticBurstModel(base_intensity=0.5, seed=1,
                                  burst_rate=3.0, burst_duration=10.0,
                                  burst_intensity=1.0, horizon=20.0)
        assert len(model.burst_starts) >= 2
        peaks = [model.intensity(float(t))
                 for t in np.linspace(0.0, 20.0, 2001)]
        assert max(peaks) == 1.0


class TestBreakpoints:
    @pytest.mark.parametrize("model", _models(),
                             ids=lambda m: type(m).__name__)
    def test_breakpoints_sorted_unique_interior(self, model):
        points = model.breakpoints(DURATION)
        assert np.all(np.diff(points) > 0.0)
        if len(points):
            assert points[0] > 0.0 and points[-1] < DURATION

    def test_solar_reports_dawn_and_dusk(self):
        model = DiurnalSolarModel(period=60.0, daylight_fraction=0.5,
                                  seed=0, cloud_rate=0.0, horizon=DURATION)
        points = set(model.breakpoints(DURATION).tolist())
        # dusk of day 0, dawn + dusk of day 1 (0.0 and DURATION are
        # clipped as exterior)
        assert {30.0, 60.0, 90.0} <= points

    def test_cloud_edges_are_breakpoints(self):
        model = DiurnalSolarModel(period=240.0, daylight_fraction=1.0,
                                  seed=7, cloud_rate=6.0, horizon=DURATION)
        assert len(model.cloud_starts) > 0
        points = set(model.breakpoints(DURATION).tolist())
        for start, end in zip(model.cloud_starts, model.cloud_ends):
            if 0.0 < start < DURATION:
                assert float(start) in points
            if 0.0 < end < DURATION:
                assert float(end) in points

    def test_thermal_vertices_at_half_periods(self):
        model = ThermalGradientModel(period=40.0)
        points = model.breakpoints(DURATION)
        assert points.tolist() == [20.0, 40.0, 60.0, 80.0, 100.0]


class TestSeededDeterminism:
    def test_same_seed_same_sky(self):
        a = DiurnalSolarModel(seed=11, cloud_rate=8.0, horizon=DURATION)
        b = DiurnalSolarModel(seed=11, cloud_rate=8.0, horizon=DURATION)
        np.testing.assert_array_equal(a.cloud_starts, b.cloud_starts)
        np.testing.assert_array_equal(a.cloud_ends, b.cloud_ends)
        np.testing.assert_array_equal(a.cloud_depths, b.cloud_depths)
        for t in np.linspace(0.0, DURATION, 501):
            assert a.intensity(float(t)) == b.intensity(float(t))

    def test_different_seed_different_clouds(self):
        a = DiurnalSolarModel(seed=11, cloud_rate=8.0, horizon=DURATION)
        b = DiurnalSolarModel(seed=12, cloud_rate=8.0, horizon=DURATION)
        assert a.cloud_starts.tolist() != b.cloud_starts.tolist()

    def test_same_seed_same_bursts(self):
        a = KineticBurstModel(seed=4, burst_rate=0.5, horizon=DURATION)
        b = KineticBurstModel(seed=4, burst_rate=0.5, horizon=DURATION)
        np.testing.assert_array_equal(a.burst_starts, b.burst_starts)
        np.testing.assert_array_equal(a.burst_amps, b.burst_amps)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DiurnalSolarModel(period=0.0)
        with pytest.raises(ValueError):
            DiurnalSolarModel(daylight_fraction=0.0)
        with pytest.raises(ValueError):
            KineticBurstModel(base_intensity=1.5)
        with pytest.raises(ValueError):
            ThermalGradientModel(intensity_low=0.8, intensity_high=0.2)
