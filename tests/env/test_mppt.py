"""PV transducer and MPPT front-end invariants.

The front-ends are the link between a dimensionless sky and the watts
the rest of the stack integrates, so the contract is physical: power is
never negative, never exceeds the true maximum power point, the
fractional-V_OC setpoint stays strictly inside ``(0, 1) * V_oc``, and
perturb-and-observe converges to within one perturbation step of the
true MPP on a static curve.
"""

import numpy as np
import pytest

from repro.env import (
    ConstantVoltageMPPT,
    PVTransducer,
    PerturbObserveMPPT,
    VocFractionMPPT,
)

INTENSITIES = [0.05, 0.2, 0.5, 0.8, 1.0]


@pytest.fixture
def pv():
    return PVTransducer.scaled_to(4e-3)


class TestTransducer:
    def test_power_non_negative_everywhere(self, pv):
        for e in [0.0] + INTENSITIES:
            for v in np.linspace(-0.5, pv.v_oc + 0.5, 101):
                assert pv.power(float(v), e) >= 0.0

    def test_dark_panel_produces_nothing(self, pv):
        assert pv.v_open(0.0) == 0.0
        assert pv.power(1.5, 0.0) == 0.0

    def test_open_circuit_and_short_circuit_bound_the_curve(self, pv):
        for e in INTENSITIES:
            v_open = pv.v_open(e)
            assert pv.current(v_open, e) == 0.0
            assert pv.current(0.0, e) == pytest.approx(pv.i_sc * e)

    def test_scaled_to_delivers_peak_power_at_full_sun(self):
        for peak in (1e-3, 4e-3, 20e-3):
            pv = PVTransducer.scaled_to(peak)
            _v, p = pv.mpp(1.0)
            assert p == pytest.approx(peak, rel=1e-6)

    def test_mpp_is_the_maximum(self, pv):
        for e in INTENSITIES:
            v_mpp, p_mpp = pv.mpp(e)
            assert 0.0 < v_mpp < pv.v_open(e)
            for v in np.linspace(0.0, pv.v_open(e), 257):
                assert pv.power(float(v), e) <= p_mpp + 1e-15


class TestFrontEndInvariants:
    def _front_ends(self):
        return [ConstantVoltageMPPT(v_ref=1.7),
                VocFractionMPPT(fraction=0.76),
                PerturbObserveMPPT(step=0.05)]

    def test_harvest_power_non_negative_and_bounded_by_mpp(self, pv):
        for mppt in self._front_ends():
            mppt.reset()
            for e in [0.0] + INTENSITIES:
                _v, p_mpp = pv.mpp(e)
                p = mppt.harvest_power(pv, e)
                assert p >= 0.0
                assert p <= p_mpp + 1e-15

    def test_voc_fraction_setpoint_strictly_inside_voc(self, pv):
        mppt = VocFractionMPPT(fraction=0.76)
        for e in INTENSITIES:
            v_open = pv.v_open(e)
            v = mppt.setpoint(pv, e)
            assert 0.0 < v < v_open

    def test_voc_fraction_rejects_degenerate_fractions(self):
        with pytest.raises(ValueError):
            VocFractionMPPT(fraction=0.0)
        with pytest.raises(ValueError):
            VocFractionMPPT(fraction=1.0)

    def test_constant_voltage_clamps_to_open_circuit(self, pv):
        mppt = ConstantVoltageMPPT(v_ref=1.7)
        # Bright sky: regulation at the setpoint.
        assert mppt.setpoint(pv, 1.0) == pytest.approx(1.7)
        # Dim sky: V_oc sags under the setpoint, regulation clamps.
        dim = 1e-4
        assert mppt.setpoint(pv, dim) == pytest.approx(pv.v_open(dim))


class TestPerturbObserveConvergence:
    @pytest.mark.parametrize("intensity", [0.3, 0.6, 1.0])
    @pytest.mark.parametrize("v_start", [0.3, 1.1, 2.0])
    def test_converges_within_one_step_of_mpp(self, pv, intensity,
                                              v_start):
        mppt = PerturbObserveMPPT(step=0.05, v_start=v_start)
        v_mpp, p_mpp = pv.mpp(intensity)
        for _ in range(200):
            mppt.harvest_power(pv, intensity)
        # The tracker dithers around the MPP: a direction reversal takes
        # one extra observation, so the setpoint excursion is up to two
        # steps; the extracted power must stay within that band.
        floor = min(pv.power(v_mpp - 2 * mppt.step, intensity),
                    pv.power(v_mpp + 2 * mppt.step, intensity))
        tail = [mppt.harvest_power(pv, intensity) for _ in range(8)]
        assert min(tail) >= floor - 1e-15
        assert max(tail) <= p_mpp + 1e-15
        assert abs(mppt.setpoint(pv, intensity) - v_mpp) <= \
            2 * mppt.step + 1e-12

    def test_tracker_state_is_resettable(self, pv):
        mppt = PerturbObserveMPPT(step=0.05)
        first = [mppt.harvest_power(pv, 0.8) for _ in range(16)]
        mppt.reset()
        again = [mppt.harvest_power(pv, 0.8) for _ in range(16)]
        assert first == again

    def test_survives_darkness_and_recovers(self, pv):
        mppt = PerturbObserveMPPT(step=0.05)
        for _ in range(20):
            mppt.harvest_power(pv, 0.8)
        assert mppt.harvest_power(pv, 0.0) == 0.0
        for _ in range(200):
            mppt.harvest_power(pv, 0.8)
        _v_mpp, p_mpp = pv.mpp(0.8)
        assert mppt.harvest_power(pv, 0.8) >= 0.5 * p_mpp
