"""Fleet edge cases and invariants: empty, singleton, broadcast, extremes,
and any-jobs determinism."""

import json

import numpy as np
import pytest

from repro.fleet.differential import (
    E_TOL,
    cross_check,
    sample_indices,
)
from repro.fleet.kernel import T_TOL, V_TOL, FleetState, advance
from repro.fleet.runner import run_fleet, run_fleet_raw, summarize
from repro.fleet.spec import FleetSpec
from repro.sim import fastpath
from repro.sim.engine import PowerSystemSimulator

SEGMENTS = [(0.012, 0.05), (0.0, 0.3), (0.020, 0.03), (0.0, 0.2)]


class TestEmptyFleet:
    def test_kernel_handles_zero_devices(self):
        spec = FleetSpec(devices=0)
        state = FleetState(spec.parameters())
        brown = advance(state, SEGMENTS, True, spec.v_off)
        assert brown.shape == (0,)
        assert state.device_steps == 0

    def test_runner_reports_empty(self):
        report = run_fleet(FleetSpec(devices=0), cycles=1, horizon=10.0)
        assert report.devices == 0
        assert report.ok
        assert report.brown_out_rate == 0.0
        assert sum(report.counts.values()) == 0
        # Renders and serializes without dividing by zero.
        assert "0 devices" in report.render()
        assert report.to_dict()["devices"] == 0


class TestSingleDevice:
    def test_one_device_fleet_runs(self):
        report = run_fleet(FleetSpec(devices=1, seed=3), cycles=1,
                           horizon=60.0)
        assert report.devices == 1
        assert sum(report.counts.values()) == 1


class TestHomogeneousBroadcast:
    """Zero jitter: every lane performs identical arithmetic, so the batch
    must be an exact broadcast of one scalar device."""

    def test_all_lanes_exactly_equal(self):
        spec = FleetSpec(devices=16, seed=0, esr_jitter=0.0,
                         capacitance_jitter=0.0, harvest_jitter=0.0,
                         eta_jitter=0.0)
        assert spec.homogeneous
        state = FleetState(spec.parameters())
        advance(state, SEGMENTS, True, None)
        for arr in (state.v_term, state.v_main, state.v_redist,
                    state.v_min, state.time, state.energy):
            assert (arr == arr[0]).all()

    def test_broadcast_matches_scalar_device(self):
        spec = FleetSpec(devices=4, seed=0, esr_jitter=0.0,
                         capacitance_jitter=0.0, harvest_jitter=0.0,
                         eta_jitter=0.0)
        params = spec.parameters()
        state = FleetState(params)
        advance(state, SEGMENTS, True, None)

        system = params.device_system(0)
        sim = PowerSystemSimulator(system)
        fastpath.advance_segments(sim, SEGMENTS, True, None)
        assert float(state.v_term[0]) == pytest.approx(
            system.buffer.terminal_voltage, abs=V_TOL)
        assert float(state.time[0]) == pytest.approx(sim.time, abs=T_TOL)


class TestHeterogeneousExtremes:
    """Large jitters push devices toward the regime bounds; every lane must
    still match its own scalar mirror."""

    def test_wide_jitter_fleet_matches_per_device_scalar(self):
        spec = FleetSpec(devices=8, seed=11, esr_jitter=0.6,
                         capacitance_jitter=0.3, harvest_jitter=0.8,
                         eta_jitter=0.08)
        params = spec.parameters()
        # The jitter really does spread the parts apart.
        assert params.r_esr.max() / params.r_esr.min() > 1.5
        state = FleetState(params)
        advance(state, SEGMENTS, True, None)
        for i in range(params.n):
            system = params.device_system(i)
            sim = PowerSystemSimulator(system)
            fastpath.advance_segments(sim, SEGMENTS, True, None)
            assert float(state.v_term[i]) == pytest.approx(
                system.buffer.terminal_voltage, abs=V_TOL), f"device {i}"
            assert float(state.energy[i]) == pytest.approx(
                sim._energy_out, abs=E_TOL), f"device {i}"

    def test_excessive_capacitance_jitter_rejected(self):
        # Jitter wide enough to push c_main non-positive must fail loudly
        # at expansion, not corrupt the kernel.
        spec = FleetSpec(devices=64, seed=0, datasheet_capacitance=150e-6,
                         c_decoupling=100e-6, capacitance_jitter=0.5)
        with pytest.raises(ValueError, match="capacitance"):
            spec.parameters()


class TestJobsDeterminism:
    """The acceptance criterion: reports byte-identical for any --jobs."""

    def test_report_json_identical_across_jobs(self):
        spec = FleetSpec(devices=24, seed=5)
        payloads = []
        for jobs in (1, 3):
            report = run_fleet(spec, cycles=1, horizon=60.0, jobs=jobs)
            payloads.append(json.dumps(report.to_dict(), sort_keys=True))
        assert payloads[0] == payloads[1]

    def test_raw_outcomes_identical_across_jobs(self):
        spec = FleetSpec(devices=10, seed=2)
        a = run_fleet_raw(spec, cycles=1, horizon=60.0, jobs=1)
        b = run_fleet_raw(spec, cycles=1, horizon=60.0, jobs=4)
        assert (a.outcome_codes == b.outcome_codes).all()
        assert (a.v_min == b.v_min).all()          # bit-identical
        assert (a.final_time == b.final_time).all()
        assert a.device_steps == b.device_steps


class TestSpecExpansion:
    def test_expansion_is_deterministic(self):
        spec = FleetSpec(devices=32, seed=9)
        a, b = spec.parameters(), spec.parameters()
        assert (a.r_esr == b.r_esr).all()
        assert (a.c_main == b.c_main).all()
        assert (a.p_harvest == b.p_harvest).all()

    def test_slice_matches_full_expansion(self):
        params = FleetSpec(devices=40, seed=1).parameters()
        shard = FleetSpec(devices=40, seed=1).parameters().slice(13, 29)
        assert (shard.r_esr == params.r_esr[13:29]).all()
        assert (shard.eta_base == params.eta_base[13:29]).all()

    def test_dict_round_trip(self):
        spec = FleetSpec(devices=7, seed=42, harvest_period=60.0,
                         esr_jitter=0.2)
        assert FleetSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_foreign_format(self):
        with pytest.raises(ValueError, match="not a fleet spec"):
            FleetSpec.from_dict({"format": "repro.chaos-case"})

    def test_validation(self):
        with pytest.raises(ValueError, match="devices"):
            FleetSpec(devices=-1)
        with pytest.raises(ValueError, match="esr_jitter"):
            FleetSpec(devices=1, esr_jitter=1.0)
        with pytest.raises(ValueError, match="redist_fraction"):
            FleetSpec(devices=1, redist_fraction=1.0)

    def test_zeroing_one_jitter_preserves_others(self):
        # Fixed draw order: turning one jitter off must not reshuffle the
        # streams the other jitters consume.
        a = FleetSpec(devices=16, seed=4).parameters()
        b = FleetSpec(devices=16, seed=4, esr_jitter=0.0).parameters()
        assert (a.c_main == b.c_main).all()
        assert (a.p_harvest == b.p_harvest).all()
        assert (b.r_esr == b.r_esr[0]).all()


class TestDifferentialSampling:
    def test_sample_indices_deterministic_and_bounded(self):
        a = sample_indices(1000, 8, seed=3)
        assert a == sample_indices(1000, 8, seed=3)
        assert len(a) == 8 and len(set(a)) == 8
        assert all(0 <= i < 1000 for i in a)

    def test_sample_covers_small_fleets(self):
        assert sample_indices(5, 10, seed=0) == [0, 1, 2, 3, 4]
        assert sample_indices(0, 4, seed=0) == []
        assert sample_indices(10, 0, seed=0) == []

    def test_cross_check_passes_on_honest_fleet(self):
        spec = FleetSpec(devices=12, seed=6)
        outcomes = run_fleet_raw(spec, cycles=1, horizon=60.0)
        result = cross_check(outcomes, sample_indices(12, 4, seed=6))
        assert result.ok, result.render()
        assert "OK" in result.render()

    def test_cross_check_flags_a_corrupted_lane(self):
        spec = FleetSpec(devices=6, seed=6)
        outcomes = run_fleet_raw(spec, cycles=1, horizon=60.0)
        outcomes.v_min = outcomes.v_min.copy()
        outcomes.v_min[2] += 0.5           # sabotage one device
        result = cross_check(outcomes, [1, 2])
        assert not result.ok
        assert any(m.device == 2 and m.field == "v_min"
                   for m in result.mismatches)
        assert "mismatch" in result.render()


class TestMaskedAdvance:
    def test_inactive_devices_are_frozen(self):
        spec = FleetSpec(devices=6, seed=0)
        state = FleetState(spec.parameters())
        before_t = state.time.copy()
        before_v = state.v_term.copy()
        active = np.array([True, False, True, False, True, False])
        advance(state, SEGMENTS, True, None, active=active)
        assert (state.time[~active] == before_t[~active]).all()
        assert (state.v_term[~active] == before_v[~active]).all()
        assert (state.time[active] > before_t[active]).all()

    def test_dead_devices_stay_dead(self):
        spec = FleetSpec(devices=4, seed=0, datasheet_capacitance=8e-3,
                         harvest_power=1e-4)
        state = FleetState(spec.parameters())
        brown = advance(state, [(0.030, 5.0)], True, spec.v_off)
        assert not state.alive.any()
        frozen_t = state.time.copy()
        advance(state, SEGMENTS, True, spec.v_off)
        assert (state.time == frozen_t).all()
        assert np.isfinite(brown).all()


class TestSummarizeDetail:
    def test_brown_out_details_surface_in_report(self):
        # Tiny banks + a heavy radio program at honest gates: physics the
        # shared firmware cannot save, so brown-outs must be reported.
        spec = FleetSpec(devices=6, seed=1, datasheet_capacitance=2e-3,
                         harvest_power=1e-3)
        outcomes = run_fleet_raw(spec, app="crypto-tx", cycles=1,
                                 horizon=30.0)
        report = summarize(outcomes)
        assert report.counts.get("brown_out", 0) > 0
        assert not report.ok
        assert report.brown_outs
        entry = report.brown_outs[0]
        assert entry["task"]
        assert np.isfinite(entry["time"])
        assert "UNSAFE" in report.render()
