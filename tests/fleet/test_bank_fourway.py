"""Four-way differential on reconfiguration traces.

The bank axis' equivalence contract: a plan-bearing trace produces the
same trajectory in all four engines —

* reference stepping loop ≡ scalar fastpath **bit-exact** (the scalar
  contract, unchanged by mid-trace reconfiguration);
* scalar segalg within the documented method tolerance;
* fleet stepping kernel vs scalar fastpath within ``V_TOL``/``T_TOL``;
* fleet segalg vs scalar segalg within the vector-path tolerance.

Every scalar engine applies the one shared transform
(:func:`repro.power.reconfig.apply_reconfiguration`); the fleet driver
(:mod:`repro.fleet.bank`) mirrors it elementwise — these tests are what
"mirrors it" means.
"""

import numpy as np
import pytest

from repro.fleet.bank import FleetBankDriver, advance_fleet_plan
from repro.fleet.kernel import FleetState, T_TOL, V_TOL
from repro.fleet.spec import FleetBankSpec, FleetSpec
from repro.loads.trace import CurrentTrace
from repro.power.reconfig import ReconfigPlan
from repro.sim.engine import PowerSystemSimulator

#: Scalar segalg vs stepping reference — the segment-algebra method
#: tolerance (same bound the env four-way suite uses).
V_METHOD_TOL = 5e-3
#: Fleet segalg vs scalar segalg — same algebra, vectorized arithmetic.
V_PATH_TOL = 1e-3

BANK = FleetBankSpec(
    banks=(("large", 33.75e-3, 2.5, 12e-9), ("small", 11.25e-3, 7.5, 4e-9)),
    configs=(("small",), ("large",), ("large", "small")),
)

#: Mixed workload with three mid-trace switches: shrink to the large
#: bank inside a load transient, re-merge during recovery, drop to the
#: small bank near the end.
SEGMENTS = [
    (0.012, 0.05), (0.0, 0.2), (0.025, 0.02), (0.0, 0.5),
    (0.008, 0.10), (0.0, 0.05), (0.018, 0.03), (0.0, 0.3),
]
PLAN = ReconfigPlan.build(
    (0.15, ("large",)), (0.47, ("large", "small")), (0.9, ("small",)))


def _spec(seed: int, **overrides) -> FleetSpec:
    base = dict(devices=8, seed=seed, bank=BANK, harvest_power=4e-3,
                esr_jitter=0.2, capacitance_jitter=0.1, harvest_jitter=0.3)
    base.update(overrides)
    return FleetSpec(**base)


def _scalar_runs(params, i, trace, plan):
    """Device ``i`` through the three scalar engines."""
    results = {}
    for name, kwargs in (("reference", dict(fast=False, segalg=False)),
                         ("fastpath", dict(fast=True, segalg=False)),
                         ("segalg", dict(segalg=True))):
        sim = PowerSystemSimulator(params.device_system(i), **kwargs)
        results[name] = sim.run_trace(trace, reconfig_plan=plan)
    return results


class TestFourWayDifferential:

    @pytest.mark.parametrize("seed", [5, 11])
    def test_mixed_plan_trace(self, seed):
        spec = _spec(seed)
        params = spec.parameters()
        # All three configurations must actually appear in the batch or
        # the differential exercises less than it claims.
        assert set(int(c) for c in params.config_idx) == {0, 1, 2}
        trace = CurrentTrace(SEGMENTS)

        step_state, step_brown = advance_fleet_plan(
            FleetState(params), trace, PLAN, True, spec.v_off,
            engine="stepping")
        alg_state, alg_brown = advance_fleet_plan(
            FleetState(params), trace, PLAN, True, spec.v_off,
            engine="segalg")

        for i in range(params.n):
            runs = _scalar_runs(params, i, trace, PLAN)
            ref, fast, alg = (runs["reference"], runs["fastpath"],
                              runs["segalg"])
            # Leg 1: reference ≡ fastpath, bit-exact.
            assert fast.v_final == ref.v_final
            assert fast.v_min == ref.v_min
            assert fast.browned_out == ref.browned_out
            # Leg 2: scalar segalg within the method tolerance.
            assert alg.v_final == pytest.approx(ref.v_final,
                                                abs=V_METHOD_TOL)
            assert alg.v_min == pytest.approx(ref.v_min, abs=V_METHOD_TOL)
            # Leg 3: fleet stepping vs scalar fastpath.
            assert float(step_state.v_term[i]) == pytest.approx(
                fast.v_final, abs=V_TOL)
            assert float(step_state.v_min[i]) == pytest.approx(
                fast.v_min, abs=V_TOL)
            if fast.browned_out:
                assert float(step_brown[i]) == pytest.approx(
                    fast.brown_out_time, abs=T_TOL)
            else:
                assert np.isnan(float(step_brown[i]))
            # Leg 4: fleet segalg vs scalar segalg.
            assert float(alg_state.v_term[i]) == pytest.approx(
                alg.v_final, abs=V_PATH_TOL)
            assert (np.isnan(float(alg_brown[i]))
                    == (not alg.browned_out))

    def test_fleet_stepping_is_bitwise_on_this_corpus(self):
        """Stronger than V_TOL: on the equivalence corpus the stepping
        kernel reproduces the scalar fastpath's floats exactly, switches
        included — any regression to mere closeness is worth noticing."""
        spec = _spec(5)
        params = spec.parameters()
        trace = CurrentTrace(SEGMENTS)
        state, _ = advance_fleet_plan(FleetState(params), trace, PLAN,
                                      True, spec.v_off, engine="stepping")
        for i in range(params.n):
            fast = PowerSystemSimulator(params.device_system(i), fast=True,
                                        segalg=False)
            result = fast.run_trace(trace, reconfig_plan=PLAN)
            assert float(state.v_term[i]) == result.v_final
            assert float(state.v_min[i]) == result.v_min


class TestEventSemantics:

    def _sagging_setup(self):
        """Every device on the large bank at V_high with the small bank
        parked at 0.2 V — merging the two sags the rail below V_off."""
        bank = FleetBankSpec(
            banks=(("large", 22.5e-3, 2.5, 12e-9),
                   ("small", 22.5e-3, 2.5, 12e-9)),
            configs=(("large",),),
        )
        spec = _spec(3, devices=4, bank=bank)
        params = spec.parameters()
        small_col = spec.bank.bank_names.index("small")
        return spec, params, small_col

    def _park_small_low(self, system):
        # Public-API route to a drained parked bank: activate it, rest
        # it low, switch away (parks it at its rest voltage).
        buf = system.buffer
        buf.configure(("small",))
        buf.reset(0.2)
        buf.configure(("large",))

    def test_redistribution_sag_browns_at_event_time(self):
        spec, params, small_col = self._sagging_setup()
        trace = CurrentTrace([(0.0, 0.5)])
        plan = ReconfigPlan.build((0.1, ("large", "small")),
                                  (0.3, ("large",)))

        state = FleetState(params)
        large_only_c = state.params.c_main + state.params.c_redist
        driver = FleetBankDriver(state)
        driver.idle_v[:, small_col] = 0.2
        brown = driver.advance_plan(trace, plan, True, spec.v_off)

        for i in range(params.n):
            system = params.device_system(i)
            self._park_small_low(system)
            sim = PowerSystemSimulator(system, fast=True, segalg=False)
            result = sim.run_trace(trace, reconfig_plan=plan)
            assert result.browned_out
            # The brown-out lands at the event time, not at a step after.
            assert result.brown_out_time == pytest.approx(0.1, abs=T_TOL)
            assert float(brown[i]) == pytest.approx(result.brown_out_time,
                                                    abs=T_TOL)
        # The device switched (and then died): its group is the merged
        # pair, and the *second* event never un-merged it.
        assert not driver.state.alive.any()
        merged_c = driver.state.params.c_main + driver.state.params.c_redist
        assert (merged_c > large_only_c).all()
        assert driver.active.all(), "dead devices must keep the merged set"

    def test_dead_device_never_switches(self):
        """A brown-out inside a sub-span freezes the device: later events
        change neither its parameters nor its parked voltages."""
        spec = _spec(7, devices=4, harvest_power=1e-4)
        params = spec.parameters()
        # A sustained draw no configuration survives.
        trace = CurrentTrace([(0.040, 3.0)])
        plan = ReconfigPlan.build((2.9, ("large", "small")))

        state = FleetState(params)
        before = state.params
        driver = FleetBankDriver(state)
        brown = driver.advance_plan(trace, plan, True, spec.v_off)

        assert np.isfinite(brown).all()
        assert (brown < 2.9).all(), "all devices die before the event"
        after = driver.state.params
        assert np.array_equal(after.c_main, before.c_main)
        assert np.array_equal(after.r_esr, before.r_esr)

    def test_driver_requires_bank_axis(self):
        spec = FleetSpec(devices=2, seed=1)
        with pytest.raises(ValueError, match="bank axis"):
            FleetBankDriver(FleetState(spec.parameters()))

    def test_unknown_bank_rejected(self):
        spec = _spec(1, devices=2)
        driver = FleetBankDriver(FleetState(spec.parameters()))
        from repro.power.reconfig import ReconfigureEvent
        with pytest.raises(ValueError, match="unknown banks"):
            driver.reconfigure(ReconfigureEvent(time=0.0, config=("huge",)))
