"""Batch-composition invariance: the serving layer's load-bearing wall.

``advance_batch`` on the stepping engine must answer every lane
*byte-identically* to the same query in a batch of one — that is the
whole reason a coalescing daemon can batch unrelated queries without
changing an answer. The chain back to the scalar library goes through
``FleetSpec``: a batch lane holds bit-for-bit the same floats a
zero-jitter single-device spec expands to, and the existing equivalence
suite anchors that spec to the scalar fastpath.
"""

import numpy as np
import pytest

from repro.fleet.batch import (
    BATCH_ENGINES,
    BatchPlant,
    BatchQuery,
    BatchShared,
    advance_batch,
    build_batch,
    shared_key,
)
from repro.fleet.spec import FleetSpec
from repro.serve.protocol import canonical

MIXED_SEGMENTS = [
    (0.012, 0.05), (0.0, 0.2), (0.025, 0.02), (0.0, 0.5),
    (0.008, 0.10), (0.0, 0.05), (0.018, 0.03), (0.0, 0.3),
]

#: A heterogeneous batch: default, high-ESR, big-cap, and a small plant
#: near the brown-out edge, at distinct start voltages.
PLANTS = (
    BatchPlant(),
    BatchPlant(dc_esr=8.0, leakage_current=1e-6),
    BatchPlant(datasheet_capacitance=80e-3, capacitance_tolerance=0.15,
               redist_fraction=0.25),
    BatchPlant(datasheet_capacitance=8e-3, harvest_power=1e-4),
)
V_STARTS = (2.56, 2.3, 2.1, 1.8)


def _queries():
    return [BatchQuery(plant=p, v_start=v)
            for p, v in zip(PLANTS, V_STARTS)]


class TestBatchCompositionInvariance:
    @pytest.mark.parametrize("harvesting,stop", [
        (False, None), (True, None), (False, 1.6), (True, 1.6),
    ])
    def test_batch_of_n_equals_n_batches_of_one(self, harvesting, stop):
        queries = _queries()
        batched = advance_batch(queries, MIXED_SEGMENTS,
                                harvesting=harvesting, stop_below=stop)
        for i, query in enumerate(queries):
            solo = advance_batch([query], MIXED_SEGMENTS,
                                 harvesting=harvesting, stop_below=stop)
            # Byte identity, through the same canonical encoding the
            # serving layer answers with.
            assert canonical(batched.lane(i)) == canonical(solo.lane(0))

    def test_browned_lane_does_not_disturb_neighbours(self):
        # A heavy draw sized so some lanes brown out and some survive;
        # the survivors must finish exactly as if the browned lanes had
        # never shared their batch.
        segments = [(0.030, 0.4)]
        queries = _queries()
        batched = advance_batch(queries, segments, stop_below=1.6)
        browned = [i for i in range(batched.n)
                   if batched.lane(i)["brownout"] is not None]
        assert browned, "workload was meant to brown out a lane"
        assert len(browned) < len(queries)
        for i, query in enumerate(queries):
            solo = advance_batch([query], segments, stop_below=1.6)
            assert canonical(batched.lane(i)) == canonical(solo.lane(0))

    def test_lane_order_is_preserved_under_permutation(self):
        queries = _queries()
        forward = advance_batch(queries, MIXED_SEGMENTS)
        backward = advance_batch(list(reversed(queries)), MIXED_SEGMENTS)
        for i in range(len(queries)):
            assert canonical(forward.lane(i)) == \
                canonical(backward.lane(len(queries) - 1 - i))


class TestSpecMirror:
    def test_lane_floats_equal_zero_jitter_spec_expansion(self):
        # The documented contract: build_batch mirrors
        # FleetSpec.parameters() with unit jitter factors, bit for bit.
        plant = PLANTS[1]
        shared = BatchShared()
        spec = FleetSpec(
            devices=1,
            datasheet_capacitance=plant.datasheet_capacitance,
            capacitance_tolerance=plant.capacitance_tolerance,
            dc_esr=plant.dc_esr,
            c_decoupling=plant.c_decoupling,
            leakage_current=plant.leakage_current,
            redist_fraction=plant.redist_fraction,
            harvest_power=plant.harvest_power,
            v_high=shared.v_high, v_off=shared.v_off, v_out=shared.v_out,
            input_efficiency=shared.input_efficiency,
            esr_jitter=0.0, capacitance_jitter=0.0,
            harvest_jitter=0.0, eta_jitter=0.0,
        )
        expected = spec.parameters()
        state = build_batch([BatchQuery(plant=plant, v_start=2.56)],
                            shared=shared)
        params = state.params
        assert np.array_equal(params.c_main, expected.c_main)
        assert np.array_equal(params.r_esr, expected.r_esr)
        assert np.array_equal(params.c_redist, expected.c_redist)
        assert np.array_equal(params.r_redist, expected.r_redist)
        assert np.array_equal(params.leakage, expected.leakage)
        assert np.array_equal(params.eta_base, expected.eta_base)
        assert np.array_equal(params.p_harvest, expected.p_harvest)

    def test_v_start_below_v_off_starts_disabled(self):
        state = build_batch([BatchQuery(plant=BatchPlant(), v_start=1.0)])
        assert not bool(state.enabled[0])


class TestSegalgEngine:
    def test_method_tolerance_not_byte_identity(self):
        # The segalg path is offered for throughput experiments with the
        # documented method tolerance; serving never dispatches it.
        queries = _queries()[:3]
        stepping = advance_batch(queries, MIXED_SEGMENTS,
                                 harvesting=True)
        segalg = advance_batch(queries, MIXED_SEGMENTS, harvesting=True,
                               engine="segalg")
        for i in range(len(queries)):
            a, b = stepping.lane(i), segalg.lane(i)
            assert b["v_end"] == pytest.approx(a["v_end"], abs=5e-3)
            assert (a["brownout"] is None) == (b["brownout"] is None)


class TestValidation:
    def test_plant_and_query_bounds(self):
        with pytest.raises(ValueError):
            BatchPlant(datasheet_capacitance=0.0)
        with pytest.raises(ValueError):
            BatchPlant(redist_fraction=1.0)
        with pytest.raises(ValueError):
            BatchPlant(harvest_power=-1e-3)
        with pytest.raises(ValueError):
            BatchQuery(plant=BatchPlant(), v_start=-0.1)

    def test_empty_batch_and_unknown_engine(self):
        with pytest.raises(ValueError):
            build_batch([])
        with pytest.raises(ValueError):
            advance_batch(_queries(), MIXED_SEGMENTS, engine="quantum")

    def test_overcommitted_capacitance_is_caught(self):
        plant = BatchPlant(datasheet_capacitance=50e-6,
                           c_decoupling=100e-6)
        with pytest.raises(ValueError):
            build_batch([BatchQuery(plant=plant, v_start=2.0)])

    def test_config_key_discriminates(self):
        assert BatchPlant().config_key() == BatchPlant().config_key()
        assert BatchPlant().config_key() != \
            BatchPlant(dc_esr=5.0).config_key()


class TestSharedKey:
    def test_equal_inputs_share_a_key(self):
        shared = BatchShared()
        key = shared_key(shared, MIXED_SEGMENTS, True, 1.6, "env-a")
        assert key == shared_key(shared, MIXED_SEGMENTS, True, 1.6,
                                 "env-a")

    @pytest.mark.parametrize("variant", [
        dict(shared=BatchShared(v_high=2.50)),
        dict(segments=[(0.012, 0.05)]),
        dict(harvesting=False),
        dict(stop_below=None),
        dict(env="env-b"),
    ])
    def test_any_shared_difference_changes_the_key(self, variant):
        base = dict(shared=BatchShared(), segments=MIXED_SEGMENTS,
                    harvesting=True, stop_below=1.6, env="env-a")
        changed = dict(base)
        changed.update(variant)
        assert shared_key(base["shared"], base["segments"],
                          base["harvesting"], base["stop_below"],
                          base["env"]) != \
            shared_key(changed["shared"], changed["segments"],
                       changed["harvesting"], changed["stop_below"],
                       changed["env"])

    def test_engines_listed(self):
        assert BATCH_ENGINES == ("stepping", "segalg")
