"""Fleet runner: shared-firmware classification and telemetry."""

import numpy as np
import pytest

from repro import obs
from repro.fleet.runner import run_fleet, run_fleet_raw
from repro.fleet.spec import FleetSpec
from repro.resilience.campaign import OUTCOMES


class TestClassification:
    """The four-way outcome classification shared with the chaos campaign."""

    def test_healthy_fleet_completes(self):
        report = run_fleet(FleetSpec(devices=8, seed=0), cycles=1,
                           horizon=120.0)
        assert report.counts["completed"] == 8
        assert report.ok
        assert report.tasks_committed_total == 8 * 3   # 3 tasks/cycle

    def test_zero_harvest_livelocks(self):
        # No harvest at all: once the bank drains below a gate, charging
        # makes no progress — the constant-harvest equilibrium rule must
        # classify those devices as livelocked, not spin forever.
        report = run_fleet(
            FleetSpec(devices=4, seed=0, harvest_power=0.0,
                      harvest_jitter=0.0),
            cycles=6, horizon=300.0)
        assert report.counts["livelock"] == 4
        assert not report.ok
        assert report.livelocked == [0, 1, 2, 3]

    def test_short_horizon_degrades(self):
        # The horizon expires mid-program: devices stop where they are,
        # having violated nothing — degraded_but_safe.
        report = run_fleet(FleetSpec(devices=4, seed=0), cycles=6,
                           horizon=2.0)
        assert report.counts["degraded_but_safe"] == 4
        assert report.ok          # degraded is not unsafe

    def test_undersized_banks_brown_out(self):
        report = run_fleet(
            FleetSpec(devices=6, seed=1, datasheet_capacitance=2e-3,
                      harvest_power=1e-3),
            app="crypto-tx", cycles=1, horizon=30.0)
        assert report.counts["brown_out"] > 0
        assert report.brown_out_rate > 0
        assert not report.ok

    def test_counts_cover_every_outcome_name(self):
        report = run_fleet(FleetSpec(devices=2, seed=0), cycles=1,
                           horizon=60.0)
        assert set(report.counts) == set(OUTCOMES)
        assert sum(report.counts.values()) == report.devices

    def test_outcome_of_maps_codes_to_names(self):
        outcomes = run_fleet_raw(FleetSpec(devices=3, seed=0), cycles=1,
                                 horizon=60.0)
        for i in range(outcomes.devices):
            assert outcomes.outcome_of(i) in OUTCOMES


class TestValidation:
    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            run_fleet(FleetSpec(devices=1), estimator="psychic")

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown program"):
            run_fleet(FleetSpec(devices=1), app="doom")

    def test_bad_cycles_and_horizon_rejected(self):
        with pytest.raises(ValueError, match="cycles"):
            run_fleet(FleetSpec(devices=1), cycles=0)
        with pytest.raises(ValueError, match="horizon"):
            run_fleet(FleetSpec(devices=1), horizon=0.0)


class TestReportShape:
    def test_to_dict_is_self_describing(self):
        report = run_fleet(FleetSpec(devices=4, seed=0), cycles=1,
                           horizon=60.0)
        payload = report.to_dict()
        assert payload["format"] == "repro.fleet-report"
        assert payload["version"] == 1
        assert payload["config"]["spec"]["devices"] == 4
        assert payload["devices"] == 4
        assert payload["ok"] is True
        assert set(payload["counts"]) == set(OUTCOMES)
        assert payload["gates"]          # one gate per unique task
        # Round-trippable spec.
        assert FleetSpec.from_dict(payload["config"]["spec"]).devices == 4

    def test_gates_are_shared_firmware(self):
        # Same seed, different jitter: gates computed on the un-jittered
        # base plant must be identical.
        a = run_fleet(FleetSpec(devices=2, seed=0, esr_jitter=0.0),
                      cycles=1, horizon=60.0)
        b = run_fleet(FleetSpec(devices=2, seed=0, esr_jitter=0.3),
                      cycles=1, horizon=60.0)
        assert a.gates == b.gates


class TestTelemetry:
    def test_fleet_counters_and_histograms_emitted(self):
        with obs.observe() as state:
            report = run_fleet(FleetSpec(devices=6, seed=0), cycles=1,
                               horizon=60.0)
            snapshot = state.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["fleet.devices"] == 6
        assert counters["fleet.device_steps"] == report.device_steps
        assert counters["fleet.outcome.completed"] == \
            report.counts["completed"]
        histograms = snapshot["histograms"]
        assert "fleet.v_min" in histograms
        assert "fleet.throughput.device_steps_per_s" in histograms
        assert histograms["fleet.v_min"]["count"] == 6

    def test_no_observer_no_crash(self):
        assert obs.current() is None
        report = run_fleet(FleetSpec(devices=2, seed=0), cycles=1,
                           horizon=60.0)
        assert report.devices == 2

    def test_fleet_run_event_emitted(self):
        with obs.observe(tracer=obs.Tracer()) as state:
            run_fleet(FleetSpec(devices=3, seed=0), cycles=1, horizon=60.0)
            events = state.tracer.drain()
        runs = [e for e in events if e["event"] == "fleet.run"]
        assert runs and runs[-1]["devices"] == 3


class TestBrownTimes:
    def test_brown_times_are_nan_for_safe_devices(self):
        outcomes = run_fleet_raw(FleetSpec(devices=4, seed=0), cycles=1,
                                 horizon=60.0)
        assert np.isnan(outcomes.brown_time).all()
        assert outcomes.brown_task == [""] * 4


class TestBankFleet:
    """The per-device bank axis through the full runner."""

    BANK_KW = dict(
        banks=(("large", 33.75e-3, 2.5, 12e-9),
               ("small", 11.25e-3, 7.5, 4e-9)),
        configs=(("small",), ("large",), ("large", "small")),
    )

    def _spec(self, **overrides):
        from repro.fleet.spec import FleetBankSpec
        base = dict(devices=12, seed=5, bank=FleetBankSpec(**self.BANK_KW),
                    harvest_power=4e-3, esr_jitter=0.2,
                    capacitance_jitter=0.1)
        base.update(overrides)
        return FleetSpec(**base)

    def test_bank_fleet_completes(self):
        report = run_fleet(self._spec(), cycles=1, horizon=60.0)
        assert report.devices == 12
        assert report.counts["completed"] == 12

    def test_reports_byte_identical_across_jobs(self):
        import json

        spec = self._spec()
        serial = run_fleet(spec, cycles=1, horizon=60.0, jobs=1)
        sharded = run_fleet(spec, cycles=1, horizon=60.0, jobs=3)
        assert (json.dumps(serial.to_dict(), sort_keys=True)
                == json.dumps(sharded.to_dict(), sort_keys=True))

    def test_segalg_engine_agrees_on_outcomes(self):
        spec = self._spec()
        stepping = run_fleet(spec, cycles=1, horizon=60.0)
        segalg = run_fleet(spec, cycles=1, horizon=60.0, engine="segalg")
        assert stepping.counts == segalg.counts

    def test_cross_check_reads_per_configuration_gates(self):
        # Regression: the scalar mirror used to look gates up by bare
        # task name and KeyError'd on bank fleets, whose shared table is
        # keyed "<config_tag>/<task>" per device configuration.
        from repro.fleet.differential import cross_check, sample_indices
        from repro.fleet.runner import run_fleet_raw

        spec = self._spec(devices=16)
        for engine in ("stepping", "segalg"):
            outcomes = run_fleet_raw(spec, cycles=1, horizon=60.0,
                                     engine=engine)
            result = cross_check(outcomes, sample_indices(16, 6, seed=5))
            assert result.ok, result.render()
        # The sample must include devices on distinct configurations,
        # or this regression stops testing the per-config lookup.
        config_idx = spec.parameters().config_idx
        assert len({int(config_idx[i])
                    for i in sample_indices(16, 6, seed=5)}) > 1

    def test_gates_are_per_configuration(self):
        from repro.fleet.runner import run_fleet_raw
        from repro.sched.bank import config_tag

        spec = self._spec(devices=4)
        outcomes = run_fleet_raw(spec, cycles=1, horizon=60.0)
        tags = {config_tag(c) for c in spec.bank.configs}
        seen = {key.split("/", 1)[0] for key in outcomes.gates}
        assert seen == tags

    def test_bank_spec_round_trips(self):
        spec = self._spec()
        clone = FleetSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.bank is not None
