"""Equivalence chain: fleet kernel ≡ scalar fastpath ≡ reference engine.

Two permanent claims, each enforced over seeded random configurations:

* a **size-1 fleet** matches the scalar fastpath element-wise within the
  documented tolerances (``V_TOL`` / ``T_TOL`` / ``E_TOL``) — the fleet
  kernel's contract (see :mod:`repro.fleet.kernel`);
* the **scalar fastpath is bit-exact** against the reference engine — the
  PR1 claim, re-asserted here so no later optimization can quietly
  weaken the foundation the fleet tolerance chain is anchored to.
"""

import random

import numpy as np
import pytest

from repro.fleet.differential import E_TOL
from repro.fleet.kernel import T_TOL, V_TOL, FleetState, advance
from repro.fleet.spec import FleetSpec
from repro.loads.trace import CurrentTrace
from repro.sim import fastpath
from repro.sim.engine import PowerSystemSimulator

#: Mixed load/idle workload exercising transients, recharge, and the
#: monitor hysteresis band without browning a default Capybara plant.
MIXED_SEGMENTS = [
    (0.012, 0.05), (0.0, 0.2), (0.025, 0.02), (0.0, 0.5),
    (0.008, 0.10), (0.0, 0.05), (0.018, 0.03), (0.0, 0.3),
]


def _random_spec(seed: int, **overrides) -> FleetSpec:
    """A randomized single-device spec (pure function of ``seed``)."""
    rng = random.Random(seed)
    base = dict(
        devices=1,
        seed=seed,
        datasheet_capacitance=rng.uniform(20e-3, 80e-3),
        dc_esr=rng.uniform(1.0, 8.0),
        c_decoupling=rng.choice([0.0, 100e-6, 220e-6]),
        leakage_current=rng.uniform(0.0, 1e-6),
        redist_fraction=rng.choice([0.0, 0.10, 0.25]),
        input_efficiency=rng.uniform(0.6, 0.9),
        harvest_power=rng.uniform(1e-3, 8e-3),
        esr_jitter=rng.uniform(0.0, 0.3),
        capacitance_jitter=rng.uniform(0.0, 0.15),
        harvest_jitter=rng.uniform(0.0, 0.4),
        eta_jitter=rng.uniform(0.0, 0.05),
    )
    base.update(overrides)
    return FleetSpec(**base)


def _run_both(spec: FleetSpec, segments, harvesting=True, stop_below=None):
    """Run the same device through both kernels; return (state, sim, browns)."""
    params = spec.parameters()
    state = FleetState(params)
    brown = advance(state, segments, harvesting, stop_below)

    system = params.device_system(0)
    assert fastpath.supported(system)
    sim = PowerSystemSimulator(system)
    scalar_brown = fastpath.advance_segments(sim, segments, harvesting,
                                             stop_below)
    return state, sim, float(brown[0]), scalar_brown


def _assert_matches(state, sim):
    buffer = sim.system.buffer
    assert float(state.v_term[0]) == pytest.approx(
        buffer.terminal_voltage, abs=V_TOL)
    assert float(state.v_min[0]) == pytest.approx(
        sim._v_min_seen, abs=V_TOL)
    assert float(state.time[0]) == pytest.approx(sim.time, abs=T_TOL)
    assert float(state.energy[0]) == pytest.approx(
        sim._energy_out, abs=E_TOL)


class TestSizeOneFleetMatchesFastpath:
    """The tentpole equivalence: one-device fleet ≡ scalar fastpath."""

    @pytest.mark.parametrize("seed", range(12))
    def test_mixed_workload_random_configs(self, seed):
        spec = _random_spec(seed)
        state, sim, brown, scalar_brown = _run_both(spec, MIXED_SEGMENTS)
        assert scalar_brown is None and np.isnan(brown)
        _assert_matches(state, sim)

    @pytest.mark.parametrize("seed", range(6))
    def test_brown_out_times_agree(self, seed):
        # A sustained heavy draw no Capybara-class bank can ride out.
        spec = _random_spec(100 + seed,
                            datasheet_capacitance=8e-3, harvest_power=1e-4)
        segments = [(0.030, 5.0)]
        state, sim, brown, scalar_brown = _run_both(
            spec, segments, stop_below=spec.v_off)
        assert scalar_brown is not None, "workload was meant to brown out"
        assert brown == pytest.approx(scalar_brown, abs=T_TOL)
        assert not bool(state.alive[0])
        _assert_matches(state, sim)

    @pytest.mark.parametrize("seed", range(6))
    def test_solar_harvest_with_phase(self, seed):
        spec = _random_spec(200 + seed, harvest_period=60.0)
        state, sim, brown, scalar_brown = _run_both(spec, MIXED_SEGMENTS)
        assert scalar_brown is None and np.isnan(brown)
        _assert_matches(state, sim)

    def test_charge_only_idle_advance(self):
        spec = _random_spec(7)
        state, sim, _, _ = _run_both(spec, [(0.0, 2.0)])
        _assert_matches(state, sim)

    def test_not_harvesting(self):
        spec = _random_spec(8)
        state, sim, _, _ = _run_both(spec, MIXED_SEGMENTS,
                                     harvesting=False)
        _assert_matches(state, sim)


class TestFastpathMatchesEngine:
    """PR1's bit-exactness claim, kept as a permanent regression test.

    The fleet tolerances above are anchored to the scalar fastpath; this
    class pins the other end of the chain to the reference engine with
    *exact* equality, not tolerance.
    """

    @staticmethod
    def _random_trace(seed: int) -> CurrentTrace:
        rng = random.Random(1000 + seed)
        segments = []
        for _ in range(rng.randint(3, 9)):
            if rng.random() < 0.4:
                segments.append((0.0, rng.uniform(0.01, 0.5)))
            else:
                segments.append((rng.uniform(0.002, 0.03),
                                 rng.uniform(0.005, 0.2)))
        return CurrentTrace(segments)

    @pytest.mark.parametrize("seed", range(10))
    def test_bit_exact_on_random_traces(self, seed):
        spec = _random_spec(300 + seed)
        trace = self._random_trace(seed)

        def run(fast: bool):
            system = spec.parameters().device_system(0)
            sim = PowerSystemSimulator(system, fast=fast)
            result = sim.run_trace(trace, harvesting=True)
            return (result.v_min, result.v_final, result.browned_out,
                    sim.time)

        assert run(True) == run(False)
