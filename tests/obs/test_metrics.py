"""Metrics registry: instruments, snapshots, deterministic merging."""

import json

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    VOLTAGE_BUCKETS_V,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_snapshot,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(1.5)
        gauge.set(2.25)
        assert gauge.value == 2.25


class TestHistogram:
    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", [])
        with pytest.raises(ValueError):
            Histogram("h", [2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", [1.0, 1.0])

    def test_inclusive_upper_bounds(self):
        histogram = Histogram("h", [1.0, 2.0])
        histogram.observe(1.0)       # lands in the first bucket, not second
        histogram.observe(1.5)
        histogram.observe(9.0)       # overflow
        assert histogram._counts == [1, 1, 1]

    def test_exact_aggregates(self):
        histogram = Histogram("h", [10.0])
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 6.0
        assert histogram.mean == 2.0

    def test_quantile_returns_bucket_bound(self):
        histogram = Histogram("h", [1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 1.6, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(1.0) == 4.0

    def test_quantile_overflow_uses_exact_max(self):
        histogram = Histogram("h", [1.0])
        histogram.observe(7.5)
        assert histogram.quantile(0.99) == 7.5

    def test_quantile_validates_and_handles_empty(self):
        histogram = Histogram("h", [1.0])
        assert histogram.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_mean_of_empty_is_zero(self):
        assert Histogram("h", [1.0]).mean == 0.0


class TestDefaultBuckets:
    @pytest.mark.parametrize("buckets",
                             [LATENCY_BUCKETS_S, VOLTAGE_BUCKETS_V])
    def test_strictly_increasing(self, buckets):
        assert list(buckets) == sorted(set(buckets))

    def test_voltage_envelope(self):
        assert VOLTAGE_BUCKETS_V[0] == pytest.approx(0.05)
        assert VOLTAGE_BUCKETS_V[-1] == pytest.approx(5.0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", [1.0, 2.0])
        with pytest.raises(ValueError):
            registry.histogram("h", [1.0, 3.0])

    def test_snapshot_is_json_ready_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(0.5)
        registry.histogram("h", [1.0]).observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot["format"] == "repro.obs-metrics"
        assert snapshot["version"] == 1
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot["histograms"]["h"]["count"] == 1
        json.dumps(snapshot)  # must serialize without custom encoders

    def test_empty_histogram_snapshot_has_null_extremes(self):
        registry = MetricsRegistry()
        registry.histogram("h", [1.0])
        payload = registry.snapshot()["histograms"]["h"]
        assert payload["min"] is None and payload["max"] is None


def _observe_all(registry, samples):
    for value in samples:
        registry.counter("events").inc()
        registry.gauge("last").set(value)
        registry.histogram("values", [1.0, 2.0, 4.0]).observe(value)


class TestMerge:
    def test_split_merge_equals_serial(self):
        """The property the parallel harness relies on: any partition of
        the observation stream merges back to the identical snapshot."""
        samples = [0.5, 1.0, 1.5, 2.5, 3.0, 4.0, 9.0]
        serial = MetricsRegistry()
        _observe_all(serial, samples)

        merged = MetricsRegistry()
        for lo, hi in ((0, 2), (2, 5), (5, len(samples))):
            part = MetricsRegistry()
            _observe_all(part, samples[lo:hi])
            merged.merge(part)
        assert merged.snapshot() == serial.snapshot()

    def test_merge_snapshot_round_trips_through_json(self):
        source = MetricsRegistry()
        _observe_all(source, [0.5, 2.0])
        target = MetricsRegistry()
        target.merge_snapshot(json.loads(json.dumps(source.snapshot())))
        assert target.snapshot() == source.snapshot()

    def test_counters_add_and_gauges_take_incoming(self):
        a = MetricsRegistry()
        a.counter("n").inc(3)
        a.gauge("g").set(1.0)
        b = MetricsRegistry()
        b.counter("n").inc(4)
        b.gauge("g").set(2.0)
        a.merge(b)
        assert a.counter("n").value == 7
        assert a.gauge("g").value == 2.0

    def test_merge_preserves_extremes(self):
        a = MetricsRegistry()
        a.histogram("h", [10.0]).observe(5.0)
        b = MetricsRegistry()
        b.histogram("h", [10.0]).observe(1.0)
        b.histogram("h", [10.0]).observe(8.0)
        a.merge(b)
        histogram = a.histogram("h", [10.0])
        assert histogram._min == 1.0 and histogram._max == 8.0
        assert histogram.count == 3

    def test_histogram_merge_from_folds_without_a_snapshot(self):
        a = Histogram("h", [1.0, 4.0])
        b = Histogram("h", [1.0, 4.0])
        a.observe(0.5)
        b.observe(2.0)
        b.observe(9.0)
        a.merge_from(b)
        assert a.count == 3
        assert a._min == 0.5 and a._max == 9.0
        reference = Histogram("h", [1.0, 4.0])
        for value in (0.5, 2.0, 9.0):
            reference.observe(value)
        assert a._counts == reference._counts
        assert a._sum == reference._sum

    def test_histogram_merge_from_rejects_bucket_mismatch(self):
        a = Histogram("h", [1.0, 4.0])
        b = Histogram("h", [1.0, 2.0])
        with pytest.raises(ValueError):
            a.merge_from(b)


class TestRenderSnapshot:
    def test_renders_all_instrument_kinds(self):
        registry = MetricsRegistry()
        registry.counter("sim.traces").inc(4)
        registry.gauge("v.last").set(2.4)
        registry.histogram("lat", [1.0]).observe(0.5)
        text = render_snapshot(registry.snapshot(), title="demo")
        assert "demo" in text
        assert "sim.traces" in text and "counter" in text
        assert "v.last" in text and "gauge" in text
        assert "lat" in text and "p99" in text

    def test_empty_snapshot(self):
        assert render_snapshot(MetricsRegistry().snapshot()) == \
            "(no metrics recorded)"


class TestObserveMany:
    """Batch observation — the fleet runner's V_min histogram path."""

    def test_equivalent_to_repeated_observe(self):
        from repro.obs.metrics import THROUGHPUT_BUCKETS
        values = [0.5, 1.9, 2.2, 2.56, 3.5, 0.0]
        one = Histogram("a", VOLTAGE_BUCKETS_V)
        for v in values:
            one.observe(v)
        many = Histogram("b", VOLTAGE_BUCKETS_V)
        many.observe_many(values)
        assert many._counts == one._counts
        assert many.count == one.count
        assert many.sum == pytest.approx(one.sum)
        assert (many._min, many._max) == (one._min, one._max)
        assert THROUGHPUT_BUCKETS[0] == 1.0   # log-scale floor

    def test_empty_batch_is_a_no_op(self):
        h = Histogram("h", VOLTAGE_BUCKETS_V)
        h.observe_many([])
        assert h.count == 0

    def test_throughput_buckets_span_fleet_rates(self):
        from repro.obs.metrics import THROUGHPUT_BUCKETS
        assert THROUGHPUT_BUCKETS[0] <= 1.0
        assert THROUGHPUT_BUCKETS[-1] >= 1e9
        assert list(THROUGHPUT_BUCKETS) == sorted(THROUGHPUT_BUCKETS)
