"""Observability wired through the stack: engine, cache, scheduler,
parallel harness, verification runner."""

import pytest

from repro import obs
from repro.core.vsafe_cache import VsafeCache
from repro.harness.parallel import parallel_map
from repro.loads.synthetic import pulse_with_compute_tail
from repro.loads.trace import CurrentTrace
from repro.power.harvester import ConstantPowerHarvester
from repro.power.system import capybara_power_system
from repro.sim.engine import PowerSystemSimulator


def _run_sim(seed=0, fast=True):
    system = capybara_power_system()
    system.rest_at(2.4)
    trace = pulse_with_compute_tail(0.020 + 0.001 * seed, 0.010).trace
    sim = PowerSystemSimulator(system, fast=fast)
    return sim.run_trace(trace, harvesting=True)


class TestStateSwitch:
    def test_disabled_by_default(self):
        assert obs.current() is None

    def test_observe_restores_previous_state(self):
        with obs.observe() as outer:
            with obs.observe() as inner:
                assert obs.current() is inner
            assert obs.current() is outer
        assert obs.current() is None

    def test_enable_disable(self):
        state = obs.enable()
        try:
            assert obs.current() is state
        finally:
            assert obs.disable() is state
        assert obs.current() is None


class TestEngineInstrumentation:
    def test_task_span_carries_voltage_captures(self):
        with obs.observe(tracer=obs.Tracer()) as state:
            result = _run_sim()
            events = state.tracer.drain()
        by_name = {e["event"]: e for e in events}
        begin = by_name["task.begin"]
        end = by_name["task.end"]
        assert begin["v_start"] == pytest.approx(2.4)
        assert end["v_min"] == pytest.approx(result.v_min)
        assert end["v_final"] == pytest.approx(result.v_final)
        assert end["browned_out"] == result.browned_out
        assert end["span"] == begin["span"]
        assert by_name["power.v_min"]["v"] == pytest.approx(result.v_min)

    def test_counters_and_voltage_histogram(self):
        with obs.observe() as state:
            _run_sim()
            _run_sim(seed=1)
        snapshot = state.metrics.snapshot()
        assert snapshot["counters"]["sim.traces"] == 2
        assert snapshot["counters"]["sim.fastpath.calls"] >= 2
        assert snapshot["histograms"]["sim.v_min_v"]["count"] == 2

    def test_results_identical_with_and_without_obs(self):
        bare = _run_sim()
        with obs.observe():
            observed = _run_sim()
        assert (observed.v_min, observed.v_final, observed.browned_out) \
            == (bare.v_min, bare.v_final, bare.browned_out)

    def test_reference_path_instrumented_too(self):
        with obs.observe() as state:
            _run_sim(fast=False)
        counters = state.metrics.snapshot()["counters"]
        assert counters["sim.traces"] == 1
        assert counters.get("sim.reference.calls", 0) >= 1


class TestCacheInstrumentation:
    def test_hit_and_miss_events(self):
        cache = VsafeCache()
        with obs.observe(tracer=obs.Tracer()) as state:
            assert cache.get("k") is None
            cache.put("k", 1.23)
            assert cache.get("k") == 1.23
            events = state.tracer.drain()
        counters = state.metrics.snapshot()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        names = [e["event"] for e in events]
        assert names == ["cache.miss", "cache.hit"]
        # Key digests are process-stable (crc32, not salted hash), so the
        # miss and the hit name the same key.
        assert events[0]["key"] == events[1]["key"]

    def test_disabled_cache_never_observes(self):
        cache = VsafeCache(enabled=False)
        with obs.observe() as state:
            cache.get("k")
        assert "cache.misses" not in state.metrics.snapshot()["counters"]


class TestProfilingHooks:
    def test_timed_noop_without_profile(self):
        with obs.observe() as state:
            with obs.timed("estimator.demo"):
                pass
        assert state.metrics.snapshot()["histograms"] == {}

    def test_timed_records_when_profiling(self):
        with obs.observe(tracer=obs.Tracer(), profile=True) as state:
            with obs.timed("estimator.demo", task="blink"):
                pass
            events = state.tracer.drain()
        histograms = state.metrics.snapshot()["histograms"]
        assert histograms["prof.estimator.demo_wall_s"]["count"] == 1
        prof = [e for e in events if e["event"] == "prof.estimator.demo"]
        assert prof and prof[0]["task"] == "blink" and "wall_s" in prof[0]

    def test_profiled_run_trace_emits_wall_time(self):
        with obs.observe(profile=True) as state:
            _run_sim()
        histograms = state.metrics.snapshot()["histograms"]
        assert histograms["prof.run_trace_wall_s"]["count"] == 1


def _observed_sim(seed):
    result = _run_sim(seed)
    return (result.v_min, result.v_final, result.browned_out)


class TestParallelMerge:
    def test_pooled_telemetry_identical_to_serial(self):
        """jobs=2 must merge worker registries and replay worker events
        into the exact telemetry a serial run records."""
        seeds = list(range(4))

        with obs.observe(tracer=obs.Tracer()) as state:
            serial_results = parallel_map(_observed_sim, seeds, jobs=1)
            serial_events = state.tracer.drain()
            serial_snapshot = state.metrics.snapshot()

        with obs.observe(tracer=obs.Tracer()) as state:
            pooled_results = parallel_map(_observed_sim, seeds, jobs=2)
            pooled_events = state.tracer.drain()
            pooled_snapshot = state.metrics.snapshot()

        assert pooled_results == serial_results
        assert pooled_snapshot == serial_snapshot
        assert pooled_events == serial_events

    def test_pool_unobserved_when_disabled(self):
        assert obs.current() is None
        results = parallel_map(_observed_sim, [0, 1], jobs=2)
        assert results == [_observed_sim(0), _observed_sim(1)]


class TestSchedulerInstrumentation:
    def _run_schedule(self):
        from repro.sched.estimators import CatnapEstimator
        from repro.sched.policy import CatnapPolicy
        from repro.sched.scheduler import IntermittentScheduler
        from repro.sched.task import Task, TaskChain

        system = capybara_power_system(
            harvester=ConstantPowerHarvester(3e-3))
        system.rest_at(system.monitor.v_high)
        chain = TaskChain(
            "easy", [Task("blink", CurrentTrace.constant(0.002, 0.010))],
            deadline=5.0)
        model = system.characterize()
        policy = CatnapPolicy.build(
            system, CatnapEstimator.measured(model), [chain], [])
        sched = IntermittentScheduler(PowerSystemSimulator(system), policy)
        return sched.run([(t, chain) for t in (1.0, 3.0)], duration=6.0)

    def test_run_summary_and_per_event_records(self):
        with obs.observe(tracer=obs.Tracer()) as state:
            result = self._run_schedule()
            events = state.tracer.drain()
        counters = state.metrics.snapshot()["counters"]
        assert counters["sched.runs"] == 1
        per_event = [e for e in events if e["event"] == "sched.event"]
        assert len(per_event) == len(result.events)
        assert all(e["chain"] == "easy" for e in per_event)
        summary = [e for e in events if e["event"] == "sched.run"]
        assert len(summary) == 1


class TestVerifyInstrumentation:
    def test_trial_and_verdict_counters(self):
        from repro.verify.runner import run_verification

        with obs.observe(tracer=obs.Tracer()) as state:
            report = run_verification(trials=2, seed=0, jobs=1,
                                      shrink=False)
            events = state.tracer.drain()
        counters = state.metrics.snapshot()["counters"]
        assert counters["verify.trials"] == 2
        verdict_total = sum(v for name, v in counters.items()
                            if name.startswith("verify.verdict."))
        verdicts = [e for e in events if e["event"] == "verify.verdict"]
        assert verdict_total == len(verdicts) > 0
        assert counters["verify.invariant_checks"] >= 2
        assert report.trials == 2
