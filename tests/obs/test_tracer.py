"""Span tracer: event emission, JSONL round-trips, worker replay."""

import json

from repro.obs.tracer import (
    Tracer,
    dumps_events,
    load_trace,
    render_trace_summary,
)


class TestEmit:
    def test_sequential_seq_numbers(self):
        tracer = Tracer()
        first = tracer.emit("a", x=1)
        second = tracer.emit("b")
        assert (first["seq"], second["seq"]) == (0, 1)
        assert first["event"] == "a" and first["x"] == 1
        assert tracer.events == [first, second]

    def test_spans_pair_begin_and_end(self):
        tracer = Tracer()
        span_id = tracer.begin("task", t_sim=0.0)
        tracer.end("task", span_id, v_min=2.1)
        begin, end = tracer.events
        assert begin["event"] == "task.begin"
        assert end["event"] == "task.end"
        assert begin["span"] == end["span"] == span_id

    def test_span_contextmanager_forwards_results(self):
        tracer = Tracer()
        with tracer.span("task", task="blink") as results:
            results["v_min"] = 2.05
        end = tracer.events[-1]
        assert end["event"] == "task.end" and end["v_min"] == 2.05

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("task"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.events[-1]["event"] == "task.end"


class TestPlumbing:
    def test_drain_hands_over_and_clears(self):
        tracer = Tracer()
        tracer.emit("a")
        events = tracer.drain()
        assert [e["event"] for e in events] == ["a"]
        assert tracer.events == []

    def test_replay_renumbers_worker_events(self):
        worker = Tracer()
        worker.emit("w.one", value=1)
        worker.emit("w.two", value=2)
        parent = Tracer()
        parent.emit("parent.first")
        parent.replay(worker.drain())
        assert [e["seq"] for e in parent.events] == [0, 1, 2]
        assert [e["event"] for e in parent.events] == \
            ["parent.first", "w.one", "w.two"]
        assert parent.events[1]["value"] == 1

    def test_replay_renumbers_span_ids(self):
        """A replayed trace must be indistinguishable from a serial one,
        which means worker-local span ids get remapped too."""
        worker = Tracer()
        with worker.span("task") as results:
            results["v_min"] = 2.0
        parent = Tracer()
        parent.emit("padding")          # shifts all seq numbers by one
        parent.replay(worker.drain())
        begin, end = parent.events[1], parent.events[2]
        assert begin["span"] == begin["seq"] == 1
        assert end["span"] == 1

    def test_counts_by_event(self):
        tracer = Tracer()
        tracer.emit("a")
        tracer.emit("a")
        tracer.emit("b")
        assert tracer.counts_by_event() == {"a": 2, "b": 1}


class TestJsonl:
    def test_file_sink_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            tracer.emit("task.begin", t_sim=0.0)
            tracer.emit("task.end", v_min=2.1)
        events = load_trace(path)
        assert [e["event"] for e in events] == ["task.begin", "task.end"]
        assert events == tracer.events  # buffering stays on with a sink

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            tracer.emit("a", nested={"k": [1, 2]})
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["nested"]["k"] == [1, 2]

    def test_dumps_events_matches_file_format(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            tracer.emit("a", x=1)
            tracer.emit("b")
        assert dumps_events(tracer.events) == path.read_text()


class TestSummary:
    def test_render_counts_by_type(self):
        tracer = Tracer()
        tracer.emit("cache.hit")
        tracer.emit("cache.hit")
        tracer.emit("cache.miss")
        text = render_trace_summary(tracer.events)
        assert "3 events" in text
        assert "cache.hit" in text and "cache.miss" in text
