"""Experiment runners: each figure's qualitative claims must reproduce.

These tests run reduced-size versions of the experiments (fewer loads,
shorter trials) so the suite stays fast; the full-size runs live in
``benchmarks/``.
"""

import pytest

from repro.harness import experiments as exp
from repro.loads.synthetic import pulse_with_compute_tail, uniform_load
from repro.power.catalog import CapacitorTechnology


class TestFig1b:
    @pytest.fixture(scope="class")
    def demo(self):
        return exp.fig1b_esr_drop()

    def test_missed_drop_is_substantial(self, demo):
        # The paper's trace shows the ESR share exceeding the energy share.
        assert demo.missed_drop > demo.energy_drop

    def test_decomposition_sums(self, demo):
        assert demo.total_drop == pytest.approx(
            demo.energy_drop + demo.missed_drop)

    def test_trace_recorded(self, demo):
        assert len(demo.times) > 100

    def test_render(self, demo):
        text = demo.render()
        assert "missed" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def survey(self):
        return exp.fig3_capacitor_survey(parts_per_technology=150)

    def test_supercap_is_smallest(self, survey):
        supercap = survey.best[CapacitorTechnology.SUPERCAPACITOR]
        for tech, info in survey.best.items():
            if tech is not CapacitorTechnology.SUPERCAPACITOR:
                assert supercap["volume_mm3"] < info["volume_mm3"]

    def test_supercap_esr_is_highest_among_smallest(self, survey):
        supercap = survey.best[CapacitorTechnology.SUPERCAPACITOR]
        ceramic = survey.best[CapacitorTechnology.CERAMIC]
        assert supercap["esr"] > ceramic["esr"]

    def test_render(self, survey):
        assert "supercapacitor" in survey.render()


class TestFig4:
    @pytest.fixture(scope="class")
    def demo(self):
        return exp.fig4_poweroff_demo()

    def test_device_browns_out(self, demo):
        assert demo.browned_out

    def test_most_energy_stranded(self, demo):
        # The paper's point: the device dies with "plenty" left.
        assert demo.fraction_remaining > 0.8

    def test_render(self, demo):
        assert "power-off" in demo.render()


class TestFig5:
    @pytest.fixture(scope="class")
    def demo(self):
        return exp.fig5_catnap_schedule()

    def test_catnap_admits_the_doomed_radio(self, demo):
        assert demo.catnap_admits

    def test_radio_fails(self, demo):
        assert not demo.radio_completed

    def test_culpeo_rejects(self, demo):
        assert not demo.culpeo_admits
        assert demo.culpeo_gate > demo.catnap_gate

    def test_render(self, demo):
        assert "radio" in demo.render()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        loads = [pulse_with_compute_tail(0.010, 0.010),
                 pulse_with_compute_tail(0.050, 0.010)]
        return exp.fig6_energy_estimator_error(loads=loads)

    def test_every_estimator_fails_on_pulse_loads(self, result):
        for estimator in ("Energy-Direct", "Catnap-Slow", "Catnap-Measured"):
            for error in result.errors_for(estimator):
                assert error > 0, f"{estimator} unexpectedly safe"

    def test_error_grows_with_current(self, result):
        for estimator in ("Energy-Direct", "Catnap-Measured"):
            errors = result.errors_for(estimator)
            assert errors[1] > errors[0]

    def test_render(self, result):
        assert "Figure 6" in result.render()


class TestTable3:
    def test_inventory_covers_synthetics_and_peripherals(self):
        inv = exp.table3_load_profiles()
        names = [r["name"] for r in inv.rows]
        assert "50mA 10ms" in names
        assert "Gesture" in names and "BLE" in names and "MNIST" in names
        assert len(inv.rows) == 21  # 18 synthetic + 3 peripherals

    def test_render(self):
        assert "Table III" in exp.table3_load_profiles().render()


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        loads = [uniform_load(0.025, 0.010),
                 pulse_with_compute_tail(0.050, 0.010),
                 uniform_load(0.050, 0.001)]
        return exp.fig10_vsafe_accuracy(loads=loads)

    def test_catnap_unsafe_on_pulse_load(self, result):
        row = next(r for r in result.rows
                   if r["shape"] == "pulse+compute")
        assert row["errors"]["Catnap-Measured"] < result.unsafe_threshold

    def test_culpeo_variants_safe_on_10ms_loads(self, result):
        for row in result.rows:
            if "1ms" in row["load"]:
                continue
            assert row["errors"]["Culpeo-ISR"] > result.unsafe_threshold
            assert row["errors"]["Culpeo-uArch"] > result.unsafe_threshold

    def test_isr_aggressive_on_1ms_pulse(self, result):
        row = next(r for r in result.rows if r["load"] == "50mA 1ms")
        assert row["errors"]["Culpeo-ISR"] < \
            row["errors"]["Culpeo-uArch"]

    def test_estimates_performant(self, result):
        for row in result.rows:
            for method in ("Culpeo-ISR", "Culpeo-uArch"):
                assert row["errors"][method] < 10.0

    def test_unsafe_count_helper(self, result):
        assert result.unsafe_count("Catnap-Measured") >= 1
        assert result.unsafe_count("Culpeo-uArch") == 0

    def test_render(self, result):
        assert "Figure 10" in result.render()


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return exp.fig11_peripherals()

    @pytest.mark.parametrize("peripheral", ["Gesture", "BLE", "MNIST"])
    def test_culpeo_safe_everywhere(self, result, peripheral):
        assert result.safe("Culpeo-PG", peripheral)
        assert result.safe("Culpeo-ISR", peripheral)

    def test_energy_v_unsafe_on_bursty_peripherals(self, result):
        assert not result.safe("Energy-V", "Gesture")
        assert not result.safe("Energy-V", "BLE")

    def test_catnap_unsafe_somewhere(self, result):
        unsafe = [p for p in ("Gesture", "BLE", "MNIST")
                  if not result.safe("Catnap-Measured", p)]
        assert unsafe

    def test_render(self, result):
        text = result.render()
        assert "POWER-OFF" in text and "ok" in text
