"""Monte-Carlo completion-probability analysis (paper §IX)."""

import pytest

from repro.harness.probabilistic import (
    CompletionEstimate,
    UncertaintyModel,
    completion_probability,
    probability_curve,
)
from repro.loads.synthetic import uniform_load

LOAD = uniform_load(0.025, 0.010).trace
TRIALS = 60  # small but stable with the fixed seed


class TestCompletionProbability:
    def test_high_start_voltage_is_certain(self):
        est = completion_probability(LOAD, 2.5, trials=TRIALS)
        assert est.completion_probability == pytest.approx(1.0)

    def test_low_start_voltage_is_hopeless(self):
        est = completion_probability(LOAD, 1.62, trials=TRIALS)
        assert est.completion_probability < 0.1

    def test_energy_only_is_optimistic_in_the_gap(self):
        # Around the true V_safe (~1.78 V nominal), ESR makes most worlds
        # fail while energy accounting says nearly all succeed.
        est = completion_probability(LOAD, 1.72, trials=TRIALS)
        assert est.optimism_gap > 0.3
        assert est.energy_only_probability > est.completion_probability

    def test_probability_monotone_in_voltage(self):
        curve = probability_curve(LOAD, [1.65, 1.85, 2.10], trials=TRIALS)
        probs = [e.completion_probability for e in curve]
        assert probs == sorted(probs)

    def test_deterministic_given_seed(self):
        a = completion_probability(LOAD, 1.8, trials=TRIALS, seed=7)
        b = completion_probability(LOAD, 1.8, trials=TRIALS, seed=7)
        assert a.true_success == b.true_success
        assert a.energy_only_success == b.energy_only_success

    def test_zero_uncertainty_is_deterministic_physics(self):
        certain = UncertaintyModel(capacitance_sigma=0.0, esr_sigma=0.0,
                                   esr_aging_max=0.0, v_start_sigma=0.0)
        est = completion_probability(LOAD, 2.2, trials=10,
                                     uncertainty=certain)
        assert est.completion_probability in (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            completion_probability(LOAD, 1.8, trials=0)
        with pytest.raises(ValueError):
            completion_probability(LOAD, 0.0)
        with pytest.raises(ValueError):
            UncertaintyModel(capacitance_sigma=-0.1)


class TestCompletionEstimate:
    def test_derived_fields(self):
        est = CompletionEstimate(v_start=1.8, trials=100,
                                 true_success=40, energy_only_success=90)
        assert est.completion_probability == pytest.approx(0.40)
        assert est.energy_only_probability == pytest.approx(0.90)
        assert est.optimism_gap == pytest.approx(0.50)
