"""CSV export of experiment results."""

import pytest

from repro.harness.export import result_to_csv, rows_to_csv, save_result_csv


class TestRowsToCsv:
    def test_simple_rows(self):
        text = rows_to_csv([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"
        assert lines[2] == "2,y"

    def test_nested_maps_flattened(self):
        text = rows_to_csv([
            {"load": "50mA", "errors": {"Catnap": -17.4, "PG": -1.1}},
        ])
        header = text.splitlines()[0]
        assert "errors.Catnap" in header
        assert "errors.PG" in header

    def test_ragged_rows_union_columns(self):
        text = rows_to_csv([{"a": 1}, {"b": 2}])
        header = text.splitlines()[0]
        assert header == "a,b"

    def test_sequences_joined(self):
        text = rows_to_csv([{"tags": ["x", "y"]}])
        assert "x;y" in text

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_missing_cells_render_empty(self):
        text = rows_to_csv([{"a": 1}, {"b": 2}])
        lines = text.strip().splitlines()
        assert lines[1] == "1,"
        assert lines[2] == ",2"

    def test_nested_and_sequence_in_one_row(self):
        text = rows_to_csv([{"m": {"x": 1}, "tags": ("p", "q"), "n": 3}])
        lines = text.strip().splitlines()
        assert lines[0] == "m.x,tags,n"
        assert lines[1] == "1,p;q,3"

    def test_column_order_follows_first_appearance(self):
        text = rows_to_csv([{"b": 1, "a": 2}, {"c": 3}])
        assert text.splitlines()[0] == "b,a,c"


class TestResultToCsv:
    def test_rows_based_result(self):
        from repro.harness.experiments import table3_load_profiles
        text = result_to_csv(table3_load_profiles())
        assert text.splitlines()[0].startswith("name,")
        assert "Gesture" in text

    def test_errors_result(self):
        from repro.harness.experiments import fig6_energy_estimator_error
        from repro.loads.synthetic import pulse_with_compute_tail
        result = fig6_energy_estimator_error(
            loads=[pulse_with_compute_tail(0.010, 0.010)])
        text = result_to_csv(result)
        assert "errors.Energy-Direct" in text.splitlines()[0]

    def test_scalar_result(self):
        from repro.harness.experiments import fig4_poweroff_demo
        text = result_to_csv(fig4_poweroff_demo())
        assert "browned_out" in text.splitlines()[0]

    def test_unexportable_raises(self):
        class Opaque:
            pass

        with pytest.raises(ValueError):
            result_to_csv(Opaque())

    def test_scalar_fallback_skips_private_and_compound_fields(self):
        class Result:
            def __init__(self):
                self.name = "demo"
                self.value = 1.5
                self.rows = []          # empty rows: fall back to scalars
                self._secret = "hidden"
                self.nested = {"not": "exported"}

        text = result_to_csv(Result())
        header = text.splitlines()[0]
        assert "name" in header and "value" in header
        assert "_secret" not in header and "nested" not in header

    def test_save(self, tmp_path):
        from repro.harness.experiments import table3_load_profiles
        path = tmp_path / "table3.csv"
        save_result_csv(table3_load_profiles(), path)
        assert path.read_text().startswith("name,")

    def test_save_accepts_str_path(self, tmp_path):
        from repro.harness.experiments import fig4_poweroff_demo
        path = str(tmp_path / "fig4.csv")
        save_result_csv(fig4_poweroff_demo(), path)
        assert "browned_out" in open(path).read()


class TestCliCsvFlag:
    def test_run_with_csv(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["run", "table3", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "table3.csv").exists()
