"""Parallel harness: process-pool fan-out must match serial bit-for-bit."""

import pytest

from repro.harness.ablations import ablation_esr_sweep
from repro.harness.parallel import default_jobs, parallel_map
from repro.harness.probabilistic import completion_probability
from repro.loads.synthetic import pulse_with_compute_tail


def _square(x):
    return x * x


class TestParallelMap:
    def test_preserves_order_serial(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_preserves_order_pooled(self):
        items = list(range(16))
        assert parallel_map(_square, items, jobs=2) == \
            [x * x for x in items]

    def test_accepts_generators(self):
        assert parallel_map(_square, (x for x in (2, 4)), jobs=2) == [4, 16]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestParallelExperiments:
    @pytest.fixture(scope="class")
    def trace(self):
        return pulse_with_compute_tail(0.025, 0.010).trace

    def test_completion_probability_matches_serial(self, trace):
        serial = completion_probability(trace, 2.2, trials=12, seed=5,
                                        jobs=1)
        pooled = completion_probability(trace, 2.2, trials=12, seed=5,
                                        jobs=2)
        assert pooled.true_success == serial.true_success
        assert pooled.energy_only_success == serial.energy_only_success

    def test_completion_probability_trials_independent(self, trace):
        """Per-trial (seed, index) streams: a prefix of a longer run is the
        shorter run — trial outcomes do not depend on how many follow."""
        short = completion_probability(trace, 2.2, trials=6, seed=5)
        longer = completion_probability(trace, 2.2, trials=12, seed=5)
        assert longer.trials == 12
        assert longer.true_success >= 0
        # Different seeds draw different worlds (sanity, not bitwise).
        other = completion_probability(trace, 2.2, trials=6, seed=6)
        assert (short.v_start, short.trials) == (other.v_start, other.trials)

    def test_esr_sweep_matches_serial(self):
        serial = ablation_esr_sweep(esr_values=(0.5, 4.0), jobs=1)
        pooled = ablation_esr_sweep(esr_values=(0.5, 4.0), jobs=2)
        assert pooled.rows == serial.rows
        assert pooled.crossover_esr == serial.crossover_esr


class TestSplitRanges:
    """Contiguous near-equal shards — the fleet runner's device sharding."""

    def test_ranges_partition_exactly(self):
        from repro.harness.parallel import split_ranges
        for n, shards in ((10, 3), (7, 7), (5, 8), (1000, 16)):
            ranges = split_ranges(n, shards)
            covered = [i for a, b in ranges for i in range(a, b)]
            assert covered == list(range(n)), (n, shards)

    def test_near_equal_sizes(self):
        from repro.harness.parallel import split_ranges
        sizes = [b - a for a, b in split_ranges(10, 3)]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)   # remainder first

    def test_edge_cases(self):
        from repro.harness.parallel import split_ranges
        assert split_ranges(0, 4) == []
        assert split_ranges(3, 1) == [(0, 3)]
        assert len(split_ranges(2, 5)) == 2           # no empty shards
        with pytest.raises(ValueError):
            split_ranges(4, 0)

    def test_deterministic(self):
        from repro.harness.parallel import split_ranges
        assert split_ranges(97, 6) == split_ranges(97, 6)
