"""The benchmark regression gate (``benchmarks/compare.py``).

The script lives outside the package (it is CI tooling, not library
code), so the tests load it by path.
"""

import copy
import importlib.util
import json
import sys
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parents[2] / "benchmarks" / "compare.py",
)
compare_mod = importlib.util.module_from_spec(_SPEC)
# Registered before exec: the module's dataclass resolves its (string)
# field annotations through sys.modules at class-creation time.
sys.modules["bench_compare"] = compare_mod
_SPEC.loader.exec_module(compare_mod)


def _payload(kernel_speedup=5.0, hit_rate=0.9, sweep_speedup=3.0,
             fleet_speedup=15.0, segalg_kernel_speedup=13.0,
             segalg_fleet_speedup=6.0, serving_qps=200_000.0,
             bank_sweep_speedup=10.0):
    return {
        "benchmark": "BENCH",
        "quick": False,
        "python": "3.12.0",
        "cpus": 2,
        "kernel": {"speedup": kernel_speedup,
                   "reference_s": 0.30, "fast_s": 0.06},
        "analysis": {"hit_rate": hit_rate, "speedup": 3.0,
                     "cold_s": 0.002, "warm_s": 0.0007},
        "sweep": {"speedup_fast": sweep_speedup,
                  "speedup_fast_parallel": 3.1,
                  "reference_s": 3.6, "fast_s": 1.1},
        "fleet": {"speedup": fleet_speedup,
                  "scalar_s": 1.8, "fleet_s": 0.1,
                  "fleet_device_steps_per_s": 1.1e7},
        "segalg_kernel": {"speedup": segalg_kernel_speedup,
                          "fastpath_s": 0.074, "segalg_s": 0.0056},
        "segalg_fleet": {"speedup": segalg_fleet_speedup,
                         "stepping_s": 1.0, "segalg_s": 0.17},
        "serving": {"qps": serving_qps, "requests": 200000,
                    "seconds": 1.0, "wire_qps": 80_000.0},
        "bank_sweep": {"speedup": bank_sweep_speedup, "devices": 512,
                       "segments": 24, "switches": 18,
                       "reference_s": 0.98, "fast_s": 0.085},
    }


class TestLookup:
    def test_dotted_paths(self):
        data = {"a": {"b": {"c": 7}}}
        assert compare_mod.lookup(data, "a.b.c") == 7
        assert compare_mod.lookup(data, "a.b") == {"c": 7}

    def test_missing_returns_none(self):
        assert compare_mod.lookup({"a": 1}, "a.b") is None
        assert compare_mod.lookup({}, "nope") is None


class TestCompare:
    def test_identical_payloads_pass(self):
        rows, ok = compare_mod.compare(_payload(), _payload())
        assert ok
        gated = {r[0]: r[4] for r in rows}
        assert gated["kernel.speedup"] == "ok"

    def test_floor_violation_fails(self):
        rows, ok = compare_mod.compare(_payload(kernel_speedup=1.5),
                                       _payload())
        assert not ok
        status = {r[0]: r[4] for r in rows}["kernel.speedup"]
        assert "floor" in status

    def test_bank_sweep_floor_gates(self):
        rows, ok = compare_mod.compare(_payload(bank_sweep_speedup=1.0),
                                       _payload())
        assert not ok
        status = {r[0]: r[4] for r in rows}["bank_sweep.speedup"]
        assert "floor" in status

    def test_relative_regression_fails(self):
        # Above every absolute floor, but far below the baseline's value.
        fresh = _payload(sweep_speedup=1.31)
        base = _payload(sweep_speedup=6.0)
        rows, ok = compare_mod.compare(fresh, base)
        assert not ok
        status = {r[0]: r[4] for r in rows}["sweep.speedup_fast"]
        assert "below baseline" in status

    def test_missing_gated_metric_fails(self):
        fresh = _payload()
        del fresh["analysis"]["hit_rate"]
        rows, ok = compare_mod.compare(fresh, _payload())
        assert not ok
        assert {r[0]: r[4] for r in rows}["analysis.hit_rate"] == "MISSING"

    def test_missing_baseline_still_gates_floors(self):
        """A gate with no baseline (first run) still enforces floors."""
        rows, ok = compare_mod.compare(_payload(), {})
        assert ok
        rows, ok = compare_mod.compare(_payload(kernel_speedup=0.5), {})
        assert not ok

    def test_reported_metrics_never_gate(self):
        fresh = _payload()
        fresh["sweep"]["speedup_fast_parallel"] = 0.01   # terrible, but info
        _, ok = compare_mod.compare(fresh, _payload())
        assert ok


class TestRender:
    def test_table_has_all_rows(self):
        rows, _ = compare_mod.compare(_payload(), _payload())
        text = compare_mod.render(rows)
        assert "kernel.speedup" in text
        assert "status" in text.splitlines()[0]
        assert len(text.splitlines()) == 2 + len(rows)


class TestMain:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_ok_exit_zero(self, tmp_path, capsys):
        fresh = self._write(tmp_path, "fresh.json", _payload())
        base = self._write(tmp_path, "base.json", _payload())
        assert compare_mod.main([fresh, "--baseline", base]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        fresh = self._write(tmp_path, "fresh.json",
                            _payload(kernel_speedup=1.0))
        base = self._write(tmp_path, "base.json", _payload())
        assert compare_mod.main([fresh, "--baseline", base]) == 1
        assert "verdict: REGRESSION" in capsys.readouterr().out

    def test_default_baseline_is_checked_in_json(self, tmp_path, capsys):
        """The checked-in BENCH.json must satisfy its own gate."""
        repo_root = Path(__file__).resolve().parents[2]
        baseline = json.loads((repo_root / "BENCH.json").read_text())
        fresh = self._write(tmp_path, "fresh.json",
                            copy.deepcopy(baseline))
        assert compare_mod.main([fresh]) == 0
        out = capsys.readouterr().out
        assert "BENCH.json" in out

    def test_default_baseline_is_bench_json(self):
        assert compare_mod.default_baseline().endswith("BENCH.json")

    def test_baseline_missing_sections_still_gates_floors(self, tmp_path,
                                                          capsys):
        """A baseline lacking whole sections (e.g. recorded before a
        metric existed) still works as --baseline: those gates fall
        back to their absolute floors."""
        stripped = _payload()
        del stripped["fleet"]
        del stripped["segalg_kernel"]
        del stripped["segalg_fleet"]
        base = self._write(tmp_path, "base.json", stripped)
        fresh = self._write(tmp_path, "fresh.json", _payload())
        assert compare_mod.main([fresh, "--baseline", base]) == 0
        assert "verdict: OK" in capsys.readouterr().out


class TestGateSpecSanity:
    def test_gated_metrics_exist_in_checked_in_baseline(self):
        repo_root = Path(__file__).resolve().parents[2]
        baseline = json.loads((repo_root / "BENCH.json").read_text())
        for spec in compare_mod.GATED_METRICS:
            value = compare_mod.lookup(baseline, spec.path)
            assert value is not None, spec.path
            if spec.floor is not None:
                assert value >= spec.floor, \
                    f"baseline itself below floor: {spec.path}"

    def test_reported_metrics_exist_in_checked_in_baseline(self):
        repo_root = Path(__file__).resolve().parents[2]
        baseline = json.loads((repo_root / "BENCH.json").read_text())
        for path in compare_mod.REPORTED_METRICS:
            assert compare_mod.lookup(baseline, path) is not None, path
