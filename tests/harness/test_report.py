"""Text-table reporting."""

import pytest

from repro.harness.report import TextTable, format_percent


class TestFormatPercent:
    def test_signs(self):
        assert format_percent(3.24) == "+3.2%"
        assert format_percent(-12.5) == "-12.5%"
        assert format_percent(0.0) == "+0.0%"

    def test_digits(self):
        assert format_percent(3.14159, digits=3) == "+3.142%"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"], title="demo")
        table.add_row(["a", 1])
        table.add_row(["long-name", 2345])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        # All data rows are padded to equal width.
        assert len(lines[3]) == len(lines[4])

    def test_no_title(self):
        table = TextTable(["x"])
        table.add_row([1])
        assert table.render().splitlines()[0].startswith("x")

    def test_row_width_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_str(self):
        table = TextTable(["a"])
        table.add_row(["x"])
        assert str(table) == table.render()

    def test_rows_render_in_insertion_order(self):
        table = TextTable(["k"])
        for key in ("c", "a", "b"):
            table.add_row([key])
        body = table.render().splitlines()[2:]
        assert [line.strip() for line in body] == ["c", "a", "b"]

    def test_non_string_cells_coerced(self):
        table = TextTable(["value"])
        table.add_row([2.5])
        table.add_row([None])
        text = table.render()
        assert "2.5" in text and "None" in text

    def test_separator_matches_column_widths(self):
        table = TextTable(["ab", "c"])
        table.add_row(["x" * 7, "y"])
        header, sep = table.render().splitlines()[:2]
        assert len(sep) == len(header)
        assert set(sep) <= {"-", " "}

    def test_empty_table_renders_header_only(self):
        table = TextTable(["a", "b"], title="t")
        lines = table.render().splitlines()
        assert len(lines) == 3              # title, header, separator
