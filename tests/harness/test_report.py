"""Text-table reporting."""

import pytest

from repro.harness.report import TextTable, format_percent


class TestFormatPercent:
    def test_signs(self):
        assert format_percent(3.24) == "+3.2%"
        assert format_percent(-12.5) == "-12.5%"
        assert format_percent(0.0) == "+0.0%"

    def test_digits(self):
        assert format_percent(3.14159, digits=3) == "+3.142%"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"], title="demo")
        table.add_row(["a", 1])
        table.add_row(["long-name", 2345])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        # All data rows are padded to equal width.
        assert len(lines[3]) == len(lines[4])

    def test_no_title(self):
        table = TextTable(["x"])
        table.add_row([1])
        assert table.render().splitlines()[0].startswith("x")

    def test_row_width_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_str(self):
        table = TextTable(["a"])
        table.add_row(["x"])
        assert str(table) == table.render()
