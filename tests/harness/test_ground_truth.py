"""Brute-force V_safe search."""

import math

import pytest

from repro.harness.ground_truth import attempt_load, find_true_vsafe
from repro.loads.synthetic import uniform_load
from repro.loads.trace import CurrentTrace


class TestAttemptLoad:
    def test_does_not_mutate_caller_system(self, system):
        v0 = system.buffer.terminal_voltage
        attempt_load(system, CurrentTrace.constant(0.050, 0.050), 2.0)
        assert system.buffer.terminal_voltage == pytest.approx(v0)

    def test_completion_depends_on_start_voltage(self, system):
        trace = uniform_load(0.050, 0.010).trace
        assert attempt_load(system, trace, 2.4).completed
        assert not attempt_load(system, trace, 1.7).completed


class TestFindTrueVsafe:
    def test_certified_run_completes(self, system):
        trace = uniform_load(0.025, 0.010).trace
        truth = find_true_vsafe(system, trace)
        assert truth.feasible
        assert attempt_load(system, trace, truth.v_safe).completed

    def test_just_below_fails_or_margins(self, system):
        trace = uniform_load(0.050, 0.010).trace
        truth = find_true_vsafe(system, trace, tolerance=0.002)
        below = attempt_load(system, trace, truth.v_safe - 0.01)
        assert not below.completed

    def test_vmin_near_threshold(self, system):
        trace = uniform_load(0.050, 0.010).trace
        truth = find_true_vsafe(system, trace, tolerance=0.002)
        # Certified run should skim the threshold, not clear it by much.
        assert 0.0 <= truth.margin_above_off(1.6) < 0.05

    def test_infeasible_load_reported(self, system):
        monster = CurrentTrace.constant(0.050, 3.0)
        truth = find_true_vsafe(system, monster)
        assert not truth.feasible
        assert math.isnan(truth.v_safe)

    def test_iterations_bounded(self, system):
        trace = uniform_load(0.010, 0.010).trace
        truth = find_true_vsafe(system, trace, max_iterations=8)
        assert truth.iterations <= 8

    def test_tolerance_validation(self, system):
        with pytest.raises(ValueError):
            find_true_vsafe(system, uniform_load(0.01, 0.01).trace,
                            tolerance=0.0)

    def test_converged_flag_distinguishes_outcomes(self, system):
        """converged separates "bracket closed" from "iterations ran out"
        from "infeasible" — three states callers previously couldn't
        tell apart."""
        trace = uniform_load(0.025, 0.010).trace
        closed = find_true_vsafe(system, trace, tolerance=0.002)
        assert closed.feasible and closed.converged

        capped = find_true_vsafe(system, trace, tolerance=1e-6,
                                 max_iterations=2)
        assert capped.feasible and not capped.converged
        # Even uncapped, the certified voltage still completes.
        assert attempt_load(system, trace, capped.v_safe).completed

        infeasible = find_true_vsafe(system, CurrentTrace.constant(0.05, 3.0))
        assert not infeasible.feasible and not infeasible.converged

    def test_tighter_tolerance_narrows_certification(self, system):
        trace = uniform_load(0.050, 0.010).trace
        coarse = find_true_vsafe(system, trace, tolerance=0.02)
        fine = find_true_vsafe(system, trace, tolerance=0.001)
        assert fine.v_safe <= coarse.v_safe + 1e-12
        assert fine.iterations > coarse.iterations

    def test_monotone_in_load(self, system):
        small = find_true_vsafe(system, uniform_load(0.010, 0.010).trace)
        big = find_true_vsafe(system, uniform_load(0.050, 0.010).trace)
        assert big.v_safe > small.v_safe
