"""Property: every registered fault degrades estimates *conservatively*.

The hardened Culpeo-R variants may respond to a fault by estimating
higher (more waiting) or by falling back to V_high — never by emitting a
V_safe below the ground truth of the plant they will actually run on.
This is the resilience analogue of ``repro.verify``'s soundness oracle:
for each registered injector we build a faulted trial exactly the way a
campaign does (environment faults reshape the plant before profiling;
measurement faults corrupt the runtime through the ``runtime_hook``
seam), then binary-search the faulted plant for the true V_safe and
require ``estimate >= truth`` within the oracle tolerance. No injector
may flip a stock estimator from SOUND to UNSOUND.
"""

import numpy as np
import pytest

from repro.harness.ground_truth import find_true_vsafe
from repro.loads.trace import CurrentTrace
from repro.power.harvester import ConstantPowerHarvester
from repro.power.system import capybara_power_system
from repro.resilience.injectors import INJECTORS
from repro.verify.runner import build_estimator

#: Ground-truth bisection tolerance plus one 12-bit LSB of measurement
#: quantization — the same slack the verify oracle grants.
TOLERANCE = 0.002 + 2.56 / 4096

#: A campaign-shaped task: a few millijoules, moderate current.
TASK = CurrentTrace([(0.010, 0.24)])

STOCK = ("culpeo-isr", "culpeo-uarch")


def faulted_trial(injector_name: str, estimator_name: str, seed: int):
    """Build (estimate, truth) for one injector exactly as a trial does."""
    rng = np.random.default_rng(seed)
    injector = INJECTORS[injector_name]()
    system = capybara_power_system(
        harvester=ConstantPowerHarvester(3e-3))
    system = injector.apply_to_system(system, rng)
    system.rest_at(system.monitor.v_high)
    model = system.characterize()

    def hook(runtime):
        injector.apply_to_runtime(runtime, rng)

    estimator = build_estimator(estimator_name, system, model,
                                runtime_hook=hook)
    estimate = estimator.estimate(system, TASK)
    truth = find_true_vsafe(system, TASK)
    return estimate, truth


@pytest.mark.parametrize("estimator_name", STOCK)
@pytest.mark.parametrize("injector_name", sorted(INJECTORS))
def test_no_injector_makes_a_stock_estimator_unsound(injector_name,
                                                     estimator_name):
    estimate, truth = faulted_trial(injector_name, estimator_name, seed=17)
    assert truth.feasible, "campaign-shaped task must stay feasible"
    assert estimate.v_safe >= truth.v_safe - TOLERANCE, (
        f"{estimator_name} under {injector_name}: estimated "
        f"{estimate.v_safe:.4f} V below true {truth.v_safe:.4f} V"
    )
    # Degradation stays bounded: the fallback ceiling is V_high.
    assert estimate.v_safe <= 2.56 + 1e-9


@pytest.mark.parametrize("injector_name", ["adc-stuck", "adc-dropout"])
def test_corrupted_captures_fall_back_to_v_high(injector_name):
    # Faults that poison whole captures must surface as the explicit
    # V_high fallback, not as a slightly-wrong measurement.
    estimate, _ = faulted_trial(injector_name, "culpeo-isr", seed=23)
    assert "fallback" in estimate.method
    assert estimate.v_safe == pytest.approx(2.56)
