"""Fault injector registry: seams, seeding, and serialization."""

import numpy as np
import pytest

from repro.power.harvester import ConstantPowerHarvester
from repro.power.system import capybara_power_system
from repro.resilience.injectors import (
    INJECTORS,
    AdcDropoutFault,
    AdcNoiseFault,
    AdcStuckFault,
    CapacitanceDegradation,
    DropoutStormHarvester,
    EsrAgingDrift,
    FaultInjector,
    HarvesterDropoutStorm,
    IsrTimerJitter,
    NoFault,
    injector_from_dict,
    register,
)
from repro.sim.adc import Adc
from repro.sim.faults import FaultyAdc

EXPECTED_NAMES = {
    "none", "harvester-dropout-storm", "esr-aging",
    "capacitance-degradation", "adc-dropout", "adc-stuck", "adc-noise",
    "isr-timer-jitter", "bank-switch-stuck", "bank-redistribution-loss",
    "bank-config-tag-mismatch",
}
BANK_NAMES = {"bank-switch-stuck", "bank-redistribution-loss",
              "bank-config-tag-mismatch"}


def make_system():
    return capybara_power_system(harvester=ConstantPowerHarvester(3e-3))


def make_bank_system():
    from repro.power.reconfigurable import (
        ReconfigurableBuffer,
        capybara_bank_set,
    )
    system = make_system()
    system.buffer = ReconfigurableBuffer(capybara_bank_set(), ("large",))
    system.datasheet_capacitance = None
    system.rest_at(system.monitor.v_high)
    system.buffer.rest_all(system.monitor.v_high)
    return system


class TestRegistry:
    def test_all_expected_injectors_registered(self):
        assert EXPECTED_NAMES <= set(INJECTORS)

    def test_duplicate_registration_rejected(self):
        class Imposter(FaultInjector):
            name = "none"

        with pytest.raises(ValueError, match="duplicate"):
            register(Imposter)
        assert INJECTORS["none"] is NoFault  # registry untouched

    def test_unnamed_injector_rejected(self):
        class Anonymous(FaultInjector):
            pass

        with pytest.raises(ValueError, match="name"):
            register(Anonymous)

    def test_unknown_name_in_dict_rejected(self):
        with pytest.raises(ValueError, match="unknown injector"):
            injector_from_dict({"injector": "solar-flare"})

    def test_every_injector_round_trips_through_dict(self):
        for name, cls in INJECTORS.items():
            original = cls()
            data = original.to_dict()
            assert data["injector"] == name
            rebuilt = injector_from_dict(data)
            assert type(rebuilt) is cls
            assert rebuilt.params() == original.params()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HarvesterDropoutStorm(mean_up=0.0)
        with pytest.raises(ValueError):
            EsrAgingDrift(factor_min=0.5)  # below 1: that's healing
        with pytest.raises(ValueError):
            CapacitanceDegradation(factor_min=0.9, factor_max=0.5)
        with pytest.raises(ValueError):
            AdcDropoutFault(dropout_rate=0.0)
        with pytest.raises(ValueError):
            AdcNoiseFault(sigma=-1.0)
        with pytest.raises(ValueError):
            IsrTimerJitter(fraction=1.0)


class TestEnvironmentFaults:
    def test_no_fault_is_identity(self):
        system = make_system()
        assert NoFault().apply_to_system(system,
                                         np.random.default_rng(0)) is system

    def test_dropout_storm_gates_the_inner_harvester(self):
        storm = DropoutStormHarvester(
            ConstantPowerHarvester(5e-3), np.random.default_rng(42),
            mean_up=6.0, mean_down=1.5, horizon=600.0)
        powers = {storm.power_at(t) for t in np.linspace(0.0, 600.0, 4001)}
        assert powers == {0.0, 5e-3}  # gated, never attenuated
        assert 0.0 in powers and 5e-3 in powers

    def test_dropout_storm_is_a_pure_function_of_seed_and_time(self):
        def build():
            return DropoutStormHarvester(
                ConstantPowerHarvester(5e-3), np.random.default_rng(7),
                mean_up=6.0, mean_down=1.5, horizon=600.0)

        a, b = build(), build()
        ts = np.linspace(0.0, 600.0, 997)
        assert [a.power_at(t) for t in ts] == [b.power_at(t) for t in ts]

    def test_esr_aging_raises_esr_and_keeps_capacitance(self):
        system = make_system()
        before_c = system.buffer.total_capacitance
        before_r = system.buffer.r_esr
        EsrAgingDrift().apply_to_system(system, np.random.default_rng(1))
        assert system.buffer.r_esr >= 2.0 * before_r
        assert system.buffer.total_capacitance == pytest.approx(before_c)

    def test_capacitance_degradation_shrinks_the_bank(self):
        system = make_system()
        before_c = system.buffer.c_main
        before_r = system.buffer.r_esr
        CapacitanceDegradation().apply_to_system(
            system, np.random.default_rng(1))
        assert system.buffer.c_main <= 0.8 * before_c
        assert system.buffer.r_esr == pytest.approx(before_r)

    def test_datasheet_knowledge_stays_stale_after_aging(self):
        # The model must keep believing the datasheet — that knowledge gap
        # is what the campaign probes.
        system = make_system()
        datasheet = system.datasheet_capacitance
        CapacitanceDegradation().apply_to_system(
            system, np.random.default_rng(2))
        assert system.datasheet_capacitance == datasheet


class TestBankFaults:
    def test_bank_injectors_are_marked_bank_only(self):
        from repro.resilience.injectors import INJECTORS
        for name in BANK_NAMES:
            assert INJECTORS[name].bank_only
        for name in EXPECTED_NAMES - BANK_NAMES:
            assert not INJECTORS[name].bank_only

    def test_default_grid_excludes_bank_faults_unless_axis_on(self):
        from repro.resilience.campaign import default_injector_dicts
        plain = {d["injector"] for d in default_injector_dicts()}
        with_bank = {d["injector"]
                     for d in default_injector_dicts(include_bank=True)}
        assert plain & BANK_NAMES == set()
        assert BANK_NAMES <= with_bank
        assert with_bank - BANK_NAMES == plain  # nothing else moved

    def test_bank_faults_are_identity_on_fixed_buffers(self):
        from repro.resilience.injectors import INJECTORS
        for name in BANK_NAMES:
            system = make_system()
            before = system.buffer
            INJECTORS[name]().apply_to_system(system,
                                              np.random.default_rng(0))
            assert system.buffer is before

    def test_stuck_switch_freezes_configuration_and_tag(self):
        from repro.resilience.injectors import BankSwitchStuck
        system = make_bank_system()
        BankSwitchStuck().apply_to_system(system, np.random.default_rng(0))
        before_v = system.buffer.terminal_voltage
        system.buffer.configure(("large", "small"))
        assert system.buffer.config_id == frozenset({"large"})
        assert system.buffer.terminal_voltage == before_v

    def test_redistribution_loss_sags_the_rail_on_each_switch(self):
        from repro.resilience.injectors import BankRedistributionLoss
        system = make_bank_system()
        BankRedistributionLoss(loss_min=0.05, loss_max=0.05) \
            .apply_to_system(system, np.random.default_rng(0))
        before = system.buffer.terminal_voltage
        system.buffer.configure(("large", "small"))
        # the switch actuated (tag is honest) but burned extra charge
        assert system.buffer.config_id == frozenset({"large", "small"})
        assert system.buffer.terminal_voltage < 0.96 * before

    def test_stale_tag_lags_one_switch_behind(self):
        from repro.resilience.injectors import BankConfigTagMismatch
        system = make_bank_system()
        BankConfigTagMismatch().apply_to_system(system,
                                                np.random.default_rng(0))
        system.buffer.configure(("large", "small"))
        assert system.buffer.config_id == frozenset({"large"})  # the lag
        system.buffer.configure(("small",))
        assert system.buffer.config_id == frozenset({"large", "small"})

    def test_faults_survive_the_harness_copy(self):
        from repro.resilience.injectors import BankSwitchStuck
        system = make_bank_system()
        BankSwitchStuck().apply_to_system(system, np.random.default_rng(0))
        duplicate = system.buffer.copy()
        duplicate.configure(("large", "small"))
        assert duplicate.config_id == frozenset({"large"})


class FakeIsrRuntime:
    """Duck-typed stand-in exposing the ISR runtime's ADC seams."""

    def __init__(self):
        self._adc = Adc(bits=12, v_ref=2.56)
        self._sampler = type("S", (), {"adc": self._adc})()


class FakeUarchRuntime:
    def __init__(self):
        self.block = type("B", (), {"adc": Adc(bits=10, v_ref=2.56)})()


class TestMeasurementFaults:
    def test_adc_dropout_swaps_both_isr_seams(self):
        runtime = FakeIsrRuntime()
        AdcDropoutFault(dropout_rate=0.25).apply_to_runtime(
            runtime, np.random.default_rng(3))
        assert isinstance(runtime._adc, FaultyAdc)
        assert runtime._sampler.adc is runtime._adc
        assert runtime._adc.bits == 12  # geometry preserved

    def test_adc_stuck_swaps_the_uarch_block_adc(self):
        runtime = FakeUarchRuntime()
        AdcStuckFault().apply_to_runtime(runtime, np.random.default_rng(4))
        adc = runtime.block.adc
        assert isinstance(adc, FaultyAdc)
        assert adc.bits == 10
        # Stuck from the first conversion: every read is the same code.
        reads = {adc.convert(v) for v in (1.7, 2.0, 2.4)}
        assert len(reads) == 1

    def test_adc_fault_schedule_derives_from_the_trial_stream(self):
        # Same trial rng state -> same fault schedule; different trial ->
        # different schedule. This is the regression for the old implicit
        # default_rng(0) that made every campaign repeat one schedule.
        def dropped(seed):
            runtime = FakeIsrRuntime()
            AdcDropoutFault(dropout_rate=0.5).apply_to_runtime(
                runtime, np.random.default_rng(seed))
            return [runtime._adc.convert(2.0) for _ in range(64)]

        assert dropped(5) == dropped(5)
        assert dropped(5) != dropped(6)

    def test_adc_noise_installs_a_seeded_noisy_converter(self):
        runtime = FakeIsrRuntime()
        AdcNoiseFault(sigma=0.01).apply_to_runtime(
            runtime, np.random.default_rng(8))
        adc = runtime._adc
        assert adc.noise_sigma == pytest.approx(0.01)
        assert len({adc.convert(2.0) for _ in range(32)}) > 1

    def test_timer_jitter_reaches_a_jitterable_sampler(self):
        calls = []

        class Sampler:
            def set_jitter(self, rng, fraction):
                calls.append((rng, fraction))

        runtime = type("R", (), {"_sampler": Sampler()})()
        IsrTimerJitter(fraction=0.2).apply_to_runtime(
            runtime, np.random.default_rng(9))
        assert len(calls) == 1
        assert calls[0][1] == pytest.approx(0.2)

    def test_timer_jitter_is_a_noop_without_the_seam(self):
        IsrTimerJitter().apply_to_runtime(FakeUarchRuntime(),
                                          np.random.default_rng(10))

    def test_unknown_runtime_shape_is_an_error(self):
        with pytest.raises(TypeError):
            AdcStuckFault().apply_to_runtime(object(),
                                             np.random.default_rng(11))
