"""Chaos campaign engine: determinism, classification, safety claims."""

import json

import pytest

from repro.intermittent.executor import ExecutionReport
from repro.intermittent.program import AtomicTask
from repro.loads.trace import CurrentTrace
from repro.resilience.campaign import (
    CHAOS_APPS,
    CHAOS_STOCK,
    AdaptiveGate,
    CampaignConfig,
    _classify,
    default_injector_dicts,
    run_campaign,
    run_chaos_trial,
)
from repro.resilience.cases import load_chaos_case

ESR_ONLY = ({"injector": "esr-aging", "params": {}},)


class TestConfig:
    def test_default_injectors_cover_the_registry(self):
        names = [d["injector"] for d in default_injector_dicts()]
        assert names == sorted(names)  # stable grid order
        assert "none" in names and "esr-aging" in names

    def test_combos_cycle_apps_estimators_injectors(self):
        cfg = CampaignConfig(seed=0, estimators=("culpeo-isr",),
                             injectors=ESR_ONLY, apps=("sense-store",))
        assert cfg.combos() == [("sense-store", "culpeo-isr", ESR_ONLY[0])]

    def test_validation(self):
        with pytest.raises(ValueError, match="trials"):
            run_campaign(0)
        with pytest.raises(ValueError, match="unknown estimator"):
            run_campaign(1, estimators=("psychic",))
        with pytest.raises(ValueError, match="unknown app"):
            run_campaign(1, apps=("doom",))
        with pytest.raises(ValueError, match="unknown injector"):
            run_campaign(1, injectors=[{"injector": "gremlins"}])


class TestAdaptiveGate:
    def gate(self):
        return AdaptiveGate({"t": 2.0}, v_high=2.56)

    def task(self):
        return AtomicTask("t", CurrentTrace.constant(0.002, 0.010))

    def test_base_level_without_derate(self):
        assert self.gate()(self.task()) == pytest.approx(2.0)

    def test_brownout_doubles_the_derate(self):
        gate, task = self.gate(), self.task()
        gate.on_brownout(task)
        assert gate(task) == pytest.approx(2.02)
        gate.on_brownout(task)
        assert gate(task) == pytest.approx(2.04)
        assert gate.backoffs == 2

    def test_derate_caps_at_v_high(self):
        gate, task = self.gate(), self.task()
        for _ in range(12):
            gate.on_brownout(task)
        assert gate(task) == pytest.approx(2.5)  # 2.0 + maximum 0.5
        gate.base["t"] = 2.4
        assert gate(task) == pytest.approx(2.56)  # clamped to V_high

    def test_success_decays_and_eventually_clears(self):
        gate, task = self.gate(), self.task()
        gate.on_brownout(task)
        for _ in range(8):
            gate.on_success(task)
        assert gate(task) == pytest.approx(2.0)
        assert "t" not in gate.derate


class TestClassification:
    def report(self, **kw):
        defaults = dict(finished=True, tasks_committed=18, elapsed=10.0)
        defaults.update(kw)
        return ExecutionReport(**defaults)

    def test_livelock_takes_precedence(self):
        report = self.report(finished=False, stuck_on="radio",
                             brownouts={"radio": 2})
        gate = AdaptiveGate({}, 2.56)
        assert _classify(report, gate, []) == "livelock"

    def test_any_brownout_is_unsafe(self):
        report = self.report(brownouts={"radio": 1})
        assert _classify(report, AdaptiveGate({}, 2.56), []) == "brown_out"

    def test_clean_finish_is_completed(self):
        assert _classify(self.report(), AdaptiveGate({}, 2.56),
                         []) == "completed"

    def test_fallback_gates_mean_degraded(self):
        assert _classify(self.report(), AdaptiveGate({}, 2.56),
                         ["sample"]) == "degraded_but_safe"

    def test_horizon_expiry_without_brownout_is_degraded(self):
        report = self.report(finished=False, tasks_committed=7)
        assert _classify(report, AdaptiveGate({}, 2.56),
                         []) == "degraded_but_safe"


class TestCampaign:
    def test_trial_is_a_pure_function_of_seed_and_index(self):
        cfg = CampaignConfig(seed=11, estimators=("culpeo-isr",),
                             injectors=ESR_ONLY, apps=("sense-store",))
        a = run_chaos_trial((0, cfg))
        b = run_chaos_trial((0, cfg))
        assert a == b

    def test_report_is_identical_serial_and_parallel(self):
        kwargs = dict(seed=5, estimators=("culpeo-isr",),
                      injectors=list(ESR_ONLY))
        serial = run_campaign(6, jobs=1, **kwargs)
        parallel = run_campaign(6, jobs=2, **kwargs)
        assert json.dumps(serial.to_dict()) == json.dumps(parallel.to_dict())

    def test_stock_estimators_survive_the_full_grid(self):
        # One trial per (app, injector) cell for the ISR variant — the
        # full stock x full grid sweep lives in the nightly campaign.
        injectors = default_injector_dicts()
        trials = len(CHAOS_APPS) * len(injectors)
        report = run_campaign(trials, seed=2, estimators=("culpeo-isr",),
                              injectors=injectors)
        assert report.ok
        assert report.counts["brown_out"] == 0
        assert report.counts["livelock"] == 0
        assert sum(report.counts.values()) == trials

    def test_energy_baseline_browns_out_under_esr_drift(self, tmp_path):
        cases_dir = tmp_path / "cases"
        report = run_campaign(3, seed=3, estimators=("energy-v",),
                              injectors=list(ESR_ONLY),
                              cases_dir=str(cases_dir))
        assert not report.ok
        assert report.counts["brown_out"] >= 1
        assert len(report.cases) == report.unsafe_count

        case = load_chaos_case(report.cases[0])
        replayed = case.replay()
        assert replayed.outcome == case.original["outcome"]
        assert replayed.unsafe

    def test_no_cases_written_for_a_clean_campaign(self, tmp_path):
        cases_dir = tmp_path / "cases"
        report = run_campaign(1, seed=2, estimators=("culpeo-isr",),
                              injectors=({"injector": "none"},),
                              cases_dir=str(cases_dir))
        assert report.ok
        assert not cases_dir.exists()

    def test_stock_default_excludes_profile_guided(self):
        # Culpeo-PG trusts the datasheet capacitance; the degradation
        # fault breaks that assumption by design, so PG is not in the
        # default chaos set (it stays selectable explicitly).
        assert "culpeo-pg" not in CHAOS_STOCK


class TestEnvAxis:
    """Chaos under randomized environments instead of constant harvest."""

    KW = dict(estimators=("culpeo-isr",), injectors=ESR_ONLY,
              apps=("sense-store",))

    def test_env_axis_campaign_runs_and_is_recorded(self):
        report = run_campaign(2, seed=0, env_axis=True, **self.KW)
        assert sum(report.counts.values()) == 2
        assert report.env_axis
        assert report.to_dict()["config"]["env_axis"] is True
        assert "env axis on" in report.render()

    def test_env_axis_is_deterministic_and_parallel_stable(self):
        import json
        a = run_campaign(3, seed=1, env_axis=True, jobs=1, **self.KW)
        b = run_campaign(3, seed=1, env_axis=True, jobs=2, **self.KW)
        assert json.dumps(a.to_dict(), sort_keys=True) \
            == json.dumps(b.to_dict(), sort_keys=True)

    def test_axis_off_is_the_default_and_unchanged(self):
        report = run_campaign(1, seed=2, **self.KW)
        assert not report.env_axis
        assert report.to_dict()["config"]["env_axis"] is False

    def test_unsafe_env_case_replays_with_its_environment(self, tmp_path):
        # Find an unsafe env-axis trial (the energy baseline under ESR
        # aging browns out readily), then replay it from the persisted
        # case: the case must regenerate the same environment.
        cases_dir = tmp_path / "cases"
        report = run_campaign(4, seed=3, env_axis=True,
                              estimators=("energy-v",),
                              injectors=ESR_ONLY,
                              apps=("sense-store",),
                              cases_dir=str(cases_dir))
        assert not report.ok
        case = load_chaos_case(report.cases[0])
        assert case.env_axis
        replayed = case.replay()
        assert replayed.outcome == case.original["outcome"]
        assert replayed.details == case.original["details"]
