"""TraceRecorder observer."""

import pytest

from repro.loads.trace import CurrentTrace
from repro.sim.engine import PowerSystemSimulator
from repro.sim.recorder import TraceRecorder


class TestTraceRecorder:
    def test_records_at_period(self, system):
        recorder = TraceRecorder(sample_period=0.010)
        recorder.start(0.0)
        engine = PowerSystemSimulator(system, observers=[recorder])
        engine.run_trace(CurrentTrace.constant(0.005, 0.100),
                         harvesting=False)
        assert len(recorder) == pytest.approx(11, abs=1)
        times, volts = recorder.as_arrays()
        assert len(times) == len(volts)
        assert (volts > 0).all()

    def test_stop_freezes(self, system):
        recorder = TraceRecorder(sample_period=0.010)
        recorder.start(0.0)
        engine = PowerSystemSimulator(system, observers=[recorder])
        engine.run_trace(CurrentTrace.constant(0.005, 0.050),
                         harvesting=False)
        n = len(recorder)
        recorder.stop()
        engine.run_trace(CurrentTrace.constant(0.005, 0.050),
                         harvesting=False)
        assert len(recorder) == n

    def test_clear(self):
        recorder = TraceRecorder()
        recorder.start(0.0)
        recorder.on_sample(0.0, 2.0)
        recorder.clear()
        assert len(recorder) == 0

    def test_no_burden(self):
        assert TraceRecorder().burden_current == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(sample_period=0.0)
