"""MCU power model."""

import pytest

from repro.sim.mcu import McuModel, msp430fr5994


class TestMsp430:
    def test_adc_power_matches_paper(self):
        mcu = msp430fr5994()
        # The paper quotes ~180 uW for the on-chip ADC.
        assert mcu.adc_power == pytest.approx(180e-6, rel=0.05)

    def test_adc_fraction_near_paper_figure(self):
        mcu = msp430fr5994()
        # Paper: ISR sampling costs ~4.2% of total MCU power.
        assert mcu.adc_fraction_of_active() == pytest.approx(0.042, abs=0.01)

    def test_sleep_far_below_active(self):
        mcu = msp430fr5994()
        assert mcu.sleep_current < mcu.active_current / 100


class TestMcuModel:
    def test_zero_active_fraction(self):
        mcu = McuModel(name="x", active_current=0.0, sleep_current=0.0,
                       adc_current=0.0)
        assert mcu.adc_fraction_of_active() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            McuModel(name="x", active_current=-1.0, sleep_current=0.0,
                     adc_current=0.0)
