"""Hardened sampling observer: rejection, median max-tracking, jitter."""

import numpy as np
import pytest

from repro.sim.adc import Adc, FilteringSamplingObserver


def make_sampler(**kwargs):
    kwargs.setdefault("plausibility_floor", 1.55)
    sampler = FilteringSamplingObserver(Adc(bits=12), 0.001, **kwargs)
    sampler.enable(now=0.0)
    return sampler


class TestPlausibilityFloor:
    def test_implausible_samples_rejected_not_folded_into_min(self):
        sampler = make_sampler()
        sampler.on_sample(0.001, 2.0)
        sampler.on_sample(0.002, 0.0)   # dropped conversion reads 0 V
        sampler.on_sample(0.003, 1.9)
        assert sampler.rejected_count == 1
        assert sampler.sample_count == 2
        assert sampler.v_min >= 1.55  # the phantom 0 V never landed

    def test_plausible_minimum_stays_raw(self):
        # Filtering minima would mask true brown-out precursors; only the
        # rebound maximum is median-filtered.
        sampler = make_sampler()
        for t, v in ((0.001, 2.0), (0.002, 1.62), (0.003, 2.0)):
            sampler.on_sample(t, v)
        assert sampler.v_min == pytest.approx(1.62, abs=1e-3)

    def test_reset_clears_rejections(self):
        sampler = make_sampler()
        sampler.on_sample(0.001, 0.0)
        sampler.reset()
        assert sampler.rejected_count == 0

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            FilteringSamplingObserver(Adc(bits=12), 0.001,
                                      plausibility_floor=-0.1)


class TestMedianMaxTracking:
    def test_single_high_spike_cannot_inflate_the_max(self):
        sampler = make_sampler()
        for i, v in enumerate([2.00, 2.01, 2.40, 2.01, 2.02]):
            sampler.on_sample(0.001 * (i + 1), v)
        # The lone 2.40 V spike is never the median of its window.
        assert sampler.v_max < 2.1

    def test_sustained_level_does_pass(self):
        sampler = make_sampler()
        for i, v in enumerate([2.00, 2.20, 2.21, 2.21, 2.22]):
            sampler.on_sample(0.001 * (i + 1), v)
        assert sampler.v_max == pytest.approx(2.21, abs=1e-2)

    def test_window_fill_underreads(self):
        # Before three samples exist, the tracked max is the *minimum* of
        # what has arrived — under-reading V_final is the safe direction.
        sampler = make_sampler()
        sampler.on_sample(0.001, 2.2)
        sampler.on_sample(0.002, 2.3)
        assert sampler.v_max <= 2.2


class TestTimerJitter:
    def test_jitter_perturbs_the_schedule_deterministically(self):
        def schedule(seed):
            sampler = make_sampler()
            sampler.set_jitter(np.random.default_rng(seed), 0.10)
            times = []
            t = 0.0005
            for _ in range(16):
                sampler.on_sample(t, 2.0)
                t = sampler.next_event_time()
                times.append(t)
            return times

        assert schedule(3) == schedule(3)
        periods = np.diff([0.0005] + schedule(3))
        assert periods.min() >= 0.0009 - 1e-9
        assert periods.max() <= 0.0011 + 1e-9
        assert periods.std() > 0.0  # actually jittered

    def test_jitter_fraction_validation(self):
        sampler = make_sampler()
        with pytest.raises(ValueError):
            sampler.set_jitter(np.random.default_rng(0), 1.0)

    def test_zero_fraction_disables_jitter(self):
        sampler = make_sampler()
        sampler.set_jitter(np.random.default_rng(0), 0.10)
        sampler.set_jitter(None, 0.0)
        sampler.on_sample(0.0005, 2.0)
        assert sampler.next_event_time() == pytest.approx(0.0015)
