"""ADC and sampling-observer models."""

import numpy as np
import pytest

from repro.sim.adc import Adc, SamplingObserver


class TestAdc:
    def test_lsb_sizes(self):
        assert Adc(bits=8, v_ref=2.56).lsb == pytest.approx(0.010)
        assert Adc(bits=12, v_ref=2.56).lsb == pytest.approx(0.000625)

    def test_convert_floors_into_bin(self):
        adc = Adc(bits=8, v_ref=2.56)
        assert adc.convert(2.005) == 200
        assert adc.code_to_voltage(200) == pytest.approx(2.000)

    def test_measure_error_bounded_by_lsb(self):
        adc = Adc(bits=8, v_ref=2.56)
        for v in np.linspace(0.0, 2.55, 50):
            measured = adc.measure(v)
            assert 0.0 <= v - measured < adc.lsb + 1e-12

    def test_clamps_out_of_range(self):
        adc = Adc(bits=8, v_ref=2.56)
        assert adc.convert(-1.0) == 0
        assert adc.convert(5.0) == 255

    def test_noise_is_seeded(self):
        a = Adc(bits=12, noise_sigma=0.002,
                rng=np.random.default_rng(1))
        b = Adc(bits=12, noise_sigma=0.002,
                rng=np.random.default_rng(1))
        assert [a.convert(2.0) for _ in range(5)] == \
            [b.convert(2.0) for _ in range(5)]

    def test_code_to_voltage_validation(self):
        adc = Adc(bits=8)
        with pytest.raises(ValueError):
            adc.code_to_voltage(256)
        with pytest.raises(ValueError):
            adc.code_to_voltage(-1)

    @pytest.mark.parametrize("kwargs", [
        dict(bits=0), dict(bits=25), dict(bits=8, v_ref=0.0),
        dict(bits=8, noise_sigma=-0.1),
    ])
    def test_construction_validation(self, kwargs):
        with pytest.raises(ValueError):
            Adc(**kwargs)


class TestSamplingObserver:
    @pytest.fixture
    def sampler(self):
        return SamplingObserver(Adc(bits=12), sample_period=0.001,
                                burden_current=72e-6)

    def test_disabled_by_default(self, sampler):
        assert not sampler.enabled
        assert sampler.next_event_time() is None
        assert sampler.burden_current == 0.0

    def test_burden_only_while_enabled(self, sampler):
        sampler.enable(0.0)
        assert sampler.burden_current == pytest.approx(72e-6)
        sampler.disable()
        assert sampler.burden_current == 0.0

    def test_tracks_min_max_first_last(self, sampler):
        sampler.enable(0.0)
        for t, v in [(0.0, 2.5), (0.001, 2.3), (0.002, 2.1), (0.003, 2.4)]:
            sampler.on_sample(t, v)
        assert sampler.v_first == pytest.approx(2.5, abs=0.001)
        assert sampler.v_last == pytest.approx(2.4, abs=0.001)
        assert sampler.v_min == pytest.approx(2.1, abs=0.001)
        assert sampler.v_max == pytest.approx(2.5, abs=0.001)
        assert sampler.sample_count == 4

    def test_schedule_advances(self, sampler):
        sampler.enable(0.0)
        sampler.on_sample(0.0, 2.0)
        assert sampler.next_event_time() == pytest.approx(0.001)

    def test_reset_clears_stats(self, sampler):
        sampler.enable(0.0)
        sampler.on_sample(0.0, 2.0)
        sampler.reset()
        assert sampler.v_min is None
        assert sampler.sample_count == 0

    def test_ignores_samples_when_disabled(self, sampler):
        sampler.on_sample(0.0, 2.0)
        assert sampler.sample_count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingObserver(Adc(bits=8), sample_period=0.0)
        with pytest.raises(ValueError):
            SamplingObserver(Adc(bits=8), sample_period=0.001,
                             burden_current=-1e-6)
