"""Fault injection: faulty ADCs and supply glitches."""

import numpy as np
import pytest

from repro.core.isr import CulpeoIsrRuntime
from repro.loads.synthetic import uniform_load
from repro.loads.trace import CurrentTrace
from repro.sim.adc import SamplingObserver
from repro.sim.engine import PowerSystemSimulator
from repro.sim.faults import FaultyAdc, SupplyGlitch


class TestFaultyAdc:
    def test_healthy_until_stuck_threshold(self):
        adc = FaultyAdc(bits=12, stuck_code=100, stuck_after=2)
        first = adc.convert(2.0)
        second = adc.convert(2.0)
        assert first == second != 100
        assert adc.convert(2.0) == 100
        assert adc.convert(1.5) == 100

    def test_dropout_is_seeded(self):
        a = FaultyAdc(bits=12, dropout_rate=0.5,
                      rng=np.random.default_rng(4))
        b = FaultyAdc(bits=12, dropout_rate=0.5,
                      rng=np.random.default_rng(4))
        assert [a.convert(2.0) for _ in range(20)] == \
            [b.convert(2.0) for _ in range(20)]

    def test_dropout_produces_zeros(self):
        adc = FaultyAdc(bits=12, dropout_rate=1.0, seed=7)
        assert adc.convert(2.5) == 0

    def test_stochastic_faults_require_a_seed(self):
        with pytest.raises(ValueError, match="rng or seed"):
            FaultyAdc(bits=12, dropout_rate=0.5)
        with pytest.raises(ValueError, match="not both"):
            FaultyAdc(bits=12, dropout_rate=0.5, seed=1,
                      rng=np.random.default_rng(1))

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultyAdc(bits=8, stuck_code=300)
        with pytest.raises(ValueError):
            FaultyAdc(bits=8, dropout_rate=1.5)
        with pytest.raises(ValueError):
            FaultyAdc(bits=8, stuck_after=-1)


class TestAdcFaultsFailSafe:
    """Garbage readings must push V_safe toward conservative, or at least
    keep it bounded — never crash the runtime."""

    def _profile_with_adc(self, system, calculator, adc):
        runtime = CulpeoIsrRuntime(PowerSystemSimulator(system), calculator)
        runtime._adc = adc
        runtime._sampler = SamplingObserver(adc, runtime.sample_period,
                                            burden_current=72e-6)
        runtime.engine.observers = [runtime._sampler]
        runtime.profile_task(uniform_load(0.025, 0.010).trace, "t",
                             harvesting=False)
        return runtime.get_vsafe("t")

    def test_dropout_reads_fail_safe_to_v_high(self, system, calculator):
        # Readings of 0 V while software runs are physically impossible;
        # the runtime discards the corrupt profile and queries fall back
        # to the safe default (wait for a full buffer).
        adc = FaultyAdc(bits=12, dropout_rate=1.0, seed=11)
        v_safe = self._profile_with_adc(system, calculator, adc)
        assert v_safe == pytest.approx(calculator.v_high)

    def test_occasional_dropout_also_discarded(self, system, calculator):
        # Even one dropped sample poisons V_min; the plausibility check
        # catches it.
        adc = FaultyAdc(bits=12, dropout_rate=0.2, seed=12)
        v_safe = self._profile_with_adc(system, calculator, adc)
        assert v_safe == pytest.approx(calculator.v_high)

    def test_stuck_adc_keeps_estimate_bounded(self, system, calculator):
        adc = FaultyAdc(bits=12, stuck_code=3500, stuck_after=1)
        v_safe = self._profile_with_adc(system, calculator, adc)
        assert calculator.v_off <= v_safe <= calculator.v_high


class TestSupplyGlitch:
    def test_glitch_kills_device_mid_run(self, system):
        glitch = SupplyGlitch(system.monitor, [0.020])
        engine = PowerSystemSimulator(system, observers=[glitch])
        result = engine.run_trace(CurrentTrace.constant(0.002, 0.100),
                                  harvesting=False)
        # The monitor went down at 20 ms; the engine stops driving load
        # (booster off) and the run reports the glitch time.
        assert glitch.fired == [pytest.approx(0.020)]
        assert not system.monitor.output_enabled
        assert result.completed  # voltage never crossed V_off...
        assert result.v_min > 1.6

    def test_multiple_glitches_fire_in_order(self, system):
        glitch = SupplyGlitch(system.monitor, [0.050, 0.010, 0.030])
        engine = PowerSystemSimulator(system, observers=[glitch])
        engine.idle(0.100, harvesting=False)
        assert glitch.fired == [pytest.approx(0.010), pytest.approx(0.030),
                                pytest.approx(0.050)]

    def test_validation(self, system):
        with pytest.raises(ValueError):
            SupplyGlitch(system.monitor, [-1.0])
