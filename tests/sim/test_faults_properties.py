"""Property tests for fault injection: conservatism and fastpath fallback.

The example-based tests in ``test_faults.py`` pin specific behaviours; the
properties here assert the *contract* over the whole input space:

* a faulty ADC may cost performance, never safety — every profiling
  outcome under injected faults lands at or above the healthy estimate,
  or at the V_high fallback, and always inside ``[V_off, V_high]``;
* supply glitches fire exactly once each, in order, regardless of how the
  schedule is permuted;
* any attached observer — including every fault injector — must disable
  the fast kernel, because the kernel cannot deliver observer callbacks;
  equivalently, a simulation with observers attached must equal the
  reference stepper bit for bit.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.isr import CulpeoIsrRuntime
from repro.loads.synthetic import uniform_load
from repro.loads.trace import CurrentTrace
from repro.sim.adc import SamplingObserver
from repro.sim.engine import PowerSystemSimulator
from repro.sim.faults import FaultyAdc, SupplyGlitch

#: Profiling load shared by the ADC properties: moderate pulse, well inside
#: the capybara fixture's budget.
_LOAD = uniform_load(0.020, 0.010).trace


def _isr_vsafe(system, calculator, adc) -> float:
    """Profile ``_LOAD`` through ``adc`` and return the stored V_safe."""
    runtime = CulpeoIsrRuntime(PowerSystemSimulator(system.copy()),
                               calculator)
    runtime._adc = adc
    runtime._sampler = SamplingObserver(adc, runtime.sample_period,
                                        burden_current=72e-6)
    runtime.engine.observers = [runtime._sampler]
    runtime.engine.system.rest_at(system.monitor.v_high)
    runtime.profile_task(_LOAD, "t", harvesting=False)
    return runtime.get_vsafe("t")


class TestFaultyAdcConservatism:
    @given(dropout=st.floats(min_value=0.05, max_value=1.0),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_dropouts_never_lower_vsafe(self, system, calculator,
                                        dropout, seed):
        """Zero-reads either get discarded (V_high fallback) or never
        happened; either way the estimate is at least the healthy one."""
        healthy = _isr_vsafe(system, calculator,
                             FaultyAdc(bits=12, dropout_rate=0.0))
        faulty = _isr_vsafe(
            system, calculator,
            FaultyAdc(bits=12, dropout_rate=dropout,
                      rng=np.random.default_rng(seed)),
        )
        assert faulty >= healthy - 1e-12
        assert calculator.v_off <= faulty <= calculator.v_high

    @given(code=st.integers(min_value=0, max_value=4095),
           after=st.integers(min_value=0, max_value=40))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_stuck_codes_keep_estimate_bounded(self, system, calculator,
                                               code, after):
        """No stuck pattern may push the estimate outside the rails."""
        v_safe = _isr_vsafe(system, calculator,
                            FaultyAdc(bits=12, stuck_code=code,
                                      stuck_after=after))
        assert calculator.v_off <= v_safe <= calculator.v_high

    @given(code=st.integers(min_value=0, max_value=4095))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_stuck_from_first_sample_falls_back(self, system, calculator,
                                                code):
        """An ADC stuck from conversion #1 can never produce a plausible
        profile: V_start, V_min and V_final all collapse to one code, so
        the observed drop is zero and the estimate must sit at or above
        the energy-only floor — still inside the rails."""
        v_safe = _isr_vsafe(system, calculator,
                            FaultyAdc(bits=12, stuck_code=code,
                                      stuck_after=0))
        assert calculator.v_off <= v_safe <= calculator.v_high


class TestSupplyGlitchProperties:
    @given(times=st.lists(st.floats(min_value=1e-4, max_value=0.08),
                          min_size=1, max_size=6, unique=True))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_glitches_fire_once_each_in_order(self, system, times):
        glitch = SupplyGlitch(system.monitor, times)
        engine = PowerSystemSimulator(system.copy(), observers=[glitch])
        engine.system.rest_at(system.monitor.v_high)
        engine.idle(0.100, harvesting=False)
        assert glitch.fired == [pytest.approx(t) for t in sorted(times)]
        assert glitch.next_event_time() is None

    def test_glitch_observer_is_burdenless(self, system):
        assert SupplyGlitch(system.monitor, [0.01]).burden_current == 0.0


class TestFaultObserversDisableFastpath:
    """The fast kernel cannot deliver observer callbacks, so *any*
    observer — fault injectors included — must force the reference path."""

    def test_bare_engine_uses_fast_kernel(self, system):
        engine = PowerSystemSimulator(system, fast=True)
        assert engine._use_fast()

    def test_supply_glitch_disables_fast_kernel(self, system):
        glitch = SupplyGlitch(system.monitor, [0.01])
        engine = PowerSystemSimulator(system, observers=[glitch], fast=True)
        assert not engine._use_fast()

    def test_faulty_sampler_disables_fast_kernel(self, system):
        adc = FaultyAdc(bits=12, dropout_rate=0.5, seed=5)
        sampler = SamplingObserver(adc, 1e-3, burden_current=72e-6)
        engine = PowerSystemSimulator(system, observers=[sampler], fast=True)
        assert not engine._use_fast()

    def test_isr_runtime_attach_disables_fast_kernel(self, system,
                                                     calculator):
        engine = PowerSystemSimulator(system, fast=True)
        assert engine._use_fast()
        CulpeoIsrRuntime(engine, calculator)
        assert not engine._use_fast()

    @given(glitch_at=st.floats(min_value=0.005, max_value=0.05))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_observed_run_equals_reference_bitwise(self, system, glitch_at):
        """fast=True with an observer attached must be *identical* to
        fast=False: the flag may not leak into the stepping arithmetic."""
        trace = CurrentTrace.constant(0.010, 0.060)
        results = []
        for fast in (True, False):
            trial = system.copy()
            trial.rest_at(system.monitor.v_high)
            glitch = SupplyGlitch(trial.monitor, [glitch_at])
            engine = PowerSystemSimulator(trial, observers=[glitch],
                                          fast=fast)
            res = engine.run_trace(trace, harvesting=False)
            results.append((res, trial.buffer.terminal_voltage,
                            engine.time, tuple(glitch.fired)))
        (fast_res, fast_v, fast_t, fast_fired), \
            (ref_res, ref_v, ref_t, ref_fired) = results
        assert fast_res == ref_res
        assert fast_v == ref_v
        assert fast_t == ref_t
        assert fast_fired == ref_fired
