"""Simulation engine: integration accuracy, brown-out semantics, observers."""

import pytest

from repro.loads.trace import CurrentTrace
from repro.power.harvester import ConstantPowerHarvester
from repro.power.system import capybara_power_system
from repro.sim.engine import PowerSystemSimulator
from repro.units import capacitor_energy


@pytest.fixture
def engine(system):
    return PowerSystemSimulator(system)


class TestRunTrace:
    def test_completes_easy_load_from_full(self, engine):
        result = engine.run_trace(CurrentTrace.constant(0.005, 0.010),
                                  harvesting=False)
        assert result.completed
        assert not result.browned_out
        assert result.v_min < result.v_start

    def test_brownout_on_heavy_load_from_low(self, system):
        system.rest_at(1.7)
        engine = PowerSystemSimulator(system)
        result = engine.run_trace(CurrentTrace.constant(0.050, 0.100),
                                  harvesting=False)
        assert result.browned_out
        assert not result.completed
        assert result.brown_out_time is not None
        assert result.v_min < 1.6

    def test_brownout_disables_monitor(self, system):
        system.rest_at(1.7)
        engine = PowerSystemSimulator(system)
        engine.run_trace(CurrentTrace.constant(0.050, 0.100),
                         harvesting=False)
        assert not system.monitor.output_enabled

    def test_run_refused_when_device_off(self, system):
        system.rest_at(1.0)
        engine = PowerSystemSimulator(system)
        result = engine.run_trace(CurrentTrace.constant(0.001, 0.001))
        assert result.browned_out
        assert "disabled" in result.notes[0]

    def test_settle_after_reveals_rebound(self, engine):
        result = engine.run_trace(CurrentTrace.constant(0.050, 0.050),
                                  harvesting=False, settle_after=1.0)
        assert result.esr_rebound > 0.05

    def test_no_settle_no_rebound_measured(self, engine):
        result = engine.run_trace(CurrentTrace.constant(0.050, 0.050),
                                  harvesting=False, settle_after=0.0)
        assert result.v_final == pytest.approx(result.v_min, abs=0.02)

    def test_energy_accounting_close_to_analytic(self, engine):
        trace = CurrentTrace.constant(0.010, 0.100)
        result = engine.run_trace(trace, harvesting=False, settle_after=2.0)
        system = engine.system
        e_stored_drop = (capacitor_energy(system.buffer.total_capacitance,
                                          result.v_start)
                         - system.buffer.stored_energy)
        # Buffer energy change should match the integrated draw within a
        # few percent (integration plus ESR loss bookkeeping).
        assert result.energy_from_buffer == pytest.approx(e_stored_drop,
                                                          rel=0.10)

    def test_time_advances_by_trace_duration(self, engine):
        trace = CurrentTrace.constant(0.005, 0.123)
        engine.run_trace(trace, harvesting=False)
        assert engine.time == pytest.approx(0.123, abs=1e-6)

    def test_stop_on_brownout_false_runs_through(self, system):
        system.rest_at(1.7)
        engine = PowerSystemSimulator(system)
        result = engine.run_trace(CurrentTrace.constant(0.050, 0.100),
                                  harvesting=False, stop_on_brownout=False)
        assert result.completed
        assert engine.time == pytest.approx(0.100, abs=1e-6)


class TestIdleAndCharge:
    def test_idle_without_harvest_holds_voltage(self, engine):
        v0 = engine.system.buffer.terminal_voltage
        engine.idle(5.0, harvesting=False)
        assert engine.system.buffer.terminal_voltage == pytest.approx(
            v0, abs=1e-3)

    def test_idle_with_harvest_charges(self, system):
        system.rest_at(2.0)
        powered = system.with_harvester(ConstantPowerHarvester(5e-3))
        engine = PowerSystemSimulator(powered)
        engine.idle(5.0, harvesting=True)
        assert powered.buffer.terminal_voltage > 2.0

    def test_charging_stops_at_v_high(self, system):
        powered = system.with_harvester(ConstantPowerHarvester(50e-3))
        powered.rest_at(2.5)
        engine = PowerSystemSimulator(powered)
        engine.idle(30.0, harvesting=True)
        assert powered.buffer.terminal_voltage == pytest.approx(2.56,
                                                                abs=0.01)

    def test_charge_until_returns_elapsed(self, system):
        powered = system.with_harvester(ConstantPowerHarvester(10e-3))
        powered.rest_at(1.6)
        engine = PowerSystemSimulator(powered)
        elapsed = engine.charge_until(2.56)
        # E = C/2 (2.56^2 - 1.6^2) ~ 95 mJ at 8 mW effective: ~12 s.
        assert elapsed == pytest.approx(12.0, rel=0.2)
        assert powered.monitor.output_enabled

    def test_charge_until_times_out_without_power(self, system):
        system.rest_at(1.6)
        engine = PowerSystemSimulator(system)
        assert engine.charge_until(2.56, max_time=2.0) is None

    def test_charge_until_validation(self, engine):
        with pytest.raises(ValueError):
            engine.charge_until(0.0)

    def test_idle_validation(self, engine):
        with pytest.raises(ValueError):
            engine.idle(-1.0)

    def test_solar_harvester_charges_only_in_daylight(self, system):
        from repro.power.harvester import SolarHarvester
        # Period 100 s: power flows for the first half-cycle only.
        sunny = system.with_harvester(SolarHarvester(peak=5e-3,
                                                     period=100.0))
        sunny.rest_at(2.0)
        engine = PowerSystemSimulator(sunny)
        engine.idle(40.0, harvesting=True)
        after_day = sunny.buffer.terminal_voltage
        assert after_day > 2.0
        engine.idle(40.0, harvesting=True)  # now in the dark half
        assert sunny.buffer.terminal_voltage == pytest.approx(after_day,
                                                              abs=2e-3)


class TestDischargeTo:
    def test_reaches_target_at_rest(self, engine):
        engine.discharge_to(2.0)
        assert engine.system.buffer.terminal_voltage == pytest.approx(2.0)
        assert engine.system.buffer.open_circuit_voltage == pytest.approx(2.0)

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            engine.discharge_to(0.0)


class _CountingObserver:
    """Samples every period; counts calls; no burden."""

    def __init__(self, period):
        self.period = period
        self.samples = []
        self._next = 0.0

    @property
    def burden_current(self):
        return 0.0

    def next_event_time(self):
        return self._next

    def on_sample(self, t, v):
        self.samples.append((t, v))
        self._next = t + self.period


class TestObservers:
    def test_observer_sampled_on_schedule(self, system):
        engine = PowerSystemSimulator(system)
        obs = _CountingObserver(0.010)
        engine.attach(obs)
        engine.run_trace(CurrentTrace.constant(0.005, 0.100),
                         harvesting=False)
        assert len(obs.samples) == pytest.approx(11, abs=1)
        times = [t for t, _ in obs.samples]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(abs(g - 0.010) < 1e-9 for g in gaps)

    def test_observer_burden_loads_system(self, system):
        class Burden(_CountingObserver):
            @property
            def burden_current(self):
                return 0.005

        baseline = system.copy()
        engine_a = PowerSystemSimulator(baseline)
        engine_a.run_trace(CurrentTrace.constant(0.001, 0.5),
                           harvesting=False, settle_after=1.0)

        loaded = system.copy()
        engine_b = PowerSystemSimulator(loaded)
        engine_b.attach(Burden(0.010))
        engine_b.run_trace(CurrentTrace.constant(0.001, 0.5),
                           harvesting=False, settle_after=1.0)
        assert loaded.buffer.terminal_voltage < \
            baseline.buffer.terminal_voltage

    def test_detach(self, system):
        engine = PowerSystemSimulator(system)
        obs = _CountingObserver(0.010)
        engine.attach(obs)
        engine.detach(obs)
        engine.run_trace(CurrentTrace.constant(0.005, 0.050),
                         harvesting=False)
        assert not obs.samples

    def test_attach_is_idempotent(self, system):
        engine = PowerSystemSimulator(system)
        obs = _CountingObserver(0.010)
        engine.attach(obs)
        engine.attach(obs)
        assert engine.observers.count(obs) == 1
