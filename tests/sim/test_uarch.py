"""The Culpeo µArch peripheral block (Table II command interface)."""

import pytest

from repro.errors import ProfileError
from repro.sim.uarch import CaptureMode, CulpeoUArchBlock


@pytest.fixture
def block():
    return CulpeoUArchBlock()


class TestCommandInterface:
    def test_disabled_block_rejects_commands(self, block):
        with pytest.raises(ProfileError):
            block.prepare(CaptureMode.MIN)
        with pytest.raises(ProfileError):
            block.sample(CaptureMode.MIN)
        with pytest.raises(ProfileError):
            block.read()

    def test_sample_requires_matching_prepare(self, block):
        block.configure(True, 0.0)
        with pytest.raises(ProfileError):
            block.sample(CaptureMode.MIN)
        block.prepare(CaptureMode.MIN)
        with pytest.raises(ProfileError):
            block.sample(CaptureMode.MAX)

    def test_prepare_preloads_register(self, block):
        block.configure(True, 0.0)
        block.prepare(CaptureMode.MIN)
        block.sample(CaptureMode.MIN)
        assert block.read() == 0xFF
        block.prepare(CaptureMode.MAX)
        block.sample(CaptureMode.MAX)
        assert block.read() == 0x00

    def test_live_read_before_sampling(self, block):
        block.configure(True, 0.0)
        block.on_sample(0.0, 2.0)
        assert block.read_voltage() == pytest.approx(2.0, abs=0.011)

    def test_configure_off_stops_sampling(self, block):
        block.configure(True, 0.0)
        # First clocked conversion lands half a clock period in.
        assert block.next_event_time() == pytest.approx(0.5e-5)
        block.configure(False)
        assert block.next_event_time() is None

    def test_convert_now_keeps_clock_phase(self, block):
        block.configure(True, 0.0)
        scheduled = block.next_event_time()
        block.convert_now(0.0, 2.0)
        assert block.next_event_time() == pytest.approx(scheduled)
        assert block.read_voltage() == pytest.approx(2.0, abs=0.011)


class TestMinMaxCapture:
    def test_min_capture(self, block):
        block.configure(True, 0.0)
        block.prepare(CaptureMode.MIN)
        block.sample(CaptureMode.MIN)
        for i, v in enumerate([2.5, 2.1, 1.9, 2.3]):
            block.on_sample(i * 1e-5, v)
        assert block.read_voltage() == pytest.approx(1.9, abs=0.011)

    def test_max_capture(self, block):
        block.configure(True, 0.0)
        block.prepare(CaptureMode.MAX)
        block.sample(CaptureMode.MAX)
        for i, v in enumerate([1.9, 2.2, 2.4, 2.0]):
            block.on_sample(i * 1e-5, v)
        assert block.read_voltage() == pytest.approx(2.4, abs=0.011)

    def test_register_is_monotone_under_mode(self, block):
        block.configure(True, 0.0)
        block.prepare(CaptureMode.MIN)
        block.sample(CaptureMode.MIN)
        block.on_sample(0.0, 1.8)
        captured = block.read()
        block.on_sample(1e-5, 2.5)   # higher sample must not overwrite
        assert block.read() == captured

    def test_clock_schedule(self, block):
        block.configure(True, 0.0)
        block.on_sample(0.0, 2.0)
        assert block.next_event_time() == pytest.approx(1e-5)

    def test_quantisation_is_8_bit(self, block):
        assert block.adc.bits == 8
        assert block.adc.lsb == pytest.approx(0.010)


class TestBurden:
    def test_negligible_burden_when_on(self, block):
        block.configure(True, 0.0)
        assert block.burden_current < 1e-6

    def test_zero_burden_when_off(self, block):
        assert block.burden_current == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CulpeoUArchBlock(clock_hz=0.0)
