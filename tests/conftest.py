"""Shared fixtures: one Capybara-class system and its derived models.

The system fixture is function-scoped (tests mutate buffer state); the
characterization is session-scoped because profiling the ESR curve costs a
few hundred simulation steps and its result is deterministic.
"""

import pytest

from repro.core.runtime import CulpeoRCalculator
from repro.power.system import capybara_power_system


@pytest.fixture
def system():
    """A fresh Capybara-class power system, buffer at rest at V_high."""
    ps = capybara_power_system()
    ps.rest_at(ps.monitor.v_high)
    return ps


@pytest.fixture(scope="session")
def model():
    """The characterized power-system model (datasheet + measured curve)."""
    return capybara_power_system().characterize()


@pytest.fixture(scope="session")
def calculator(model):
    """A Culpeo-R calculator bound to the standard model."""
    return CulpeoRCalculator(efficiency=model.efficiency,
                             v_off=model.v_off, v_high=model.v_high)
