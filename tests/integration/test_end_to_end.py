"""End-to-end integration: the paper's headline claims, in miniature.

These tests wire the full stack together — power system, simulator,
profiling runtimes, estimators, scheduler, applications — and check the
paper's central results hold end to end. Heavier full-size runs live in
``benchmarks/``.
"""

import pytest

from repro.apps.spec import AppSpec
from repro.apps.periodic_sensing import periodic_sensing_app
from repro.apps.runner import run_app
from repro.core import CulpeoPG, CulpeoRCalculator
from repro.core.isr import CulpeoIsrRuntime
from repro.core.uarch_runtime import CulpeoUArchRuntime
from repro.harness.ground_truth import attempt_load, find_true_vsafe
from repro.loads.peripherals import ble_listen, ble_radio
from repro.loads.synthetic import pulse_with_compute_tail
from repro.power.system import capybara_power_system
from repro.sched.estimators import CatnapEstimator
from repro.sim.engine import PowerSystemSimulator


@pytest.fixture(scope="module")
def stack():
    system = capybara_power_system()
    model = system.characterize()
    calc = CulpeoRCalculator(efficiency=model.efficiency,
                             v_off=model.v_off, v_high=model.v_high)
    return system, model, calc


class TestHeadlineClaim:
    """Energy-only gating fails; Culpeo gating works — same task, same
    buffer, different answers."""

    @pytest.fixture(scope="class")
    def radio_task(self):
        return ble_radio().trace.concat(ble_listen(1.0).trace)

    def test_catnap_vsafe_browns_out(self, stack, radio_task):
        system, model, _ = stack
        catnap_v = CatnapEstimator.measured(model).estimate(
            system, radio_task).v_safe
        run = attempt_load(system, radio_task, catnap_v)
        assert run.browned_out

    def test_culpeo_vsafe_completes_all_variants(self, stack, radio_task):
        system, model, calc = stack
        estimates = {"pg": CulpeoPG(model).analyze(radio_task).v_safe}
        for name, cls in (("isr", CulpeoIsrRuntime),
                          ("uarch", CulpeoUArchRuntime)):
            trial = system.copy()
            trial.rest_at(model.v_high)
            runtime = cls(PowerSystemSimulator(trial), calc)
            runtime.profile_task(radio_task, "radio", harvesting=False)
            estimates[name] = runtime.get_vsafe("radio")
        for name, v_safe in estimates.items():
            run = attempt_load(system, radio_task, v_safe)
            assert run.completed, f"{name} estimate {v_safe:.3f} failed"

    def test_culpeo_estimates_are_tight(self, stack, radio_task):
        system, model, calc = stack
        truth = find_true_vsafe(system, radio_task)
        trial = system.copy()
        trial.rest_at(model.v_high)
        runtime = CulpeoIsrRuntime(PowerSystemSimulator(trial), calc)
        runtime.profile_task(radio_task, "radio", harvesting=False)
        slack = runtime.get_vsafe("radio") - truth.v_safe
        assert slack < 0.1 * system.operating_range.span


class TestAgingRobustness:
    """Culpeo-R re-profiling tracks an aged buffer; a stale Culpeo-PG
    analysis goes unsafe (paper §IV-C)."""

    @pytest.fixture(scope="class")
    def aged_system(self):
        system = capybara_power_system()
        system.buffer = system.buffer.aged(capacitance_factor=0.8,
                                           esr_factor=2.0)
        system.rest_at(system.monitor.v_high)
        return system

    @pytest.fixture(scope="class")
    def load(self):
        return pulse_with_compute_tail(0.025, 0.010).trace

    def test_stale_pg_is_unsafe_on_aged_buffer(self, stack, aged_system,
                                               load):
        _, model, _ = stack  # characterized when the part was new
        stale = CulpeoPG(model).analyze(load).v_safe
        truth = find_true_vsafe(aged_system, load)
        assert stale < truth.v_safe

    def test_reprofiled_culpeo_r_stays_safe(self, aged_system, load, stack):
        _, model, calc = stack
        trial = aged_system.copy()
        trial.rest_at(model.v_high)
        runtime = CulpeoIsrRuntime(PowerSystemSimulator(trial), calc)
        runtime.profile_task(load, "t", harvesting=False)
        run = attempt_load(aged_system, load, runtime.get_vsafe("t"))
        assert run.completed


class TestApplicationEndToEnd:
    def test_culpeo_beats_catnap_on_ps(self):
        spec = periodic_sensing_app()
        short = AppSpec(
            name=spec.name, system_factory=spec.system_factory,
            harvest_power=spec.harvest_power, chains=spec.chains,
            background=spec.background, trial_duration=120.0,
        )
        catnap = run_app(short, "catnap", trials=1)
        culpeo = run_app(short, "culpeo", trials=1)
        assert culpeo.capture_percent("PS") == pytest.approx(100.0)
        assert catnap.capture_percent("PS") < 80.0
        assert catnap.total_brownouts() > 0
        assert culpeo.total_brownouts() == 0
