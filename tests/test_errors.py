"""Exception hierarchy."""

import pytest

from repro.errors import (
    BrownOutError,
    PowerSystemError,
    ProfileError,
    ReproError,
    ScheduleError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        PowerSystemError, ProfileError, ScheduleError, BrownOutError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ProfileError("bad ordering")


class TestBrownOutError:
    def test_carries_context(self):
        err = BrownOutError("died mid-send", time=12.5, voltage=1.58)
        assert err.time == 12.5
        assert err.voltage == 1.58
        assert "mid-send" in str(err)
