"""Ablation — µArch ADC resolution/rate design space."""

from repro.harness.ablations import ablation_adc


def test_ablation_adc(once):
    sweep = once(ablation_adc)
    print()
    print(sweep.render())
    by_key = {(r["bits"], r["clock_hz"]): r for r in sweep.rows}
    # The paper's chosen point — 8 bits at 100 kHz — is safe.
    assert by_key[(8, 100e3)]["safe"]
    # A 1 kHz clock (ISR-class) misses the 1 ms pulse minimum at 8+ bits.
    assert not by_key[(8, 1e3)]["safe"]
    # At a fast clock, fewer bits mean more conservatism, never unsafety.
    fast = sorted((r["bits"], r["error_pct"]) for r in sweep.rows
                  if r["clock_hz"] == 100e3)
    assert all(err >= prev_err or bits > prev_bits
               for (prev_bits, prev_err), (bits, err)
               in zip(fast, fast[1:]))
    assert all(r["safe"] for r in sweep.rows if r["clock_hz"] == 100e3)
