"""Ablation — re-profiling when harvestable power collapses (§V-B).

Profiles taken under strong harvest understate task demand (incoming
power back-fills the buffer during the profiled run). When the light
fades, a frozen policy launches tasks that brown out; the adaptive
scheduler notices the power change, re-profiles on the live system, and
trades those brown-outs for clean deadline waits.
"""

from repro.harness.report import TextTable
from repro.loads.trace import CurrentTrace
from repro.power.harvester import CallableHarvester
from repro.power.system import capybara_power_system
from repro.sched.adaptive import AdaptiveCulpeoScheduler
from repro.sched.task import Task, TaskChain
from repro.sim.engine import PowerSystemSimulator


def run_day(adaptive: bool) -> dict:
    harvester = CallableHarvester(
        lambda t: 10e-3 if t < 45.0 else 0.5e-3)
    system = capybara_power_system(harvester=harvester)
    system.rest_at(system.monitor.v_high)
    engine = PowerSystemSimulator(system)
    chain = TaskChain(
        "SWEEP", [Task("sweep", CurrentTrace.constant(0.004, 2.5))],
        deadline=20.0)
    sched = AdaptiveCulpeoScheduler(engine, [chain])
    stale_gate = sched.policy.gate("SWEEP", 0)
    if not adaptive:
        sched.monitor.threshold = float("inf")  # freeze the stale policy
    arrivals = [(t, chain) for t in
                [10.0] + [60.0 + 20.0 * i for i in range(9)]]
    result = sched.run(arrivals, duration=250.0)
    return dict(
        mode="adaptive" if adaptive else "frozen",
        captured=100.0 * result.capture_fraction(),
        brownouts=result.brownout_count,
        reprofiles=sched.reprofile_count,
        gate_before=stale_gate,
        gate_after=sched.policy.gate("SWEEP", 0),
    )


def test_ablation_adaptive(once):
    rows = once(lambda: [run_day(False), run_day(True)])
    table = TextTable(
        ["mode", "captured", "brown-outs", "profile passes",
         "gate before -> after (V)"],
        title="Ablation — harvest collapse at t=45 s: frozen vs adaptive "
              "Culpeo policy",
    )
    for row in rows:
        table.add_row([
            row["mode"], f"{row['captured']:.0f}%", row["brownouts"],
            row["reprofiles"],
            f"{row['gate_before']:.3f} -> {row['gate_after']:.3f}",
        ])
    print()
    print(table.render())
    frozen, adaptive = rows
    assert frozen["brownouts"] >= 1
    assert adaptive["brownouts"] == 0
    assert adaptive["reprofiles"] >= 2
    assert adaptive["gate_after"] > adaptive["gate_before"] + 0.02
