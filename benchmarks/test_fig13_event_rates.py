"""Figure 13 — event capture vs inter-arrival rate for PS and RR."""

from repro.harness.experiments import fig13_event_rates


def test_fig13_event_rates(once):
    result = once(fig13_event_rates, trials=3)
    print()
    print(result.render())
    for app in ("PS", "RR"):
        # Culpeo: near-ideal capture at achievable and slow rates...
        assert result.capture(app, "culpeo", "slow") >= 95.0
        assert result.capture(app, "culpeo", "achievable") >= 95.0
        # ...and degradation only when the rate outruns the energy income.
        assert result.capture(app, "culpeo", "too fast") <= \
            result.capture(app, "culpeo", "achievable")
        # CatNap sees little or inverted benefit from slowing down: more
        # idle time just lets background work drain the buffer further.
        assert result.capture(app, "catnap", "slow") <= \
            result.capture(app, "catnap", "too fast") + 15.0
        # And CatNap never approaches Culpeo at any rate.
        for rate in ("slow", "achievable", "too fast"):
            assert result.capture(app, "catnap", rate) < \
                result.capture(app, "culpeo", rate)
