"""Ablation — feasibility planning at scale (Figure 5's scheduler, whole
timetables).

CatNap-style feasibility planning lays out task launches and recharges
over a horizon; with energy-only gates the plan passes its own test and
dies in execution, while the Theorem 1 plan — same tasks, same rate, same
power — completes every job.
"""

from repro.harness.report import TextTable
from repro.loads.peripherals import ble_listen, ble_radio
from repro.loads.trace import CurrentTrace
from repro.power.system import capybara_power_system
from repro.sched.estimators import CatnapEstimator, standard_estimators
from repro.sched.planner import (
    FeasibilityPlanner,
    PeriodicTask,
    simulate_plan,
)

CHARGE_POWER = 2.0e-3
HORIZON = 45.0
V_START = 1.70


def run_comparison():
    system = capybara_power_system()
    model = system.characterize()
    sense_trace = CurrentTrace.constant(0.003, 0.400)
    radio_trace = ble_radio().trace.concat(ble_listen(2.0).trace)
    catnap = CatnapEstimator.measured(model)
    culpeo = standard_estimators(system, model)[2]

    def tasks(estimator):
        return [
            PeriodicTask("sense", sense_trace,
                         estimator.estimate(system, sense_trace).demand,
                         3.0),
            PeriodicTask("radio", radio_trace,
                         estimator.estimate(system, radio_trace).demand,
                         6.5),
        ]

    planner = FeasibilityPlanner(capacitance=model.capacitance,
                                 charge_power=CHARGE_POWER,
                                 v_off=model.v_off, v_high=model.v_high)
    rows = []
    for label, task_set, esr_aware in (
            ("catnap", tasks(catnap), False),
            ("culpeo", tasks(culpeo), True)):
        plan = planner.plan(task_set, HORIZON, esr_aware=esr_aware,
                            v_start=V_START)
        row = dict(policy=label, feasible=plan.feasible,
                   jobs=len(plan.jobs),
                   recharge=plan.total_recharge_time,
                   completed=0, failed="-")
        if plan.feasible:
            execution = simulate_plan(plan, task_set,
                                      capybara_power_system(),
                                      CHARGE_POWER, v_start=V_START)
            row["completed"] = execution.completed_jobs
            row["failed"] = execution.failed_job or "-"
        rows.append(row)
    return rows


def test_ablation_planner(once):
    rows = once(run_comparison)
    table = TextTable(
        ["policy", "plan feasible", "planned jobs", "recharge (s)",
         "completed", "failed on"],
        title=f"Ablation — feasibility plans over {HORIZON:.0f} s "
              f"(sense/3 s + radio/6.5 s, {CHARGE_POWER * 1e3:.0f} mW, "
              f"start {V_START} V)",
    )
    for row in rows:
        table.add_row([row["policy"], row["feasible"], row["jobs"],
                       f"{row['recharge']:.1f}", row["completed"],
                       row["failed"]])
    print()
    print(table.render())
    catnap, culpeo = rows
    # Both planners declare the schedule feasible...
    assert catnap["feasible"] and culpeo["feasible"]
    # ...but only the Theorem 1 plan survives contact with the ESR.
    assert catnap["completed"] < catnap["jobs"]
    assert catnap["failed"] == "radio"
    assert culpeo["completed"] == culpeo["jobs"]
    # The fix costs recharge time — that is the price of correctness.
    assert culpeo["recharge"] >= catnap["recharge"]
