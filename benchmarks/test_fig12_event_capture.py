"""Figure 12 — application event capture: CatNap vs Culpeo."""

from repro.harness.experiments import fig12_event_capture


def test_fig12_event_capture(once):
    result = once(fig12_event_capture, trials=3)
    print()
    print(result.render())
    series = ("Periodic Sensing", "Responsive Reporting",
              "Noise Monitor Mic", "Noise Monitor BLE")
    # Culpeo eliminates the vast majority of CatNap's missed events.
    for s in series:
        assert result.capture(s, "culpeo") >= result.capture(s, "catnap")
        assert result.capture(s, "culpeo") >= 90.0
    # CatNap loses a large share everywhere; RR is its worst case.
    for s in series:
        assert result.capture(s, "catnap") <= 75.0
    assert result.capture("Responsive Reporting", "catnap") <= 30.0
