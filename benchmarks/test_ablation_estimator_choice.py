"""Ablation — which estimator drives the scheduler matters end to end.

Figure 12 compares two points (Catnap-Measured vs Culpeo-R-ISR); this
ablation runs the Periodic Sensing application under the full estimator
line-up to show that the application-level result tracks the Figure 10
V_safe accuracy ordering: every energy-only estimator loses events to
brown-outs, both Culpeo-R variants capture everything.
"""

from repro.apps.periodic_sensing import periodic_sensing_app
from repro.apps.runner import run_app
from repro.apps.spec import AppSpec
from repro.harness.report import TextTable
from repro.sched.estimators import (
    CatnapEstimator,
    CulpeoREstimator,
    EnergyDirectEstimator,
    EnergyVEstimator,
)


def run_sweep():
    spec = periodic_sensing_app()
    spec = AppSpec(name=spec.name, system_factory=spec.system_factory,
                   harvest_power=spec.harvest_power, chains=spec.chains,
                   background=spec.background, trial_duration=180.0)
    system = spec.system_factory()
    model = system.characterize()
    from repro.core.runtime import CulpeoRCalculator
    calc = CulpeoRCalculator(efficiency=model.efficiency,
                             v_off=model.v_off, v_high=model.v_high)
    line_up = [
        ("catnap", EnergyDirectEstimator(model)),
        ("catnap", EnergyVEstimator(model)),
        ("catnap", CatnapEstimator.measured(model)),
        ("catnap", CatnapEstimator.slow(model)),
        ("culpeo", CulpeoREstimator(calc, "isr")),
        ("culpeo", CulpeoREstimator(calc, "uarch")),
    ]
    rows = []
    for kind, estimator in line_up:
        result = run_app(spec, kind, trials=2, estimator=estimator)
        rows.append(dict(estimator=estimator.name,
                         policy=kind,
                         captured=result.capture_percent("PS"),
                         brownouts=result.total_brownouts()))
    return rows


def test_ablation_estimator_choice(once):
    rows = once(run_sweep)
    table = TextTable(
        ["estimator", "policy", "events captured", "brown-outs"],
        title="Ablation — Periodic Sensing capture by estimator",
    )
    for row in rows:
        table.add_row([row["estimator"], row["policy"],
                       f"{row['captured']:.0f}%", row["brownouts"]])
    print()
    print(table.render())
    by_name = {r["estimator"]: r for r in rows}
    # Both Culpeo variants: full capture, zero brown-outs.
    for name in ("Culpeo-ISR", "Culpeo-uArch"):
        assert by_name[name]["captured"] == 100.0
        assert by_name[name]["brownouts"] == 0
    # The measurement-based energy estimators brown out and lose events.
    # (Energy-Direct can squeak by on this app: its datasheet-capacitance
    # and worst-case-efficiency conservatism plus incoming power during
    # the task happen to cover the IMU's modest ESR drop — double
    # accident, not soundness; Figure 10 shows it failing elsewhere.)
    for name in ("Energy-V", "Catnap-Measured", "Catnap-Slow"):
        assert by_name[name]["brownouts"] > 0
        assert by_name[name]["captured"] < 90.0
