"""Ablation — where energy-only reasoning breaks as ESR grows."""

from repro.harness.ablations import ablation_esr_sweep


def test_ablation_esr_sweep(once):
    sweep = once(ablation_esr_sweep)
    print()
    print(sweep.render())
    # At tiny ESR (prior work's regime) energy-only estimates are fine;
    # the crossover to unsafe arrives well below supercapacitor ESR.
    assert sweep.rows[0]["safe"]
    assert sweep.crossover_esr is not None
    assert sweep.crossover_esr <= 1.0
    # The shortfall grows monotonically with ESR and is dramatic at the
    # dense-supercap operating point.
    shortfalls = [row["shortfall"] for row in sweep.rows]
    assert shortfalls == sorted(shortfalls)
    assert shortfalls[-1] > 0.2
