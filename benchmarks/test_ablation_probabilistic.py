"""Ablation — probabilistic completion reasoning (paper §IX future work).

Quantifies the paper's closing argument: an energy-only termination
checker bounds completion probability far too optimistically, because a
task "could with all likelihood have enough energy to run and still fail".
"""

from repro.harness.probabilistic import probability_curve
from repro.harness.report import TextTable
from repro.loads.synthetic import uniform_load

GRID = (1.65, 1.70, 1.75, 1.80, 1.90, 2.10)


def test_ablation_probabilistic(once):
    load = uniform_load(0.025, 0.010).trace
    curve = once(probability_curve, load, GRID, trials=120)
    table = TextTable(
        ["V_start (V)", "P(complete) energy-only", "P(complete) true",
         "optimism gap"],
        title="Ablation — completion probability under manufacturing/"
              "aging uncertainty (25 mA / 10 ms)",
    )
    for est in curve:
        table.add_row([
            f"{est.v_start:.2f}",
            f"{est.energy_only_probability:.2f}",
            f"{est.completion_probability:.2f}",
            f"{est.optimism_gap:+.2f}",
        ])
    print()
    print(table.render())
    # True probability is monotone in start voltage and reaches certainty.
    probs = [e.completion_probability for e in curve]
    assert probs == sorted(probs)
    assert probs[-1] == 1.0
    # The energy-only bound is never below the truth, and in the
    # transition region it overstates completion by a wide margin.
    for est in curve:
        assert est.energy_only_probability >= est.completion_probability
    assert max(e.optimism_gap for e in curve) > 0.5
