"""Figure 11 — real peripherals from each method's V_safe."""

from repro.harness.experiments import fig11_peripherals

PERIPHERALS = ("Gesture", "BLE", "MNIST")


def test_fig11_peripherals(once):
    result = once(fig11_peripherals)
    print()
    print(result.render())
    # Energy-V and CatNap start the peripherals at voltages that cross
    # V_off; both Culpeo versions complete on all three.
    for peripheral in PERIPHERALS:
        assert not result.safe("Energy-V", peripheral)
        assert not result.safe("Catnap-Measured", peripheral)
        assert result.safe("Culpeo-PG", peripheral)
        assert result.safe("Culpeo-ISR", peripheral)
    # Culpeo-R's accuracy claim: its runs never leave V_min above 1.7 V
    # (tight), yet never below V_off (safe).
    for row in result.rows:
        if row["method"] == "Culpeo-ISR":
            assert 1.6 <= row["v_min"] <= 1.7
