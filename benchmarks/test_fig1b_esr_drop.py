"""Figure 1b — ESR drop and rebound decomposition on a real-style trace."""

from repro.harness.experiments import fig1b_esr_drop


def test_fig1b_esr_drop(once):
    demo = once(fig1b_esr_drop)
    print()
    print(demo.render())
    # Paper's trace: ~0.25 V of energy drop, ~0.35 V of missed ESR drop —
    # the ESR share dominates.
    assert demo.missed_drop > demo.energy_drop
    assert demo.missed_drop > 0.15
    assert demo.total_drop < 0.7
