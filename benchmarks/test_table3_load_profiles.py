"""Table III — the evaluated load profiles and their envelopes."""

from repro.harness.experiments import table3_load_profiles


def test_table3_load_profiles(once):
    inventory = once(table3_load_profiles)
    print()
    print(inventory.render())
    rows = {r["name"]: r for r in inventory.rows if r["type"] == "peripheral"}
    # Table III envelopes: gesture 25 mA / 3.5 ms, BLE 13 mA / 17 ms,
    # MNIST 5 mA / 1.1 s.
    assert rows["Gesture"]["peak"] == 0.025
    assert abs(rows["Gesture"]["pulse"] - 0.0035) < 1e-6
    assert rows["BLE"]["peak"] == 0.013
    assert abs(rows["MNIST"]["duration"] - 1.1) < 0.05
    synthetic = [r for r in inventory.rows if r["type"] != "peripheral"]
    assert len(synthetic) == 18
