#!/usr/bin/env python
"""Performance benchmark suite: fast kernel, V_safe cache, parallel harness.

Measures the three layers this repo's performance work stacks up, each
against the reference implementation *in the same process and run*:

* ``kernel``   — one long many-segment trace simulated by the reference
  stepper versus the fast kernel (identical results, see
  ``tests/properties/test_property_fastpath.py``);
* ``analysis`` — a 100-task ``analyze_tasks`` batch with a cold versus warm
  :class:`~repro.core.vsafe_cache.VsafeCache`;
* ``sweep``    — the Figure 13 event-rate sweep: reference stepper, fast
  kernel, and fast kernel + process-pool fan-out;
* ``fleet``    — a 1000-device homogeneous fleet stepped by the vectorized
  ``repro.fleet`` kernel versus the same 1000 devices run one-by-one
  through the scalar fast kernel (equivalence enforced by
  ``tests/fleet/test_equivalence.py``);
* ``segalg_kernel`` — a duty-cycled harvesting workload advanced by the
  event-driven segment-algebra core versus the scalar stepping fastpath
  (four-way equivalence enforced by ``tests/segalg/test_fourway.py``);
* ``segalg_fleet``  — a 1024-device jittered fleet on the same duty
  pattern: the vectorized segalg path versus the stepping fleet kernel.

Results land in a JSON file (``BENCH.json`` by default; see README
§Performance for how to read it). ``--quick`` shrinks the workloads for CI
smoke runs — the speedups still show, the absolute times just get noisier.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--output FILE] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.core.analysis import analyze_tasks
from repro.core.profile_guided import CulpeoPG
from repro.core.vsafe_cache import VsafeCache
from repro.harness.experiments import fig13_event_rates
from repro.harness.parallel import default_jobs
from repro.loads.synthetic import uniform_load
from repro.loads.trace import CurrentTrace
from repro.power.system import capybara_power_system
from repro.sim.engine import PowerSystemSimulator, set_default_fast


def _bench(fn, repeats: int = 1) -> float:
    """Best-of-N wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _many_segment_trace(n_segments: int, seed: int = 0) -> CurrentTrace:
    """A long bursty trace with ``n_segments`` distinct segments.

    The burst pattern is a pure function of ``seed``, so a checked-in
    bench JSON names everything needed to regenerate its workload.
    """
    segments = []
    for i in range(n_segments // 2):
        # Alternating sleep/burst; vary the burst (seed-dependently) so
        # segments never merge.
        segments.append((0.0, 2e-3))
        segments.append((0.004 + 0.0005 * ((i + seed) % 7), 1e-3))
    return CurrentTrace(segments)


def bench_kernel(n_segments: int, repeats: int, seed: int = 0) -> dict:
    """(a) single many-segment trace: reference stepper vs fast kernel."""
    trace = _many_segment_trace(n_segments, seed)

    def run(fast: bool):
        system = capybara_power_system()
        system.rest_at(2.4)
        return PowerSystemSimulator(system, fast=fast).run_trace(
            trace, harvesting=True)

    ref = run(False)
    fast = run(True)
    assert (fast.v_min, fast.v_final, fast.browned_out) == \
        (ref.v_min, ref.v_final, ref.browned_out), "kernel mismatch"

    t_ref = _bench(lambda: run(False), repeats)
    t_fast = _bench(lambda: run(True), repeats)
    return dict(
        segments=len(trace),
        duration_s=trace.duration,
        reference_s=t_ref,
        fast_s=t_fast,
        speedup=t_ref / t_fast,
    )


def bench_analysis(n_tasks: int, repeats: int) -> dict:
    """(b) analyze_tasks over ``n_tasks`` tasks: cold vs warm cache."""
    model = capybara_power_system().characterize()
    # A realistic task mix: many tasks, few distinct load shapes — the
    # redundancy the cache exists to exploit.
    shapes = [uniform_load(0.005 + 0.002 * i, 0.005 + 0.001 * i).trace
              for i in range(10)]
    tasks = {f"task{i:03d}": shapes[i % len(shapes)]
             for i in range(n_tasks)}

    def run(cache: VsafeCache):
        return analyze_tasks(CulpeoPG(model, cache=cache), tasks)

    cold_cache = VsafeCache(enabled=False)
    t_cold = _bench(lambda: run(cold_cache), repeats)

    warm_cache = VsafeCache()
    run(warm_cache)                    # populate
    t_warm = _bench(lambda: run(warm_cache), repeats)
    stats = warm_cache.stats
    return dict(
        tasks=n_tasks,
        distinct_traces=len(shapes),
        cold_s=t_cold,
        warm_s=t_warm,
        speedup=t_cold / t_warm,
        hits=stats.hits,
        misses=stats.misses,
        hit_rate=stats.hit_rate,
    )


def bench_sweep(trials: int, repeats: int, seed: int = 0) -> dict:
    """(c) fig13 event-rate sweep: reference vs fast vs fast+parallel."""
    jobs = default_jobs()

    def run(fast: bool, jobs_: int = 1):
        previous = set_default_fast(fast)
        try:
            return fig13_event_rates(trials=trials, jobs=jobs_,
                                     base_seed=2022 + seed)
        finally:
            set_default_fast(previous)

    ref = run(False)
    fast = run(True)
    assert fast.rows == ref.rows, "fast sweep diverged from reference"

    t_ref = _bench(lambda: run(False), repeats)
    t_fast = _bench(lambda: run(True), repeats)
    t_par = _bench(lambda: run(True, jobs), repeats)
    return dict(
        trials=trials,
        jobs=jobs,
        reference_s=t_ref,
        fast_s=t_fast,
        fast_parallel_s=t_par,
        speedup_fast=t_ref / t_fast,
        speedup_fast_parallel=t_ref / t_par,
    )


def bench_fleet(devices: int, repeats: int, cycles: int = 4) -> dict:
    """(d) N-device homogeneous fleet: vectorized kernel vs scalar loop.

    Homogeneous (zero jitter) so both paths integrate the same physics
    for every device and the comparison is pure kernel throughput; the
    workload is the shared sense-store program with idle recharge gaps.
    """
    from repro.apps.programs import build_program
    from repro.fleet.kernel import FleetState, advance
    from repro.fleet.spec import FleetSpec
    from repro.sim import fastpath

    spec = FleetSpec(devices=devices, seed=0, esr_jitter=0.0,
                     capacitance_jitter=0.0, harvest_jitter=0.0,
                     eta_jitter=0.0)
    params = spec.parameters()
    program = build_program("sense-store", cycles=cycles)
    segments = []
    for task in program.tasks:
        segments.extend(task.trace.segments())
        segments.append((0.0, 0.3))

    def run_fleet():
        state = FleetState(params)
        advance(state, segments, True, spec.v_off)
        return state

    def run_scalar():
        system = params.device_system(0)
        for _ in range(devices):
            system.rest_at(spec.v_high)
            sim = PowerSystemSimulator(system)
            fastpath.advance_segments(sim, segments, True, spec.v_off)
        return sim

    state = run_fleet()
    sim = run_scalar()
    drift = abs(float(state.v_term[-1]) - sim.system.buffer.terminal_voltage)
    assert drift < 1e-6, f"fleet kernel diverged from scalar: {drift}"

    t_fleet = _bench(run_fleet, repeats)
    t_scalar = _bench(run_scalar, repeats)
    steps = state.device_steps
    return dict(
        devices=devices,
        segments=len(segments),
        device_steps=steps,
        scalar_s=t_scalar,
        fleet_s=t_fleet,
        speedup=t_scalar / t_fleet,
        fleet_device_steps_per_s=steps / t_fleet,
        scalar_device_steps_per_s=steps / t_scalar,
    )


def bench_segalg_kernel(cycles: int, repeats: int) -> dict:
    """(e) duty-cycled trace: scalar stepping fastpath vs segalg core.

    The workload the event-driven core exists for: short load bursts
    separated by long idle recharge under weak harvest. The stepping
    kernel pays ~50 ms-capped idle steps through every gap; the algebra
    advances each gap in closed form. Both paths see the same plant
    (a zero-jitter Capybara-class device at 0.3 mW harvest).
    """
    from repro import segalg
    from repro.fleet.spec import FleetSpec
    from repro.sim import fastpath

    spec = FleetSpec(devices=1, seed=0, harvest_power=0.0003,
                     esr_jitter=0.0, capacitance_jitter=0.0,
                     harvest_jitter=0.0, eta_jitter=0.0)
    params = spec.parameters()
    trace = CurrentTrace([(0.015, 0.005), (0.0, 0.995)] * cycles)

    def run(use_segalg: bool):
        system = params.device_system(0)
        system.rest_at(2.2)
        sim = PowerSystemSimulator(system, fast=True)
        if use_segalg:
            assert segalg.supported(system)
            segalg.advance_segments(sim, trace, True, spec.v_off)
        else:
            fastpath.advance_segments(sim, trace.segments(), True,
                                      spec.v_off)
        return sim

    step = run(False)
    alg = run(True)
    drift = abs(step.system.buffer.terminal_voltage
                - alg.system.buffer.terminal_voltage)
    assert drift < 2e-3, f"segalg diverged from stepping: {drift}"

    t_step = _bench(lambda: run(False), repeats)
    t_alg = _bench(lambda: run(True), repeats)
    return dict(
        backend=segalg.backend(),
        segments=len(trace),
        duration_s=trace.duration,
        fastpath_s=t_step,
        segalg_s=t_alg,
        speedup=t_step / t_alg,
    )


def bench_segalg_fleet(devices: int, cycles: int, repeats: int) -> dict:
    """(f) jittered duty-cycle fleet: stepping kernel vs segalg vector path.

    Jittered (the realistic deployment), 2 s idle gaps — long enough for
    the stepping kernel's 50 ms idle cap to dominate, short enough that
    every cycle still exercises the load transient and event detection.
    The fleet segalg path is numpy-only regardless of backend.
    """
    from repro.fleet.kernel import FleetState, advance
    from repro.fleet.spec import FleetSpec
    from repro.segalg.vector import advance_fleet

    spec = FleetSpec(devices=devices, seed=7, harvest_power=0.0003)
    params = spec.parameters()
    segments = [(0.015, 0.005), (0.0, 1.995)] * cycles

    def run_stepping():
        state = FleetState(params, v_start=2.2)
        advance(state, segments, True, spec.v_off)
        return state

    def run_segalg():
        state = FleetState(params, v_start=2.2)
        advance_fleet(state, segments, True, spec.v_off)
        return state

    step = run_stepping()
    alg = run_segalg()
    import numpy as _np
    drift = float(_np.max(_np.abs(step.v_term - alg.v_term)))
    assert drift < 2e-3, f"fleet segalg diverged from stepping: {drift}"

    t_step = _bench(run_stepping, repeats)
    t_alg = _bench(run_segalg, repeats)
    return dict(
        devices=devices,
        segments=len(segments),
        stepping_s=t_step,
        segalg_s=t_alg,
        speedup=t_step / t_alg,
    )


def bench_bank_sweep(devices: int, repeats: int, cycles: int = 6) -> dict:
    """(h) reconfiguration sweep: bank fleet driver vs scalar loop.

    Every device carries the default Capybara two-bank buffer and runs a
    plan-bearing trace (three mid-trace bank switches per cycle block).
    The fleet driver splits the trace once and advances the whole batch
    through the stepping kernel between switches; the scalar loop runs
    the identical plan per device through the fastpath. The stepping
    kernel is bit-compatible with the scalar fastpath across switches
    (``tests/fleet/test_bank_fourway.py``), so the comparison is pure
    throughput.
    """
    from repro.fleet.bank import advance_fleet_plan
    from repro.fleet.kernel import FleetState
    from repro.fleet.spec import FleetBankSpec, FleetSpec
    from repro.power.reconfig import ReconfigPlan

    spec = FleetSpec(devices=devices, seed=11,
                     bank=FleetBankSpec.capybara())
    params = spec.parameters()
    block = [(0.012, 0.05), (0.0, 0.4), (0.020, 0.03), (0.0, 0.6)]
    segments = block * cycles
    block_dur = sum(d for _, d in block)
    events = []
    for i in range(cycles):
        base = i * block_dur
        events.append((base + 0.2, ("large",)))
        events.append((base + 0.55, ("large", "small")))
        events.append((base + 0.9, ("small",)))
    plan = ReconfigPlan.build(*events)
    trace = CurrentTrace(segments)

    def run_fleet():
        state, _ = advance_fleet_plan(FleetState(params), trace, plan,
                                      True, spec.v_off)
        return state

    def run_scalar():
        sims = []
        for i in range(devices):
            sim = PowerSystemSimulator(params.device_system(i))
            sim.run_trace(trace, reconfig_plan=plan)
            sims.append(sim)
        return sims

    state = run_fleet()
    sims = run_scalar()
    drift = max(abs(float(state.v_term[i])
                    - sims[i].system.buffer.terminal_voltage)
                for i in range(devices))
    assert drift < 1e-7, f"bank driver diverged from scalar: {drift}"
    assert len(set(int(c) for c in params.config_idx)) == 3, \
        "sweep must cover every start configuration"

    t_fleet = _bench(run_fleet, repeats)
    t_scalar = _bench(run_scalar, repeats)
    return dict(
        devices=devices,
        segments=len(trace),
        switches=len(plan),
        reference_s=t_scalar,
        fast_s=t_fleet,
        speedup=t_scalar / t_fleet,
    )


def bench_serving(requests: int, repeats: int, batch: int = 64,
                  distinct: int = 8) -> dict:
    """(g) serving core: validate -> coalesce -> answer, cache-warm.

    The gated metric is the **dispatcher's** data plane — the serialized
    section every query funnels through: structural validation,
    plan/cache-key resolution, estimate coalescing, session accounting,
    response shaping, in max-batch batches over a small set of hot
    (plant, task) keys. That is the path the coalescer + cache design
    exists to make fast, and it is machine-comparable: no sockets, no
    event loop. The full wire path (JSON decode and canonical re-encode,
    which the daemon runs per *connection*, off the batch path) is
    measured too and reported as ``wire_qps`` — unguarded, because it
    benchmarks CPython's json codec more than this repo.
    """
    from repro.serve.engine import AdmissionEngine
    from repro.serve.protocol import decode_line, encode_line, parse_request

    apps = (("sense-store", "sample"), ("sense-tx", "radio"),
            ("crypto-tx", "encrypt"), ("sense-store", "store"))
    systems = (None, {"dc_esr": 6.0})
    templates = []
    for i in range(distinct):
        app, task = apps[i % len(apps)]
        req = {"op": "admit", "v_bank": 1.9 + 0.08 * (i % 5),
               "app": app, "task": task, "estimator": "culpeo-pg"}
        system = systems[(i // len(apps)) % len(systems)]
        if system is not None:
            req["system"] = system
        templates.append(req)
    lines = []
    for n in range(requests):
        req = dict(templates[n % distinct])
        req["id"] = n
        if n % 2:
            req["device"] = f"dev-{n % 64}"
        lines.append(encode_line(req))
    decoded = [decode_line(line) for line in lines]

    engine = AdmissionEngine()
    engine.handle_batch([parse_request(obj) for obj in decoded[:distinct]])

    def run_core():
        for i in range(0, len(decoded), batch):
            engine.handle_batch([parse_request(obj)
                                 for obj in decoded[i:i + batch]])

    def run_wire():
        out = 0
        for i in range(0, len(lines), batch):
            chunk = [parse_request(decode_line(line))
                     for line in lines[i:i + batch]]
            for response in engine.handle_batch(chunk):
                out += len(encode_line(response))
        return out

    seconds = _bench(run_core, repeats)
    wire_seconds = _bench(run_wire, repeats)

    # The degraded data plane: same queries through an engine whose disk
    # tier has been abandoned after an ENOSPC (the crash-safety story's
    # graceful-degradation mode — memo + compute, every ok response
    # flagged ``degraded``). Reported, never gated: it exists to show
    # the failure mode costs throughput, not correctness.
    import tempfile as _tempfile

    from repro.serve.cache import PersistentVsafeCache
    from repro.serve.faultfs import FaultyDiskOps

    with _tempfile.TemporaryDirectory() as tmp:
        full_disk = FaultyDiskOps(enospc_after_bytes=0)
        cache = PersistentVsafeCache(os.path.join(tmp, "cache"),
                                     disk=full_disk)
        cache.put(("prime",), {"kind": "sim"})    # first put hits the wall
        assert cache.degraded
        degraded_engine = AdmissionEngine(cache=cache)
        degraded_engine.handle_batch(
            [parse_request(obj) for obj in decoded[:distinct]])

        def run_degraded():
            for i in range(0, len(decoded), batch):
                degraded_engine.handle_batch(
                    [parse_request(obj) for obj in decoded[i:i + batch]])

        degraded_seconds = _bench(run_degraded, repeats)
        cache.close()

    return dict(
        requests=requests,
        batch=batch,
        distinct=distinct,
        seconds=seconds,
        qps=requests / seconds,
        wire_seconds=wire_seconds,
        wire_qps=requests / wire_seconds,
        degraded_seconds=degraded_seconds,
        qps_degraded=requests / degraded_seconds,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", "--out", dest="output",
                        default="BENCH.json", metavar="FILE",
                        help="output JSON path (default BENCH.json; --out "
                             "is accepted as an alias for older scripts)")
    parser.add_argument("--quick", action="store_true",
                        help="shrunken workloads for CI smoke runs")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (burst pattern, arrival "
                             "streams); recorded in the JSON so checked-in "
                             "results are regenerable (default 0)")
    args = parser.parse_args(argv)

    if args.quick:
        n_segments, n_tasks, trials, repeats = 1000, 20, 1, 1
        fleet_devices, fleet_cycles = 1000, 2
        # The segalg kernel case keeps the full duty-cycle count even in
        # quick mode: the whole point of the algebra is that the cost is
        # per *event*, so the case is cheap regardless, while a shrunken
        # trace lets fixed per-call setup dominate the stepping side and
        # the measured ratio collapses below the compare.py floor.
        sa_cycles, sa_fleet_devices, sa_fleet_cycles = 600, 256, 25
        # The bank driver's batching advantage scales with device count;
        # below ~256 devices the per-switch split/merge overhead drags
        # the quick-mode ratio far under the full-mode baseline and the
        # compare.py relative gate flakes.
        bank_devices, bank_cycles = 320, 5
        serve_requests = 20_000
    else:
        n_segments, n_tasks, trials, repeats = 10_000, 100, 1, 2
        fleet_devices, fleet_cycles = 1000, 4
        sa_cycles, sa_fleet_devices, sa_fleet_cycles = 600, 1024, 100
        bank_devices, bank_cycles = 512, 6
        serve_requests = 200_000

    print("kernel: single many-segment trace ...", flush=True)
    kernel = bench_kernel(n_segments, repeats, args.seed)
    print(f"  reference {kernel['reference_s']:.3f}s  "
          f"fast {kernel['fast_s']:.3f}s  ({kernel['speedup']:.1f}x)")

    print("analysis: analyze_tasks cold vs warm cache ...", flush=True)
    analysis = bench_analysis(n_tasks, repeats)
    print(f"  cold {analysis['cold_s']:.3f}s  warm {analysis['warm_s']:.3f}s"
          f"  ({analysis['speedup']:.1f}x, "
          f"hit rate {analysis['hit_rate']:.0%})")

    print("sweep: fig13 event-rate sweep ...", flush=True)
    sweep = bench_sweep(trials, repeats, args.seed)
    print(f"  reference {sweep['reference_s']:.3f}s  "
          f"fast {sweep['fast_s']:.3f}s ({sweep['speedup_fast']:.1f}x)  "
          f"fast+parallel(jobs={sweep['jobs']}) "
          f"{sweep['fast_parallel_s']:.3f}s "
          f"({sweep['speedup_fast_parallel']:.1f}x)")

    print("fleet: vectorized batch kernel vs scalar loop ...", flush=True)
    fleet = bench_fleet(fleet_devices, repeats, fleet_cycles)
    print(f"  scalar {fleet['scalar_s']:.3f}s  fleet {fleet['fleet_s']:.3f}s"
          f"  ({fleet['speedup']:.1f}x, "
          f"{fleet['fleet_device_steps_per_s']:.3g} device-steps/s)")

    print("segalg-kernel: stepping fastpath vs segment algebra ...",
          flush=True)
    sa_kernel = bench_segalg_kernel(sa_cycles, repeats)
    print(f"  fastpath {sa_kernel['fastpath_s']:.3f}s  "
          f"segalg {sa_kernel['segalg_s']:.3f}s  "
          f"({sa_kernel['speedup']:.1f}x, backend "
          f"{sa_kernel['backend']})")

    print("segalg-fleet: stepping fleet kernel vs vector algebra ...",
          flush=True)
    sa_fleet = bench_segalg_fleet(sa_fleet_devices, sa_fleet_cycles, repeats)
    print(f"  stepping {sa_fleet['stepping_s']:.3f}s  "
          f"segalg {sa_fleet['segalg_s']:.3f}s  "
          f"({sa_fleet['speedup']:.1f}x)")

    print("bank-sweep: fleet reconfiguration driver vs scalar loop ...",
          flush=True)
    bank_sweep = bench_bank_sweep(bank_devices, repeats, bank_cycles)
    print(f"  scalar {bank_sweep['reference_s']:.3f}s  "
          f"fleet {bank_sweep['fast_s']:.3f}s  "
          f"({bank_sweep['speedup']:.1f}x over {bank_sweep['switches']} "
          f"switches)")

    print("serving: admission data plane, cache-warm batched queries ...",
          flush=True)
    serving = bench_serving(serve_requests, repeats)
    print(f"  {serving['requests']} requests in {serving['seconds']:.3f}s"
          f"  ({serving['qps']:.3g} queries/s core, "
          f"{serving['wire_qps']:.3g} queries/s wire, "
          f"{serving['qps_degraded']:.3g} queries/s degraded tier, "
          f"batch {serving['batch']})")

    payload = dict(
        benchmark="BENCH",
        quick=args.quick,
        seed=args.seed,
        python=platform.python_version(),
        machine=platform.machine(),
        # The CPUs actually present on the measuring machine — reported
        # directly, not via a worker-count heuristic, so the sweep's
        # parallel numbers can be judged in context.
        cpus=os.cpu_count() or 1,
        kernel=kernel,
        analysis=analysis,
        sweep=sweep,
        fleet=fleet,
        segalg_kernel=sa_kernel,
        segalg_fleet=sa_fleet,
        bank_sweep=bank_sweep,
        serving=serving,
    )
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
