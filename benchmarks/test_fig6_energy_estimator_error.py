"""Figure 6 — energy-only V_safe estimates fail on pulse+compute loads."""

from repro.harness.experiments import fig6_energy_estimator_error


def test_fig6_energy_estimator_error(once):
    result = once(fig6_energy_estimator_error)
    print()
    print(result.render())
    # Positive error = the prediction is too low and the task fails.
    # All three energy-only estimators fail on every pulse+compute load.
    for estimator in ("Energy-Direct", "Catnap-Slow", "Catnap-Measured"):
        errors = result.errors_for(estimator)
        assert all(e > 0 for e in errors), f"{estimator} was safe somewhere"
    # The failure grows with pulse current: the worst error (50 mA) must
    # dwarf the mildest (5 mA), as the paper's bars do.
    measured = result.errors_for("Catnap-Measured")
    assert max(measured) > 3 * min(measured)
    # The highest-current loads miss by tens of percent of the range.
    assert max(measured) > 15.0
