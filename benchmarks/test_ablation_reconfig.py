"""Ablation — reconfigurable energy storage with V_safe guidance.

The paper's §III workflow on Capybara-class hardware: use V_safe to pick a
buffer configuration per task. A small bank recharges fast but cannot host
heavy tasks; the configurator picks the cheapest safe option, and Culpeo's
per-configuration tagging keeps the estimates separate.
"""

from repro.core.analysis import recommend_configuration
from repro.core.isr import CulpeoIsrRuntime
from repro.core.runtime import CulpeoRCalculator
from repro.errors import ScheduleError
from repro.harness.report import TextTable
from repro.loads.peripherals import ble_listen, ble_radio, gesture_recognition
from repro.loads.trace import CurrentTrace
from repro.power.reconfigurable import ReconfigurableBuffer, capybara_bank_set
from repro.power.system import capybara_power_system
from repro.sim.engine import PowerSystemSimulator

CONFIGS = (("small",), ("large",), ("small", "large"))

TASKS = {
    "gesture": gesture_recognition().trace,
    "radio+listen": ble_radio().trace.concat(ble_listen(6.0).trace),
    "bulk": CurrentTrace.constant(0.020, 1.2),
}


def run_sweep():
    system = capybara_power_system()
    system.buffer = ReconfigurableBuffer(capybara_bank_set(),
                                         initial_config=("small", "large"))
    system.datasheet_capacitance = None
    rows = []
    for name, trace in TASKS.items():
        try:
            rec = recommend_configuration(system, trace, CONFIGS)
            rows.append(dict(task=name,
                             config="+".join(sorted(rec.config)),
                             capacitance=rec.capacitance,
                             v_safe=rec.v_safe))
        except ScheduleError:
            rows.append(dict(task=name, config="NONE", capacitance=0.0,
                             v_safe=float("nan")))
    return rows


def test_ablation_reconfig(once):
    rows = once(run_sweep)
    table = TextTable(
        ["task", "recommended config", "capacitance (mF)", "V_safe (V)"],
        title="Ablation — V_safe-guided buffer configuration",
    )
    for row in rows:
        table.add_row([row["task"], row["config"],
                       f"{row['capacitance'] * 1e3:.3g}",
                       f"{row['v_safe']:.3f}"])
    print()
    print(table.render())
    by_task = {r["task"]: r for r in rows}
    # The light gesture burst fits on the small, fast-recharging bank.
    assert by_task["gesture"]["config"] == "small"
    # The heavier tasks need more capacitance.
    assert by_task["radio+listen"]["capacitance"] > \
        by_task["gesture"]["capacitance"]
    assert by_task["bulk"]["capacitance"] > \
        by_task["gesture"]["capacitance"]


def test_per_config_tagging(once):
    """Culpeo-R keeps separate V_safe entries per buffer configuration."""

    def profile_both():
        system = capybara_power_system()
        system.buffer = ReconfigurableBuffer(capybara_bank_set(),
                                             initial_config=("small",))
        system.rest_at(system.monitor.v_high)
        model = system.characterize()
        calc = CulpeoRCalculator(efficiency=model.efficiency,
                                 v_off=model.v_off, v_high=model.v_high)
        engine = PowerSystemSimulator(system)
        runtime = CulpeoIsrRuntime(engine, calc)
        trace = gesture_recognition().trace
        results = {}
        for config in (("small",), ("small", "large")):
            config_id = system.buffer.configure(config)
            system.rest_at(system.monitor.v_high)
            runtime.set_buffer_config(config_id)
            runtime.profile_task(trace, "gesture", harvesting=False)
            results[config_id] = runtime.get_vsafe("gesture")
        return runtime, results

    runtime, results = once(profile_both)
    small = frozenset({"small"})
    both = frozenset({"small", "large"})
    print()
    for config_id, v_safe in results.items():
        print(f"  config {sorted(config_id)}: V_safe = {v_safe:.3f} V")
    # The small bank's higher ESR demands a higher V_safe.
    assert results[small] > results[both]
    # Queries are scoped: asking under the wrong tag returns the default.
    runtime.set_buffer_config(small)
    assert runtime.get_vsafe("gesture") == results[small]
