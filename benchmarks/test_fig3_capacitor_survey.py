"""Figure 3 — volume vs ESR for 45 mF banks across capacitor technologies."""

from repro.harness.experiments import fig3_capacitor_survey
from repro.power.catalog import CapacitorTechnology


def test_fig3_capacitor_survey(once):
    survey = once(fig3_capacitor_survey, parts_per_technology=500)
    print()
    print(survey.render())
    best = survey.best
    supercap = best[CapacitorTechnology.SUPERCAPACITOR]
    # Supercaps enable the smallest design point by orders of magnitude...
    for tech, info in best.items():
        if tech is not CapacitorTechnology.SUPERCAPACITOR:
            assert supercap["volume_mm3"] < 0.1 * info["volume_mm3"]
    # ...with few parts and nanoamp leakage, but the highest ESR.
    assert supercap["part_count"] <= 10
    assert supercap["leakage"] < 1e-6
    assert supercap["esr"] > 1.0
    assert best[CapacitorTechnology.CERAMIC]["part_count"] > 500
    assert best[CapacitorTechnology.TANTALUM]["leakage"] > 1e-3
