"""Ablation — decoupling capacitance does not fix sustained ESR drop."""

from repro.harness.ablations import ablation_decoupling


def test_ablation_decoupling(once):
    sweep = once(ablation_decoupling)
    print()
    print(sweep.render())
    drops = [row["drop"] for row in sweep.rows]
    # More decoupling helps monotonically...
    assert drops == sorted(drops, reverse=True)
    # ...but even an abnormally large 6.4 mF leaves a drop near 20% of the
    # operating range under a 50 mA / 100 ms load (paper §II-D).
    final = sweep.rows[-1]
    assert final["c_dec"] == 6.4e-3
    assert final["drop"] / sweep.operating_span > 0.15
