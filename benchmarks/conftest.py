"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures through
the runners in ``repro.harness.experiments`` / ``repro.harness.ablations``,
printing the rows the paper reports and asserting the qualitative shape
(who wins, by roughly what factor, where the crossovers sit).

The experiments are deterministic end-to-end simulations, so one round is
a measurement, not noise: ``once()`` wraps ``benchmark.pedantic`` with a
single round to keep the suite's total wall time sane.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
