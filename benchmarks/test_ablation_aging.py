"""Ablation — buffer aging: stale Culpeo-PG vs re-profiled Culpeo-R."""

from repro.harness.ablations import ablation_aging


def test_ablation_aging(once):
    sweep = once(ablation_aging)
    print()
    print(sweep.render())
    fresh, *aged = sweep.rows
    # The compile-time analysis is fine on the part it was profiled on...
    assert fresh["pg_safe"]
    # ...but goes unsafe as capacitance fades and ESR doubles (§IV-C),
    # while re-profiled Culpeo-R stays safe at every stage.
    assert not aged[-1]["pg_safe"]
    for row in sweep.rows:
        assert row["r_safe"]
    # The requirement itself grows monotonically with age.
    truths = [row["true"] for row in sweep.rows]
    assert truths == sorted(truths)
