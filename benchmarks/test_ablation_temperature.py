"""Ablation — temperature: room-temperature profiles fail in the cold.

Supercap ESR roughly triples between 25 C and -20 C. A Culpeo-PG analysis
(or any V_safe set) computed on the bench at room temperature silently
loses its guarantee outdoors in winter; re-profiling on the cold device
restores it — the same staleness story as aging, on a faster clock.
"""

from repro.core.isr import CulpeoIsrRuntime
from repro.core.profile_guided import CulpeoPG
from repro.core.runtime import CulpeoRCalculator
from repro.harness.ground_truth import attempt_load, find_true_vsafe
from repro.harness.report import TextTable
from repro.loads.synthetic import pulse_with_compute_tail
from repro.power.system import capybara_power_system
from repro.sim.engine import PowerSystemSimulator

TEMPERATURES = (25.0, 5.0, -10.0, -20.0)


def run_sweep():
    trace = pulse_with_compute_tail(0.025, 0.010).trace
    warm = capybara_power_system()
    model = warm.characterize()  # bench characterization at 25 C
    stale_pg = CulpeoPG(model).analyze(trace)
    calc = CulpeoRCalculator(efficiency=model.efficiency,
                             v_off=model.v_off, v_high=model.v_high)
    rows = []
    for celsius in TEMPERATURES:
        system = capybara_power_system()
        system.buffer = system.buffer.at_temperature(celsius)
        system.rest_at(system.monitor.v_high)
        truth = find_true_vsafe(system, trace)
        pg_ok = attempt_load(system, trace, stale_pg.v_safe).completed
        trial = system.copy()
        trial.rest_at(model.v_high)
        runtime = CulpeoIsrRuntime(PowerSystemSimulator(trial), calc)
        runtime.profile_task(trace, "t", harvesting=False)
        r_vsafe = runtime.get_vsafe("t")
        r_ok = attempt_load(system, trace, r_vsafe).completed
        rows.append(dict(celsius=celsius, true=truth.v_safe,
                         esr=system.buffer.r_esr,
                         pg=stale_pg.v_safe, pg_ok=pg_ok,
                         r=r_vsafe, r_ok=r_ok))
    return rows


def test_ablation_temperature(once):
    rows = once(run_sweep)
    table = TextTable(
        ["T (C)", "bank ESR (ohm)", "true V_safe", "bench PG (25 C)",
         "PG ok?", "re-profiled R", "R ok?"],
        title="Ablation — temperature vs stale room-temperature analysis "
              "(25 mA / 10 ms pulse + compute)",
    )
    for row in rows:
        table.add_row([
            f"{row['celsius']:g}", f"{row['esr']:.2f}",
            f"{row['true']:.3f}", f"{row['pg']:.3f}", row["pg_ok"],
            f"{row['r']:.3f}", row["r_ok"],
        ])
    print()
    print(table.render())
    by_temp = {row["celsius"]: row for row in rows}
    # Room temperature: everyone is fine.
    assert by_temp[25.0]["pg_ok"]
    # Deep cold: the requirement rose past the bench-time analysis...
    assert not by_temp[-20.0]["pg_ok"]
    # ...while on-device re-profiling tracks the cold ESR at every stage.
    for row in rows:
        assert row["r_ok"]
    truths = [row["true"] for row in rows]
    assert truths == sorted(truths)  # colder -> higher V_safe
