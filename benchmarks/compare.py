#!/usr/bin/env python
"""Compare a fresh benchmark JSON against the checked-in baseline.

CI's regression gate: ``run_benchmarks.py`` writes a result file (the
smoke run in PR CI, the full run nightly) and this script diffs it against
the checked-in baseline (``BENCH.json``). Two kinds of check per metric:

* an **absolute floor** — the machine-independent claim the repo makes
  (the fast kernel beats the reference loop by >2x, the fig13 sweep by
  >1.3x, the cache actually hits). A floor failure is a real regression
  wherever it runs.
* a **relative tolerance** against the baseline — how far below the
  recorded value the fresh number may fall before CI complains. Ratios
  (speedups, hit rates) transfer across machines; absolute wall times do
  not and are reported but never gated.

Tolerances are deliberately loose: shared CI runners are noisy and the
baseline was measured on different hardware with the full (non ``--quick``)
workloads. The gate exists to catch "the fast path stopped being fast",
not 10% flutter.

Usage::

    python benchmarks/compare.py bench-smoke.json [--baseline BENCH.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric: where it lives and how much it may regress."""

    path: str              # dotted path into the benchmark JSON
    floor: Optional[float]  # absolute minimum, or None
    rel_tol: Optional[float]  # max fractional drop below baseline, or None
    higher_is_better: bool = True


#: The gate. ``rel_tol=0.6`` means the fresh value may fall to 40% of the
#: baseline before failing — wide enough for quick-vs-full workload and
#: runner noise, narrow enough to catch an actual lost optimization.
GATED_METRICS: List[MetricSpec] = [
    MetricSpec("kernel.speedup", floor=2.0, rel_tol=0.6),
    MetricSpec("analysis.hit_rate", floor=0.5, rel_tol=0.3),
    MetricSpec("sweep.speedup_fast", floor=1.3, rel_tol=0.6),
    MetricSpec("fleet.speedup", floor=10.0, rel_tol=0.6),
    # The segment-algebra claims (numpy backend): the event-driven core
    # beats the scalar stepping fastpath >=10x on the duty-cycled
    # workload, and the vectorized segalg fleet path beats the stepping
    # fleet kernel >=5x on the jittered duty fleet.
    MetricSpec("segalg_kernel.speedup", floor=10.0, rel_tol=0.6),
    MetricSpec("segalg_fleet.speedup", floor=5.0, rel_tol=0.6),
    # The bank-axis driver must keep its vectorization win across the
    # split/switch/advance cycle, not just on unbroken traces.
    MetricSpec("bank_sweep.speedup", floor=2.0, rel_tol=0.6),
    # The serving claim: the admission daemon's data plane (request
    # validation + batched engine dispatch over already-decoded objects —
    # the section its dispatcher serializes) sustains >=100k cache-warm
    # queries/s on one process. Wire throughput (including the JSON
    # codec) is reported below but not gated: it benchmarks CPython's
    # json module more than this repo.
    MetricSpec("serving.qps", floor=100_000.0, rel_tol=0.6),
]

#: Reported for context, never gated: absolute times are machine-bound,
#: parallel speedup collapses on single-core runners, and the cache
#: speedup times sub-millisecond work — pure noise on shared runners.
REPORTED_METRICS: List[str] = [
    "kernel.reference_s", "kernel.fast_s",
    "analysis.speedup", "analysis.cold_s", "analysis.warm_s",
    "sweep.reference_s", "sweep.fast_s",
    "sweep.speedup_fast_parallel",
    "fleet.scalar_s", "fleet.fleet_s",
    "fleet.fleet_device_steps_per_s",
    "segalg_kernel.fastpath_s", "segalg_kernel.segalg_s",
    "segalg_fleet.stepping_s", "segalg_fleet.segalg_s",
    "serving.seconds", "serving.requests", "serving.wire_qps",
    # Degraded-tier throughput (disk tier abandoned, memo + compute):
    # the crash-safety story's cost axis. Reported so regressions are
    # visible, ungated because the absolute number is machine-bound.
    "serving.qps_degraded",
]


def lookup(data: dict, path: str):
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def compare(fresh: dict, baseline: dict) -> "tuple[list, bool]":
    """Evaluate the gate; returns (report rows, ok)."""
    rows = []
    ok = True
    for spec in GATED_METRICS:
        value = lookup(fresh, spec.path)
        base = lookup(baseline, spec.path)
        status = "ok"
        if value is None:
            status = "MISSING"
            ok = False
        else:
            if spec.floor is not None and value < spec.floor:
                status = f"FAIL floor {spec.floor:g}"
                ok = False
            elif (spec.rel_tol is not None and base is not None
                    and value < base * (1.0 - spec.rel_tol)):
                status = f"FAIL >{spec.rel_tol:.0%} below baseline"
                ok = False
        delta = ""
        if value is not None and base:
            delta = f"{(value - base) / base:+.1%}"
        rows.append((spec.path, base, value, delta, status))
    for path in REPORTED_METRICS:
        value = lookup(fresh, path)
        base = lookup(baseline, path)
        delta = ""
        if value is not None and base:
            delta = f"{(value - base) / base:+.1%}"
        rows.append((path, base, value, delta, "info"))
    return rows, ok


def render(rows: list) -> str:
    headers = ("metric", "baseline", "current", "delta", "status")
    text_rows = [
        (path,
         "—" if base is None else f"{base:.4g}",
         "—" if value is None else f"{value:.4g}",
         delta or "—", status)
        for path, base, value, delta, status in rows
    ]
    widths = [max(len(headers[i]), *(len(r[i]) for r in text_rows))
              for i in range(len(headers))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def default_baseline() -> str:
    """The checked-in baseline, ``BENCH.json``."""
    root = Path(__file__).resolve().parent.parent
    return str(root / "BENCH.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="benchmark JSON to check")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default: checked-in "
                             "BENCH.json)")
    args = parser.parse_args(argv)
    if args.baseline is None:
        args.baseline = default_baseline()

    fresh = json.loads(Path(args.fresh).read_text(encoding="utf-8"))
    baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    rows, ok = compare(fresh, baseline)
    print(f"fresh: {args.fresh} (quick={fresh.get('quick')}, "
          f"python {fresh.get('python')}, {fresh.get('cpus')} cpu)")
    print(f"baseline: {args.baseline} (quick={baseline.get('quick')}, "
          f"python {baseline.get('python')}, {baseline.get('cpus')} cpu)")
    print()
    print(render(rows))
    print()
    print("verdict: " + ("OK" if ok else "REGRESSION"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
