"""Figure 4 — ESR drop powers the device off with stored energy remaining."""

from repro.harness.experiments import fig4_poweroff_demo


def test_fig4_poweroff_demo(once):
    demo = once(fig4_poweroff_demo)
    print()
    print(demo.render())
    # The paper's 10 ohm / 50 mA scenario: the LoRa packet needs ~5% of the
    # stored energy, yet the device powers off with nearly all of it left.
    assert demo.browned_out
    assert demo.fraction_remaining > 0.8
