"""Ablation — re-execution waste: opportunistic vs Culpeo-gated launch.

The paper's §I motivation made quantitative on the intermittent-execution
substrate: launching atomic radio tasks whenever the device is on wastes
harvested energy on doomed attempts and stretches completion time, while
gating launches at Culpeo-PG's V_safe wastes nothing.
"""

from repro.core.profile_guided import CulpeoPG
from repro.harness.report import TextTable
from repro.intermittent import AtomicTask, IntermittentExecutor, Program
from repro.loads.peripherals import ble_listen, ble_radio
from repro.power.harvester import ConstantPowerHarvester
from repro.power.system import capybara_power_system
from repro.sim.engine import PowerSystemSimulator


def _run(gated: bool) -> dict:
    system = capybara_power_system(
        harvester=ConstantPowerHarvester(4e-3))
    system.rest_at(system.monitor.v_high)
    engine = PowerSystemSimulator(system)
    engine.discharge_to(1.66)
    system.monitor.force_enabled(True)
    send = ble_radio().trace.concat(ble_listen(1.0).trace)
    program = Program([AtomicTask(f"report-{i}", send) for i in range(3)])
    gate = None
    if gated:
        pg = CulpeoPG(system.characterize())
        vsafes = {t.name: pg.analyze(t.trace).v_safe for t in program}
        gate = lambda task: vsafes[task.name]  # noqa: E731
    report = IntermittentExecutor(engine, gate=gate).run(program,
                                                         until=900.0)
    return dict(policy="culpeo-gated" if gated else "opportunistic",
                finished=report.finished,
                reexecutions=report.total_reexecutions,
                wasted_mj=report.wasted_energy * 1e3,
                elapsed=report.elapsed)


def test_ablation_reexecution(once):
    results = once(lambda: [_run(False), _run(True)])
    table = TextTable(
        ["policy", "finished", "re-executions", "wasted (mJ)",
         "elapsed (s)"],
        title="Ablation — launch policy on a 3x radio program "
              "(start 1.66 V, 4 mW harvest)",
    )
    for row in results:
        table.add_row([row["policy"], row["finished"],
                       row["reexecutions"], f"{row['wasted_mj']:.1f}",
                       f"{row['elapsed']:.0f}"])
    print()
    print(table.render())
    opportunistic, gated = results
    assert opportunistic["reexecutions"] >= 1
    assert opportunistic["wasted_mj"] > 0
    assert gated["finished"]
    assert gated["reexecutions"] == 0
    assert gated["wasted_mj"] == 0.0
