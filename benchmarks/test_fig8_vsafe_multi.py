"""Figure 8 — single-task V_safe vs V_safe_multi for a task sequence."""

from repro.harness.experiments import fig8_vsafe_multi


def test_fig8_vsafe_multi(once):
    demo = once(fig8_vsafe_multi)
    print()
    print(demo.render())
    # Per-task V_safe values only guarantee their own task: launching the
    # sense -> encrypt -> send sequence from the largest of them fails.
    assert not demo.sequence_from_naive_ok
    # The composed V_safe_multi is strictly higher and guarantees the
    # whole sequence, with the minimum voltage skimming (not crossing)
    # V_off — the paper's Figure 8(b).
    assert demo.vsafe_multi > demo.naive_start
    assert demo.sequence_from_multi_ok
    assert demo.v_off <= demo.sequence_from_multi_vmin < demo.v_off + 0.08
