"""Figure 5 — CatNap's energy-only feasibility admits a schedule ESR kills."""

from repro.harness.experiments import fig5_catnap_schedule


def test_fig5_catnap_failure(once):
    demo = once(fig5_catnap_schedule)
    print()
    print(demo.render())
    assert demo.catnap_admits          # the feasibility test says go
    assert not demo.radio_completed    # the radio browns out anyway
    assert not demo.culpeo_admits      # Theorem 1 refuses the same launch
    assert demo.culpeo_gate > demo.catnap_gate
