"""Figure 10 — V_safe accuracy: CatNap vs Culpeo-PG / -ISR / -µArch."""

from repro.harness.experiments import fig10_vsafe_accuracy


def test_fig10_vsafe_accuracy(once):
    result = once(fig10_vsafe_accuracy)
    print()
    print(result.render())
    # CatNap is unsafe nearly everywhere and catastrophically so at high
    # current; its worst miss is tens of percent of the operating range.
    assert result.unsafe_count("Catnap-Measured") >= 12
    assert min(result.errors_for("Catnap-Measured")) < -15.0
    # Culpeo-µArch is safe on every load; Culpeo-ISR is safe except for
    # the 1 ms pulses its 1 kHz sampling cannot resolve.
    assert result.unsafe_count("Culpeo-uArch") == 0
    isr_unsafe = [r["load"] for r in result.rows
                  if r["errors"]["Culpeo-ISR"] < result.unsafe_threshold]
    assert isr_unsafe
    assert all("1ms" in load for load in isr_unsafe)
    # Culpeo-PG's only misses are on the highest-power loads (its
    # efficiency-model error compounds there), and they are mild.
    pg_unsafe = [r["load"] for r in result.rows
                 if r["errors"]["Culpeo-PG"] < 0.0]
    assert all("50mA" in load for load in pg_unsafe)
    # Every Culpeo estimate is performant: within +10% of the range.
    for method in ("Culpeo-PG", "Culpeo-ISR", "Culpeo-uArch"):
        assert max(result.errors_for(method)) < 10.0
