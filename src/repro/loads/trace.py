"""Current-trace representation.

A :class:`CurrentTrace` is a piecewise-constant current-versus-time profile:
the current a task draws from the output booster's regulated ``v_out`` rail.
Piecewise-constant is both what bench current probes effectively record at a
fixed sample rate and what lets the simulator take long exact steps inside
each constant segment.

Traces support the operations the rest of the system needs: concatenation
(task sequences), scaling (what-if analysis), resampling to a profiler's
sample rate (Culpeo-PG captures at 125 kHz), energy/charge integrals, and
the "largest pulse width" query Culpeo-PG uses to pick an operating point on
the ESR-versus-frequency curve.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np


class CurrentTrace:
    """Piecewise-constant load current profile.

    Segments are ``(current_amperes, duration_seconds)`` runs; adjacent
    segments with equal current are merged on construction so segment
    iteration is canonical.
    """

    __slots__ = ("_currents", "_durations", "_fingerprint")

    def __init__(self, segments: Iterable[Tuple[float, float]]) -> None:
        currents: List[float] = []
        durations: List[float] = []
        for current, duration in segments:
            if duration < 0:
                raise ValueError(f"segment duration must be >= 0, got {duration}")
            if current < 0:
                raise ValueError(f"segment current must be >= 0, got {current}")
            if duration == 0:
                continue
            if currents and currents[-1] == current:
                durations[-1] += duration
            else:
                currents.append(float(current))
                durations.append(float(duration))
        if not currents:
            raise ValueError("a trace needs at least one non-empty segment")
        self._currents = np.asarray(currents)
        self._durations = np.asarray(durations)
        self._fingerprint: "str | None" = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def constant(cls, current: float, duration: float) -> "CurrentTrace":
        """A single constant-current segment."""
        return cls([(current, duration)])

    @classmethod
    def from_samples(cls, samples: Sequence[float], dt: float) -> "CurrentTrace":
        """Build a trace from equally spaced current samples."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        return cls((float(s), dt) for s in samples)

    # -- basic properties --------------------------------------------------

    @property
    def currents(self) -> np.ndarray:
        """Per-segment currents (amperes); do not mutate."""
        return self._currents

    @property
    def durations(self) -> np.ndarray:
        """Per-segment durations (seconds); do not mutate."""
        return self._durations

    @property
    def duration(self) -> float:
        """Total trace duration in seconds."""
        return float(self._durations.sum())

    @property
    def peak_current(self) -> float:
        """Maximum instantaneous current in the trace."""
        return float(self._currents.max())

    @property
    def mean_current(self) -> float:
        """Time-averaged current over the trace."""
        return self.charge / self.duration

    @property
    def charge(self) -> float:
        """Total charge delivered at the load rail, in coulombs."""
        return float(np.dot(self._currents, self._durations))

    def fingerprint(self) -> str:
        """Stable content hash of the canonical segment arrays.

        Two traces fingerprint identically exactly when they compare equal:
        the digest covers the merged ``(current, duration)`` runs, so it is
        independent of how the trace was constructed. Used as the trace
        component of :class:`~repro.core.vsafe_cache.VsafeCache` keys and
        computed lazily once per instance (segments are immutable).
        """
        cached = self._fingerprint
        if cached is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(self._currents.tobytes())
            digest.update(self._durations.tobytes())
            cached = digest.hexdigest()
            self._fingerprint = cached
        return cached

    def energy_at(self, v_out: float) -> float:
        """Energy delivered to the load when powered at ``v_out`` volts."""
        if v_out <= 0:
            raise ValueError(f"v_out must be positive, got {v_out}")
        return self.charge * v_out

    # -- iteration & queries -------------------------------------------------

    def segments(self) -> Iterator[Tuple[float, float]]:
        """Yield ``(current, duration)`` runs in time order."""
        for current, duration in zip(self._currents, self._durations):
            yield float(current), float(duration)

    def current_at(self, t: float) -> float:
        """Instantaneous current at time ``t`` (0 beyond the trace end)."""
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t}")
        elapsed = 0.0
        for current, duration in self.segments():
            elapsed += duration
            if t < elapsed:
                return current
        return 0.0

    def largest_pulse_width(self, threshold_fraction: float = 0.5) -> float:
        """Width of the widest high-current pulse in the trace.

        A "pulse" is a maximal run of segments whose current is at least
        ``threshold_fraction`` of the trace's peak. This is the query
        Culpeo-PG uses to pick an ESR value: "the width of the largest
        current pulse, excluding high frequency noise" (paper §IV-B).
        """
        if not 0 < threshold_fraction <= 1:
            raise ValueError(
                f"threshold_fraction must be in (0, 1], got {threshold_fraction}"
            )
        cutoff = self.peak_current * threshold_fraction
        best = 0.0
        run = 0.0
        for current, duration in self.segments():
            if current >= cutoff and current > 0:
                run += duration
                best = max(best, run)
            else:
                run = 0.0
        return best

    # -- transformations -----------------------------------------------------

    def concat(self, other: "CurrentTrace") -> "CurrentTrace":
        """This trace immediately followed by ``other``."""
        return CurrentTrace(list(self.segments()) + list(other.segments()))

    def scaled(self, current_factor: float = 1.0,
               time_factor: float = 1.0) -> "CurrentTrace":
        """A copy with currents and/or durations scaled."""
        if current_factor < 0 or time_factor <= 0:
            raise ValueError("factors must be positive (current may be zero)")
        return CurrentTrace(
            (c * current_factor, d * time_factor) for c, d in self.segments()
        )

    def with_tail(self, current: float, duration: float) -> "CurrentTrace":
        """This trace followed by a constant tail segment."""
        return self.concat(CurrentTrace.constant(current, duration))

    def sampled(self, sample_rate: float) -> np.ndarray:
        """Resample to equally spaced values at ``sample_rate`` hertz.

        This is how a profiling instrument (or Culpeo-PG's 125 kHz capture)
        sees the trace; each sample reports the current at the sample
        instant.
        """
        if sample_rate <= 0:
            raise ValueError(f"sample_rate must be positive, got {sample_rate}")
        n = max(1, int(round(self.duration * sample_rate)))
        dt = 1.0 / sample_rate
        edges = np.concatenate([[0.0], np.cumsum(self._durations)])
        times = (np.arange(n) + 0.5) * dt
        idx = np.clip(np.searchsorted(edges, times, side="right") - 1,
                      0, len(self._currents) - 1)
        return self._currents[idx].copy()

    # -- dunder --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._currents)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CurrentTrace):
            return NotImplemented
        if self._fingerprint is not None and other._fingerprint is not None:
            return self._fingerprint == other._fingerprint
        return (np.array_equal(self._currents, other._currents)
                and np.array_equal(self._durations, other._durations))

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        return (f"CurrentTrace({len(self)} segments, "
                f"{self.duration * 1e3:.3g} ms, "
                f"peak {self.peak_current * 1e3:.3g} mA, "
                f"{self.charge * 1e3:.4g} mC)")
