"""Synthetic load generators (paper Table III).

The paper validates V_safe against parameterised synthetic loads produced by
resistor-transistor circuits tuned to sink specific currents from the
regulated rail. Two shapes are used:

* **Uniform** — a single constant pulse: ``I_load`` for ``t_pulse``.
* **Pulse** — a high-current pulse followed by 100 ms of low-power compute
  at ``I_compute = 1.5 mA``, representing peripheral activation followed by
  processing. The low-current tail is the shape that defeats voltage-as-
  energy estimators, because the ESR drop of the pulse has rebounded by the
  time the task ends.

The parameter grids match Table III: currents {5, 10, 25, 50} mA and pulse
widths {1, 10, 100} ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.loads.trace import CurrentTrace

#: Pulse currents evaluated in the paper (amperes).
PULSE_CURRENTS: Tuple[float, ...] = (0.005, 0.010, 0.025, 0.050)

#: Pulse widths evaluated in the paper (seconds).
PULSE_WIDTHS: Tuple[float, ...] = (0.001, 0.010, 0.100)

#: Low-power compute tail of the Pulse shape (amperes, seconds).
COMPUTE_CURRENT: float = 0.0015
COMPUTE_DURATION: float = 0.100


@dataclass(frozen=True)
class SyntheticLoad:
    """A named synthetic load: its label, shape, and trace."""

    label: str
    shape: str
    i_pulse: float
    t_pulse: float
    trace: CurrentTrace

    def __str__(self) -> str:
        return self.label


def _label(i_pulse: float, t_pulse: float) -> str:
    mA = i_pulse * 1e3
    ms = t_pulse * 1e3
    mA_str = f"{mA:g}mA"
    ms_str = f"{ms:g}ms"
    return f"{mA_str} {ms_str}"


def uniform_load(i_pulse: float, t_pulse: float) -> SyntheticLoad:
    """A Table III Uniform load: one constant pulse."""
    if i_pulse <= 0 or t_pulse <= 0:
        raise ValueError("pulse current and width must be positive")
    return SyntheticLoad(
        label=_label(i_pulse, t_pulse),
        shape="uniform",
        i_pulse=i_pulse,
        t_pulse=t_pulse,
        trace=CurrentTrace.constant(i_pulse, t_pulse),
    )


def pulse_with_compute_tail(
    i_pulse: float, t_pulse: float,
    i_compute: float = COMPUTE_CURRENT,
    t_compute: float = COMPUTE_DURATION,
) -> SyntheticLoad:
    """A Table III Pulse load: high pulse then a low-power compute tail."""
    if i_pulse <= 0 or t_pulse <= 0:
        raise ValueError("pulse current and width must be positive")
    if i_compute < 0 or t_compute < 0:
        raise ValueError("compute tail parameters must be non-negative")
    trace = CurrentTrace.constant(i_pulse, t_pulse)
    if t_compute > 0:
        trace = trace.with_tail(i_compute, t_compute)
    return SyntheticLoad(
        label=_label(i_pulse, t_pulse),
        shape="pulse+compute",
        i_pulse=i_pulse,
        t_pulse=t_pulse,
        trace=trace,
    )


def fig10_load_matrix(
    currents: Sequence[float] = PULSE_CURRENTS,
    widths: Sequence[float] = PULSE_WIDTHS,
) -> List[SyntheticLoad]:
    """The 18-load matrix of the paper's Figure 10.

    Figure 10's x-axis runs nine uniform loads then nine pulse+compute
    loads. Not every (current, width) pair appears — the paper shows the
    combinations whose total energy fits the 45 mF buffer; we keep the nine
    it plots per shape: {5, 10} mA × 100 ms, {5, 10, 25, 50} mA × 10 ms and
    {10, 25, 50} mA × 1 ms.
    """
    pairs: List[Tuple[float, float]] = []
    for width in sorted(widths, reverse=True):
        for current in currents:
            # The paper omits high-energy (25/50 mA @ 100 ms) points and the
            # lowest-signal (5 mA @ 1 ms) point.
            if width >= 0.100 and current > 0.010:
                continue
            if width <= 0.001 and current < 0.010:
                continue
            pairs.append((current, width))
    loads = [uniform_load(i, t) for i, t in pairs]
    loads += [pulse_with_compute_tail(i, t) for i, t in pairs]
    return loads


def fig6_load_matrix() -> List[SyntheticLoad]:
    """The pulse+compute loads of Figure 6 (a subset of the Figure 10 grid)."""
    pairs = [
        (0.005, 0.100), (0.010, 0.100),
        (0.005, 0.010), (0.010, 0.010), (0.025, 0.010), (0.050, 0.010),
    ]
    return [pulse_with_compute_tail(i, t) for i, t in pairs]
