"""Current profiles of the paper's real peripherals and application sensors.

The paper captures these from hardware: the APDS-9960 gesture sensor and
CC2650 BLE radio on Capybara, and an external Cortex-M4 running an MNIST
digit-recognition DNN (Table III gives each profile's peak current and pulse
width). Hardware is unavailable here, so each model synthesises a
structured trace matching the published envelope — peak current, pulse
width, and a realistic internal shape (ramp-up, sub-pulses, tails). Culpeo
consumes only the current profile, so these exercise exactly the code paths
the measured traces would.

Application sensors (IMU, microphone, photoresistor) and software stages
(encryption, FFT) are modelled from their datasheet active currents at the
sample counts the paper's applications use (§VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.loads.trace import CurrentTrace


@dataclass(frozen=True)
class PeripheralLoad:
    """A named peripheral operation and its current trace."""

    name: str
    trace: CurrentTrace
    description: str = ""

    def __str__(self) -> str:
        return self.name


def gesture_recognition() -> PeripheralLoad:
    """APDS-9960 gesture read burst: 25 mA peak, 3.5 ms (Table III).

    The sensor's LED drive pulses dominate: a short ramp, the 25 mA burst,
    and an I2C readout tail at a few mA.
    """
    trace = CurrentTrace([
        (0.004, 0.0004),   # wake + LED driver spin-up
        (0.025, 0.0035),   # gesture engine burst (Table III envelope)
        (0.003, 0.0010),   # I2C result readout
    ])
    return PeripheralLoad("Gesture", trace,
                          "APDS-9960 gesture burst, 25 mA peak / 3.5 ms")


def ble_radio() -> PeripheralLoad:
    """CC2650 BLE advertisement: 13 mA peak, 17 ms (Table III).

    Radio events alternate TX/RX slots around the peak; the model uses
    three advertisement channels with inter-channel processing gaps.
    """
    channel = [
        (0.008, 0.0015),   # ramp / synth lock
        (0.013, 0.0030),   # TX at peak
        (0.010, 0.0012),   # RX window
    ]
    gap = [(0.002, 0.0020)]
    segments = []
    for i in range(3):
        segments += channel
        if i < 2:
            segments += gap
    return PeripheralLoad("BLE", CurrentTrace(segments),
                          "CC2650 BLE advertisement, 13 mA peak / 17 ms")


def ble_listen(duration: float = 2.0) -> PeripheralLoad:
    """Low-power listen after a BLE send (paper's RR app listens 2 s).

    Duty-cycled RX: brief 5 mA windows over a ~0.5 mA idle floor.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    window = 0.100
    segments = []
    elapsed = 0.0
    while elapsed < duration:
        slot = min(window, duration - elapsed)
        rx = min(0.004, slot * 0.04)
        if slot > rx:
            segments.append((0.005, rx))
            segments.append((0.0005, slot - rx))
        else:
            segments.append((0.005, slot))
        elapsed += slot
    return PeripheralLoad("BLE-listen", CurrentTrace(segments),
                          "duty-cycled BLE RX listen")


def mnist_inference() -> PeripheralLoad:
    """Cortex-M4 MNIST digit recognition: 5 mA, 1.1 s (Table III).

    Sustained compute with small per-layer variation.
    """
    layers = [
        (0.0052, 0.30),    # conv layer
        (0.0048, 0.25),    # pooling
        (0.0050, 0.35),    # dense
        (0.0045, 0.20),    # softmax + readout
    ]
    return PeripheralLoad("MNIST", CurrentTrace(layers),
                          "Cortex-M4 MNIST DNN inference, 5 mA / 1.1 s")


def imu_read(n_samples: int = 32, odr_hz: float = 52.0) -> PeripheralLoad:
    """LSM6DS3 IMU burst read: paper's PS app reads 32 samples.

    The IMU produces samples at its configured output data rate (52 Hz
    low-power mode by default), so a 32-sample burst holds the sensor and
    MCU active for ~0.6 s at ~3 mA combined — a long, low-current task
    whose energy, not its ESR drop, dominates its V_safe.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if odr_hz <= 0:
        raise ValueError(f"odr_hz must be positive, got {odr_hz}")
    read_time = n_samples / odr_hz
    trace = CurrentTrace([
        (0.0015, 0.0020),           # sensor power-up and config
        (0.0030, read_time),        # sample burst at the output data rate
        (0.0005, 0.0300),           # post-processing / buffering tail
    ])
    return PeripheralLoad("IMU", trace,
                          f"LSM6DS3 read of {n_samples} samples at {odr_hz:g} Hz")


def microphone_read(n_samples: int = 256,
                    sample_rate: float = 12000.0) -> PeripheralLoad:
    """SPU0414 microphone capture: paper's NMR reads 256 samples at 12 kHz.

    The microphone draws microamps; the cost is the MCU's ADC running for
    the capture window (~1.8 mA including CPU).
    """
    if n_samples < 1 or sample_rate <= 0:
        raise ValueError("need n_samples >= 1 and positive sample_rate")
    capture = n_samples / sample_rate
    trace = CurrentTrace([
        (0.0010, 0.0005),           # mic bias settle
        (0.0018, capture),          # ADC capture window
    ])
    return PeripheralLoad("Microphone", trace,
                          f"{n_samples} samples at {sample_rate:g} Hz")


def photoresistor_read() -> PeripheralLoad:
    """Background light-level sample: one ADC read plus averaging math."""
    trace = CurrentTrace([
        (0.0012, 0.0008),
    ])
    return PeripheralLoad("Photoresistor", trace, "single light sample")


def light_sampling_loop(duration: float = 0.050) -> PeripheralLoad:
    """Continuous background light sampling and averaging.

    The PS and RR background task keeps the MCU awake sampling the
    photoresistor and updating a running average — the MCU's active
    current plus the ADC, ~2.5 mA sustained. This is the load that, under
    CatNap's too-low background threshold, quietly discharges the buffer
    to a level the next high-priority chain cannot survive.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    return PeripheralLoad("Light-loop", CurrentTrace.constant(0.0025, duration),
                          "continuous light sampling + averaging")


def fft_compute(n_points: int = 256) -> PeripheralLoad:
    """Software FFT over the microphone buffer (NMR's low-priority task)."""
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    # ~60 us per butterfly stage-sample on an MSP430-class core at 2.2 mA.
    import math
    duration = 60e-6 * n_points * max(1, int(math.log2(n_points))) / 8.0
    return PeripheralLoad("FFT", CurrentTrace.constant(0.0022, duration),
                          f"{n_points}-point FFT")


def encrypt_block(n_bytes: int = 192) -> PeripheralLoad:
    """AES encryption of an IMU sample buffer (RR's second stage)."""
    if n_bytes < 1:
        raise ValueError(f"n_bytes must be >= 1, got {n_bytes}")
    duration = 90e-6 * (n_bytes / 16.0)
    return PeripheralLoad("Encrypt", CurrentTrace.constant(0.0025, duration),
                          f"AES over {n_bytes} bytes")


def lora_packet(duration: float = 0.100) -> PeripheralLoad:
    """SX1276-class LoRa transmission: 50 mA for ~100 ms (paper §II-C).

    This is the motivating load of Figure 4 — long enough and strong
    enough that its ESR drop alone can cross the power-off threshold.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    trace = CurrentTrace([
        (0.010, 0.002),             # synth lock / PA ramp
        (0.050, duration),          # transmit at full power
        (0.005, 0.003),             # ramp-down + IRQ handling
    ])
    return PeripheralLoad("LoRa", trace,
                          f"LoRa TX, 50 mA / {duration * 1e3:g} ms")


def real_peripheral_suite() -> list:
    """The three real-peripheral profiles of the paper's Figure 11."""
    return [gesture_recognition(), ble_radio(), mnist_inference()]
