"""Load current profiles: trace representation, synthetic loads, peripherals.

A Culpeo "task" is, electrically, a current-versus-time profile drawn from
the output booster's regulated rail. This subpackage provides the trace
type plus generators for everything the paper's Table III evaluates:
parameterised synthetic loads (uniform pulses and pulse-plus-compute-tail
shapes) and models of the real peripherals (gesture sensor, BLE radio,
MNIST compute accelerator) and the application sensors (IMU, microphone,
photoresistor).
"""

from repro.loads.trace import CurrentTrace
from repro.loads.io import (
    load_trace_csv,
    load_trace_json,
    save_trace_csv,
    save_trace_json,
)
from repro.loads.synthetic import (
    PULSE_CURRENTS,
    PULSE_WIDTHS,
    SyntheticLoad,
    fig6_load_matrix,
    fig10_load_matrix,
    pulse_with_compute_tail,
    uniform_load,
)
from repro.loads.peripherals import (
    PeripheralLoad,
    ble_listen,
    ble_radio,
    encrypt_block,
    fft_compute,
    gesture_recognition,
    imu_read,
    lora_packet,
    microphone_read,
    mnist_inference,
    photoresistor_read,
    real_peripheral_suite,
)

__all__ = [
    "CurrentTrace",
    "save_trace_json",
    "load_trace_json",
    "save_trace_csv",
    "load_trace_csv",
    "SyntheticLoad",
    "uniform_load",
    "pulse_with_compute_tail",
    "PULSE_CURRENTS",
    "PULSE_WIDTHS",
    "fig6_load_matrix",
    "fig10_load_matrix",
    "PeripheralLoad",
    "gesture_recognition",
    "ble_radio",
    "ble_listen",
    "mnist_inference",
    "imu_read",
    "microphone_read",
    "photoresistor_read",
    "fft_compute",
    "encrypt_block",
    "lora_packet",
    "real_peripheral_suite",
]
