"""Trace serialization.

Real deployments capture current traces with bench instruments (the paper
profiles at 125 kHz with an STM32 power shield) and voltage traces with a
logic analyzer; both arrive as sampled CSV. This module round-trips
:class:`~repro.loads.trace.CurrentTrace` objects through CSV (sampled,
instrument-style) and JSON (exact segments, library-native) so profiles
can be captured once and shared.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

from repro.loads.trace import CurrentTrace

PathLike = Union[str, Path]


def trace_to_json(trace: CurrentTrace) -> str:
    """Exact segment-level serialization."""
    payload = {
        "format": "repro.current-trace",
        "version": 1,
        "segments": [[current, duration]
                     for current, duration in trace.segments()],
    }
    return json.dumps(payload, indent=2)


def trace_from_json(text: str) -> CurrentTrace:
    """Inverse of :func:`trace_to_json`."""
    payload = json.loads(text)
    if payload.get("format") != "repro.current-trace":
        raise ValueError("not a repro current-trace document")
    if payload.get("version") != 1:
        raise ValueError(f"unsupported version: {payload.get('version')!r}")
    return CurrentTrace((c, d) for c, d in payload["segments"])


def save_trace_json(trace: CurrentTrace, path: PathLike) -> None:
    Path(path).write_text(trace_to_json(trace), encoding="utf-8")


def load_trace_json(path: PathLike) -> CurrentTrace:
    return trace_from_json(Path(path).read_text(encoding="utf-8"))


def trace_to_csv(trace: CurrentTrace, sample_rate: float = 125e3) -> str:
    """Instrument-style export: ``time_s,current_a`` rows at a fixed rate.

    The default 125 kHz matches the paper's profiling prototype. Sampling
    is lossy for segments shorter than a sample period; use JSON for exact
    round-trips.
    """
    samples = trace.sampled(sample_rate)
    dt = 1.0 / sample_rate
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time_s", "current_a"])
    for i, current in enumerate(samples):
        writer.writerow([f"{i * dt:.9f}", f"{current:.9g}"])
    return out.getvalue()


def trace_from_csv(text: str) -> CurrentTrace:
    """Parse ``time_s,current_a`` rows back into a trace.

    Sample spacing is inferred from the time column; rows must be evenly
    spaced and time-sorted, as instrument exports are.
    """
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is None or [h.strip() for h in header[:2]] != \
            ["time_s", "current_a"]:
        raise ValueError("expected a 'time_s,current_a' CSV header")
    times = []
    currents = []
    for row in reader:
        if not row:
            continue
        times.append(float(row[0]))
        currents.append(float(row[1]))
    if len(times) < 1:
        raise ValueError("CSV contains no samples")
    if len(times) == 1:
        return CurrentTrace.from_samples(currents, dt=1e-6)
    dt = times[1] - times[0]
    if dt <= 0:
        raise ValueError("time column must be strictly increasing")
    for a, b in zip(times, times[1:]):
        if abs((b - a) - dt) > 1e-9 + 1e-6 * dt:
            raise ValueError("samples must be evenly spaced")
    return CurrentTrace.from_samples(currents, dt=dt)


def save_trace_csv(trace: CurrentTrace, path: PathLike,
                   sample_rate: float = 125e3) -> None:
    Path(path).write_text(trace_to_csv(trace, sample_rate), encoding="utf-8")


def load_trace_csv(path: PathLike) -> CurrentTrace:
    return trace_from_csv(Path(path).read_text(encoding="utf-8"))
