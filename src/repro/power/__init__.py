"""Energy-harvesting power-system models.

This subpackage models the supply side of an energy-harvesting device
(paper Figure 2): the energy buffer (a supercapacitor bank with equivalent
series resistance), the input and output boost converters, the hysteretic
voltage monitor, and the energy harvester. It also contains the capacitor
technology survey behind the paper's Figure 3 and the ESR-versus-frequency
profiling procedure that Culpeo-PG consumes.
"""

from repro.power.capacitor import (
    EnergyBuffer,
    IdealCapacitor,
    TwoBranchSupercap,
)
from repro.power.bank import CapacitorBank, bank_of
from repro.power.catalog import (
    CapacitorPart,
    CapacitorTechnology,
    build_bank_survey,
    reference_catalog,
)
from repro.power.booster import (
    CurvedEfficiency,
    InputBooster,
    LinearEfficiency,
    OutputBooster,
)
from repro.power.esr_profile import EsrFrequencyCurve, measure_esr_curve
from repro.power.harvester import (
    CallableHarvester,
    ConstantPowerHarvester,
    Harvester,
    NullHarvester,
    SolarHarvester,
)
from repro.power.monitor import VoltageMonitor
from repro.power.reconfigurable import (
    ReconfigurableBuffer,
    capybara_bank_set,
)
from repro.power.system import (
    PowerSystem,
    PowerSystemModel,
    capybara_power_system,
)

__all__ = [
    "EnergyBuffer",
    "IdealCapacitor",
    "TwoBranchSupercap",
    "CapacitorBank",
    "bank_of",
    "CapacitorPart",
    "CapacitorTechnology",
    "build_bank_survey",
    "reference_catalog",
    "LinearEfficiency",
    "CurvedEfficiency",
    "InputBooster",
    "OutputBooster",
    "EsrFrequencyCurve",
    "measure_esr_curve",
    "Harvester",
    "ConstantPowerHarvester",
    "SolarHarvester",
    "NullHarvester",
    "CallableHarvester",
    "VoltageMonitor",
    "ReconfigurableBuffer",
    "capybara_bank_set",
    "PowerSystem",
    "PowerSystemModel",
    "capybara_power_system",
]
