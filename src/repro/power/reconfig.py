"""Scheduled bank reconfiguration: plans, segment splitting, the event.

The paper's §V-B argues Culpeo supports Capybara/Morphy-style
reconfigurable storage by tagging profiles and V_safe entries per buffer
configuration; Williams & Hicks (arXiv:2401.08806) show *when* to resize
matters as much as *whether*. This module is the simulation side of that
story: a :class:`ReconfigPlan` is a serializable schedule of mid-trace
bank switches, and every engine (reference stepping loop, scalar
fastpath, scalar segment algebra, fleet kernels) consumes it the same
way — split the load trace at each event offset, advance each sub-span
with the unmodified engine, and apply the *shared* electrical transform
(:func:`apply_reconfiguration`) between spans.

The transform is deliberately one piece of code: the four-way
differential (reference ≡ fastpath ≡ scalar segalg ≡ fleet segalg) holds
on plan-bearing traces because every scalar engine literally calls the
same :meth:`ReconfigurableBuffer.configure`, and the fleet driver
(:mod:`repro.fleet.bank`) mirrors it elementwise in the same float
order.

Event semantics (documented, relied on by the tie tests):

* An event at offset ``t`` fires after exactly ``t`` seconds of the
  trace have been simulated — if ``t`` falls inside a segment the
  segment is split into two same-current pieces, if it lands on a
  boundary no split is needed.
* The switch is instantaneous: banks leaving the active set are parked
  at the group's charge-weighted open-circuit voltage, the new group
  starts at the charge-weighted merge of its members' voltages
  (conservative redistribution — charge conserved, energy lost to the
  equalization, see ``ReconfigurableBuffer.configure``).
* The monitor observes the post-switch terminal voltage (hysteresis
  applies: a merge below V_off drops the output rail; re-arming needs
  V_high). ``v_min`` accounting sees the post-switch voltage.
* If the post-switch voltage is below the brown-out stop level the run
  browns out *at the event time*; remaining events are cancelled.
* A brown-out inside a sub-span cancels the remaining events too — a
  dead device does not switch banks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "ReconfigureEvent",
    "ReconfigPlan",
    "apply_reconfiguration",
    "split_at_offsets",
]


@dataclass(frozen=True)
class ReconfigureEvent:
    """One scheduled bank switch: at ``time`` seconds into the trace,
    make ``config`` the active bank set."""

    time: float
    config: Tuple[str, ...]

    def __post_init__(self):
        if not math.isfinite(self.time) or self.time < 0:
            raise ValueError(f"event time must be finite and >= 0, "
                             f"got {self.time}")
        if not self.config:
            raise ValueError("event config must name at least one bank")
        object.__setattr__(self, "time", float(self.time))
        object.__setattr__(
            self, "config", tuple(sorted(str(n) for n in self.config)))

    def to_dict(self) -> dict:
        return {"time": self.time, "config": list(self.config)}

    @classmethod
    def from_dict(cls, data: dict) -> "ReconfigureEvent":
        return cls(time=float(data["time"]),
                   config=tuple(data["config"]))


@dataclass(frozen=True)
class ReconfigPlan:
    """A strictly time-ordered schedule of :class:`ReconfigureEvent`."""

    events: Tuple[ReconfigureEvent, ...]

    FORMAT = "repro.reconfig-plan"
    VERSION = 1

    def __post_init__(self):
        events = tuple(self.events)
        for prev, nxt in zip(events, events[1:]):
            if nxt.time <= prev.time:
                raise ValueError(
                    "reconfiguration events must be strictly increasing "
                    f"in time, got {prev.time} then {nxt.time}")
        object.__setattr__(self, "events", events)

    def __len__(self) -> int:
        return len(self.events)

    def offsets(self) -> Tuple[float, ...]:
        return tuple(event.time for event in self.events)

    def fingerprint(self) -> tuple:
        """Hashable identity of the plan (cache-key material)."""
        return tuple((event.time, event.config) for event in self.events)

    def to_dict(self) -> dict:
        return {
            "format": self.FORMAT,
            "version": self.VERSION,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReconfigPlan":
        if data.get("format", cls.FORMAT) != cls.FORMAT:
            raise ValueError(f"not a reconfiguration plan: "
                             f"{data.get('format')!r}")
        return cls(events=tuple(ReconfigureEvent.from_dict(e)
                                for e in data.get("events", [])))

    @classmethod
    def build(cls, *steps: "Tuple[float, Sequence[str]]") -> "ReconfigPlan":
        """Convenience: ``ReconfigPlan.build((t0, names0), (t1, names1))``."""
        return cls(events=tuple(
            ReconfigureEvent(time=t, config=tuple(names))
            for t, names in steps))


def split_at_offsets(
    segments: Iterable[Tuple[float, float]],
    offsets: Sequence[float],
) -> List[List[Tuple[float, float]]]:
    """Split a segment list at trace-relative time offsets.

    Returns ``len(offsets) + 1`` spans; span ``k`` covers the trace time
    window ``[offsets[k-1], offsets[k])``. A segment straddling an offset
    is cut into two same-current pieces (the second carries the exact
    float remainder ``duration - piece``, so the cut point — not the
    re-associated sum — is what all consumers agree on). Offsets at or
    past the end of the trace produce trailing empty spans.
    Every engine that consumes a plan must advance *these* spans so that
    sub-segment boundaries — and therefore float-step sequences — are
    identical across engines.
    """
    offsets = [float(t) for t in offsets]
    for prev, nxt in zip(offsets, offsets[1:]):
        if nxt <= prev:
            raise ValueError("offsets must be strictly increasing")
    spans: List[List[Tuple[float, float]]] = [[] for _ in
                                              range(len(offsets) + 1)]
    bounds = offsets + [math.inf]
    idx = 0
    elapsed = 0.0
    for current, duration in segments:
        current = float(current)
        remaining = float(duration)
        if remaining < 0:
            raise ValueError(f"segment duration must be >= 0, "
                             f"got {duration}")
        while True:
            room = bounds[idx] - elapsed
            if room <= 0 and idx < len(offsets):
                idx += 1
                continue
            if remaining <= room or idx >= len(offsets):
                if remaining > 0:
                    spans[idx].append((current, remaining))
                elapsed += remaining
                break
            # The segment straddles bounds[idx]: emit the piece up to the
            # boundary and carry the exact float remainder forward.
            if room > 0:
                spans[idx].append((current, room))
                elapsed = bounds[idx]
                remaining -= room
            idx += 1
    return spans


def apply_reconfiguration(system, event: ReconfigureEvent) -> float:
    """Apply one reconfiguration event to a scalar power system.

    The single shared transform every scalar engine runs between
    sub-spans: switch the buffer's active bank set, then let the monitor
    observe the post-switch terminal voltage (so a redistribution sag
    below V_off drops the output rail with normal hysteresis). Returns
    the post-switch terminal voltage.
    """
    buffer = system.buffer
    configure = getattr(buffer, "configure", None)
    if configure is None:
        raise ValueError(
            "reconfiguration plan given but the system's buffer "
            f"({type(buffer).__name__}) has no configure()")
    configure(event.config)
    voltage = buffer.terminal_voltage
    system.monitor.observe(voltage)
    return voltage
