"""The assembled power system (paper Figure 2) and its design-time model.

Two distinct objects live here, and keeping them distinct is the point of
the reproduction:

* :class:`PowerSystem` — the simulated *plant*: the real (two-branch)
  buffer, the real (curved-efficiency) boosters, the monitor. Ground truth
  comes from integrating this.
* :class:`PowerSystemModel` — the *knowledge* a charge-management system has
  about the plant: datasheet capacitance (conservative), a measured
  ESR-versus-frequency curve, and a linearized efficiency model. Culpeo-PG
  and Culpeo-R consume this, never the plant itself.

The :func:`capybara_power_system` factory builds the configuration used
throughout the paper's evaluation: V_off = 1.6 V, V_high = 2.56 V,
V_out = 2.55 V, and a 45 mF (datasheet) supercapacitor bank of six dense
Seiko CPX-class parts with about 4 ohms of effective DC ESR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.power.booster import (
    CurvedEfficiency,
    InputBooster,
    LinearEfficiency,
    OutputBooster,
)
from repro.power.capacitor import EnergyBuffer, TwoBranchSupercap
from repro.power.esr_profile import EsrFrequencyCurve, measure_esr_curve
from repro.power.harvester import (
    ConstantPowerHarvester,
    Harvester,
    NullHarvester,
    TraceHarvester,
)
from repro.power.monitor import VoltageMonitor
from repro.units import OperatingRange


@dataclass
class PowerSystem:
    """Supply side of an energy-harvesting device: buffer, boosters, monitor."""

    buffer: EnergyBuffer
    output_booster: OutputBooster
    input_booster: InputBooster
    monitor: VoltageMonitor
    harvester: Harvester = field(default_factory=NullHarvester)
    name: str = "power-system"
    datasheet_capacitance: Optional[float] = None

    @property
    def operating_range(self) -> OperatingRange:
        return self.monitor.range

    @property
    def v_out(self) -> float:
        return self.output_booster.v_out

    def rest_at(self, voltage: float) -> None:
        """Put the buffer at rest at ``voltage`` and sync the monitor."""
        self.buffer.reset(voltage)
        self.monitor.force_enabled(voltage >= self.monitor.v_off)

    def config_key(self) -> tuple:
        """Hashable identity of the plant's electrical configuration.

        Covers everything that determines a worst-case (no-harvest)
        simulation outcome from a rested buffer: buffer parameters, both
        converters, and the monitor rails — but not charge state or the
        harvester, which profiling runs disable. Copies share keys; any
        reconfiguration, aging or temperature derating changes the buffer's
        own key and therefore this one.
        """
        harvester = self.harvester
        if isinstance(harvester, NullHarvester):
            harvester_key: tuple = ("null",)
        elif isinstance(harvester, ConstantPowerHarvester):
            harvester_key = ("const", harvester.power)
        elif isinstance(harvester, TraceHarvester):
            # Content-addressed: two systems replaying the same recorded
            # environment share VsafeCache entries across processes.
            harvester_key = ("trace", harvester.fingerprint)
        else:
            harvester_key = ("harv-id", id(harvester))
        return ("power-system",
                self.buffer.config_key(),
                self.output_booster.config_key(),
                self.input_booster.config_key(),
                self.monitor.v_off, self.monitor.v_high,
                harvester_key)

    def copy(self) -> "PowerSystem":
        """Independent copy sharing the (immutable) converter models."""
        return PowerSystem(
            buffer=self.buffer.copy(),
            output_booster=self.output_booster,
            input_booster=self.input_booster,
            monitor=self.monitor.copy(),
            harvester=self.harvester,
            name=self.name,
            datasheet_capacitance=self.datasheet_capacitance,
        )

    def with_harvester(self, harvester: Harvester) -> "PowerSystem":
        """Copy of this system driven by a different harvester."""
        clone = self.copy()
        clone.harvester = harvester
        return clone

    def characterize(self, linearize_at: Optional[tuple] = None,
                     **esr_kwargs) -> "PowerSystemModel":
        """Derive the design-time model a Culpeo implementation consumes.

        Profiles the assembled system's ESR-versus-frequency curve by
        simulated measurement (paper §IV-B) and linearizes the output
        booster's efficiency between the bottom and top of the operating
        range (or the ``linearize_at`` pair if given).
        """
        v_lo, v_hi = linearize_at or (self.monitor.v_off, self.monitor.v_high)
        datasheet_c = self.datasheet_capacitance or self.buffer.total_capacitance
        return PowerSystemModel(
            capacitance=datasheet_c,
            esr_curve=measure_esr_curve(self.buffer, **esr_kwargs),
            efficiency=LinearEfficiency.fit(
                self.output_booster.efficiency_model, v_lo, v_hi
            ),
            v_off=self.monitor.v_off,
            v_high=self.monitor.v_high,
            v_out=self.output_booster.v_out,
        )


@dataclass(frozen=True)
class PowerSystemModel:
    """What a charge-management system *knows* about the power system.

    This is the ``PowSys P`` input of the paper's Algorithm 1: datasheet
    capacitance, a measured ESR-versus-frequency curve, a linear efficiency
    model, and the designer-set voltage rails.
    """

    capacitance: float
    esr_curve: EsrFrequencyCurve
    efficiency: LinearEfficiency
    v_off: float
    v_high: float
    v_out: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError(f"capacitance must be positive, got {self.capacitance}")
        if self.v_high <= self.v_off:
            raise ValueError("v_high must exceed v_off")

    @property
    def operating_range(self) -> OperatingRange:
        return OperatingRange(v_off=self.v_off, v_high=self.v_high)

    def config_key(self) -> tuple:
        """Hashable identity of the model's knowledge.

        Every field feeds the key (the ESR curve and efficiency line are
        frozen dataclasses of floats/tuples), so two characterizations of
        electrically identical systems key the same while a re-measured
        curve — e.g. after aging — produces a fresh key.
        """
        return ("ps-model", self.capacitance,
                self.esr_curve.pulse_widths, self.esr_curve.esr_values,
                self.efficiency, self.v_off, self.v_high, self.v_out)

    def eta(self, v: float) -> float:
        """Linearized converter efficiency at buffer voltage ``v``."""
        return self.efficiency.efficiency(v)


def capybara_power_system(
    datasheet_capacitance: float = 45e-3,
    capacitance_tolerance: float = 0.06,
    dc_esr: float = 4.0,
    c_decoupling: float = 100e-6,
    leakage_current: float = 20e-9,
    v_high: float = 2.56,
    v_off: float = 1.6,
    v_out: float = 2.55,
    harvester: Optional[Harvester] = None,
    redist_fraction: float = 0.10,
) -> PowerSystem:
    """Build the Capybara-class power system used in the paper's evaluation.

    The *true* total capacitance exceeds the datasheet value by
    ``capacitance_tolerance`` (datasheet values are "generally conservative",
    paper §IV-B). ``redist_fraction`` of the true capacitance goes into the
    slow charge-redistribution branch that gives the bank its finite
    millisecond-scale rebound.
    """
    if not 0 <= redist_fraction < 1:
        raise ValueError(f"redist_fraction must be in [0, 1), got {redist_fraction}")
    true_capacitance = datasheet_capacitance * (1.0 + capacitance_tolerance)
    c_redist = true_capacitance * redist_fraction
    c_main = true_capacitance - c_redist - c_decoupling
    if c_main <= 0:
        raise ValueError("decoupling + redistribution exceed total capacitance")
    buffer = TwoBranchSupercap(
        c_main=c_main,
        r_esr=dc_esr,
        c_redist=c_redist,
        r_redist=dc_esr * 5.0,
        c_decoupling=c_decoupling,
        leakage_current=leakage_current,
    )
    true_eta = CurvedEfficiency()
    return PowerSystem(
        buffer=buffer,
        output_booster=OutputBooster(v_out=v_out, efficiency_model=true_eta,
                                     min_input_voltage=0.5,
                                     power_derating=0.6),
        input_booster=InputBooster(efficiency_model=LinearEfficiency(
            slope=0.0, intercept=0.80), v_max=v_high),
        monitor=VoltageMonitor(v_high=v_high, v_off=v_off),
        harvester=harvester or NullHarvester(),
        name="capybara",
        datasheet_capacitance=datasheet_capacitance,
    )
