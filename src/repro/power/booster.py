"""Boost-converter models.

The energy buffer never powers the load directly: an *output booster*
(TPS61200-class on the paper's Capybara board) regulates the sagging
capacitor voltage up to a stable ``v_out`` for the MCU and peripherals, and
an *input booster* (BQ25504-class) regulates the harvester into the buffer.

Conversion is lossy: the power drawn from the buffer is
``p_in = p_out / eta(v_in)`` where efficiency ``eta`` varies with the input
(capacitor) voltage. Two efficiency models are provided:

* :class:`CurvedEfficiency` — the simulated ground truth, a gently curved
  datasheet-style efficiency surface.
* :class:`LinearEfficiency` — the straight-line approximation
  ``eta = m * V + b`` the paper's charge models assume (§IV-B). The gap
  between the two reproduces the paper's observation that Culpeo-PG's
  errors compound on long, high-energy loads.

Both models assume efficiency is independent of current, as the paper does
for the TPS61200 family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@runtime_checkable
class EfficiencyModel(Protocol):
    """Maps converter input voltage to conversion efficiency in (0, 1]."""

    def efficiency(self, v_in: float) -> float:
        ...


@dataclass(frozen=True)
class LinearEfficiency:
    """``eta(V) = slope * V + intercept`` clipped to ``[floor, ceiling]``.

    Culpeo requires the slope to be non-negative so efficiency decreases
    monotonically as the capacitor discharges (paper §IV-D assumption).
    """

    slope: float
    intercept: float
    floor: float = 0.05
    ceiling: float = 0.98

    def __post_init__(self) -> None:
        if self.slope < 0:
            raise ValueError(
                f"slope must be non-negative (Culpeo monotonicity), "
                f"got {self.slope}"
            )
        if not 0 < self.floor <= self.ceiling <= 1.0:
            raise ValueError(
                f"need 0 < floor <= ceiling <= 1, got {self.floor}, {self.ceiling}"
            )

    def efficiency(self, v_in: float) -> float:
        return min(self.ceiling, max(self.floor, self.slope * v_in + self.intercept))

    @classmethod
    def fit(cls, model: EfficiencyModel, v_low: float, v_high: float,
            **kwargs) -> "LinearEfficiency":
        """Two-point linearization of another efficiency model.

        This is how a Culpeo power-system model is derived from datasheet
        curves: sample the curve at the bottom and top of the operating
        range and draw a line.
        """
        if v_high <= v_low:
            raise ValueError(f"need v_high > v_low, got {v_low}, {v_high}")
        eta_low = model.efficiency(v_low)
        eta_high = model.efficiency(v_high)
        slope = (eta_high - eta_low) / (v_high - v_low)
        intercept = eta_low - slope * v_low
        return cls(slope=slope, intercept=intercept, **kwargs)


@dataclass(frozen=True)
class CurvedEfficiency:
    """Datasheet-style efficiency: linear trend plus mild curvature.

    ``eta(V) = base + slope * (V - v_ref) - curvature * (V - v_ref)**2``
    clipped to ``[floor, ceiling]``. With the default Capybara parameters the
    curve deviates from its own two-point linearization by up to ~1-2
    efficiency points across the operating range — enough to make a model
    that integrates over hundreds of milliseconds drift, as the paper
    reports for Culpeo-PG.
    """

    base: float = 0.862
    slope: float = 0.055
    curvature: float = 0.020
    v_ref: float = 2.0
    floor: float = 0.05
    ceiling: float = 0.95

    def efficiency(self, v_in: float) -> float:
        dv = v_in - self.v_ref
        eta = self.base + self.slope * dv - self.curvature * dv * dv
        return min(self.ceiling, max(self.floor, eta))


class OutputBooster:
    """Regulates the buffer's sagging voltage up to a stable ``v_out``.

    ``min_input_voltage`` models the converter's non-operational region: the
    paper's Figure 11 notes that Energy-V estimates push the capacitor so
    low "the output booster falls into a non-operational region".

    ``power_derating`` models the real converter's efficiency loss at high
    output power (efficiency points lost per watt delivered). Culpeo's
    charge models assume efficiency is independent of current (paper
    §IV-B); the derating term is the truth that assumption misses, and it
    is the mechanism behind the paper's finding that Culpeo-PG's
    "compounding errors in the output booster efficiency model" make it
    fail on the highest-power loads while measurement-based Culpeo-R stays
    robust.
    """

    def __init__(self, v_out: float, efficiency_model: EfficiencyModel,
                 min_input_voltage: float = 0.5,
                 power_derating: float = 0.0) -> None:
        if v_out <= 0:
            raise ValueError(f"v_out must be positive, got {v_out}")
        if min_input_voltage < 0:
            raise ValueError(
                f"min_input_voltage must be non-negative, got {min_input_voltage}"
            )
        if power_derating < 0:
            raise ValueError(
                f"power_derating must be non-negative, got {power_derating}"
            )
        self.v_out = v_out
        self.efficiency_model = efficiency_model
        self.min_input_voltage = min_input_voltage
        self.power_derating = power_derating

    def efficiency(self, v_in: float, p_out: float = 0.0) -> float:
        """Conversion efficiency at buffer voltage ``v_in``, load ``p_out``."""
        eta = self.efficiency_model.efficiency(v_in)
        if p_out > 0 and self.power_derating > 0:
            eta = max(0.30, eta - self.power_derating * p_out)
        return eta

    def operational(self, v_in: float) -> bool:
        """Whether the converter can run at all from ``v_in``."""
        return v_in >= self.min_input_voltage

    def config_key(self) -> tuple:
        """Hashable identity of the converter's electrical parameters."""
        return ("out-booster", self.v_out, self.min_input_voltage,
                self.power_derating, efficiency_model_key(self.efficiency_model))

    def input_power(self, p_out: float, v_in: float) -> float:
        """Power drawn from the buffer to deliver ``p_out`` to the load."""
        if p_out < 0:
            raise ValueError(f"p_out must be non-negative, got {p_out}")
        if p_out == 0.0:
            return 0.0
        return p_out / self.efficiency(v_in, p_out)

    def input_current(self, i_out: float, v_in: float) -> float:
        """Current drawn from the buffer for a load current ``i_out``.

        The load current is defined at the regulated ``v_out`` rail, so
        ``p_out = i_out * v_out`` and ``i_in = p_out / (eta * v_in)``. As the
        capacitor voltage falls the booster draws *more* current for the
        same load — which is why ESR drop worsens as the buffer drains.
        """
        if i_out < 0:
            raise ValueError(f"i_out must be non-negative, got {i_out}")
        if i_out == 0.0:
            return 0.0
        v_in = max(v_in, self.min_input_voltage)
        return self.input_power(i_out * self.v_out, v_in) / v_in


def efficiency_model_key(model: EfficiencyModel) -> tuple:
    """Hashable identity for an efficiency model.

    The provided models are frozen dataclasses, hashable by field values,
    so structurally equal models key identically even across copies. An
    unhashable custom model falls back to object identity — correct (never
    a false hit) but it won't share cache entries across distinct
    instances.
    """
    try:
        hash(model)
    except TypeError:
        return ("eta-id", id(model))
    return ("eta", type(model).__name__, model)


class InputBooster:
    """Regulates the harvester into the buffer, topping out at ``v_max``."""

    def __init__(self, efficiency_model: EfficiencyModel, v_max: float) -> None:
        if v_max <= 0:
            raise ValueError(f"v_max must be positive, got {v_max}")
        self.efficiency_model = efficiency_model
        self.v_max = v_max

    def charge_current(self, p_harvest: float, v_cap: float) -> float:
        """Current pushed into the buffer from ``p_harvest`` watts harvested.

        Charging is regulated off once the buffer reaches ``v_max`` (the
        monitor's V_high), decoupling charging from the harvester's own
        voltage limits as the paper describes.
        """
        if p_harvest < 0:
            raise ValueError(f"p_harvest must be non-negative, got {p_harvest}")
        if p_harvest == 0.0 or v_cap >= self.v_max:
            return 0.0
        eta = self.efficiency_model.efficiency(max(v_cap, 0.1))
        return p_harvest * eta / max(v_cap, 0.1)

    def config_key(self) -> tuple:
        """Hashable identity of the converter's electrical parameters."""
        return ("in-booster", self.v_max,
                efficiency_model_key(self.efficiency_model))
