"""ESR-versus-frequency profiling.

Datasheet ESR values are unusable for Culpeo-PG: the resistance a load
actually experiences depends on how long the load is applied (distributed RC
inside the part plus decoupling capacitance around it), and most datasheets
publish a single number at one test frequency. The paper instead *measures*
an ESR-versus-frequency curve directly from the assembled power system
(§IV-B) and has Culpeo-PG pick the curve point matching the width of the
largest current pulse in a task's trace.

This module reproduces that procedure against a simulated buffer: apply a
constant-current pulse of a given width to a rested copy of the buffer,
record the terminal-voltage drop, and report ``R_eff = drop / I`` after
subtracting the drop attributable to charge actually consumed. Short pulses
see less of the ESR because the decoupling capacitance supplies them — the
same effect the paper describes for transient spikes.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.power.capacitor import EnergyBuffer

#: Pulse widths (seconds) profiled by default — spans the paper's 1 ms to
#: 100 ms synthetic loads plus margin on both sides.
DEFAULT_PULSE_WIDTHS: Tuple[float, ...] = (
    0.0002, 0.0005, 0.001, 0.002, 0.005, 0.010, 0.020, 0.050, 0.100, 0.300,
)


@dataclass(frozen=True)
class EsrFrequencyCurve:
    """Measured effective ESR as a function of applied pulse width.

    Lookup interpolates linearly in log(pulse width); queries outside the
    measured span clamp to the nearest endpoint (long pulses see the full DC
    ESR, which the curve's right edge approaches).
    """

    pulse_widths: Tuple[float, ...]
    esr_values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.pulse_widths) != len(self.esr_values):
            raise ValueError("pulse_widths and esr_values must align")
        if len(self.pulse_widths) < 1:
            raise ValueError("curve needs at least one point")
        if any(w <= 0 for w in self.pulse_widths):
            raise ValueError("pulse widths must be positive")
        if list(self.pulse_widths) != sorted(self.pulse_widths):
            raise ValueError("pulse widths must be sorted ascending")

    def esr_for_pulse_width(self, width: float) -> float:
        """Effective ESR for a load pulse of ``width`` seconds."""
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        widths = self.pulse_widths
        if width <= widths[0]:
            return self.esr_values[0]
        if width >= widths[-1]:
            return self.esr_values[-1]
        hi = bisect.bisect_left(widths, width)
        lo = hi - 1
        log_w = math.log(width)
        frac = ((log_w - math.log(widths[lo]))
                / (math.log(widths[hi]) - math.log(widths[lo])))
        return self.esr_values[lo] + frac * (self.esr_values[hi]
                                             - self.esr_values[lo])

    @property
    def dc_esr(self) -> float:
        """ESR at the longest measured pulse width (approximates DC)."""
        return self.esr_values[-1]


def measure_pulse_esr(buffer: EnergyBuffer, pulse_width: float,
                      test_current: float = 0.010,
                      rest_voltage: float = 2.2,
                      steps_per_pulse: int = 400) -> float:
    """Measure effective ESR with a single constant-current pulse.

    Applies ``test_current`` directly at the buffer terminals (bypassing
    the boosters, as a bench impedance analyzer would), finds the minimum
    terminal voltage during the pulse, and subtracts the voltage that the
    consumed charge alone accounts for. The remainder over the current is
    the effective series resistance at this pulse width.
    """
    if pulse_width <= 0:
        raise ValueError(f"pulse_width must be positive, got {pulse_width}")
    if test_current <= 0:
        raise ValueError(f"test_current must be positive, got {test_current}")
    probe = buffer.copy()
    probe.reset(rest_voltage)
    dt = pulse_width / steps_per_pulse
    v_min = rest_voltage
    for _ in range(steps_per_pulse):
        v = probe.step(test_current, dt)
        v_min = min(v_min, v)
    # Voltage drop explained by charge actually removed from the buffer.
    charge_drop = test_current * pulse_width / probe.total_capacitance
    esr_drop = (rest_voltage - v_min) - charge_drop
    return max(0.0, esr_drop / test_current)


def measure_esr_curve(buffer: EnergyBuffer,
                      pulse_widths: Sequence[float] = DEFAULT_PULSE_WIDTHS,
                      test_current: float = 0.010,
                      rest_voltage: float = 2.2) -> EsrFrequencyCurve:
    """Profile the buffer at several pulse widths to build the full curve."""
    widths = sorted(pulse_widths)
    esr: List[float] = [
        measure_pulse_esr(buffer, w, test_current, rest_voltage)
        for w in widths
    ]
    return EsrFrequencyCurve(tuple(widths), tuple(esr))
