"""Energy-harvester models.

The paper's bench simulates harvested solar energy with a 2.2 V source in
series with a potentiometer, i.e. a weak, roughly constant power input; its
scheduler experiments use "constant, weak harvestable power, matched to a
solar harvester". These models provide that and a couple of time-varying
profiles for robustness experiments.
"""

from __future__ import annotations

import math
from typing import Callable, Protocol, runtime_checkable


@runtime_checkable
class Harvester(Protocol):
    """Environmental energy source: power available at a given time."""

    def power_at(self, t: float) -> float:
        ...


class NullHarvester:
    """No incoming power — the worst case Culpeo-PG assumes (paper §IV-B)."""

    def power_at(self, t: float) -> float:
        return 0.0


class ConstantPowerHarvester:
    """Steady harvestable power, e.g. indoor solar through a regulator."""

    def __init__(self, power: float) -> None:
        if power < 0:
            raise ValueError(f"power must be non-negative, got {power}")
        self.power = power

    def power_at(self, t: float) -> float:
        return self.power


class SolarHarvester:
    """Diurnal-style harvest: a raised sinusoid clipped at zero.

    ``power_at(t) = peak * max(0, sin(2*pi*t/period + phase))`` — a simple
    stand-in for outdoor light variation, used by robustness tests that
    exercise Culpeo-R re-profiling when incoming power changes.
    """

    def __init__(self, peak: float, period: float = 120.0,
                 phase: float = 0.0) -> None:
        if peak < 0:
            raise ValueError(f"peak must be non-negative, got {peak}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.peak = peak
        self.period = period
        self.phase = phase

    def power_at(self, t: float) -> float:
        return self.peak * max(0.0, math.sin(2.0 * math.pi * t / self.period
                                             + self.phase))


class CallableHarvester:
    """Adapter turning any ``f(t) -> watts`` callable into a harvester."""

    def __init__(self, fn: Callable[[float], float]) -> None:
        self._fn = fn

    def power_at(self, t: float) -> float:
        power = self._fn(t)
        if power < 0:
            raise ValueError(f"harvester callable returned negative power "
                             f"{power} at t={t}")
        return power
