"""Energy-harvester models.

The paper's bench simulates harvested solar energy with a 2.2 V source in
series with a potentiometer, i.e. a weak, roughly constant power input; its
scheduler experiments use "constant, weak harvestable power, matched to a
solar harvester". These models provide that and a couple of time-varying
profiles for robustness experiments.
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Iterable, Protocol, Tuple, runtime_checkable

import numpy as np


@runtime_checkable
class Harvester(Protocol):
    """Environmental energy source: power available at a given time."""

    def power_at(self, t: float) -> float:
        ...


class NullHarvester:
    """No incoming power — the worst case Culpeo-PG assumes (paper §IV-B)."""

    def power_at(self, t: float) -> float:
        return 0.0


class ConstantPowerHarvester:
    """Steady harvestable power, e.g. indoor solar through a regulator."""

    def __init__(self, power: float) -> None:
        if power < 0:
            raise ValueError(f"power must be non-negative, got {power}")
        self.power = power

    def power_at(self, t: float) -> float:
        return self.power


class SolarHarvester:
    """Diurnal-style harvest: a raised sinusoid clipped at zero.

    ``power_at(t) = peak * max(0, sin(2*pi*t/period + phase))`` — a simple
    stand-in for outdoor light variation, used by robustness tests that
    exercise Culpeo-R re-profiling when incoming power changes.
    """

    def __init__(self, peak: float, period: float = 120.0,
                 phase: float = 0.0) -> None:
        if peak < 0:
            raise ValueError(f"peak must be non-negative, got {peak}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.peak = peak
        self.period = period
        self.phase = phase

    def power_at(self, t: float) -> float:
        return self.peak * max(0.0, math.sin(2.0 * math.pi * t / self.period
                                             + self.phase))


class TraceHarvester:
    """Recorded (or lowered) harvest: piecewise-constant power over time.

    This is the representation every kernel consumes natively — the
    environment engine (:mod:`repro.env`) lowers its parametric models
    into one of these, and the simulation layers (reference loop, scalar
    fastpath, segment algebra, fleet kernels) treat the piece edges as
    exact breakpoints instead of sampling through them.

    Semantics: ``edges`` is a strictly increasing float array starting at
    0.0 with ``len(powers) + 1`` entries; piece ``k`` holds ``powers[k]``
    on ``[edges[k], edges[k+1])``. Queries before 0 clamp to the first
    piece; queries at or past the last edge hold the final power (a
    recorded trace ends, the sky does not switch off). ``power_at`` is a
    pure array lookup, so the reference loop and the fastpath see the
    identical float at the identical time — a bit-identity requirement.

    The content fingerprint (a digest of the canonical edge/power arrays)
    doubles as the cache identity: it keys both the segment-program cache
    and the VsafeCache through ``PowerSystem.config_key``, so two
    harvesters lowered from the same environment share cached work across
    processes.
    """

    __slots__ = ("edges", "powers", "_fingerprint")

    def __init__(self, edges: np.ndarray, powers: np.ndarray) -> None:
        edges = np.asarray(edges, dtype=np.float64)
        powers = np.asarray(powers, dtype=np.float64)
        if edges.ndim != 1 or powers.ndim != 1:
            raise ValueError("edges and powers must be 1-D arrays")
        if len(edges) != len(powers) + 1:
            raise ValueError(
                f"need len(edges) == len(powers) + 1, got "
                f"{len(edges)} edges for {len(powers)} powers")
        if len(powers) == 0:
            raise ValueError("a harvest trace needs at least one piece")
        if edges[0] != 0.0:
            raise ValueError(f"edges must start at 0.0, got {edges[0]}")
        if not np.all(np.diff(edges) > 0.0):
            raise ValueError("edges must be strictly increasing")
        if np.any(powers < 0.0) or not np.all(np.isfinite(powers)):
            raise ValueError("powers must be finite and non-negative")
        self.edges = edges
        self.powers = powers
        self._fingerprint: str = ""

    @classmethod
    def from_pieces(cls, pieces: Iterable[Tuple[float, float]]
                    ) -> "TraceHarvester":
        """Build from ``(power_watts, duration_s)`` runs.

        Zero-duration pieces are dropped and equal-power neighbours are
        merged, so two descriptions of the same physical profile produce
        the same arrays — and therefore the same fingerprint.
        """
        merged: list = []
        for power, duration in pieces:
            power = float(power)
            duration = float(duration)
            if duration < 0:
                raise ValueError(f"negative piece duration {duration}")
            if duration == 0.0:
                continue
            if merged and merged[-1][0] == power:
                merged[-1][1] += duration
            else:
                merged.append([power, duration])
        if not merged:
            raise ValueError("a harvest trace needs at least one piece")
        powers = np.array([p for p, _ in merged], dtype=np.float64)
        durations = np.array([d for _, d in merged], dtype=np.float64)
        edges = np.concatenate(([0.0], np.cumsum(durations)))
        return cls(edges, powers)

    @property
    def duration(self) -> float:
        """Recorded span in seconds (the final power holds past it)."""
        return float(self.edges[-1])

    @property
    def max_power(self) -> float:
        return float(self.powers.max())

    @property
    def fingerprint(self) -> str:
        """Content digest of the canonical arrays (cache identity)."""
        if not self._fingerprint:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(b"repro.harvest-trace-v1")
            digest.update(self.edges.tobytes())
            digest.update(self.powers.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def power_at(self, t: float) -> float:
        """Piece lookup: clamp-before-start, hold-last-after-end."""
        idx = int(np.searchsorted(self.edges, t, side="right")) - 1
        if idx < 0:
            idx = 0
        elif idx >= len(self.powers):
            idx = len(self.powers) - 1
        return float(self.powers[idx])

    def next_boundary(self, t: float) -> float:
        """First piece edge strictly after ``t`` (``inf`` past the end)."""
        idx = int(np.searchsorted(self.edges, t, side="right"))
        if idx >= len(self.edges):
            return math.inf
        return float(self.edges[idx])

    def max_power_after(self, t: float) -> float:
        """Largest power from the piece containing ``t`` onward.

        Distinguishes a recorded lull (more power coming) from a trace
        that has genuinely gone dark — charge loops bail out only on the
        latter.
        """
        idx = int(np.searchsorted(self.edges, t, side="right")) - 1
        if idx < 0:
            idx = 0
        elif idx >= len(self.powers):
            idx = len(self.powers) - 1
        return float(self.powers[idx:].max())

    def energy(self, duration: float) -> float:
        """Exact ``∫ P dt`` over ``[0, duration]`` (holds the last power)."""
        if duration <= 0.0:
            return 0.0
        clipped = np.minimum(self.edges, duration)
        pieces = float(np.sum(self.powers * np.diff(clipped)))
        if duration > self.duration:
            pieces += float(self.powers[-1]) * (duration - self.duration)
        return pieces

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceHarvester):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __repr__(self) -> str:
        return (f"TraceHarvester(pieces={len(self.powers)}, "
                f"duration={self.duration:.3f}s, "
                f"max={self.max_power:.4g}W)")


class CallableHarvester:
    """Adapter turning any ``f(t) -> watts`` callable into a harvester."""

    def __init__(self, fn: Callable[[float], float]) -> None:
        self._fn = fn

    def power_at(self, t: float) -> float:
        power = self._fn(t)
        if power < 0:
            raise ValueError(f"harvester callable returned negative power "
                             f"{power} at t={t}")
        return power
