"""Energy-buffer models with equivalent series resistance.

The paper's central observation is that a capacitor's *terminal* voltage —
the quantity the voltage monitor, the ADC, and the brown-out comparator all
see — differs from its *open-circuit* voltage by an amount proportional to
the current being drawn (Ohm's law across the ESR). Energy-only charge
management reasons about the open-circuit voltage; the device lives or dies
by the terminal voltage.

Two models are provided:

* :class:`IdealCapacitor` — one capacitance in series with one resistance.
  The terminal voltage rebounds instantaneously when load is removed. This
  is the textbook model Culpeo-PG assumes (paper §IV-B).
* :class:`TwoBranchSupercap` — the simulated "truth". A main branch
  (C_main in series with R_esr), a charge-redistribution branch (C_redist
  via R_redist), and decoupling capacitance C_dec directly across the
  terminals. Real supercapacitors rebound over milliseconds because charge
  must flow back through internal resistance; the decoupling and
  redistribution branches reproduce that finite rebound, which is what
  separates a fast post-task voltage read (Catnap-Measured) from a delayed
  one (Catnap-Slow) in the paper's Figure 6.

Sign convention: ``i_load`` is positive when current flows *out of* the
buffer terminals (discharging) and negative when charging.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable


@runtime_checkable
class EnergyBuffer(Protocol):
    """Interface every energy-buffer model implements."""

    @property
    def terminal_voltage(self) -> float:
        """Voltage observable at the buffer terminals right now."""
        ...

    @property
    def open_circuit_voltage(self) -> float:
        """Charge-weighted internal voltage (what energy reasoning sees)."""
        ...

    @property
    def stored_energy(self) -> float:
        """Total energy currently stored, in joules."""
        ...

    @property
    def total_capacitance(self) -> float:
        """Sum of all internal capacitances, in farads."""
        ...

    def step(self, i_load: float, dt: float) -> float:
        """Advance the buffer by ``dt`` seconds under terminal current
        ``i_load`` and return the new terminal voltage."""
        ...

    def reset(self, voltage: float) -> None:
        """Force the buffer to rest (all internal nodes equal) at ``voltage``."""
        ...

    def settle(self) -> None:
        """Equilibrate internal nodes instantaneously, conserving charge."""
        ...

    def copy(self) -> "EnergyBuffer":
        """Independent deep copy of the buffer and its state."""
        ...

    def config_key(self) -> tuple:
        """Hashable key identifying the buffer's *configuration* (not its
        charge state). Two buffers with equal keys are electrically
        interchangeable, so analysis results computed against one are valid
        for the other — the contract V_safe caching relies on."""
        ...


class IdealCapacitor:
    """A single capacitance in series with a single ESR.

    The terminal voltage is ``v_oc - i_load * esr`` at every instant, so the
    ESR drop appears and disappears with the load — no rebound dynamics.
    """

    def __init__(self, capacitance: float, esr: float = 0.0,
                 leakage_current: float = 0.0, voltage: float = 0.0) -> None:
        if capacitance <= 0:
            raise ValueError(f"capacitance must be positive, got {capacitance}")
        if esr < 0:
            raise ValueError(f"esr must be non-negative, got {esr}")
        if leakage_current < 0:
            raise ValueError(
                f"leakage_current must be non-negative, got {leakage_current}"
            )
        self.capacitance = capacitance
        self.esr = esr
        self.leakage_current = leakage_current
        self._v = float(voltage)
        self._i_last = 0.0

    @property
    def max_stable_dt(self) -> float:
        """No internal nodes: any step size is stable."""
        return math.inf

    @property
    def terminal_voltage(self) -> float:
        return max(0.0, self._v - self._i_last * self.esr)

    @property
    def open_circuit_voltage(self) -> float:
        return self._v

    @property
    def stored_energy(self) -> float:
        return 0.5 * self.capacitance * self._v * self._v

    @property
    def total_capacitance(self) -> float:
        return self.capacitance

    def step(self, i_load: float, dt: float) -> float:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        drain = i_load + (self.leakage_current if self._v > 0 else 0.0)
        self._v = max(0.0, self._v - drain * dt / self.capacitance)
        self._i_last = i_load
        return self.terminal_voltage

    def reset(self, voltage: float) -> None:
        if voltage < 0:
            raise ValueError(f"voltage must be non-negative, got {voltage}")
        self._v = float(voltage)
        self._i_last = 0.0

    def settle(self) -> None:
        self._i_last = 0.0

    def copy(self) -> "IdealCapacitor":
        clone = IdealCapacitor(self.capacitance, self.esr,
                               self.leakage_current, self._v)
        clone._i_last = self._i_last
        return clone

    def config_key(self) -> tuple:
        """State-independent electrical identity (see EnergyBuffer)."""
        return ("ideal", self.capacitance, self.esr, self.leakage_current)

    def __repr__(self) -> str:
        return (f"IdealCapacitor(C={self.capacitance:.4g} F, "
                f"ESR={self.esr:.3g} ohm, V={self._v:.3f} V)")


class TwoBranchSupercap:
    """Supercapacitor bank with finite rebound dynamics.

    Circuit (all across the same terminal pair)::

        terminals ──┬── C_dec
                    ├── R_esr ──── C_main
                    └── R_redist ─ C_redist

    The terminal node relaxes toward the conductance-weighted branch voltage
    with time constant ``C_dec / (1/R_esr + 1/R_redist)``; that relaxation is
    the millisecond-scale rebound the paper's Figure 1(b) shows. The step
    integrator treats the branch voltages as slow variables and solves the
    terminal node exactly over each step (exponential integrator), so the
    model is stable for any ``dt``.
    """

    def __init__(self, c_main: float, r_esr: float,
                 c_redist: float = 0.0, r_redist: float = math.inf,
                 c_decoupling: float = 0.0, leakage_current: float = 0.0,
                 voltage: float = 0.0) -> None:
        if c_main <= 0:
            raise ValueError(f"c_main must be positive, got {c_main}")
        if r_esr <= 0:
            raise ValueError(f"r_esr must be positive, got {r_esr}")
        if c_redist < 0:
            raise ValueError(f"c_redist must be non-negative, got {c_redist}")
        if c_redist > 0 and r_redist <= 0:
            raise ValueError("r_redist must be positive when c_redist > 0")
        if c_decoupling < 0:
            raise ValueError(
                f"c_decoupling must be non-negative, got {c_decoupling}"
            )
        if leakage_current < 0:
            raise ValueError(
                f"leakage_current must be non-negative, got {leakage_current}"
            )
        self.c_main = c_main
        self.r_esr = r_esr
        self.c_redist = c_redist
        self.r_redist = r_redist
        self.c_decoupling = c_decoupling
        self.leakage_current = leakage_current
        self._v_main = float(voltage)
        self._v_redist = float(voltage)
        self._v_term = float(voltage)

    @property
    def _has_redist(self) -> bool:
        return self.c_redist > 0 and math.isfinite(self.r_redist)

    @property
    def max_stable_dt(self) -> float:
        """Largest step for which the branch update is numerically stable.

        The terminal node is solved exactly, but the branch voltages are
        held constant within a step; the step must therefore stay well
        below each branch's own R*C time constant or the explicit update
        oscillates (visible with very low ESR).
        """
        limit = self.r_esr * self.c_main
        if self._has_redist:
            limit = min(limit, self.r_redist * self.c_redist)
        return 0.25 * limit

    @property
    def _conductance(self) -> float:
        g = 1.0 / self.r_esr
        if self._has_redist:
            g += 1.0 / self.r_redist
        return g

    @property
    def terminal_voltage(self) -> float:
        return self._v_term

    @property
    def open_circuit_voltage(self) -> float:
        """Charge-weighted rest voltage if the buffer settled right now."""
        charge = self.c_main * self._v_main + self.c_decoupling * self._v_term
        cap = self.c_main + self.c_decoupling
        if self._has_redist:
            charge += self.c_redist * self._v_redist
            cap += self.c_redist
        return charge / cap

    @property
    def stored_energy(self) -> float:
        energy = 0.5 * self.c_main * self._v_main ** 2
        energy += 0.5 * self.c_decoupling * self._v_term ** 2
        if self._has_redist:
            energy += 0.5 * self.c_redist * self._v_redist ** 2
        return energy

    @property
    def total_capacitance(self) -> float:
        cap = self.c_main + self.c_decoupling
        if self._has_redist:
            cap += self.c_redist
        return cap

    def _target_terminal(self, i_load: float) -> float:
        """Terminal voltage the node relaxes toward under ``i_load``."""
        num = self._v_main / self.r_esr - i_load
        if self._has_redist:
            num += self._v_redist / self.r_redist
        return num / self._conductance

    def step(self, i_load: float, dt: float) -> float:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        g = self._conductance
        v_star = self._target_terminal(i_load)
        if self.c_decoupling > 0:
            tau = self.c_decoupling / g
            ratio = dt / tau
            alpha = math.exp(-ratio)
            # Time-averaged terminal voltage across the step, used so branch
            # charge bookkeeping stays consistent with the exponential path.
            v_avg = v_star + (self._v_term - v_star) * (1.0 - alpha) / ratio
            v_term_new = v_star + (self._v_term - v_star) * alpha
        else:
            v_avg = v_star
            v_term_new = v_star

        i_main = (self._v_main - v_avg) / self.r_esr
        leak = self.leakage_current if self._v_main > 0 else 0.0
        self._v_main = max(0.0, self._v_main - (i_main + leak) * dt / self.c_main)
        if self._has_redist:
            i_redist = (self._v_redist - v_avg) / self.r_redist
            self._v_redist = max(
                0.0, self._v_redist - i_redist * dt / self.c_redist
            )
        self._v_term = max(0.0, v_term_new)
        return self._v_term

    def reset(self, voltage: float) -> None:
        if voltage < 0:
            raise ValueError(f"voltage must be non-negative, got {voltage}")
        self._v_main = float(voltage)
        self._v_redist = float(voltage)
        self._v_term = float(voltage)

    def settle(self) -> None:
        v_eq = self.open_circuit_voltage
        self._v_main = v_eq
        self._v_redist = v_eq
        self._v_term = v_eq

    def copy(self) -> "TwoBranchSupercap":
        clone = TwoBranchSupercap(
            self.c_main, self.r_esr, self.c_redist, self.r_redist,
            self.c_decoupling, self.leakage_current,
        )
        clone._v_main = self._v_main
        clone._v_redist = self._v_redist
        clone._v_term = self._v_term
        return clone

    def config_key(self) -> tuple:
        """State-independent electrical identity (see EnergyBuffer).

        Aging (:meth:`aged`), temperature derating (:meth:`at_temperature`)
        and decoupling changes all alter these parameters, so every derived
        buffer produces a fresh key — cached V_safe results keyed on the
        old part can never leak onto the derated one.
        """
        return ("two-branch", self.c_main, self.r_esr, self.c_redist,
                self.r_redist, self.c_decoupling, self.leakage_current)

    def aged(self, capacitance_factor: float = 0.8,
             esr_factor: float = 2.0) -> "TwoBranchSupercap":
        """A copy of this buffer after end-of-life aging.

        Supercapacitor datasheets define end-of-life as capacitance fallen
        to ~80% of nominal and ESR doubled (paper §IV-C); the defaults
        produce exactly that part.
        """
        if capacitance_factor <= 0 or esr_factor <= 0:
            raise ValueError("aging factors must be positive")
        clone = TwoBranchSupercap(
            self.c_main * capacitance_factor,
            self.r_esr * esr_factor,
            self.c_redist * capacitance_factor,
            self.r_redist * esr_factor if self._has_redist else self.r_redist,
            self.c_decoupling,
            self.leakage_current,
        )
        clone.reset(self.open_circuit_voltage)
        return clone

    def at_temperature(self, celsius: float,
                       esr_tempco: float = 0.025,
                       cap_tempco: float = 0.001) -> "TwoBranchSupercap":
        """A copy of this buffer at an operating temperature.

        Supercapacitor ESR depends strongly on temperature — electrolyte
        ion mobility falls as it cools, so ESR roughly triples between
        room temperature and -20 C while capacitance sags a few percent
        (the temperature axis of the characterization the paper notes
        industry performs but never ships to software, §II-D). The model:
        ``ESR *= exp(esr_tempco * (25 - T))`` and
        ``C *= 1 - cap_tempco * (25 - T)``, both referenced to 25 C.
        """
        if esr_tempco < 0 or cap_tempco < 0:
            raise ValueError("temperature coefficients must be >= 0")
        delta = 25.0 - celsius
        esr_factor = math.exp(esr_tempco * delta)
        cap_factor = max(0.5, 1.0 - cap_tempco * delta)
        clone = TwoBranchSupercap(
            self.c_main * cap_factor,
            self.r_esr * esr_factor,
            self.c_redist * cap_factor,
            self.r_redist * esr_factor if self._has_redist else self.r_redist,
            self.c_decoupling,
            self.leakage_current,
        )
        clone.reset(self.open_circuit_voltage)
        return clone

    def with_decoupling(self, c_decoupling: float) -> "TwoBranchSupercap":
        """A copy with a different amount of decoupling capacitance."""
        clone = TwoBranchSupercap(
            self.c_main, self.r_esr, self.c_redist, self.r_redist,
            c_decoupling, self.leakage_current,
        )
        clone.reset(self.open_circuit_voltage)
        return clone

    def __repr__(self) -> str:
        return (f"TwoBranchSupercap(C={self.total_capacitance * 1e3:.3g} mF, "
                f"ESR={self.r_esr:.3g} ohm, Vterm={self._v_term:.3f} V)")
