"""Capacitor-bank composition algebra.

An energy buffer is usually a *bank* of identical parts rather than a single
capacitor (the paper's 45 mF bank is six Seiko CPX supercapacitors). This
module computes the aggregate electrical properties of series/parallel
arrangements, which both the Figure 3 survey and the reconfigurable-buffer
support in Culpeo-R rely on.

For ``n_parallel`` strings of ``n_series`` identical parts each:

* capacitance scales by ``n_parallel / n_series``
* ESR scales by ``n_series / n_parallel``
* leakage current scales by ``n_parallel``
* volume and part count scale by ``n_parallel * n_series``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.capacitor import TwoBranchSupercap


@dataclass(frozen=True)
class CapacitorBank:
    """Aggregate electrical description of a bank of identical parts.

    Attributes mirror what a power-system designer reads off a bill of
    materials: total capacitance and ESR seen at the terminals, total
    leakage, total volume, and how many physical parts the bank needs.
    """

    capacitance: float
    esr: float
    leakage_current: float
    volume_mm3: float
    part_count: int
    max_voltage: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError(f"capacitance must be positive, got {self.capacitance}")
        if self.esr < 0:
            raise ValueError(f"esr must be non-negative, got {self.esr}")
        if self.part_count < 1:
            raise ValueError(f"part_count must be >= 1, got {self.part_count}")

    def as_buffer(self, redist_fraction: float = 0.10,
                  redist_resistance_ratio: float = 5.0,
                  c_decoupling: float = 0.0) -> TwoBranchSupercap:
        """Instantiate a simulatable :class:`TwoBranchSupercap` for this bank.

        ``redist_fraction`` of the total capacitance is placed in the slow
        charge-redistribution branch, whose resistance is
        ``redist_resistance_ratio`` times the bank ESR. Fractions of zero
        produce a buffer with no redistribution branch.
        """
        if not 0.0 <= redist_fraction < 1.0:
            raise ValueError(
                f"redist_fraction must be in [0, 1), got {redist_fraction}"
            )
        c_redist = self.capacitance * redist_fraction
        c_main = self.capacitance - c_redist
        return TwoBranchSupercap(
            c_main=c_main,
            r_esr=self.esr,
            c_redist=c_redist,
            r_redist=self.esr * redist_resistance_ratio,
            c_decoupling=c_decoupling,
            leakage_current=self.leakage_current,
        )


def bank_of(part_capacitance: float, part_esr: float, *,
            part_leakage: float = 0.0, part_volume_mm3: float = 0.0,
            part_max_voltage: float = 2.7, n_parallel: int = 1,
            n_series: int = 1) -> CapacitorBank:
    """Build a :class:`CapacitorBank` from one part and an arrangement."""
    if n_parallel < 1 or n_series < 1:
        raise ValueError("n_parallel and n_series must be >= 1")
    if part_capacitance <= 0:
        raise ValueError(
            f"part_capacitance must be positive, got {part_capacitance}"
        )
    return CapacitorBank(
        capacitance=part_capacitance * n_parallel / n_series,
        esr=part_esr * n_series / n_parallel,
        leakage_current=part_leakage * n_parallel,
        volume_mm3=part_volume_mm3 * n_parallel * n_series,
        part_count=n_parallel * n_series,
        max_voltage=part_max_voltage * n_series,
    )


def parts_for_target(part_capacitance: float, target_capacitance: float) -> int:
    """Parallel part count needed to reach at least ``target_capacitance``."""
    if part_capacitance <= 0 or target_capacitance <= 0:
        raise ValueError("capacitances must be positive")
    count = int(target_capacitance / part_capacitance)
    if count * part_capacitance < target_capacitance:
        count += 1
    return count
