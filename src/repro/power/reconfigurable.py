"""Reconfigurable energy storage (paper §V-B; Capybara, Morphy).

Platforms like Capybara expose several physical capacitor banks that
software can switch onto the supply rail: a small configuration recharges
quickly (reactive tasks), a large one stores more energy and has lower
aggregate ESR (heavy tasks). Culpeo supports such devices by tagging every
profile and V_safe entry with a buffer-configuration identifier; this
module supplies the buffer those tags describe.

Electrical model (per the paper): the active configuration behaves as a
single supercapacitor — the parallel combination of its banks — in series
with a small switch resistance ("a capacitor in series with a variable
resistor, capturing the effect of low resistance connections between
individual banks and the shared capacitor voltage rail"). Banks that are
switched out hold their own charge; reconnecting redistributes charge
instantly and conservatively.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from repro.errors import PowerSystemError
from repro.power.bank import CapacitorBank
from repro.power.capacitor import TwoBranchSupercap


class ReconfigurableBuffer:
    """An energy buffer made of switchable capacitor banks.

    Implements the :class:`~repro.power.capacitor.EnergyBuffer` protocol,
    so it drops into a :class:`~repro.power.system.PowerSystem` anywhere a
    fixed buffer does. ``config_id`` is a hashable tag (a frozen set of
    bank names) suitable for Culpeo's per-configuration tables.
    """

    def __init__(self, banks: Mapping[str, CapacitorBank],
                 initial_config: Iterable[str],
                 switch_resistance: float = 0.05,
                 voltage: float = 0.0,
                 redist_fraction: float = 0.10,
                 c_decoupling: float = 100e-6) -> None:
        if not banks:
            raise PowerSystemError("a reconfigurable buffer needs banks")
        if switch_resistance < 0:
            raise PowerSystemError(
                f"switch_resistance must be >= 0, got {switch_resistance}"
            )
        self._banks: Dict[str, CapacitorBank] = dict(banks)
        self.switch_resistance = switch_resistance
        self.redist_fraction = redist_fraction
        self.c_decoupling = c_decoupling
        # Per-bank rest voltage while disconnected.
        self._idle_voltage: Dict[str, float] = {
            name: float(voltage) for name in self._banks
        }
        self._active: FrozenSet[str] = frozenset()
        self._group: TwoBranchSupercap = None  # type: ignore[assignment]
        self.configure(initial_config)

    # -- configuration ----------------------------------------------------

    @property
    def config_id(self) -> FrozenSet[str]:
        """Hashable tag for the active configuration (Culpeo table key)."""
        return self._active

    @property
    def bank_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._banks))

    def bank(self, name: str) -> CapacitorBank:
        return self._banks[name]

    def _build_group(self, names: FrozenSet[str],
                     voltage: float) -> TwoBranchSupercap:
        # Iterate in sorted order: float summation order must not depend
        # on set iteration (hash randomization), or the same configuration
        # could differ in the last ulp across processes — breaking the
        # byte-identical replay and sharding contracts.
        ordered = sorted(names)
        capacitance = sum(self._banks[n].capacitance for n in ordered)
        # Parallel ESR combination of the active banks.
        conductance = sum(1.0 / self._banks[n].esr for n in ordered
                          if self._banks[n].esr > 0)
        if conductance > 0:
            esr = 1.0 / conductance
        else:
            esr = 1e-3  # all-ideal banks: a floor keeps the model sane
        esr += self.switch_resistance
        leakage = sum(self._banks[n].leakage_current for n in ordered)
        c_redist = capacitance * self.redist_fraction
        group = TwoBranchSupercap(
            c_main=capacitance - c_redist,
            r_esr=esr,
            c_redist=c_redist,
            r_redist=esr * 5.0,
            c_decoupling=self.c_decoupling,
            leakage_current=leakage,
        )
        group.reset(voltage)
        return group

    def configure(self, names: Iterable[str]) -> FrozenSet[str]:
        """Switch the rail to the given bank set, conserving charge.

        Connecting banks at different voltages redistributes their charge
        instantly (the switch resistance is far below the bank ESR); the
        rest voltage after the switch is the capacitance-weighted mean.
        Returns the new ``config_id``.
        """
        new_active = frozenset(names)
        if not new_active:
            raise PowerSystemError("a configuration needs at least one bank")
        unknown = new_active - set(self._banks)
        if unknown:
            raise PowerSystemError(f"unknown banks: {sorted(unknown)}")
        # Park the currently active banks at the group's rest voltage.
        if self._active:
            rest = self._group.open_circuit_voltage
            for name in self._active:
                self._idle_voltage[name] = rest
        # Charge-weighted merge of the newly active banks, accumulated in
        # sorted order so the result is hash-seed independent (see
        # _build_group).
        ordered = sorted(new_active)
        charge = sum(self._banks[n].capacitance * self._idle_voltage[n]
                     for n in ordered)
        capacitance = sum(self._banks[n].capacitance for n in ordered)
        voltage = charge / capacitance
        self._active = new_active
        self._group = self._build_group(new_active, voltage)
        return self._active

    # -- EnergyBuffer protocol ----------------------------------------------

    @property
    def terminal_voltage(self) -> float:
        return self._group.terminal_voltage

    @property
    def open_circuit_voltage(self) -> float:
        return self._group.open_circuit_voltage

    @property
    def stored_energy(self) -> float:
        """Energy in the active group plus the parked banks."""
        parked = sum(
            0.5 * self._banks[n].capacitance * self._idle_voltage[n] ** 2
            for n in self._banks if n not in self._active
        )
        return self._group.stored_energy + parked

    @property
    def total_capacitance(self) -> float:
        """Capacitance currently on the rail (the active group)."""
        return self._group.total_capacitance

    @property
    def r_esr(self) -> float:
        """Effective series resistance of the active configuration."""
        return self._group.r_esr

    @property
    def max_stable_dt(self) -> float:
        return self._group.max_stable_dt

    @property
    def _conductance(self) -> float:  # engine transient-tau hook
        return self._group._conductance  # noqa: SLF001

    def step(self, i_load: float, dt: float) -> float:
        return self._group.step(i_load, dt)

    def reset(self, voltage: float) -> None:
        """Rest the active group (not the parked banks) at ``voltage``."""
        self._group.reset(voltage)

    def rest_all(self, voltage: float) -> None:
        """Rest the active group *and* every parked bank at ``voltage``.

        A freshly built buffer has its parked banks at the constructor
        voltage (0 V by default), so a mid-trace reconnection would merge
        against empty banks and plunge the rail. Simulation paths that
        schedule reconfiguration events (ground truth with a
        :class:`~repro.power.reconfig.ReconfigPlan`) call this so the
        whole bank set starts from the admission voltage — the physical
        precondition a charged device actually satisfies.
        """
        self._group.reset(voltage)
        for name in self._idle_voltage:
            self._idle_voltage[name] = float(voltage)

    def settle(self) -> None:
        self._group.settle()

    def config_key(self) -> tuple:
        """State-independent electrical identity of the *active* group.

        Includes the bank-set tag, so switching configurations (the
        reconfiguration events Culpeo tags tables with) changes the key and
        invalidates any V_safe results cached against the previous one.
        """
        return ("reconfig", tuple(sorted(self._active)),
                self.switch_resistance, self._group.config_key())

    def aged(self, capacitance_factor: float = 0.8,
             esr_factor: float = 2.0) -> "ReconfigurableBuffer":
        """A copy of this buffer after end-of-life aging.

        Every bank in the set ages together — identical parts, identical
        history (paper §IV-C: capacitance to ~80 %, ESR doubled). The
        aged copy keeps the active configuration, the per-bank parked
        voltages, and the active group's open-circuit voltage, so aging
        a live plant is charge-neutral the way the fixed buffer's
        :meth:`TwoBranchSupercap.aged` is.
        """
        if capacitance_factor <= 0 or esr_factor <= 0:
            raise ValueError("aging factors must be positive")
        import dataclasses

        aged_banks = {
            name: dataclasses.replace(
                bank,
                capacitance=bank.capacitance * capacitance_factor,
                esr=bank.esr * esr_factor,
            )
            for name, bank in self._banks.items()
        }
        clone = ReconfigurableBuffer(
            aged_banks, tuple(sorted(self._active)),
            switch_resistance=self.switch_resistance,
            redist_fraction=self.redist_fraction,
            c_decoupling=self.c_decoupling,
        )
        clone._idle_voltage = dict(self._idle_voltage)
        clone._group.reset(self.open_circuit_voltage)
        return clone

    def copy(self) -> "ReconfigurableBuffer":
        clone = ReconfigurableBuffer.__new__(ReconfigurableBuffer)
        clone._banks = dict(self._banks)
        clone.switch_resistance = self.switch_resistance
        clone.redist_fraction = self.redist_fraction
        clone.c_decoupling = self.c_decoupling
        clone._idle_voltage = dict(self._idle_voltage)
        clone._active = self._active
        clone._group = self._group.copy()
        return clone

    def __repr__(self) -> str:
        active = "+".join(sorted(self._active))
        return (f"ReconfigurableBuffer([{active}], "
                f"C={self.total_capacitance * 1e3:.3g} mF, "
                f"ESR={self.r_esr:.3g} ohm)")


def capybara_bank_set(small: float = 7.5e-3, large: float = 37.5e-3,
                      part_esr: float = 20.0) -> Dict[str, CapacitorBank]:
    """A Capybara-flavoured two-bank set: one small, fast-recharging bank
    and one large reserve bank, built from the same dense supercap parts."""
    def bank(total: float) -> CapacitorBank:
        parts = max(1, round(total / 7.5e-3))
        return CapacitorBank(
            capacitance=7.5e-3 * parts,
            esr=part_esr / parts,
            leakage_current=3e-9 * parts,
            volume_mm3=9.0 * parts,
            part_count=parts,
            max_voltage=2.7,
        )

    return {"small": bank(small), "large": bank(large)}
