"""Hysteretic voltage monitor.

The monitor (BU4924-class on Capybara) gates the output booster: software
runs only while the buffer terminal voltage is between ``v_off`` and
``v_high``. Crucially, the hysteresis is *full-range*: once the terminal
voltage dips below ``v_off`` the device powers off and stays off until the
buffer has recharged all the way to ``v_high`` (paper §II-A). That long,
mandatory recharge is what converts one ESR-induced brown-out into a string
of missed application deadlines in the paper's Figures 12-13.
"""

from __future__ import annotations

from repro.units import OperatingRange


class VoltageMonitor:
    """Tracks whether the output booster is enabled, with V_high/V_off hysteresis."""

    def __init__(self, v_high: float, v_off: float,
                 start_enabled: bool = False) -> None:
        self.range = OperatingRange(v_off=v_off, v_high=v_high)
        self._enabled = start_enabled

    @property
    def v_high(self) -> float:
        return self.range.v_high

    @property
    def v_off(self) -> float:
        return self.range.v_off

    @property
    def output_enabled(self) -> bool:
        """Whether the output booster (and thus software) is currently on."""
        return self._enabled

    def observe(self, v_terminal: float) -> bool:
        """Update monitor state from a terminal-voltage sample.

        Returns the (possibly new) enabled state. Observation order matters
        only at the exact thresholds; the monitor enables at
        ``v >= v_high`` and disables at ``v < v_off``.
        """
        if self._enabled:
            if v_terminal < self.v_off:
                self._enabled = False
        else:
            if v_terminal >= self.v_high:
                self._enabled = True
        return self._enabled

    def force_enabled(self, enabled: bool) -> None:
        """Override monitor state — used by test harnesses that isolate the
        power system from the load side (paper §VI-A)."""
        self._enabled = bool(enabled)

    def copy(self) -> "VoltageMonitor":
        return VoltageMonitor(self.v_high, self.v_off, self._enabled)

    def __repr__(self) -> str:
        state = "on" if self._enabled else "off"
        return (f"VoltageMonitor(v_high={self.v_high:.2f} V, "
                f"v_off={self.v_off:.2f} V, output={state})")
