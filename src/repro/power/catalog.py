"""Capacitor-technology catalog and the Figure 3 bank survey.

The paper's Figure 3 plots volume versus ESR for 45 mF banks assembled from
four capacitor technologies (electrolytic, ceramic, tantalum, supercapacitor)
using part metadata scraped from Digikey. That scrape is not available
offline, so this module generates a *synthetic catalog* whose per-technology
parameter ranges follow the published figure: supercapacitors reach 45 mF in
the smallest volume and fewest parts but carry the highest ESR; ceramics have
negligible ESR but need thousands of parts; the smallest tantalum banks leak
tens of milliamps; electrolytics burn volume.

The generated catalog is deterministic given a seed, so the survey (and the
benchmark that regenerates Figure 3) is reproducible.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.power.bank import CapacitorBank, bank_of, parts_for_target


class CapacitorTechnology(enum.Enum):
    """Capacitor technologies surveyed in the paper's Figure 3."""

    ELECTROLYTIC = "electrolytic"
    CERAMIC = "ceramic"
    TANTALUM = "tantalum"
    SUPERCAPACITOR = "supercapacitor"


@dataclass(frozen=True)
class CapacitorPart:
    """One purchasable part, mirroring Digikey summary metadata."""

    part_number: str
    technology: CapacitorTechnology
    capacitance: float
    esr: float
    leakage_current: float
    volume_mm3: float
    max_voltage: float


# Per-technology synthesis parameters. Each entry gives log10 ranges for
# part capacitance (F) and the scaling laws tying ESR, leakage, and volume
# to capacitance. Constants are tuned so the resulting 45 mF banks land in
# the regions Figure 3 shows: supercap banks at ~10^2 mm^3 and ~1-10 ohm,
# ceramic banks at ~10^4 mm^3 and ~10^-5 ohm with >2000 parts, the smallest
# tantalum banks with ~tens of mA leakage, electrolytics at >10^5 mm^3.
_TECH_RULES: Dict[CapacitorTechnology, dict] = {
    CapacitorTechnology.SUPERCAPACITOR: dict(
        log_cap_range=(-3.0, -1.35),          # 1 mF .. 45 mF parts
        esr_at_1mF=180.0, esr_exponent=-0.8,  # ohms, falls with capacitance
        leak_per_farad=5e-7,                  # A/F: ~nA leakage
        mm3_per_joule=9.0, volume_floor=9.0,  # grain-of-rice scale parts
        max_voltage=2.7,
    ),
    CapacitorTechnology.TANTALUM: dict(
        log_cap_range=(-6.0, -3.0),           # 1 uF .. 1 mF parts
        esr_at_1mF=1.5, esr_exponent=-0.4,
        leak_per_farad=6e-1,                  # A/F: tens of mA at 45 mF
        mm3_per_joule=900.0, volume_floor=2.0,
        max_voltage=10.0,
    ),
    CapacitorTechnology.CERAMIC: dict(
        log_cap_range=(-6.0, -4.35),          # 1 uF .. 45 uF parts
        esr_at_1mF=0.010, esr_exponent=0.0,   # datasheet gap: fixed 10 mOhm
        leak_per_farad=1e-4,
        mm3_per_joule=1200.0, volume_floor=1.0,
        max_voltage=6.3,
    ),
    CapacitorTechnology.ELECTROLYTIC: dict(
        log_cap_range=(-5.0, -1.35),          # 10 uF .. 45 mF parts
        esr_at_1mF=0.9, esr_exponent=-0.5,
        leak_per_farad=2e-3,
        mm3_per_joule=4000.0, volume_floor=30.0,
        max_voltage=16.0,
    ),
}


def _synthesize_part(tech: CapacitorTechnology, index: int,
                     rng: np.random.Generator) -> CapacitorPart:
    rules = _TECH_RULES[tech]
    lo, hi = rules["log_cap_range"]
    capacitance = 10.0 ** rng.uniform(lo, hi)
    # ESR follows a power law in capacitance with lognormal part-to-part
    # scatter; the exponent encodes that bigger parts have lower ESR.
    cap_mf = capacitance * 1e3
    esr = rules["esr_at_1mF"] * cap_mf ** rules["esr_exponent"]
    esr *= 10.0 ** rng.normal(0.0, 0.18)
    leakage = rules["leak_per_farad"] * capacitance * 10.0 ** rng.normal(0.0, 0.2)
    energy = 0.5 * capacitance * rules["max_voltage"] ** 2
    volume = rules["volume_floor"] + rules["mm3_per_joule"] * energy
    volume *= 10.0 ** rng.normal(0.0, 0.12)
    return CapacitorPart(
        part_number=f"{tech.value[:4].upper()}-{index:04d}",
        technology=tech,
        capacitance=capacitance,
        esr=esr,
        leakage_current=leakage,
        volume_mm3=volume,
        max_voltage=rules["max_voltage"],
    )


def reference_catalog(parts_per_technology: int = 500,
                      seed: int = 2022) -> List[CapacitorPart]:
    """Generate the synthetic part catalog.

    Mirrors the paper's data collection: "the 500 shortest parts in each
    capacitor type category" from a distributor search restricted to parts
    between 1 uF and 45 mF.
    """
    if parts_per_technology < 1:
        raise ValueError("parts_per_technology must be >= 1")
    rng = np.random.default_rng(seed)
    catalog: List[CapacitorPart] = []
    for tech in CapacitorTechnology:
        for i in range(parts_per_technology):
            catalog.append(_synthesize_part(tech, i, rng))
    return catalog


def build_bank_survey(catalog: Sequence[CapacitorPart],
                      target_capacitance: float = 45e-3,
                      min_bank_voltage: float = 2.56,
                      max_parts: int = 5000) -> List[CapacitorBank]:
    """Form a ``target_capacitance`` bank from each catalog part.

    Follows the paper's method: stack enough copies of each part in parallel
    (adding series strings only when a single part cannot stand the bank
    voltage) until total capacitance reaches the target. Parts that would
    need more than ``max_parts`` copies are dropped, mirroring the paper's
    note that some ceramic banks need an impractical >2,000 parts (those
    survive the default cap and appear in the survey; truly absurd ones do
    not).
    """
    if target_capacitance <= 0:
        raise ValueError("target_capacitance must be positive")
    banks: List[CapacitorBank] = []
    for part in catalog:
        n_series = max(1, math.ceil(min_bank_voltage / part.max_voltage))
        per_string = part.capacitance / n_series
        n_parallel = parts_for_target(per_string, target_capacitance)
        if n_parallel * n_series > max_parts:
            continue
        banks.append(bank_of(
            part.capacitance, part.esr,
            part_leakage=part.leakage_current,
            part_volume_mm3=part.volume_mm3,
            part_max_voltage=part.max_voltage,
            n_parallel=n_parallel,
            n_series=n_series,
        ))
    return banks


def survey_by_technology(catalog: Sequence[CapacitorPart],
                         **kwargs) -> Dict[CapacitorTechnology, List[CapacitorBank]]:
    """Group :func:`build_bank_survey` results by part technology."""
    grouped: Dict[CapacitorTechnology, List[CapacitorBank]] = {
        tech: [] for tech in CapacitorTechnology
    }
    for tech in CapacitorTechnology:
        parts = [p for p in catalog if p.technology is tech]
        grouped[tech] = build_bank_survey(parts, **kwargs)
    return grouped
