"""Culpeo reproduction: ESR-aware charge management for energy-harvesting systems.

This package reproduces *An Architectural Charge Management Interface for
Energy-Harvesting Systems* (Ruppel, Surbatovich, Desai, Maeng, Lucia —
MICRO 2022). It provides:

* ``repro.power``   — energy-harvesting power-system models (supercapacitors
  with equivalent series resistance, boost converters, harvesters, voltage
  monitors) and the capacitor-technology survey of the paper's Figure 3.
* ``repro.loads``   — current-profile representations, the synthetic load
  generators of Table III, and models of the paper's real peripherals.
* ``repro.sim``     — a discrete-time device simulator: power-system
  integration, brown-out semantics, ADC models, and the Culpeo
  microarchitectural peripheral block of Table II.
* ``repro.core``    — the Culpeo contribution: the voltage-aware charge model
  (Algorithm 1), ``V_safe``/``V_safe_multi`` computation, the Table I API,
  and the Culpeo-PG / Culpeo-R-ISR / Culpeo-R-uArch implementations.
* ``repro.sched``   — the CatNap-style energy-only scheduler baseline, the
  energy-based V_safe estimators it relies on, and the Culpeo-integrated
  scheduler that restores correctness.
* ``repro.apps``    — the paper's three event-driven applications (Periodic
  Sensing, Responsive Reporting, Noise Monitoring & Reporting).
* ``repro.harness`` — ground-truth V_safe search and one experiment runner
  per figure/table in the paper's evaluation.
* ``repro.verify``  — randomized soundness verification: a differential
  oracle for the §VI-A V_safe contract, metamorphic invariants of the
  charge model, failing-case shrinking, and replayable JSON repro cases
  (``python -m repro verify``).

Quickstart::

    from repro.power import capybara_power_system
    from repro.loads import pulse_with_compute_tail
    from repro.harness import find_true_vsafe

    system = capybara_power_system()
    load = pulse_with_compute_tail(i_pulse=0.050, t_pulse=0.010)
    v_safe = find_true_vsafe(system, load)
"""

from repro.units import OperatingRange

__version__ = "1.0.0"

__all__ = ["OperatingRange", "__version__"]
