"""Exception hierarchy shared across the package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class PowerSystemError(ReproError):
    """A power-system model was configured or driven inconsistently."""


class BrownOutError(ReproError):
    """Raised when a simulated execution crossed the power-off threshold.

    Callers that treat brown-out as an expected outcome (the whole point of
    the paper is that it happens) should catch this or use APIs that report
    it as data rather than raising.
    """

    def __init__(self, message: str, time: float, voltage: float) -> None:
        super().__init__(message)
        self.time = time
        self.voltage = voltage


class ProfileError(ReproError):
    """A task profile was missing, malformed, or used out of order."""


class ScheduleError(ReproError):
    """A scheduler was asked to do something infeasible or inconsistent."""
