"""Fleet specifications: a base plant expanded into N jittered devices.

A :class:`FleetSpec` is the serializable recipe for a whole deployment:
one Capybara-class base configuration (the same parameter set
:func:`repro.power.system.capybara_power_system` takes) plus per-device
jitter half-widths modelling manufacturing spread and site-to-site
harvest variation. :meth:`FleetSpec.parameters` expands the recipe into
:class:`FleetParams` — flat numpy arrays, one slot per device — drawing
every jittered quantity from a single seeded stream, so the expansion is
a pure function of the spec and the same device index always gets the
same physical part regardless of how the batch is later sharded.

``FleetParams.device_system(i)`` rebuilds device ``i`` as an ordinary
scalar :class:`~repro.power.system.PowerSystem` **from the same float
values the arrays hold** — no re-derivation, no rounding differences —
which is what makes fleet-versus-scalar differential checks meaningful.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Optional

import numpy as np

from repro.power.booster import (
    CurvedEfficiency,
    InputBooster,
    LinearEfficiency,
    OutputBooster,
)
from repro.env.correlate import base_grid, fleet_columns
from repro.env.spec import EnvSpec
from repro.env.trace_io import trace_fingerprint
from repro.power.capacitor import TwoBranchSupercap
from repro.power.harvester import (
    ConstantPowerHarvester,
    SolarHarvester,
    TraceHarvester,
)
from repro.power.monitor import VoltageMonitor
from repro.power.system import PowerSystem, capybara_power_system

#: Spec-expansion RNG stream id, mixed with the fleet seed. Distinct from
#: the per-trial streams ``trial_rng`` derives so a fleet and a verify run
#: sharing a seed never consume the same random numbers.
_SPEC_STREAM = 0xF1EE7


@dataclass(frozen=True)
class FleetSpec:
    """A deployment recipe: base plant + per-device jitter (serializable).

    Relative jitters are half-widths of uniform factors: with
    ``esr_jitter=0.10`` every device's ESR is ``dc_esr * U(0.9, 1.1)``.
    ``harvest_period > 0`` switches all devices from constant-power
    harvesting to a clipped-sinusoid (solar-style) profile with a
    per-device phase drawn uniformly over the full cycle.
    """

    devices: int
    seed: int = 0
    # -- base plant (capybara_power_system defaults) ----------------------
    datasheet_capacitance: float = 45e-3
    capacitance_tolerance: float = 0.06
    dc_esr: float = 4.0
    c_decoupling: float = 100e-6
    leakage_current: float = 20e-9
    v_high: float = 2.56
    v_off: float = 1.6
    v_out: float = 2.55
    redist_fraction: float = 0.10
    input_efficiency: float = 0.80
    harvest_power: float = 4e-3
    harvest_period: float = 0.0
    # -- per-device jitter half-widths ------------------------------------
    esr_jitter: float = 0.10
    capacitance_jitter: float = 0.05
    harvest_jitter: float = 0.25
    eta_jitter: float = 0.02
    # -- recorded/parametric environment (overrides harvest_power/period) --
    env: Optional[EnvSpec] = None

    def __post_init__(self) -> None:
        if self.env is not None and self.harvest_period > 0:
            raise ValueError(
                "env and harvest_period are mutually exclusive — the "
                "environment engine replaces the built-in solar profile")
        if self.devices < 0:
            raise ValueError(f"devices must be >= 0, got {self.devices}")
        if self.harvest_power < 0:
            raise ValueError(
                f"harvest_power must be >= 0, got {self.harvest_power}")
        if not 0 <= self.redist_fraction < 1:
            raise ValueError(
                f"redist_fraction must be in [0, 1), "
                f"got {self.redist_fraction}")
        for name in ("esr_jitter", "capacitance_jitter", "harvest_jitter",
                     "eta_jitter"):
            value = getattr(self, name)
            if not 0 <= value < 1:
                raise ValueError(f"{name} must be in [0, 1), got {value}")

    @property
    def homogeneous(self) -> bool:
        """True when every device is an exact copy of the base plant."""
        return (self.esr_jitter == 0 and self.capacitance_jitter == 0
                and self.harvest_jitter == 0 and self.eta_jitter == 0
                and self.harvest_period == 0 and self.env is None)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["format"] = "repro.fleet-spec"
        data["version"] = 1
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        if data.get("format", "repro.fleet-spec") != "repro.fleet-spec":
            raise ValueError(f"not a fleet spec: {data.get('format')!r}")
        fields = {k: v for k, v in data.items()
                  if k not in ("format", "version")}
        if fields.get("env") is not None:
            fields["env"] = EnvSpec.from_dict(fields["env"])
        return cls(**fields)

    def base_system(self) -> PowerSystem:
        """The un-jittered base plant (what the shared firmware is gated
        against), rested at V_high."""
        if self.env is not None:
            # The un-shifted, un-jittered environment on the fleet's
            # shared grid — the same floats device columns derive from.
            edges, base = base_grid(self.env)
            harvester: object = TraceHarvester(edges, base)
        elif self.harvest_period <= 0:
            harvester = ConstantPowerHarvester(self.harvest_power)
        else:
            harvester = SolarHarvester(peak=self.harvest_power,
                                       period=self.harvest_period)
        system = capybara_power_system(
            datasheet_capacitance=self.datasheet_capacitance,
            capacitance_tolerance=self.capacitance_tolerance,
            dc_esr=self.dc_esr,
            c_decoupling=self.c_decoupling,
            leakage_current=self.leakage_current,
            v_high=self.v_high,
            v_off=self.v_off,
            v_out=self.v_out,
            harvester=harvester,
            redist_fraction=self.redist_fraction,
        )
        system.rest_at(self.v_high)
        return system

    def parameters(self) -> "FleetParams":
        """Expand into per-device parameter arrays (seeded, deterministic).

        All four jitter streams are drawn in a fixed order for the whole
        fleet at once, so zeroing one jitter never reshuffles another and
        a shard ``[a:b]`` of a large fleet holds exactly the devices the
        full expansion would give those indices.
        """
        n = self.devices
        rng = np.random.default_rng((self.seed, _SPEC_STREAM))
        esr_f = 1.0 + self.esr_jitter * rng.uniform(-1.0, 1.0, n)
        cap_f = 1.0 + self.capacitance_jitter * rng.uniform(-1.0, 1.0, n)
        harv_f = 1.0 + self.harvest_jitter * rng.uniform(-1.0, 1.0, n)
        eta_f = 1.0 + self.eta_jitter * rng.uniform(-1.0, 1.0, n)
        phase = rng.uniform(0.0, 2.0 * math.pi, n)

        # Elementwise mirror of capybara_power_system's derivations.
        true_c = self.datasheet_capacitance * cap_f \
            * (1.0 + self.capacitance_tolerance)
        c_redist = true_c * self.redist_fraction
        c_main = true_c - c_redist - self.c_decoupling
        if n and c_main.min() <= 0:
            raise ValueError(
                "decoupling + redistribution exceed total capacitance for "
                "at least one device — lower capacitance_jitter or "
                "c_decoupling")
        r_esr = self.dc_esr * esr_f
        eta_defaults = CurvedEfficiency()
        harvest_edges = harvest_powers = None
        harvest_fp = ""
        if self.env is not None:
            # Correlated environment: shared grid, per-device columns,
            # each scaled by the device's harvest jitter factor (site
            # shading). Regenerated identically in every shard worker —
            # the columns never travel between processes.
            harvest_edges, columns = fleet_columns(self.env, n)
            harvest_powers = columns * harv_f[:, None]
            harvest_fp = trace_fingerprint(harvest_edges, harvest_powers)
        return FleetParams(
            spec=self,
            c_main=c_main,
            r_esr=r_esr,
            c_redist=c_redist,
            r_redist=r_esr * 5.0,
            c_decoupling=np.full(n, self.c_decoupling),
            leakage=np.full(n, self.leakage_current),
            eta_base=eta_defaults.base * eta_f,
            p_harvest=self.harvest_power * harv_f,
            phase=(phase if self.harvest_period > 0 else np.zeros(n)),
            harvest_edges=harvest_edges,
            harvest_powers=harvest_powers,
            harvest_fp=harvest_fp,
        )


@dataclass(frozen=True)
class FleetParams:
    """Per-device physical parameters as flat arrays (one slot/device).

    Scalar knobs that the jitter model never varies (booster curve shape,
    monitor rails, converter limits) stay on :attr:`spec`; the kernel
    hoists them once per batch exactly like the scalar fastpath does.
    """

    spec: FleetSpec
    c_main: np.ndarray
    r_esr: np.ndarray
    c_redist: np.ndarray
    r_redist: np.ndarray
    c_decoupling: np.ndarray
    leakage: np.ndarray
    eta_base: np.ndarray
    p_harvest: np.ndarray
    phase: np.ndarray
    # Environment replay (spec.env only): shared piece edges, one power
    # column per device, and the content fingerprint of the whole batch.
    harvest_edges: Optional[np.ndarray] = None
    harvest_powers: Optional[np.ndarray] = None
    harvest_fp: str = ""

    @property
    def n(self) -> int:
        return int(self.c_main.shape[0])

    def slice(self, start: int, stop: int) -> "FleetParams":
        """Devices ``[start, stop)`` as a smaller parameter block.

        Shards of a deterministic expansion: ``spec.parameters().slice(a,
        b)`` holds exactly the devices the full expansion gives indices
        ``a..b-1``, which is what makes process-sharded fleet runs
        byte-identical to serial ones.
        """
        return FleetParams(
            spec=self.spec,
            c_main=self.c_main[start:stop],
            r_esr=self.r_esr[start:stop],
            c_redist=self.c_redist[start:stop],
            r_redist=self.r_redist[start:stop],
            c_decoupling=self.c_decoupling[start:stop],
            leakage=self.leakage[start:stop],
            eta_base=self.eta_base[start:stop],
            p_harvest=self.p_harvest[start:stop],
            phase=self.phase[start:stop],
            harvest_edges=self.harvest_edges,
            harvest_powers=(None if self.harvest_powers is None
                            else self.harvest_powers[start:stop]),
            harvest_fp=self.harvest_fp,
        )

    def device_harvester(self, i: int):
        spec = self.spec
        if self.harvest_edges is not None:
            # The device's environment column, verbatim — the scalar
            # plant replays the same floats the fleet kernels hold.
            return TraceHarvester(self.harvest_edges,
                                  self.harvest_powers[i])
        if spec.harvest_period > 0:
            return SolarHarvester(peak=float(self.p_harvest[i]),
                                  period=spec.harvest_period,
                                  phase=float(self.phase[i]))
        return ConstantPowerHarvester(float(self.p_harvest[i]))

    def device_system(self, i: int,
                      rest_at: Optional[float] = None) -> PowerSystem:
        """Device ``i`` as a scalar :class:`PowerSystem`.

        Built directly from the array entries (not re-derived from the
        spec), so the scalar plant and the fleet slot are the same floats
        bit-for-bit. Rested at ``rest_at`` (default V_high).
        """
        spec = self.spec
        buffer = TwoBranchSupercap(
            c_main=float(self.c_main[i]),
            r_esr=float(self.r_esr[i]),
            c_redist=float(self.c_redist[i]),
            r_redist=float(self.r_redist[i]),
            c_decoupling=float(self.c_decoupling[i]),
            leakage_current=float(self.leakage[i]),
        )
        system = PowerSystem(
            buffer=buffer,
            output_booster=OutputBooster(
                v_out=spec.v_out,
                efficiency_model=CurvedEfficiency(
                    base=float(self.eta_base[i])),
                min_input_voltage=0.5,
                power_derating=0.6,
            ),
            input_booster=InputBooster(
                efficiency_model=LinearEfficiency(
                    slope=0.0, intercept=spec.input_efficiency),
                v_max=spec.v_high,
            ),
            monitor=VoltageMonitor(v_high=spec.v_high, v_off=spec.v_off),
            harvester=self.device_harvester(i),
            name=f"fleet-device-{i}",
            datasheet_capacitance=spec.datasheet_capacitance,
        )
        system.rest_at(spec.v_high if rest_at is None else rest_at)
        return system
