"""Fleet specifications: a base plant expanded into N jittered devices.

A :class:`FleetSpec` is the serializable recipe for a whole deployment:
one Capybara-class base configuration (the same parameter set
:func:`repro.power.system.capybara_power_system` takes) plus per-device
jitter half-widths modelling manufacturing spread and site-to-site
harvest variation. :meth:`FleetSpec.parameters` expands the recipe into
:class:`FleetParams` — flat numpy arrays, one slot per device — drawing
every jittered quantity from a single seeded stream, so the expansion is
a pure function of the spec and the same device index always gets the
same physical part regardless of how the batch is later sharded.

``FleetParams.device_system(i)`` rebuilds device ``i`` as an ordinary
scalar :class:`~repro.power.system.PowerSystem` **from the same float
values the arrays hold** — no re-derivation, no rounding differences —
which is what makes fleet-versus-scalar differential checks meaningful.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Optional

import numpy as np

from repro.power.booster import (
    CurvedEfficiency,
    InputBooster,
    LinearEfficiency,
    OutputBooster,
)
from repro.env.correlate import base_grid, fleet_columns
from repro.env.spec import EnvSpec
from repro.env.trace_io import trace_fingerprint
from repro.power.bank import CapacitorBank
from repro.power.capacitor import TwoBranchSupercap
from repro.power.reconfigurable import ReconfigurableBuffer
from repro.power.harvester import (
    ConstantPowerHarvester,
    SolarHarvester,
    TraceHarvester,
)
from repro.power.monitor import VoltageMonitor
from repro.power.system import PowerSystem, capybara_power_system

#: Spec-expansion RNG stream id, mixed with the fleet seed. Distinct from
#: the per-trial streams ``trial_rng`` derives so a fleet and a verify run
#: sharing a seed never consume the same random numbers.
_SPEC_STREAM = 0xF1EE7

#: Bank-axis RNG stream id: per-device configuration assignment draws come
#: from their own stream, so enabling the bank axis never perturbs the
#: jitter draws of an existing seeded fleet.
_FLEET_BANK_STREAM = 0xBA7F


@dataclass(frozen=True)
class FleetBankSpec:
    """Reconfigurable-bank axis of a fleet (serializable).

    ``banks`` are the physical banks every device carries, as
    ``(name, capacitance, esr, leakage_current)`` rows; ``configs`` the
    candidate active sets devices power up in. Expansion assigns each
    device one configuration (seeded, from the dedicated bank stream) and
    derives its electrical group exactly the way
    :class:`repro.power.reconfigurable.ReconfigurableBuffer` does — same
    formulas, same sorted-bank float order — so the scalar mirror of a
    fleet slot is the same buffer bit for bit.
    """

    banks: tuple
    configs: tuple
    switch_resistance: float = 0.05

    def __post_init__(self) -> None:
        banks = tuple((str(n), float(c), float(e), float(l))
                      for n, c, e, l in self.banks)
        if not banks:
            raise ValueError("a bank spec needs at least one bank")
        names = {n for n, *_ in banks}
        if len(names) != len(banks):
            raise ValueError("bank names must be unique")
        for name, cap, esr, leak in banks:
            if cap <= 0:
                raise ValueError(f"bank {name!r} capacitance must be > 0")
            if esr < 0 or leak < 0:
                raise ValueError(f"bank {name!r} esr/leakage must be >= 0")
        configs = tuple(tuple(sorted(str(b) for b in config))
                        for config in self.configs)
        if not configs:
            raise ValueError("a bank spec needs at least one configuration")
        for config in configs:
            if not config:
                raise ValueError("a configuration needs at least one bank")
            unknown = set(config) - names
            if unknown:
                raise ValueError(f"unknown banks in config: {sorted(unknown)}")
        if self.switch_resistance < 0:
            raise ValueError("switch_resistance must be >= 0")
        object.__setattr__(self, "banks", banks)
        object.__setattr__(self, "configs", configs)

    @property
    def bank_names(self) -> tuple:
        """All bank names, sorted — the canonical array column order."""
        return tuple(sorted(n for n, *_ in self.banks))

    def to_dict(self) -> dict:
        return {
            "banks": [list(row) for row in self.banks],
            "configs": [list(c) for c in self.configs],
            "switch_resistance": self.switch_resistance,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetBankSpec":
        return cls(
            banks=tuple(tuple(row) for row in data["banks"]),
            configs=tuple(tuple(c) for c in data["configs"]),
            switch_resistance=float(data.get("switch_resistance", 0.05)),
        )

    @classmethod
    def capybara(cls, datasheet_capacitance: float = 45e-3,
                 dc_esr: float = 4.0) -> "FleetBankSpec":
        """The default two-bank split (the chaos campaign's recipe): a
        small fast-recharging bank at a quarter of the datasheet
        capacitance and a large reserve at three quarters, both built
        from the same dense supercap parts."""
        from repro.power.reconfigurable import capybara_bank_set

        banks = capybara_bank_set(small=0.25 * datasheet_capacitance,
                                  large=0.75 * datasheet_capacitance,
                                  part_esr=4.0 * dc_esr)
        rows = tuple(sorted(
            (name, bank.capacitance, bank.esr, bank.leakage_current)
            for name, bank in banks.items()))
        return cls(banks=rows,
                   configs=(("small",), ("large",), ("large", "small")))


def bank_group_params(bank_caps: np.ndarray, bank_esrs: np.ndarray,
                      bank_leaks: np.ndarray, members: "list",
                      switch_resistance: float,
                      redist_fraction: float) -> dict:
    """Elementwise mirror of ``ReconfigurableBuffer._build_group``.

    ``bank_caps``/``bank_esrs`` are ``(n, B)`` per-device arrays in
    sorted-bank-name column order, ``bank_leaks`` the shared ``(B,)``
    leakage column, ``members`` the column indices of the active set *in
    sorted name order*. Accumulation happens column by column in that
    order — the same left-to-right float summation the scalar buffer
    performs — so a fleet slot and its scalar mirror agree bit for bit.
    Shared by spec expansion and the mid-run reconfiguration driver so
    the two can never drift apart.
    """
    n = bank_caps.shape[0]
    capacitance = np.zeros(n)
    conductance = np.zeros(n)
    leakage = np.zeros(n)
    for j in members:
        capacitance = capacitance + bank_caps[:, j]
        esr_col = bank_esrs[:, j]
        conductance = conductance + np.where(esr_col > 0,
                                             1.0 / esr_col, 0.0)
        leakage = leakage + bank_leaks[j]
    esr = np.where(conductance > 0, 1.0 / conductance, 1e-3)
    esr = esr + switch_resistance
    c_redist = capacitance * redist_fraction
    return {
        "c_main": capacitance - c_redist,
        "r_esr": esr,
        "c_redist": c_redist,
        "r_redist": esr * 5.0,
        "leakage": leakage,
    }


@dataclass(frozen=True)
class FleetSpec:
    """A deployment recipe: base plant + per-device jitter (serializable).

    Relative jitters are half-widths of uniform factors: with
    ``esr_jitter=0.10`` every device's ESR is ``dc_esr * U(0.9, 1.1)``.
    ``harvest_period > 0`` switches all devices from constant-power
    harvesting to a clipped-sinusoid (solar-style) profile with a
    per-device phase drawn uniformly over the full cycle.
    """

    devices: int
    seed: int = 0
    # -- base plant (capybara_power_system defaults) ----------------------
    datasheet_capacitance: float = 45e-3
    capacitance_tolerance: float = 0.06
    dc_esr: float = 4.0
    c_decoupling: float = 100e-6
    leakage_current: float = 20e-9
    v_high: float = 2.56
    v_off: float = 1.6
    v_out: float = 2.55
    redist_fraction: float = 0.10
    input_efficiency: float = 0.80
    harvest_power: float = 4e-3
    harvest_period: float = 0.0
    # -- per-device jitter half-widths ------------------------------------
    esr_jitter: float = 0.10
    capacitance_jitter: float = 0.05
    harvest_jitter: float = 0.25
    eta_jitter: float = 0.02
    # -- recorded/parametric environment (overrides harvest_power/period) --
    env: Optional[EnvSpec] = None
    # -- reconfigurable-bank axis (replaces the fixed supercap) -----------
    bank: Optional[FleetBankSpec] = None

    def __post_init__(self) -> None:
        if self.env is not None and self.harvest_period > 0:
            raise ValueError(
                "env and harvest_period are mutually exclusive — the "
                "environment engine replaces the built-in solar profile")
        if self.devices < 0:
            raise ValueError(f"devices must be >= 0, got {self.devices}")
        if self.harvest_power < 0:
            raise ValueError(
                f"harvest_power must be >= 0, got {self.harvest_power}")
        if not 0 <= self.redist_fraction < 1:
            raise ValueError(
                f"redist_fraction must be in [0, 1), "
                f"got {self.redist_fraction}")
        for name in ("esr_jitter", "capacitance_jitter", "harvest_jitter",
                     "eta_jitter"):
            value = getattr(self, name)
            if not 0 <= value < 1:
                raise ValueError(f"{name} must be in [0, 1), got {value}")

    @property
    def homogeneous(self) -> bool:
        """True when every device is an exact copy of the base plant."""
        return (self.esr_jitter == 0 and self.capacitance_jitter == 0
                and self.harvest_jitter == 0 and self.eta_jitter == 0
                and self.harvest_period == 0 and self.env is None
                # Per-device configuration assignment makes devices
                # electrically distinct even with every jitter zeroed.
                and self.bank is None)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["format"] = "repro.fleet-spec"
        data["version"] = 1
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        if data.get("format", "repro.fleet-spec") != "repro.fleet-spec":
            raise ValueError(f"not a fleet spec: {data.get('format')!r}")
        fields = {k: v for k, v in data.items()
                  if k not in ("format", "version")}
        if fields.get("env") is not None:
            fields["env"] = EnvSpec.from_dict(fields["env"])
        if fields.get("bank") is not None:
            fields["bank"] = FleetBankSpec.from_dict(fields["bank"])
        return cls(**fields)

    def base_system(self) -> PowerSystem:
        """The un-jittered base plant (what the shared firmware is gated
        against), rested at V_high."""
        if self.env is not None:
            # The un-shifted, un-jittered environment on the fleet's
            # shared grid — the same floats device columns derive from.
            edges, base = base_grid(self.env)
            harvester: object = TraceHarvester(edges, base)
        elif self.harvest_period <= 0:
            harvester = ConstantPowerHarvester(self.harvest_power)
        else:
            harvester = SolarHarvester(peak=self.harvest_power,
                                       period=self.harvest_period)
        system = capybara_power_system(
            datasheet_capacitance=self.datasheet_capacitance,
            capacitance_tolerance=self.capacitance_tolerance,
            dc_esr=self.dc_esr,
            c_decoupling=self.c_decoupling,
            leakage_current=self.leakage_current,
            v_high=self.v_high,
            v_off=self.v_off,
            v_out=self.v_out,
            harvester=harvester,
            redist_fraction=self.redist_fraction,
        )
        system.rest_at(self.v_high)
        return system

    def _nominal_banks(self) -> dict:
        """Un-jittered :class:`CapacitorBank` set (datasheet values with
        the fleet's capacitance tolerance applied, like the fixed plant)."""
        tol = 1.0 + self.capacitance_tolerance
        return {
            name: CapacitorBank(
                capacitance=cap * tol, esr=esr, leakage_current=leak,
                volume_mm3=0.0, part_count=1, max_voltage=self.v_high,
            )
            for name, cap, esr, leak in self.bank.banks
        }

    def bank_system(self, config) -> PowerSystem:
        """The un-jittered base plant in one bank configuration.

        This is what the shared firmware's per-configuration gate table
        is derived from (§V-B: every table row keyed by the configuration
        it was measured in). The design-time capacitance knowledge is the
        sum of the *nominal* bank values in the active set — stale versus
        the tolerance-inflated plant, exactly like the fixed fleet's
        datasheet field.
        """
        if self.bank is None:
            raise ValueError("bank_system requires a bank axis on the spec")
        system = self.base_system()
        buffer = ReconfigurableBuffer(
            self._nominal_banks(), tuple(config),
            switch_resistance=self.bank.switch_resistance,
            redist_fraction=self.redist_fraction,
            c_decoupling=self.c_decoupling,
        )
        system.buffer = buffer
        active = set(config)
        system.datasheet_capacitance = sum(
            cap for name, cap, *_ in self.bank.banks if name in active)
        system.rest_at(self.v_high)
        buffer.rest_all(self.v_high)
        return system

    def parameters(self) -> "FleetParams":
        """Expand into per-device parameter arrays (seeded, deterministic).

        All four jitter streams are drawn in a fixed order for the whole
        fleet at once, so zeroing one jitter never reshuffles another and
        a shard ``[a:b]`` of a large fleet holds exactly the devices the
        full expansion would give those indices.
        """
        n = self.devices
        rng = np.random.default_rng((self.seed, _SPEC_STREAM))
        esr_f = 1.0 + self.esr_jitter * rng.uniform(-1.0, 1.0, n)
        cap_f = 1.0 + self.capacitance_jitter * rng.uniform(-1.0, 1.0, n)
        harv_f = 1.0 + self.harvest_jitter * rng.uniform(-1.0, 1.0, n)
        eta_f = 1.0 + self.eta_jitter * rng.uniform(-1.0, 1.0, n)
        phase = rng.uniform(0.0, 2.0 * math.pi, n)

        # Elementwise mirror of capybara_power_system's derivations.
        true_c = self.datasheet_capacitance * cap_f \
            * (1.0 + self.capacitance_tolerance)
        c_redist = true_c * self.redist_fraction
        c_main = true_c - c_redist - self.c_decoupling
        if n and c_main.min() <= 0:
            raise ValueError(
                "decoupling + redistribution exceed total capacitance for "
                "at least one device — lower capacitance_jitter or "
                "c_decoupling")
        r_esr = self.dc_esr * esr_f
        eta_defaults = CurvedEfficiency()
        harvest_edges = harvest_powers = None
        harvest_fp = ""
        if self.env is not None:
            # Correlated environment: shared grid, per-device columns,
            # each scaled by the device's harvest jitter factor (site
            # shading). Regenerated identically in every shard worker —
            # the columns never travel between processes.
            harvest_edges, columns = fleet_columns(self.env, n)
            harvest_powers = columns * harv_f[:, None]
            harvest_fp = trace_fingerprint(harvest_edges, harvest_powers)

        config_idx = bank_caps = bank_esrs = bank_leaks = None
        r_redist = r_esr * 5.0
        leakage = np.full(n, self.leakage_current)
        if self.bank is not None:
            # Bank axis: per-device configuration assignment from the
            # dedicated bank stream (the jitter draws above are
            # untouched), then the assigned configuration's electrical
            # group derived elementwise exactly as the scalar
            # ReconfigurableBuffer derives it. Column order is sorted
            # bank names; the same cap/ESR jitter factors apply to every
            # bank of a device (one production lot per device).
            bank_rng = np.random.default_rng((self.seed, _FLEET_BANK_STREAM))
            configs = self.bank.configs
            config_idx = bank_rng.integers(0, len(configs), n)
            names = self.bank.bank_names
            by_name = {row[0]: row for row in self.bank.banks}
            tol = 1.0 + self.capacitance_tolerance
            bank_caps = np.stack(
                [by_name[name][1] * cap_f * tol for name in names], axis=1)
            bank_esrs = np.stack(
                [by_name[name][2] * esr_f for name in names], axis=1)
            bank_leaks = np.array([by_name[name][3] for name in names])
            col = {name: j for j, name in enumerate(names)}
            rows = np.arange(n)
            per_config = [
                bank_group_params(
                    bank_caps, bank_esrs, bank_leaks,
                    [col[b] for b in config],  # already sorted
                    self.bank.switch_resistance, self.redist_fraction)
                for config in configs
            ]

            def _pick(key: str) -> np.ndarray:
                stacked = np.stack([p[key] for p in per_config])
                return stacked[config_idx, rows]

            c_main = _pick("c_main")
            r_esr = _pick("r_esr")
            c_redist = _pick("c_redist")
            r_redist = _pick("r_redist")
            leakage = _pick("leakage")
        return FleetParams(
            spec=self,
            c_main=c_main,
            r_esr=r_esr,
            c_redist=c_redist,
            r_redist=r_redist,
            c_decoupling=np.full(n, self.c_decoupling),
            leakage=leakage,
            eta_base=eta_defaults.base * eta_f,
            p_harvest=self.harvest_power * harv_f,
            phase=(phase if self.harvest_period > 0 else np.zeros(n)),
            harvest_edges=harvest_edges,
            harvest_powers=harvest_powers,
            harvest_fp=harvest_fp,
            config_idx=config_idx,
            bank_caps=bank_caps,
            bank_esrs=bank_esrs,
            bank_leaks=bank_leaks,
        )


@dataclass(frozen=True)
class FleetParams:
    """Per-device physical parameters as flat arrays (one slot/device).

    Scalar knobs that the jitter model never varies (booster curve shape,
    monitor rails, converter limits) stay on :attr:`spec`; the kernel
    hoists them once per batch exactly like the scalar fastpath does.
    """

    spec: FleetSpec
    c_main: np.ndarray
    r_esr: np.ndarray
    c_redist: np.ndarray
    r_redist: np.ndarray
    c_decoupling: np.ndarray
    leakage: np.ndarray
    eta_base: np.ndarray
    p_harvest: np.ndarray
    phase: np.ndarray
    # Environment replay (spec.env only): shared piece edges, one power
    # column per device, and the content fingerprint of the whole batch.
    harvest_edges: Optional[np.ndarray] = None
    harvest_powers: Optional[np.ndarray] = None
    harvest_fp: str = ""
    # Bank axis (spec.bank only): per-device configuration index into
    # ``spec.bank.configs``, per-device per-bank electricals in sorted
    # bank-name column order, and the shared per-bank leakage column.
    config_idx: Optional[np.ndarray] = None
    bank_caps: Optional[np.ndarray] = None
    bank_esrs: Optional[np.ndarray] = None
    bank_leaks: Optional[np.ndarray] = None

    @property
    def n(self) -> int:
        return int(self.c_main.shape[0])

    def slice(self, start: int, stop: int) -> "FleetParams":
        """Devices ``[start, stop)`` as a smaller parameter block.

        Shards of a deterministic expansion: ``spec.parameters().slice(a,
        b)`` holds exactly the devices the full expansion gives indices
        ``a..b-1``, which is what makes process-sharded fleet runs
        byte-identical to serial ones.
        """
        return FleetParams(
            spec=self.spec,
            c_main=self.c_main[start:stop],
            r_esr=self.r_esr[start:stop],
            c_redist=self.c_redist[start:stop],
            r_redist=self.r_redist[start:stop],
            c_decoupling=self.c_decoupling[start:stop],
            leakage=self.leakage[start:stop],
            eta_base=self.eta_base[start:stop],
            p_harvest=self.p_harvest[start:stop],
            phase=self.phase[start:stop],
            harvest_edges=self.harvest_edges,
            harvest_powers=(None if self.harvest_powers is None
                            else self.harvest_powers[start:stop]),
            harvest_fp=self.harvest_fp,
            config_idx=(None if self.config_idx is None
                        else self.config_idx[start:stop]),
            bank_caps=(None if self.bank_caps is None
                       else self.bank_caps[start:stop]),
            bank_esrs=(None if self.bank_esrs is None
                       else self.bank_esrs[start:stop]),
            bank_leaks=self.bank_leaks,
        )

    def device_harvester(self, i: int):
        spec = self.spec
        if self.harvest_edges is not None:
            # The device's environment column, verbatim — the scalar
            # plant replays the same floats the fleet kernels hold.
            return TraceHarvester(self.harvest_edges,
                                  self.harvest_powers[i])
        if spec.harvest_period > 0:
            return SolarHarvester(peak=float(self.p_harvest[i]),
                                  period=spec.harvest_period,
                                  phase=float(self.phase[i]))
        return ConstantPowerHarvester(float(self.p_harvest[i]))

    def device_system(self, i: int,
                      rest_at: Optional[float] = None) -> PowerSystem:
        """Device ``i`` as a scalar :class:`PowerSystem`.

        Built directly from the array entries (not re-derived from the
        spec), so the scalar plant and the fleet slot are the same floats
        bit-for-bit. Rested at ``rest_at`` (default V_high).
        """
        spec = self.spec
        if spec.bank is not None:
            buffer: object = self.device_buffer(i)
        else:
            buffer = TwoBranchSupercap(
                c_main=float(self.c_main[i]),
                r_esr=float(self.r_esr[i]),
                c_redist=float(self.c_redist[i]),
                r_redist=float(self.r_redist[i]),
                c_decoupling=float(self.c_decoupling[i]),
                leakage_current=float(self.leakage[i]),
            )
        system = PowerSystem(
            buffer=buffer,
            output_booster=OutputBooster(
                v_out=spec.v_out,
                efficiency_model=CurvedEfficiency(
                    base=float(self.eta_base[i])),
                min_input_voltage=0.5,
                power_derating=0.6,
            ),
            input_booster=InputBooster(
                efficiency_model=LinearEfficiency(
                    slope=0.0, intercept=spec.input_efficiency),
                v_max=spec.v_high,
            ),
            monitor=VoltageMonitor(v_high=spec.v_high, v_off=spec.v_off),
            harvester=self.device_harvester(i),
            name=f"fleet-device-{i}",
            datasheet_capacitance=(None if spec.bank is not None
                                   else spec.datasheet_capacitance),
        )
        level = spec.v_high if rest_at is None else rest_at
        system.rest_at(level)
        if spec.bank is not None:
            # Idle banks rest at the same level the active group does, so
            # a scalar replay of a mid-run reconfiguration merges against
            # the same parked voltages the fleet driver tracks.
            buffer.rest_all(level)
        return system

    def device_buffer(self, i: int) -> ReconfigurableBuffer:
        """Device ``i``'s reconfigurable buffer, from the same jittered
        floats the group-parameter arrays were derived from — the scalar
        mirror of the fleet slot, bit for bit."""
        spec = self.spec
        names = spec.bank.bank_names
        banks = {
            name: CapacitorBank(
                capacitance=float(self.bank_caps[i, j]),
                esr=float(self.bank_esrs[i, j]),
                leakage_current=float(self.bank_leaks[j]),
                volume_mm3=0.0,
                part_count=1,
                max_voltage=spec.v_high,
            )
            for j, name in enumerate(names)
        }
        config = spec.bank.configs[int(self.config_idx[i])]
        return ReconfigurableBuffer(
            banks, config,
            switch_resistance=spec.bank.switch_resistance,
            redist_fraction=spec.redist_fraction,
            c_decoupling=spec.c_decoupling,
        )
