"""Fleet-scale vectorized simulation: N jittered devices per step.

The scalar stack simulates one device at a time; this package holds the
whole deployment in numpy arrays and advances every device per vector
operation — the regime the ROADMAP's production north star (millions of
harvesting devices) actually runs in. Three layers:

* :mod:`~repro.fleet.spec` — :class:`FleetSpec`, a seeded serializable
  recipe expanding one base plant into per-device parameter arrays;
* :mod:`~repro.fleet.kernel` — the batched stepping kernel, replaying
  the scalar fastpath recurrence across the batch with masked brown-out
  handling (documented tolerance, enforced by the equivalence suite);
* :mod:`~repro.fleet.runner` — shared-firmware program execution over
  the batch, aggregating the chaos campaign's four-way classification
  into any-jobs byte-identical :class:`FleetReport`s, with a
  :mod:`~repro.fleet.differential` mode cross-checking sampled devices
  against the scalar kernel (``repro fleet --check N``).

A fourth entry point, :mod:`~repro.fleet.batch`, inverts the spec's
shape for the serving layer: N *unrelated* one-shot queries — each with
its own plant and start voltage — assembled into one kernel call, with
per-lane answers byte-identical to a batch of one.
"""

from repro.fleet.batch import (
    BATCH_ENGINES,
    BatchPlant,
    BatchQuery,
    BatchResult,
    BatchShared,
    advance_batch,
    build_batch,
    shared_key,
)
from repro.fleet.differential import (
    CrossCheckResult,
    DeviceMismatch,
    cross_check,
    run_device_scalar,
    sample_indices,
)
from repro.fleet.kernel import (
    T_TOL,
    V_TOL,
    FleetRecorder,
    FleetState,
    advance,
)
from repro.fleet.runner import (
    FLEET_ENGINES,
    FleetOutcomes,
    FleetReport,
    run_fleet,
    run_fleet_raw,
    summarize,
)
from repro.fleet.spec import FleetParams, FleetSpec
from repro.segalg.vector import advance_fleet

__all__ = [
    "BATCH_ENGINES",
    "BatchPlant",
    "BatchQuery",
    "BatchResult",
    "BatchShared",
    "advance_batch",
    "build_batch",
    "shared_key",
    "FLEET_ENGINES",
    "advance_fleet",
    "FleetSpec",
    "FleetParams",
    "FleetState",
    "FleetRecorder",
    "advance",
    "V_TOL",
    "T_TOL",
    "FleetOutcomes",
    "FleetReport",
    "run_fleet",
    "run_fleet_raw",
    "summarize",
    "CrossCheckResult",
    "DeviceMismatch",
    "cross_check",
    "run_device_scalar",
    "sample_indices",
]
