"""Differential cross-check: sampled fleet devices vs the scalar kernel.

The fleet kernel's equivalence contract (see :mod:`repro.fleet.kernel`)
is enforced two ways: the pytest equivalence suite compares raw
trajectories, and this module provides the *runtime* check behind
``repro fleet --check N`` — re-run a sampled subset of devices through
the scalar ``fastpath`` kernel with the **same** charge/execute/classify
logic the fleet runner uses, and compare outcomes and final state.

Comparisons:

* outcome classification and committed-task count: exact match;
* brown-out time, final simulated time: within :data:`~repro.fleet.kernel.T_TOL`;
* V_min and final terminal voltage: within :data:`~repro.fleet.kernel.V_TOL`;
* delivered energy: within :data:`E_TOL` (J).

The scalar mirror builds each device with
:meth:`FleetParams.device_system` — the identical floats the vectorized
arrays hold — so any disagreement beyond tolerance is a kernel bug, not
parameter drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fleet.kernel import T_TOL, V_TOL
from repro.fleet.runner import (
    CHARGE_CHUNK,
    PROGRESS_EPS,
    STALL_CHUNKS,
    FleetOutcomes,
)
from repro.fleet.spec import FleetParams

#: Documented fleet-vs-scalar tolerance on delivered energy (J): ulp-level
#: per-step drift integrated over ~1e5 accumulations of ~1e-4 J terms.
E_TOL = 1e-6

#: Segalg-engine differential tolerances. The fleet algebra path and the
#: scalar algebra path converge to the same per-interval fixed points,
#: but they compile *different* segment programs — the fleet program uses
#: fleet-wide conservative subdivision bounds (min capacitance, worst-case
#: bounding current), a per-device scalar compile uses that device's own —
#: so interval partitions differ and the midpoint-sampled quantities pick
#: up partition sensitivity (~1e-3 V, ~1e-2 relative energy on jittered
#: fleets; exact agreement on homogeneous ones). These bounds cover the
#: partition term, not just float drift.
V_TOL_SEGALG = 5e-3
T_TOL_SEGALG = 2e-2
E_TOL_SEGALG = 2e-2


@dataclass
class DeviceMismatch:
    """One sampled device whose scalar re-run disagreed with the fleet."""

    device: int
    field: str
    fleet: object
    scalar: object

    def __str__(self) -> str:
        return (f"device {self.device}: {self.field} fleet={self.fleet!r} "
                f"scalar={self.scalar!r}")


@dataclass
class CrossCheckResult:
    """Outcome of a differential sample: which devices were compared and
    every tolerance violation found."""

    devices: List[int]
    mismatches: List[DeviceMismatch] = field(default_factory=list)
    engine: str = "stepping"

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        mirror = ("scalar segalg" if self.engine == "segalg"
                  else "scalar fastpath")
        if self.ok:
            return (f"differential check: {len(self.devices)} device(s) "
                    f"vs {mirror} — OK")
        lines = [f"differential check: {len(self.mismatches)} mismatch(es) "
                 f"across {len(self.devices)} sampled device(s):"]
        lines += [f"  {m}" for m in self.mismatches]
        return "\n".join(lines)


def run_device_scalar(params: FleetParams, index: int, app: str,
                      cycles: int, gates: Dict[str, float],
                      horizon: float, engine: str = "stepping") -> dict:
    """Replay fleet-runner semantics for one device on a scalar kernel.

    Chunked charging, horizon/equilibrium handling and classification
    mirror ``runner._run_shard`` branch for branch. Under the default
    ``stepping`` engine the device steps through
    ``fastpath.advance_segments`` (the bit-exact scalar kernel); under
    ``segalg`` it advances through the scalar segment-algebra event loop
    — the independent scalar implementation of the same integrator the
    fleet path vectorizes — so the differential sample exercises the
    engine actually used, not a proxy.
    """
    from repro.apps.programs import build_program
    from repro.sim import fastpath
    from repro.sim.engine import PowerSystemSimulator

    spec = params.spec
    system = params.device_system(index)
    sim = PowerSystemSimulator(system)
    if engine == "segalg":
        from repro import segalg
        assert segalg.supported(system), "fleet devices are stock systems"
        advance = segalg.advance_segments
    else:
        assert fastpath.supported(system), "fleet devices are stock systems"
        advance = fastpath.advance_segments
    buffer = system.buffer
    program = build_program(app, cycles=cycles)
    time_varying = spec.harvest_period > 0 or spec.env is not None
    # Bank fleets key the shared gate table per configuration (§V-B);
    # the mirror reads the rows of this device's drawn configuration.
    gate_prefix = ""
    if spec.bank is not None:
        from repro.sched.bank import config_tag
        config = spec.bank.configs[int(params.config_idx[index])]
        gate_prefix = f"{config_tag(config)}/"

    outcome = "completed"
    tasks_committed = 0
    brown_time: Optional[float] = None
    brown_task = ""
    pending = True

    for task in program.tasks:
        if not pending:
            break
        gate_v = min(spec.v_high, gates[gate_prefix + task.name])
        stall = 0

        while pending and buffer.terminal_voltage < gate_v:
            if sim.time >= horizon - 1e-12:
                outcome = "degraded_but_safe"
                pending = False
                break
            v_before = buffer.terminal_voltage
            advance(sim, ((0.0, CHARGE_CHUNK),), True, None)
            if buffer.terminal_voltage > v_before + PROGRESS_EPS:
                stall = 0
            else:
                stall += 1
            if not time_varying and stall >= STALL_CHUNKS \
                    and buffer.terminal_voltage < gate_v:
                outcome = "livelock"
                pending = False
        if not pending:
            break

        if not (sim.time < horizon - 1e-12
                and buffer.terminal_voltage >= gate_v):
            outcome = "degraded_but_safe"
            break
        browned = advance(sim, list(task.trace.segments()), True,
                          spec.v_off)
        if browned is not None:
            outcome = "brown_out"
            brown_time = browned
            brown_task = task.name
            break
        tasks_committed += 1

    return {
        "outcome": outcome,
        "tasks_committed": tasks_committed,
        "v_min": sim._v_min_seen,          # noqa: SLF001 — sim-internal
        "final_time": sim.time,
        "energy": sim._energy_out,         # noqa: SLF001 — sim-internal
        "v_term": buffer.terminal_voltage,
        "brown_time": brown_time,
        "brown_task": brown_task,
    }


def sample_indices(devices: int, check: int, seed: int) -> List[int]:
    """Deterministically sample ``check`` device indices to cross-check."""
    if devices <= 0 or check <= 0:
        return []
    if check >= devices:
        return list(range(devices))
    rng = np.random.default_rng((seed, 0xD1FF))
    picked = rng.choice(devices, size=check, replace=False)
    return sorted(int(i) for i in picked)


def cross_check(outcomes: FleetOutcomes,
                indices: Sequence[int]) -> CrossCheckResult:
    """Re-run ``indices`` on the scalar kernel and compare to the fleet.

    The scalar mirror runs whichever engine produced ``outcomes``
    (``outcomes.engine``), with the tolerances documented for that
    engine's fleet-vs-scalar agreement.
    """
    params = outcomes.spec.parameters()
    engine = getattr(outcomes, "engine", "stepping")
    if engine == "segalg":
        v_tol, t_tol, e_tol = V_TOL_SEGALG, T_TOL_SEGALG, E_TOL_SEGALG
    else:
        v_tol, t_tol, e_tol = V_TOL, T_TOL, E_TOL
    result = CrossCheckResult(devices=list(indices), engine=engine)
    for i in indices:
        scalar = run_device_scalar(params, i, outcomes.app, outcomes.cycles,
                                   outcomes.gates, outcomes.horizon,
                                   engine=engine)
        fleet_outcome = outcomes.outcome_of(i)
        if scalar["outcome"] != fleet_outcome:
            result.mismatches.append(DeviceMismatch(
                i, "outcome", fleet_outcome, scalar["outcome"]))
            continue
        if scalar["tasks_committed"] != int(outcomes.tasks_committed[i]):
            result.mismatches.append(DeviceMismatch(
                i, "tasks_committed", int(outcomes.tasks_committed[i]),
                scalar["tasks_committed"]))
        checks = (
            ("v_min", float(outcomes.v_min[i]), scalar["v_min"], v_tol),
            ("final_time", float(outcomes.final_time[i]),
             scalar["final_time"], t_tol),
            ("energy", float(outcomes.energy[i]), scalar["energy"], e_tol),
        )
        for name, fleet_v, scalar_v, tol in checks:
            if abs(fleet_v - scalar_v) > tol:
                result.mismatches.append(
                    DeviceMismatch(i, name, fleet_v, scalar_v))
        fleet_bt = float(outcomes.brown_time[i])
        scalar_bt = scalar["brown_time"]
        if scalar_bt is None:
            if not np.isnan(fleet_bt):
                result.mismatches.append(
                    DeviceMismatch(i, "brown_time", fleet_bt, None))
        elif np.isnan(fleet_bt) or abs(fleet_bt - scalar_bt) > t_tol:
            result.mismatches.append(
                DeviceMismatch(i, "brown_time", fleet_bt, scalar_bt))
    return result
