"""Batched stepping kernel: N devices advance per vector operation.

This is the fleet-scale counterpart of :mod:`repro.sim.fastpath`. Where
the scalar kernel replays the reference loop's arithmetic with hoisted
locals, this kernel replays the *same recurrence* across a whole device
batch at once: every per-device quantity (branch voltages, monitor
state, elapsed segment time) lives in a numpy array, and one iteration
of the stepping loop advances every still-running device by its own
adaptive ``dt``. Devices that brown out, or that a caller masks off,
are frozen by ``np.where`` selection — their state stops changing while
the rest of the batch runs on.

Equivalence contract
--------------------
The kernel performs the same floating-point operations in the same
order as ``fastpath.advance_segments`` with two mechanical exceptions:

* transcendental calls go through numpy (``np.exp``/``np.sin``) instead
  of ``math.exp``/``math.sin``, which may differ from the C library in
  the last ulp;
* masked lanes compute speculative values that are discarded by
  ``np.where`` (never committed, so they cannot influence live state).

Per-step divergence is therefore at most an ulp or two, and integrated
drift over full program runs stays within the documented tolerances
(:data:`V_TOL` / :data:`T_TOL`), which the equivalence suite
(`tests/fleet/test_equivalence.py`) enforces against seeded random
configurations. Bit-exactness is *not* claimed — that remains the
scalar fastpath's contract against the reference engine.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.spec import FleetParams
from repro.power.booster import CurvedEfficiency, LinearEfficiency
from repro.sim.engine import PowerSystemSimulator as _Engine

#: Documented fleet-vs-scalar tolerance on any recorded voltage (V).
#: Empirically the worst drift over the equivalence corpus is below 1e-9 V;
#: the bound leaves two orders of magnitude of headroom and is still ~4
#: orders tighter than the ADC quantum the estimators themselves model.
V_TOL = 1e-7

#: Documented fleet-vs-scalar tolerance on any recorded time (s). Step
#: sizes are voltage-dependent, so ulp-level voltage drift perturbs ``dt``;
#: the accumulated effect over ~1e5 steps stays far below a microsecond.
T_TOL = 1e-6

# Engine stepping constants, hoisted from the scalar simulator so the two
# paths can never disagree about the adaptive-dt policy.
_MIN_DT = _Engine.MIN_DT
_MAX_IDLE_DT = _Engine.MAX_IDLE_DT
_IDLE_DV = _Engine.IDLE_DV
_LOAD_DV = _Engine.LOAD_DV


class FleetRecorder:
    """Captures per-device trajectory checkpoints at segment boundaries.

    ``indices`` selects which devices to record (differential checks
    sample a handful out of thousands). Each capture appends one row per
    tracked device: ``(device, time, v_term, v_main, v_redist, v_min,
    energy)``.
    """

    def __init__(self, indices: Sequence[int]) -> None:
        self.indices = np.asarray(list(indices), dtype=np.intp)
        self.rows: List[Tuple[int, float, float, float, float, float,
                              float]] = []

    def capture(self, state: "FleetState") -> None:
        for i in self.indices:
            self.rows.append((
                int(i),
                float(state.time[i]),
                float(state.v_term[i]),
                float(state.v_main[i]),
                float(state.v_redist[i]),
                float(state.v_min[i]),
                float(state.energy[i]),
            ))


class FleetState:
    """Mutable per-device simulation state plus hoisted derived constants.

    The derived arrays (conductance, total capacitance, stability bound,
    decoupling time constant) mirror the scalar fastpath's hoisting block
    expression-for-expression.
    """

    def __init__(self, params: FleetParams,
                 v_start: Optional[float] = None) -> None:
        spec = params.spec
        n = params.n
        v0 = spec.v_high if v_start is None else float(v_start)
        self.params = params
        self.n = n
        # -- charge state (mirrors TwoBranchSupercap.reset(v0)) -----------
        self.v_main = np.full(n, v0)
        self.v_redist = np.full(n, v0)
        self.v_term = np.full(n, v0)
        # -- simulator state (mirrors PowerSystemSimulator + monitor) -----
        self.time = np.zeros(n)
        self.v_min = np.full(n, v0)
        self.energy = np.zeros(n)
        self.enabled = np.full(n, v0 >= spec.v_off)
        #: Devices still stepping; cleared on brown-out, never re-set.
        self.alive = np.ones(n, dtype=bool)
        #: Total device·steps executed across all advance() calls.
        self.device_steps = 0

        # -- hoisted derived constants (fastpath hoisting block) ----------
        r_esr = params.r_esr
        c_main = params.c_main
        c_red = params.c_redist
        r_red = params.r_redist
        c_dec = params.c_decoupling
        self.has_red = (c_red > 0) & np.isfinite(r_red)
        self._rr_safe = np.where(self.has_red, r_red, 1.0)
        self._cr_safe = np.where(self.has_red, c_red, 1.0)
        g = 1.0 / r_esr
        g = g + np.where(self.has_red, 1.0 / self._rr_safe, 0.0)
        self.g = g
        total_c = c_main + c_dec
        self.total_c = total_c + np.where(self.has_red, c_red, 0.0)
        stable = r_esr * c_main
        branch_rc = np.where(self.has_red, self._rr_safe * self._cr_safe,
                             np.inf)
        self.stable = 0.25 * np.minimum(stable, branch_rc)
        self.cd_pos = c_dec > 0
        self._tau_safe = np.where(self.cd_pos, c_dec / g, 1.0)
        self.tau = np.where(self.cd_pos, self._tau_safe, 0.0)
        self.tau_quarter = self.tau / 4.0

        # Output-booster efficiency curve: per-device base, shared shape.
        eta = CurvedEfficiency()
        self._eta_slope = eta.slope
        self._eta_curvature = eta.curvature
        self._eta_v_ref = eta.v_ref
        self._eta_floor = eta.floor
        self._eta_ceiling = eta.ceiling
        # Input-booster efficiency (LinearEfficiency with slope 0): a
        # constant within the clip window, precomputed once.
        lin = LinearEfficiency(slope=0.0, intercept=spec.input_efficiency)
        self._eta_in = min(lin.ceiling, max(lin.floor, lin.intercept))


def advance(state: FleetState, segments: Iterable[Tuple[float, float]],
            harvesting: bool, stop_below: Optional[float],
            active: Optional[np.ndarray] = None,
            recorder: Optional[FleetRecorder] = None) -> np.ndarray:
    """Advance the batch through ``(current, duration)`` segments.

    The vector analogue of ``fastpath.advance_segments``: every device in
    ``active & state.alive`` replays the segment list independently (its
    own adaptive steps, its own monitor hysteresis). A device whose
    terminal voltage crosses ``stop_below`` stops there mid-trace and is
    removed from ``state.alive``; everyone else runs the trace to the
    end. Returns the absolute brown-out times (NaN where none).

    ``recorder``, if given, captures tracked-device checkpoints after
    every segment — the hook differential cross-checks attach to.

    ``segments`` may be a :class:`~repro.loads.trace.CurrentTrace` or
    any iterable of ``(current, duration)`` runs — the same contract as
    the segalg fleet path, so the runner can hand either engine the
    trace object itself.
    """
    runs = getattr(segments, "segments", None)
    if callable(runs):
        segments = runs()
    params = state.params
    spec = params.spec
    n = state.n
    brown = np.full(n, np.nan)
    if n == 0:
        return brown

    # Hoist state arrays into locals (rebound each step, written back at
    # the end) and fixed parameters once per call, like the scalar kernel.
    v_main = state.v_main
    v_red = state.v_redist
    v_term = state.v_term
    time = state.time
    v_min = state.v_min
    energy = state.energy
    enabled = state.enabled
    alive = state.alive if active is None else (state.alive & active)

    c_main = params.c_main
    r_esr = params.r_esr
    leak = params.leakage
    eta_base = params.eta_base
    has_red = state.has_red
    rr_safe = state._rr_safe
    cr_safe = state._cr_safe
    g = state.g
    total_c = state.total_c
    stable = state.stable
    cd_pos = state.cd_pos
    tau_safe = state._tau_safe
    tau_quarter = state.tau_quarter

    v_out = spec.v_out
    min_vin = 0.5
    derating = 0.6
    v_max_in = spec.v_high
    v_off_mon = spec.v_off
    v_high_mon = spec.v_high
    eta_in = state._eta_in
    eta_slope = state._eta_slope
    eta_curvature = state._eta_curvature
    eta_v_ref = state._eta_v_ref
    eta_floor = state._eta_floor
    eta_ceiling = state._eta_ceiling
    tau = state.tau

    if not harvesting:
        harvest_mode = 0
    elif params.harvest_edges is not None:
        # Environment replay: shared piece edges, per-device columns.
        harvest_mode = 3
        h_edges = params.harvest_edges
        h_powers = params.harvest_powers
        hp_last = h_powers.shape[1] - 1
        h_rows = np.arange(n)
    elif spec.harvest_period <= 0:
        harvest_mode = 1
    else:
        harvest_mode = 2
        omega = 2.0 * np.pi / spec.harvest_period
    p_harvest = params.p_harvest
    phase = params.phase

    stopping = stop_below is not None
    stop_level = stop_below if stopping else 0.0
    steps = 0

    # Batch-structure flags: when every device shares a branch (all have a
    # redistribution branch, all have decoupling — true for any capybara
    # derived fleet), the per-device ``np.where`` selects collapse to plain
    # arithmetic. Checked once per call, not per step.
    all_red = bool(has_red.all())
    any_red = bool(has_red.any())
    all_cd = bool(cd_pos.all())
    any_cd = bool(cd_pos.any())

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for i_out, seg_duration in segments:
            run_base = alive.copy()
            if not run_base.any():
                break
            loaded = i_out > 0
            transient_window = 6.0 * tau if loaded else None
            dv_budget = _LOAD_DV if loaded else _IDLE_DV
            p_out = i_out * v_out
            elapsed = np.zeros(n)
            running = run_base & (elapsed < seg_duration - 1e-12)
            seg_start = time.copy()
            while running.any():
                v = v_term

                # output booster draw (vectorized OutputBooster math)
                if loaded:
                    v_in = np.maximum(v, min_vin)
                    dv = v_in - eta_v_ref
                    eta = eta_base + eta_slope * dv - eta_curvature * dv * dv
                    eta = np.minimum(eta_ceiling, np.maximum(eta_floor, eta))
                    if p_out > 0.0 and derating > 0.0:
                        eta = np.maximum(0.30, eta - derating * p_out)
                    if enabled.all():
                        i_in = p_out / eta / v_in
                    else:
                        i_in = np.where(enabled, p_out / eta / v_in, 0.0)
                else:
                    i_in = 0.0

                # input booster charge (vectorized InputBooster math)
                if harvest_mode == 0:
                    i_chg = 0.0
                else:
                    if harvest_mode == 1:
                        p_h = p_harvest
                    elif harvest_mode == 3:
                        # Piece containing each device's current time —
                        # the same lookup the scalar fastpath's forward
                        # pointer performs, so the floats match exactly.
                        h_idx = np.searchsorted(h_edges, time,
                                                side="right") - 1
                        h_idx = np.clip(h_idx, 0, hp_last)
                        p_h = h_powers[h_rows, h_idx]
                    else:
                        p_h = p_harvest * np.maximum(
                            0.0, np.sin(omega * time + phase))
                    v_clamp = np.maximum(v, 0.1)
                    i_chg = np.where(
                        (p_h > 0.0) & (v < v_max_in),
                        p_h * eta_in / v_clamp, 0.0)

                i_net = i_in - i_chg
                remaining = seg_duration - elapsed

                # step-size choice (_choose_dt, vectorized)
                i_abs = np.abs(i_net)
                dt = np.where(i_abs > 1e-12,
                              dv_budget * total_c / i_abs, _MAX_IDLE_DT)
                if loaded:
                    in_transient = elapsed < transient_window
                    dt = np.where(in_transient & (tau_quarter < dt),
                                  tau_quarter, dt)
                dt = np.minimum(dt, stable)
                dt = np.minimum(dt, _MAX_IDLE_DT)
                dt = np.minimum(dt, remaining)
                if harvest_mode == 3:
                    # Clamp at the next harvest edge — the same value at
                    # the same point of the min chain as the scalar
                    # fastpath, so both kernels land on the edge exactly
                    # (the _MIN_DT floor below may overshoot it by at
                    # most a microsecond on both paths alike).
                    next_edge = h_edges[h_idx + 1]
                    gap = next_edge - time
                    dt = np.where((time < next_edge) & (gap < dt), gap, dt)
                dt = np.maximum(dt, np.minimum(_MIN_DT, remaining))

                # two-branch buffer step (TwoBranchSupercap.step)
                num = v_main / r_esr - i_net
                if all_red:
                    num = num + v_red / rr_safe
                elif any_red:
                    num = num + np.where(has_red, v_red / rr_safe, 0.0)
                v_star = num / g
                if all_cd:
                    ratio = dt / tau_safe
                    alpha = np.exp(-ratio)
                    diff = v_term - v_star
                    v_avg = v_star + diff * (1.0 - alpha) / ratio
                    v_term_new = v_star + diff * alpha
                elif any_cd:
                    ratio = dt / tau_safe
                    alpha = np.exp(-ratio)
                    diff = v_term - v_star
                    v_avg = np.where(
                        cd_pos, v_star + diff * (1.0 - alpha) / ratio,
                        v_star)
                    v_term_new = np.where(cd_pos, v_star + diff * alpha,
                                          v_star)
                else:
                    v_avg = v_star
                    v_term_new = v_star
                i_main = (v_main - v_avg) / r_esr
                drain = i_main + np.where(v_main > 0.0, leak, 0.0)
                v_main_new = np.maximum(v_main - drain * dt / c_main, 0.0)
                if all_red:
                    v_red_new = np.maximum(
                        v_red - (v_red - v_avg) / rr_safe * dt / cr_safe,
                        0.0)
                elif any_red:
                    v_red_new = np.where(
                        has_red,
                        np.maximum(
                            v_red - (v_red - v_avg) / rr_safe * dt / cr_safe,
                            0.0),
                        v_red)
                else:
                    v_red_new = v_red
                v_term_new = np.maximum(v_term_new, 0.0)

                # commit — plain assignment while the whole batch is
                # running (the common case), masked selection otherwise
                if running.all():
                    elapsed = elapsed + dt
                    time = seg_start + elapsed
                    energy = energy + i_in * np.maximum(v, v_term_new) * dt
                    v_main = v_main_new
                    v_red = v_red_new
                    v_term = v_term_new
                    enabled = np.where(enabled, v_term_new >= v_off_mon,
                                       v_term_new >= v_high_mon)
                    v_min = np.minimum(v_min, v_term_new)
                    steps += n
                else:
                    elapsed = np.where(running, elapsed + dt, elapsed)
                    time = np.where(running, seg_start + elapsed, time)
                    energy = np.where(
                        running,
                        energy + i_in * np.maximum(v, v_term_new) * dt,
                        energy)
                    v_main = np.where(running, v_main_new, v_main)
                    v_red = np.where(running, v_red_new, v_red)
                    v_term = np.where(running, v_term_new, v_term)
                    # monitor hysteresis (VoltageMonitor.observe)
                    enabled = np.where(
                        running,
                        np.where(enabled, v_term_new >= v_off_mon,
                                 v_term_new >= v_high_mon),
                        enabled)
                    v_min = np.where(running & (v_term_new < v_min),
                                     v_term_new, v_min)
                    steps += int(running.sum())
                if stopping:
                    hit = running & (v_term_new < stop_level)
                    if hit.any():
                        brown = np.where(hit, time, brown)
                        alive = alive & ~hit
                running = run_base & alive \
                    & (elapsed < seg_duration - 1e-12)
            if recorder is not None:
                state.v_term = v_term
                state.v_main = v_main
                state.v_redist = v_red
                state.time = time
                state.v_min = v_min
                state.energy = energy
                recorder.capture(state)

    # -- write state back --------------------------------------------------
    state.v_main = v_main
    state.v_redist = v_red
    state.v_term = v_term
    state.time = time
    state.v_min = v_min
    state.energy = energy
    state.enabled = enabled
    if active is None:
        state.alive = alive
    else:
        # Only devices this call actually ran can have died.
        state.alive = np.where(active, alive, state.alive)
    state.device_steps += steps
    return brown
