"""Heterogeneous batch entry: unrelated one-shot queries, one kernel call.

:class:`~repro.fleet.spec.FleetSpec` expands *one* base plant into N
jittered siblings; the serving layer (:mod:`repro.serve`) needs the
opposite shape — N unrelated admission queries, each carrying its own
plant and start voltage, stepped through a shared trace in a single
vectorized :func:`~repro.fleet.kernel.advance` call. This module builds
the per-lane :class:`~repro.fleet.spec.FleetParams` arrays directly from
:class:`BatchPlant` rows, mirroring the spec expansion's float
derivations expression-for-expression so a batch lane and the equivalent
scalar plant hold the same values bit-for-bit.

What a batch may mix and what it must share
-------------------------------------------
Per-lane: capacitance, tolerance, ESR, decoupling, leakage,
redistribution fraction, harvest power, and the start voltage. Shared
(they are scalars the kernel hoists once per batch): the monitor rails
``v_high``/``v_off``, the output rail ``v_out``, the input-booster
efficiency, the trace itself, the harvesting mode, and the stop level.
:func:`shared_key` digests exactly that shared remainder — it is the
coalescing group key the serving batcher partitions on.

Batch-composition invariance
----------------------------
The stepping kernel's per-lane arithmetic is lane-local: every branch of
its update (booster draw, charge step, adaptive ``dt``, monitor
hysteresis) computes lane ``i``'s next state from lane ``i``'s current
state alone, and the batch-structure fast paths (``enabled.all()``,
``running.all()``...) select between *identical per-lane values*. A
query answered in a batch of N is therefore byte-identical to the same
query answered in a batch of one — the same property that makes sharded
fleet reports byte-identical for any ``--jobs``. ``tests/fleet/
test_batch.py`` enforces it directly; the serving layer's correctness
bar (served answer ≡ library answer) rests on it. The segalg engine is
offered for throughput experiments but carries only the documented
method tolerance, not the byte contract — serving always dispatches on
``stepping``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.kernel import FleetState, advance
from repro.fleet.spec import FleetParams, FleetSpec
from repro.power.booster import CurvedEfficiency

#: Engines a batch may dispatch on. Only ``stepping`` carries the
#: batch-composition byte-identity contract.
BATCH_ENGINES: Tuple[str, ...] = ("stepping", "segalg")


@dataclass(frozen=True)
class BatchPlant:
    """One query's plant: the per-lane half of a Capybara configuration.

    Field names and defaults match
    :func:`~repro.power.system.capybara_power_system`; the derived
    two-branch quantities are computed exactly as
    :meth:`FleetSpec.parameters` computes them (unit jitter factors), so
    a lane built from this row equals the scalar plant built from the
    same numbers.
    """

    datasheet_capacitance: float = 45e-3
    capacitance_tolerance: float = 0.06
    dc_esr: float = 4.0
    c_decoupling: float = 100e-6
    leakage_current: float = 20e-9
    redist_fraction: float = 0.10
    harvest_power: float = 4e-3

    def __post_init__(self) -> None:
        if self.datasheet_capacitance <= 0:
            raise ValueError(f"datasheet_capacitance must be positive, "
                             f"got {self.datasheet_capacitance}")
        if not 0 <= self.redist_fraction < 1:
            raise ValueError(f"redist_fraction must be in [0, 1), "
                             f"got {self.redist_fraction}")
        if self.harvest_power < 0:
            raise ValueError(f"harvest_power must be >= 0, "
                             f"got {self.harvest_power}")

    def config_key(self) -> tuple:
        """Hashable identity (cache key component)."""
        return ("batch-plant", self.datasheet_capacitance,
                self.capacitance_tolerance, self.dc_esr, self.c_decoupling,
                self.leakage_current, self.redist_fraction,
                self.harvest_power)


@dataclass(frozen=True)
class BatchQuery:
    """One lane of a heterogeneous batch: a plant and a start voltage."""

    plant: BatchPlant
    v_start: float

    def __post_init__(self) -> None:
        if self.v_start < 0:
            raise ValueError(f"v_start must be >= 0, got {self.v_start}")


@dataclass(frozen=True)
class BatchShared:
    """The scalars every lane of one kernel call must agree on."""

    v_high: float = 2.56
    v_off: float = 1.6
    v_out: float = 2.55
    input_efficiency: float = 0.80


def shared_key(shared: BatchShared, segments: Sequence[Tuple[float, float]],
               harvesting: bool, stop_below: Optional[float],
               env_fingerprint: str = "") -> tuple:
    """The coalescing group key: everything one kernel call shares.

    Two queries with equal keys can ride the same batch; the per-lane
    remainder (plant, ``v_start``) travels in the arrays.
    """
    return ("batch-shared", shared.v_high, shared.v_off, shared.v_out,
            shared.input_efficiency, tuple(tuple(s) for s in segments),
            bool(harvesting),
            None if stop_below is None else float(stop_below),
            env_fingerprint)


def build_batch(queries: Sequence[BatchQuery],
                shared: Optional[BatchShared] = None,
                harvest_edges: Optional[np.ndarray] = None,
                harvest_powers: Optional[np.ndarray] = None,
                harvest_fp: str = "") -> FleetState:
    """Assemble N one-shot queries into a ready-to-advance batch state.

    The derivation chain (true capacitance, branch split, redistribution
    resistance, booster base efficiency) mirrors
    :meth:`FleetSpec.parameters` with the jitter factors pinned at one,
    so every float a lane holds equals what the equivalent scalar
    :func:`~repro.power.system.capybara_power_system` plant holds.
    ``harvest_edges``/``harvest_powers`` attach a recorded environment
    (one power row per lane on shared piece edges) exactly as a fleet
    env replay would.
    """
    if not queries:
        raise ValueError("a batch needs at least one query")
    shared = shared or BatchShared()
    n = len(queries)

    cap = np.array([q.plant.datasheet_capacitance for q in queries])
    tol = np.array([q.plant.capacitance_tolerance for q in queries])
    esr = np.array([q.plant.dc_esr for q in queries])
    c_dec = np.array([q.plant.c_decoupling for q in queries])
    leak = np.array([q.plant.leakage_current for q in queries])
    redist = np.array([q.plant.redist_fraction for q in queries])
    p_h = np.array([q.plant.harvest_power for q in queries])

    # Elementwise mirror of FleetSpec.parameters() with unit jitters.
    true_c = cap * (1.0 + tol)
    c_redist = true_c * redist
    c_main = true_c - c_redist - c_dec
    if c_main.min() <= 0:
        raise ValueError(
            "decoupling + redistribution exceed total capacitance for at "
            "least one query's plant")
    eta = CurvedEfficiency()

    # The spec carries only the shared scalars the kernel hoists; the
    # base-plant fields are placeholders (never read through the arrays).
    spec = FleetSpec(
        devices=n,
        v_high=shared.v_high,
        v_off=shared.v_off,
        v_out=shared.v_out,
        input_efficiency=shared.input_efficiency,
        esr_jitter=0.0, capacitance_jitter=0.0,
        harvest_jitter=0.0, eta_jitter=0.0,
    )
    params = FleetParams(
        spec=spec,
        c_main=c_main,
        r_esr=esr,
        c_redist=c_redist,
        r_redist=esr * 5.0,
        c_decoupling=c_dec,
        leakage=leak,
        eta_base=np.full(n, eta.base),
        p_harvest=p_h,
        phase=np.zeros(n),
        harvest_edges=harvest_edges,
        harvest_powers=harvest_powers,
        harvest_fp=harvest_fp,
    )
    state = FleetState(params)
    # Per-lane start voltages: overwrite the constructor's uniform fill
    # with the same per-lane values a batch-of-one would start from.
    v0 = np.array([q.v_start for q in queries])
    state.v_main = v0.copy()
    state.v_redist = v0.copy()
    state.v_term = v0.copy()
    state.v_min = v0.copy()
    state.enabled = v0 >= shared.v_off
    return state


@dataclass
class BatchResult:
    """Per-lane outcome of one batched advance (plain arrays)."""

    v_term: np.ndarray
    v_min: np.ndarray
    time: np.ndarray
    energy: np.ndarray
    brown: np.ndarray    # absolute brown-out times, NaN where none
    alive: np.ndarray

    @property
    def n(self) -> int:
        return int(self.v_term.shape[0])

    def lane(self, i: int) -> dict:
        """Lane ``i`` as a JSON-ready dict (NaN brown-out becomes None)."""
        t_brown = float(self.brown[i])
        return {
            "v_end": float(self.v_term[i]),
            "v_min": float(self.v_min[i]),
            "time": float(self.time[i]),
            "energy": float(self.energy[i]),
            "brownout": None if np.isnan(t_brown) else t_brown,
        }


def advance_batch(queries: Sequence[BatchQuery],
                  segments: Iterable[Tuple[float, float]],
                  *,
                  harvesting: bool = False,
                  stop_below: Optional[float] = None,
                  shared: Optional[BatchShared] = None,
                  harvest_edges: Optional[np.ndarray] = None,
                  harvest_powers: Optional[np.ndarray] = None,
                  harvest_fp: str = "",
                  engine: str = "stepping") -> BatchResult:
    """Step every query through ``segments`` in one kernel call.

    The serving batcher's entry point: N heterogeneous one-shot queries,
    one vectorized advance. On the default ``stepping`` engine each
    lane's answer is byte-identical to the answer a batch of one would
    produce; ``segalg`` dispatches the same batch onto the event-driven
    vector path (method tolerance only).
    """
    if engine not in BATCH_ENGINES:
        raise ValueError(f"unknown batch engine {engine!r}; "
                         f"choose from {BATCH_ENGINES}")
    segments = [(float(i), float(d)) for i, d in
                (segments.segments() if hasattr(segments, "segments")
                 else segments)]
    state = build_batch(queries, shared=shared,
                        harvest_edges=harvest_edges,
                        harvest_powers=harvest_powers,
                        harvest_fp=harvest_fp)
    if engine == "stepping":
        brown = advance(state, segments, harvesting, stop_below)
    else:
        from repro.segalg.vector import advance_fleet
        brown = advance_fleet(state, segments, harvesting, stop_below)
    return BatchResult(
        v_term=state.v_term,
        v_min=state.v_min,
        time=state.time,
        energy=state.energy,
        brown=brown,
        alive=state.alive,
    )


__all__ = [
    "BATCH_ENGINES",
    "BatchPlant",
    "BatchQuery",
    "BatchResult",
    "BatchShared",
    "advance_batch",
    "build_batch",
    "shared_key",
]
