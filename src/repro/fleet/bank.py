"""Fleet-scale bank reconfiguration: the vectorized span/switch driver.

The scalar engines consume a :class:`~repro.power.reconfig.ReconfigPlan`
by splitting the trace at the event offsets and calling the one shared
transform (:func:`~repro.power.reconfig.apply_reconfiguration`) between
sub-spans. This module is the fleet half of that contract: the same
:func:`~repro.power.reconfig.split_at_offsets` cuts the trace, the
unmodified batch kernels (stepping or segment algebra) advance each
sub-span, and :meth:`FleetBankDriver.reconfigure` mirrors
``ReconfigurableBuffer.configure`` elementwise across the batch — same
float operations, same sorted-bank accumulation order — so the four-way
differential (reference ≡ fastpath ≡ scalar segalg ≡ fleet kernels)
holds on plan-bearing traces within the documented kernel tolerances.

Per-device semantics match the scalar event rules exactly:

* every *alive* device switches at the event; a device that browned out
  earlier in the trace never does (its state, parameters, and parked
  bank voltages stay frozen);
* banks leaving the active set park at the group's charge-weighted
  open-circuit voltage; the new group starts at the charge-weighted
  merge of its members' voltages;
* the monitor observes the post-switch voltage with normal hysteresis,
  ``v_min`` accounting sees it, and a merge below the brown-out stop
  level kills the device *at the event time* — cancelling its remaining
  events.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.fleet.kernel import FleetRecorder, FleetState, advance
from repro.fleet.spec import bank_group_params
from repro.power.reconfig import ReconfigPlan, ReconfigureEvent, \
    split_at_offsets
from repro.segalg.vector import advance_fleet as _segalg_advance

__all__ = ["FleetBankDriver", "advance_fleet_plan"]


class FleetBankDriver:
    """Per-batch reconfiguration state: active masks and parked voltages.

    Wraps a bank-axis :class:`~repro.fleet.kernel.FleetState` and tracks
    what the scalar :class:`~repro.power.reconfigurable.ReconfigurableBuffer`
    keeps per device — which banks are on the rail and the rest voltage
    of every parked bank. ``reconfigure`` rebuilds the batch's group
    parameters through the same :func:`~repro.fleet.spec.bank_group_params`
    the spec expansion uses, so a post-switch fleet slot is bitwise the
    scalar ``_build_group`` of the same jittered bank floats.
    """

    def __init__(self, state: FleetState) -> None:
        params = state.params
        spec = params.spec
        if spec.bank is None or params.config_idx is None:
            raise ValueError(
                "FleetBankDriver needs a FleetSpec with the bank axis on")
        self.state = state
        self.names: Tuple[str, ...] = spec.bank.bank_names  # sorted
        self._col = {name: j for j, name in enumerate(self.names)}
        n = params.n
        # Which banks sit on each device's rail right now (n x B).
        config_rows = np.array(
            [[name in config for name in self.names]
             for config in spec.bank.configs], dtype=bool)
        self.active = config_rows[np.asarray(params.config_idx, dtype=np.intp)]
        # Parked-bank rest voltages. A fresh batch mirrors the scalar
        # admission precondition (``rest_all`` at the start level): every
        # bank — active or parked — rests at the initial terminal voltage.
        self.idle_v = np.repeat(state.v_term[:, None], len(self.names),
                                axis=1)

    def _group_ocv(self) -> np.ndarray:
        """Charge-weighted rest voltage of each device's active group,
        in ``TwoBranchSupercap.open_circuit_voltage``'s float order."""
        state = self.state
        params = state.params
        charge = (params.c_main * state.v_main
                  + params.c_decoupling * state.v_term)
        cap = params.c_main + params.c_decoupling
        charge = np.where(state.has_red,
                          charge + params.c_redist * state.v_redist, charge)
        cap = np.where(state.has_red, cap + params.c_redist, cap)
        return charge / cap

    def reconfigure(self, event: ReconfigureEvent,
                    stop_below: Optional[float] = None) -> np.ndarray:
        """Apply one event to every alive device; returns event-time
        brown-outs (NaN where none). ``self.state`` is replaced — the
        group electricals changed, so the hoisted kernel constants are
        rebuilt."""
        state = self.state
        params = state.params
        spec = params.spec
        alive = state.alive
        n = state.n

        unknown = set(event.config) - set(self.names)
        if unknown:
            raise ValueError(f"unknown banks: {sorted(unknown)}")

        # Park the currently active banks at the group rest voltage.
        ocv = self._group_ocv()
        park = alive[:, None] & self.active
        idle_v = np.where(park, ocv[:, None], self.idle_v)

        # Charge-weighted merge of the target set, accumulated in sorted
        # bank-name order (``ReconfigurableBuffer.configure``'s order;
        # ``event.config`` is canonically sorted already).
        members = [self._col[name] for name in event.config]
        bank_caps = params.bank_caps
        charge = np.zeros(n)
        cap = np.zeros(n)
        for j in members:
            charge = charge + bank_caps[:, j] * idle_v[:, j]
            cap = cap + bank_caps[:, j]
        v_new = charge / cap

        # New group electricals via the shared ``_build_group`` mirror;
        # dead devices keep their old parameters (and parked voltages).
        group = bank_group_params(
            bank_caps, params.bank_esrs, params.bank_leaks, members,
            spec.bank.switch_resistance, spec.redist_fraction)
        new_params = dataclasses.replace(
            params,
            c_main=np.where(alive, group["c_main"], params.c_main),
            r_esr=np.where(alive, group["r_esr"], params.r_esr),
            c_redist=np.where(alive, group["c_redist"], params.c_redist),
            r_redist=np.where(alive, group["r_redist"], params.r_redist),
            leakage=np.where(alive, group["leakage"], params.leakage),
        )

        target_row = np.array([name in event.config for name in self.names],
                              dtype=bool)
        self.active = np.where(alive[:, None], target_row[None, :],
                               self.active)
        self.idle_v = np.where(alive[:, None], idle_v, self.idle_v)

        # Fresh state re-hoists the kernel constants for the new groups;
        # charge/monitor state carries over, switched devices reset to the
        # merge voltage (``group.reset`` rests all three branches).
        fresh = FleetState(new_params)
        fresh.v_main = np.where(alive, v_new, state.v_main)
        fresh.v_redist = np.where(alive, v_new, state.v_redist)
        fresh.v_term = np.where(alive, v_new, state.v_term)
        fresh.time = state.time
        fresh.energy = state.energy
        fresh.v_min = np.where(alive, np.minimum(state.v_min, v_new),
                               state.v_min)
        # VoltageMonitor.observe on the post-switch voltage (hysteresis).
        fresh.enabled = np.where(
            alive,
            np.where(state.enabled, v_new >= spec.v_off,
                     v_new >= spec.v_high),
            state.enabled)
        fresh.alive = state.alive
        fresh.device_steps = state.device_steps

        brown = np.full(n, np.nan)
        if stop_below is not None:
            hit = alive & (v_new < stop_below)
            if hit.any():
                # Browns out at the event time; remaining events are
                # cancelled for these devices by the alive mask.
                brown = np.where(hit, state.time, brown)
                fresh.alive = state.alive & ~hit
        self.state = fresh
        return brown

    def advance_plan(self, trace, plan: ReconfigPlan, harvesting: bool,
                     stop_below: Optional[float],
                     engine: str = "stepping",
                     recorder: Optional[FleetRecorder] = None) -> np.ndarray:
        """Advance the whole batch through a plan-bearing trace.

        The exact scalar recipe, vectorized: split the trace at the plan
        offsets with the shared splitter, advance each sub-span with the
        unmodified batch kernel (``engine`` picks stepping or segalg),
        apply the elementwise transform between spans. Returns absolute
        brown-out times (NaN where none).
        """
        if engine not in ("stepping", "segalg"):
            raise ValueError(f"unknown engine: {engine!r}")
        advance_fn = advance if engine == "stepping" else _segalg_advance
        runs = getattr(trace, "segments", None)
        segments = runs() if callable(runs) else list(trace)
        spans = split_at_offsets(segments, plan.offsets())
        brown = np.full(self.state.n, np.nan)
        for k, span in enumerate(spans):
            if span:
                hit = advance_fn(self.state, span, harvesting, stop_below,
                                 recorder=recorder)
                brown = np.where(np.isnan(brown), hit, brown)
            if k < len(plan.events):
                hit = self.reconfigure(plan.events[k], stop_below)
                brown = np.where(np.isnan(brown), hit, brown)
                if recorder is not None:
                    recorder.capture(self.state)
        return brown


def advance_fleet_plan(state: FleetState, trace, plan: ReconfigPlan,
                       harvesting: bool, stop_below: Optional[float],
                       engine: str = "stepping",
                       recorder: Optional[FleetRecorder] = None,
                       ) -> "Tuple[FleetState, np.ndarray]":
    """One-shot convenience: drive ``state`` through a plan-bearing trace.

    Returns ``(final_state, brown_times)`` — the driver swaps the state
    object at each event (re-hoisted kernel constants), so callers must
    use the returned state, not the one they passed in.
    """
    driver = FleetBankDriver(state)
    brown = driver.advance_plan(trace, plan, harvesting, stop_below,
                                engine=engine, recorder=recorder)
    return driver.state, brown
