"""Fleet runner: one shared-firmware program across N jittered devices.

Deployment model: every device in the fleet flashes the *same* firmware
image, so launch gates are computed **once** from the un-jittered base
plant (design-time estimation, exactly what a vendor would ship) and the
per-device physics decide which devices those shared gates actually keep
safe. Each device walks the program task by task:

1. **Charge** toward the task's gate in fixed 0.25 s chunks (the same
   chunk the scalar engine's ``charge_until`` uses). A device that makes
   no progress for :data:`STALL_CHUNKS` consecutive chunks under
   constant harvest sits at its harvest equilibrium below the gate — the
   task is unrunnable, the fleet analogue of the chaos campaign's
   *livelock*. A device still below gate when the horizon expires is
   *degraded_but_safe* (it rode out the horizon without violating
   anything). Under periodic (solar) harvest, equilibrium is never
   declared — power may return — and only the horizon ends the wait.
2. **Execute** the task with brown-out detection at V_off. Crossing
   V_off mid-task is the paper's safety violation (*brown_out*); the
   device is dead for the rest of the run — the fleet measures
   first-failure, it does not model recovery-and-retry.

Devices that commit every task with no fallback gates are *completed* —
the same four-way classification the chaos campaign reports, so fleet
and campaign numbers compose.

Sharding: ``jobs > 1`` splits the device range into contiguous shards
via :func:`repro.harness.parallel.split_ranges`; every shard expands the
same seeded spec and slices its own devices, and results concatenate in
device order — reports are **byte-identical for any jobs value**.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.kernel import FleetState, advance
from repro.fleet.spec import FleetParams, FleetSpec
from repro.harness.parallel import parallel_map, split_ranges
from repro.harness.report import TextTable
from repro.obs import THROUGHPUT_BUCKETS, VOLTAGE_BUCKETS_V
from repro.obs import current as _obs_current
from repro.resilience.campaign import OUTCOMES
from repro.segalg.vector import advance_fleet as _segalg_advance

#: Fleet simulation engines: the stepping kernel (bit-compatible with the
#: scalar fastpath) and the event-driven segment-algebra core (method
#: tolerances vs stepping, ~5-7x faster on duty-cycled programs).
FLEET_ENGINES = ("stepping", "segalg")

#: Charge-phase chunk length (s) — matches the scalar engine's
#: ``charge_until`` stride so scalar mirrors replay identical chunks.
CHARGE_CHUNK = 0.25

#: Minimum terminal-voltage gain per chunk that counts as progress
#: (the scalar engine's equilibrium epsilon).
PROGRESS_EPS = 1e-9

#: Consecutive no-progress chunks before a constant-harvest device is
#: declared stuck at its equilibrium (livelock).
STALL_CHUNKS = 2

_COMPLETED, _DEGRADED, _BROWN_OUT, _LIVELOCK = range(4)
_CODE_TO_OUTCOME = dict(enumerate(OUTCOMES))


@dataclass
class FleetOutcomes:
    """Raw per-device results of one fleet run (device order, picklable).

    ``outcome_codes`` index into :data:`repro.resilience.campaign.OUTCOMES`.
    ``brown_task`` / ``brown_time`` are the first gated task that crossed
    V_off and when ("" / NaN where the device never browned).
    """

    spec: FleetSpec
    app: str
    cycles: int
    estimator: str
    horizon: float
    gates: Dict[str, float]
    fallback_tasks: List[str]
    outcome_codes: np.ndarray
    tasks_committed: np.ndarray
    v_min: np.ndarray
    final_time: np.ndarray
    energy: np.ndarray
    brown_time: np.ndarray
    brown_task: List[str]
    device_steps: int
    engine: str = "stepping"

    @property
    def devices(self) -> int:
        return int(self.outcome_codes.shape[0])

    def outcome_of(self, i: int) -> str:
        return _CODE_TO_OUTCOME[int(self.outcome_codes[i])]


@dataclass(frozen=True)
class _ShardJob:
    """One contiguous device range of a fleet run (picklable work item)."""

    spec: FleetSpec
    start: int
    stop: int
    app: str
    cycles: int
    horizon: float
    gates: Tuple[Tuple[str, float], ...]
    engine: str = "stepping"


def _run_shard(job: _ShardJob) -> dict:
    """Simulate devices ``[start, stop)`` of the fleet (module-level:
    picklable for process fan-out)."""
    from repro.apps.programs import build_program

    spec = job.spec
    params = spec.parameters().slice(job.start, job.stop)
    n = params.n
    gates = dict(job.gates)
    program = build_program(job.app, cycles=job.cycles)
    state = FleetState(params)
    step = _segalg_advance if job.engine == "segalg" else advance

    def _task_gate(task_name: str):
        """Gate level(s) for one task: a scalar on fixed fleets, a
        per-device array when devices carry per-config tables."""
        if spec.bank is None:
            return min(spec.v_high, gates[task_name])
        from repro.sched.bank import config_tag
        per_config = np.array([
            gates[f"{config_tag(config)}/{task_name}"]
            for config in spec.bank.configs
        ])
        return np.minimum(spec.v_high, per_config[params.config_idx])

    outcome = np.full(n, _COMPLETED, dtype=np.int64)
    tasks_committed = np.zeros(n, dtype=np.int64)
    brown_time = np.full(n, np.nan)
    brown_task = [""] * n
    # Devices still walking the program (not dead, not given up).
    pending = np.ones(n, dtype=bool)
    # Time-varying harvest (built-in solar or an environment trace):
    # equilibrium-below-gate is never declared — power may return —
    # so only the horizon ends a charge wait.
    time_varying = spec.harvest_period > 0 or spec.env is not None

    for task in program.tasks:
        if not pending.any():
            break
        gate_v = _task_gate(task.name)
        stall = np.zeros(n, dtype=np.int64)

        # -- charge phase ------------------------------------------------
        while True:
            need = pending & (state.v_term < gate_v)
            if not need.any():
                break
            expired = need & (state.time >= job.horizon - 1e-12)
            if expired.any():
                outcome[expired] = _DEGRADED
                pending &= ~expired
                need &= ~expired
                if not need.any():
                    break
            v_before = state.v_term.copy()
            step(state, ((0.0, CHARGE_CHUNK),), True, None, active=need)
            progressed = state.v_term > v_before + PROGRESS_EPS
            stall = np.where(need & ~progressed, stall + 1, 0)
            if not time_varying:
                stuck = need & (stall >= STALL_CHUNKS) \
                    & (state.v_term < gate_v)
                if stuck.any():
                    outcome[stuck] = _LIVELOCK
                    pending &= ~stuck

        # -- execute phase -----------------------------------------------
        launch = pending & (state.time < job.horizon - 1e-12) \
            & (state.v_term >= gate_v)
        late = pending & ~launch
        if late.any():
            outcome[late] = _DEGRADED
            pending &= ~late
        if launch.any():
            browned = step(state, task.trace, True,
                           spec.v_off, active=launch)
            hit = launch & ~np.isnan(browned)
            if hit.any():
                outcome[hit] = _BROWN_OUT
                brown_time = np.where(hit, browned, brown_time)
                for i in np.flatnonzero(hit):
                    brown_task[int(i)] = task.name
                pending &= ~hit
                launch &= ~hit
            tasks_committed[launch] += 1

    return {
        "outcome": outcome,
        "tasks_committed": tasks_committed,
        "v_min": state.v_min,
        "final_time": state.time,
        "energy": state.energy,
        "brown_time": brown_time,
        "brown_task": brown_task,
        "device_steps": state.device_steps,
    }


def run_fleet_raw(spec: FleetSpec, *, app: str = "sense-store",
                  cycles: int = 2, estimator: str = "culpeo-pg",
                  horizon: float = 120.0, jobs: int = 1,
                  engine: str = "stepping") -> FleetOutcomes:
    """Run the fleet and return raw per-device outcomes.

    Gates come from ``estimator`` evaluated once on the un-jittered base
    plant (shared firmware). Results are byte-identical for any ``jobs``
    (and, under ``engine="segalg"``, for any backend setting — the fleet
    algebra path is numpy-only by design).
    """
    from repro.apps.programs import build_program
    from repro.sched.gating import program_gates
    from repro.verify.runner import KNOWN_ESTIMATORS, build_estimator

    if estimator not in KNOWN_ESTIMATORS:
        raise ValueError(
            f"unknown estimator {estimator!r}; choose from "
            f"{KNOWN_ESTIMATORS}")
    if engine not in FLEET_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {FLEET_ENGINES}")
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")

    program = build_program(app, cycles=cycles)  # validates the app name
    if spec.bank is not None:
        # Per-configuration gate tables (§V-B): the shared firmware ships
        # one table per candidate configuration, each derived from the
        # un-jittered base plant switched *into* that configuration.
        # Composite "tag/task" keys keep the job payload flat; shards
        # rebuild per-device gate arrays from the device's own
        # configuration index.
        from repro.sched.bank import config_tag

        gates = {}
        fallback_set = set()
        for config in spec.bank.configs:
            base = spec.bank_system(config)
            model = base.characterize()
            est = build_estimator(estimator, base, model)
            config_gates, config_fallbacks = program_gates(est, base,
                                                           program)
            tag = config_tag(config)
            for task_name, level in config_gates.items():
                gates[f"{tag}/{task_name}"] = level
            fallback_set.update(config_fallbacks)
        fallback_tasks = sorted(fallback_set)
    else:
        base = spec.base_system()
        model = base.characterize()
        est = build_estimator(estimator, base, model)
        gates, fallback_tasks = program_gates(est, base, program)

    wall_start = _time.perf_counter()
    shards = split_ranges(spec.devices, max(1, jobs))
    jobs_list = [
        _ShardJob(spec=spec, start=a, stop=b, app=app, cycles=cycles,
                  horizon=horizon, gates=tuple(sorted(gates.items())),
                  engine=engine)
        for a, b in shards
    ]
    results = parallel_map(_run_shard, jobs_list, jobs=jobs)
    wall = _time.perf_counter() - wall_start

    def _cat(key: str) -> np.ndarray:
        if not results:
            return np.zeros(0)
        return np.concatenate([r[key] for r in results])

    outcomes = FleetOutcomes(
        spec=spec, app=app, cycles=cycles, estimator=estimator,
        horizon=horizon, gates=gates, fallback_tasks=fallback_tasks,
        outcome_codes=(_cat("outcome") if results
                       else np.zeros(0, dtype=np.int64)),
        tasks_committed=(_cat("tasks_committed") if results
                         else np.zeros(0, dtype=np.int64)),
        v_min=_cat("v_min"),
        final_time=_cat("final_time"),
        energy=_cat("energy"),
        brown_time=_cat("brown_time"),
        brown_task=[t for r in results for t in r["brown_task"]],
        device_steps=sum(r["device_steps"] for r in results),
        engine=engine,
    )

    # Telemetry is emitted parent-side from aggregated results so the
    # metric stream matches the chaos campaign's any-jobs determinism
    # (wall-clock throughput is the one non-deterministic observation,
    # and it never reaches the report).
    obs = _obs_current()
    if obs is not None:
        obs.metrics.counter("fleet.devices").inc(outcomes.devices)
        obs.metrics.counter("fleet.device_steps").inc(outcomes.device_steps)
        for code, name in _CODE_TO_OUTCOME.items():
            count = int(np.count_nonzero(outcomes.outcome_codes == code))
            if count:
                obs.metrics.counter(f"fleet.outcome.{name}").inc(count)
        obs.metrics.histogram("fleet.v_min", VOLTAGE_BUCKETS_V) \
            .observe_many(outcomes.v_min.tolist())
        if wall > 0:
            obs.metrics.histogram("fleet.throughput.device_steps_per_s",
                                  THROUGHPUT_BUCKETS) \
                .observe(outcomes.device_steps / wall)
        obs.emit("fleet.run", devices=outcomes.devices, app=app,
                 estimator=estimator, engine=engine,
                 device_steps=outcomes.device_steps,
                 brown_outs=int(np.count_nonzero(
                     outcomes.outcome_codes == _BROWN_OUT)))
    return outcomes


#: Cap on per-device detail rows serialized into a report.
_REPORT_DETAIL_CAP = 50


@dataclass
class FleetReport:
    """Aggregated fleet outcomes (pure data — any-jobs byte-identical)."""

    spec: FleetSpec
    app: str
    cycles: int
    estimator: str
    horizon: float
    devices: int
    counts: Dict[str, int]
    gates: Dict[str, float]
    fallback_tasks: List[str]
    device_steps: int
    tasks_committed_total: int
    v_min_floor: float
    v_min_mean: float
    sim_time_total: float
    energy_total: float
    brown_outs: List[dict]
    livelocked: List[int]
    engine: str = "stepping"

    @property
    def unsafe_count(self) -> int:
        return self.counts.get("brown_out", 0) \
            + self.counts.get("livelock", 0)

    @property
    def ok(self) -> bool:
        """True when no device browned out past its gate or livelocked."""
        return self.unsafe_count == 0

    @property
    def brown_out_rate(self) -> float:
        if self.devices == 0:
            return 0.0
        return self.counts.get("brown_out", 0) / self.devices

    def to_dict(self) -> dict:
        return {
            "format": "repro.fleet-report",
            "version": 1,
            "config": {
                "spec": self.spec.to_dict(),
                "app": self.app,
                "cycles": self.cycles,
                "estimator": self.estimator,
                "horizon": self.horizon,
                "engine": self.engine,
            },
            "devices": self.devices,
            "counts": self.counts,
            "brown_out_rate": self.brown_out_rate,
            "gates": self.gates,
            "fallback_tasks": self.fallback_tasks,
            "device_steps": self.device_steps,
            "tasks_committed_total": self.tasks_committed_total,
            "v_min_floor": self.v_min_floor,
            "v_min_mean": self.v_min_mean,
            "sim_time_total": self.sim_time_total,
            "energy_total": self.energy_total,
            "brown_outs": self.brown_outs,
            "livelocked": self.livelocked,
            "ok": self.ok,
        }

    def render(self) -> str:
        table = TextTable(
            ["outcome", "devices", "share"],
            title=(f"fleet: {self.devices} devices, seed {self.spec.seed}, "
                   f"app {self.app} x{self.cycles}, "
                   f"estimator {self.estimator}"),
        )
        for name in OUTCOMES:
            count = self.counts.get(name, 0)
            share = (f"{100.0 * count / self.devices:.1f}%"
                     if self.devices else "—")
            table.add_row([name, count, share])
        lines = [table.render()]
        lines.append(f"device-steps: {self.device_steps}   "
                     f"tasks committed: {self.tasks_committed_total}")
        lines.append(f"V_min floor: {self.v_min_floor:.3f} V   "
                     f"mean: {self.v_min_mean:.3f} V")
        if self.fallback_tasks:
            lines.append("fallback gates: " + ", ".join(self.fallback_tasks))
        if self.brown_outs:
            lines.append(f"brown-outs ({self.counts.get('brown_out', 0)}, "
                         f"first {len(self.brown_outs)}):")
            for entry in self.brown_outs[:10]:
                lines.append(f"  device {entry['device']} during "
                             f"{entry['task']} at t={entry['time']:.3f} s")
        lines.append("verdict: " + ("OK" if self.ok else "UNSAFE"))
        return "\n".join(lines)


def summarize(outcomes: FleetOutcomes) -> FleetReport:
    """Fold raw per-device outcomes into a :class:`FleetReport`."""
    codes = outcomes.outcome_codes
    counts = {name: int(np.count_nonzero(codes == code))
              for code, name in _CODE_TO_OUTCOME.items()}
    brown_entries: List[dict] = []
    for i in np.flatnonzero(codes == _BROWN_OUT)[:_REPORT_DETAIL_CAP]:
        idx = int(i)
        brown_entries.append({
            "device": idx,
            "task": outcomes.brown_task[idx],
            "time": float(outcomes.brown_time[idx]),
            "v_min": float(outcomes.v_min[idx]),
        })
    livelocked = [int(i) for i in
                  np.flatnonzero(codes == _LIVELOCK)[:_REPORT_DETAIL_CAP]]
    n = outcomes.devices
    return FleetReport(
        spec=outcomes.spec, app=outcomes.app, cycles=outcomes.cycles,
        estimator=outcomes.estimator, horizon=outcomes.horizon,
        devices=n, counts=counts,
        gates={k: float(v) for k, v in sorted(outcomes.gates.items())},
        fallback_tasks=list(outcomes.fallback_tasks),
        device_steps=outcomes.device_steps,
        tasks_committed_total=int(outcomes.tasks_committed.sum()),
        v_min_floor=(float(outcomes.v_min.min()) if n else 0.0),
        v_min_mean=(float(outcomes.v_min.mean()) if n else 0.0),
        sim_time_total=float(outcomes.final_time.sum()),
        energy_total=float(outcomes.energy.sum()),
        brown_outs=brown_entries,
        livelocked=livelocked,
        engine=outcomes.engine,
    )


def run_fleet(spec: FleetSpec, *, app: str = "sense-store", cycles: int = 2,
              estimator: str = "culpeo-pg", horizon: float = 120.0,
              jobs: int = 1, engine: str = "stepping") -> FleetReport:
    """Run the fleet and aggregate a report (see :func:`run_fleet_raw`)."""
    return summarize(run_fleet_raw(
        spec, app=app, cycles=cycles, estimator=estimator,
        horizon=horizon, jobs=jobs, engine=engine))
