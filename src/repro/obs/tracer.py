"""Span-based structured tracing with JSONL output.

The tracer is the event half of the observability layer: instrumented code
emits named events (``emit``) and wraps logical units of work in spans
(``span``), and every event becomes one JSON object on one line — a format
CI artifacts, ``grep`` and pandas all read natively.

Events carry *simulation-domain* fields (simulated time, voltages,
verdicts) rather than wall-clock timestamps, so a trace is a deterministic
function of the workload: two runs of the same seeded experiment produce
byte-identical traces, serial or parallel. Wall-clock durations appear
only when profiling is enabled (``Observability(profile=True)``), in
dedicated ``wall_s`` fields.

Event vocabulary (see README §Observability for the full schema):

=====================  ==================================================
``task.begin/end``     one engine ``run_trace`` span: V_start, V_min,
                       V_final, brown-out flag — the Culpeo-R capture set
``power.brownout``     terminal voltage crossed V_off mid-task
``cache.hit/miss``     a VsafeCache lookup resolved
``sched.event``        one scheduler event's life: outcome, latency
``verify.verdict``     one differential-oracle verdict
``isr.samples``        one ISR capture batch: count, V_min/V_max
``prof.*``             wall-clock profiling samples (opt-in)
=====================  ==================================================
"""

from __future__ import annotations

import io
import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, TextIO, Union


class Tracer:
    """Collects structured events, optionally streaming them to JSONL.

    With no sink the tracer buffers events in memory (``events``); with a
    ``sink`` path or file object every event is also written as one JSON
    line. ``drain()`` hands the buffered events over (and clears the
    buffer) — the parallel harness uses it to replay worker events in the
    parent's trace in submission order.
    """

    def __init__(self, sink: Union[None, str, Path, TextIO] = None,
                 buffered: bool = True) -> None:
        self.events: List[Dict[str, Any]] = []
        self.buffered = buffered
        self._seq = 0
        self._span_depth = 0
        self._owns_sink = False
        self._sink: Optional[TextIO] = None
        if isinstance(sink, (str, Path)):
            self._sink = open(sink, "w", encoding="utf-8")
            self._owns_sink = True
        elif sink is not None:
            self._sink = sink

    # -- emission ------------------------------------------------------------

    def emit(self, name: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the event dictionary."""
        event: Dict[str, Any] = {"seq": self._seq, "event": name}
        self._seq += 1
        event.update(fields)
        if self.buffered:
            self.events.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event, sort_keys=False) + "\n")
        return event

    def begin(self, name: str, **fields: Any) -> int:
        """Open a span: emits ``<name>.begin`` and returns the span id."""
        span_id = self._seq
        self._span_depth += 1
        self.emit(f"{name}.begin", span=span_id, **fields)
        return span_id

    def end(self, name: str, span_id: int, **fields: Any) -> None:
        """Close a span opened by :meth:`begin`."""
        self._span_depth -= 1
        self.emit(f"{name}.end", span=span_id, **fields)

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[Dict[str, Any]]:
        """A ``<name>.begin`` / ``<name>.end`` event pair around a block.

        Yields a mutable dictionary; whatever the block puts there lands on
        the ``end`` event — the idiom for results known only at the end
        (V_min, verdicts, wall time).
        """
        span_id = self.begin(name, **fields)
        results: Dict[str, Any] = {}
        try:
            yield results
        finally:
            self.end(name, span_id, **results)

    # -- plumbing ------------------------------------------------------------

    def drain(self) -> List[Dict[str, Any]]:
        """Hand over (and clear) the buffered events."""
        events, self.events = self.events, []
        return events

    def replay(self, events: List[Dict[str, Any]]) -> None:
        """Re-emit events captured elsewhere (worker processes), renumbering
        their sequence ids — and the span ids that reference them — into
        this tracer's stream. After replay the merged trace is
        indistinguishable from one recorded serially."""
        span_map: Dict[Any, int] = {}
        for event in events:
            fields = {k: v for k, v in event.items()
                      if k not in ("seq", "event")}
            old_span = fields.get("span")
            if old_span is not None:
                # A span id is the seq of its ``.begin`` event, so the
                # begin defines the mapping and the end looks it up.
                if event["event"].endswith(".begin"):
                    span_map[old_span] = self._seq
                fields["span"] = span_map.get(old_span, old_span)
            self.emit(event["event"], **fields)

    def counts_by_event(self) -> Dict[str, int]:
        """Buffered-event histogram, useful for summaries and tests."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event["event"]] = counts.get(event["event"], 0) + 1
        return counts

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a JSONL trace file back into a list of event dictionaries."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def render_trace_summary(events: List[Dict[str, Any]]) -> str:
    """A one-table digest of a trace: events by type, with counts."""
    from repro.harness.report import TextTable

    counts: Dict[str, int] = {}
    for event in events:
        counts[event["event"]] = counts.get(event["event"], 0) + 1
    table = TextTable(["event", "count"],
                      title=f"trace: {len(events)} events")
    for name in sorted(counts):
        table.add_row([name, counts[name]])
    return table.render()


def dumps_events(events: List[Dict[str, Any]]) -> str:
    """Serialize events as JSONL (one object per line)."""
    out = io.StringIO()
    for event in events:
        out.write(json.dumps(event, sort_keys=False) + "\n")
    return out.getvalue()
