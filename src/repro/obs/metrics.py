"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the numeric half of the observability layer
(:mod:`repro.obs`): instrumented code increments counters, sets gauges and
observes histogram samples; consumers take a :meth:`~MetricsRegistry.snapshot`
and render or persist it.

Two design rules make the registry safe for this repo's execution model:

* **Fixed bucket boundaries.** A histogram's buckets are declared at
  creation and never adapt to the data, so two histograms observed in
  different processes (or in different orders) aggregate by plain
  bucket-count addition — a serial run and a process-pool run merge to the
  *identical* snapshot. This mirrors how
  :func:`repro.harness.parallel.parallel_map` keeps results bit-identical:
  no state may depend on which worker saw which item.
* **Plain-data snapshots.** ``snapshot()``/``merge_snapshot()`` speak JSON
  dictionaries, which is what lets a worker process ship its registry back
  through a pickle boundary and the parent fold it in.

All instruments are thread-safe; the cost only exists while observability
is enabled — disabled code paths never touch a registry at all.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default boundaries for wall-clock latency histograms (seconds).
#: Spans 10 µs to ~100 s on a log scale — wide enough for a single fast
#: kernel call and a full 200-trial verification run alike.
LATENCY_BUCKETS_S: Tuple[float, ...] = tuple(
    round(10.0 ** (e / 3.0), 12) for e in range(-15, 7)
)

#: Default boundaries for capacitor-voltage histograms (volts, 50 mV bins
#: over the platforms' 0–5 V envelope).
VOLTAGE_BUCKETS_V: Tuple[float, ...] = tuple(
    round(0.05 * i, 10) for i in range(1, 101)
)

#: Default boundaries for throughput histograms (items per second on a
#: log scale, 1 to 10^9) — wide enough for device·steps/s of both the
#: scalar stepping loop and the vectorized fleet kernel.
THROUGHPUT_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (e / 3.0), 6) for e in range(0, 28)
)

#: Default boundaries for small discrete-count histograms (events per
#: advance, passes per solve): 0 and a coarse log-2 ladder to 4096.
#: Most segment-algebra advances see zero or a handful of events; the
#: tail buckets catch pathological regime-chatter workloads.
EVENT_COUNT_BUCKETS: Tuple[float, ...] = tuple(
    [0.0] + [float(2 ** e) for e in range(0, 13)]
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time float (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A histogram over fixed, sorted bucket upper bounds.

    ``buckets`` are inclusive upper bounds; an implicit overflow bucket
    catches everything above the last bound. Count, sum, min and max are
    tracked exactly alongside the bucket counts, so merged snapshots keep
    exact totals even though per-sample values are binned.
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing: "
                             f"{bounds}")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)   # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        # First bucket whose (inclusive) upper bound holds the value; past
        # the last bound lands in the overflow slot.
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Fold a batch of samples in under one lock acquisition.

        Equivalent to calling :meth:`observe` per value (same bucket
        arithmetic, same exact totals) but cheap enough for array-sized
        batches — the fleet kernel records thousands of per-device
        voltages at once.
        """
        if len(values) == 0:
            return
        floats = [float(v) for v in values]
        with self._lock:
            for value in floats:
                self._counts[bisect_left(self.buckets, value)] += 1
                self._sum += value
                if value < self._min:
                    self._min = value
                if value > self._max:
                    self._max = value
            self._count += len(floats)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one, allocation-free.

        The other side's fields are copied to locals under *its* lock,
        then folded under *ours* — no snapshot dictionary is built, which
        is what keeps registry merging off the allocator in hot serving
        paths. Exact totals merge exactly; bucket bounds must match.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"bucket bounds differ")
        with other._lock:
            counts = list(other._counts)
            count = other._count
            total = other._sum
            low = other._min
            high = other._max
        with self._lock:
            for index, value in enumerate(counts):
                self._counts[index] += value
            self._count += count
            self._sum += total
            if low < self._min:
                self._min = low
            if high > self._max:
                self._max = high

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (q in [0, 1]) from the bucket counts.

        Returns the upper bound of the bucket holding the quantile sample
        (the exact max for the overflow bucket) — a deterministic,
        merge-stable approximation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = q * self._count
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= target and count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self._max
        return self._max


class MetricsRegistry:
    """A named collection of instruments with deterministic merging."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (get-or-create) ---------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(self, name: str,
                  buckets: Sequence[float] = LATENCY_BUCKETS_S) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, buckets))
        elif tuple(float(b) for b in buckets) != histogram.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with different "
                f"bucket bounds"
            )
        return histogram

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready dictionary of every instrument, names sorted."""
        counters = {name: c.value
                    for name, c in sorted(self._counters.items())}
        gauges = {name: g.value for name, g in sorted(self._gauges.items())}
        histograms = {}
        for name, h in sorted(self._histograms.items()):
            with h._lock:  # noqa: SLF001 — consistent multi-field read
                histograms[name] = {
                    "buckets": list(h.buckets),
                    "counts": list(h._counts),  # noqa: SLF001
                    "count": h._count,          # noqa: SLF001
                    "sum": h._sum,              # noqa: SLF001
                    "min": None if h._count == 0 else h._min,  # noqa: SLF001
                    "max": None if h._count == 0 else h._max,  # noqa: SLF001
                }
        return {
            "format": "repro.obs-metrics",
            "version": 1,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram buckets add; gauges take the incoming value
        (callers merge in submission order, so the result is deterministic).
        Histograms must share bucket bounds — they do by construction when
        both sides use the same metric declarations.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, payload["buckets"])
            incoming_min = payload.get("min")
            incoming_max = payload.get("max")
            with histogram._lock:  # noqa: SLF001
                for index, count in enumerate(payload["counts"]):
                    histogram._counts[index] += int(count)  # noqa: SLF001
                histogram._count += int(payload["count"])   # noqa: SLF001
                histogram._sum += float(payload["sum"])     # noqa: SLF001
                if incoming_min is not None \
                        and incoming_min < histogram._min:  # noqa: SLF001
                    histogram._min = incoming_min           # noqa: SLF001
                if incoming_max is not None \
                        and incoming_max > histogram._max:  # noqa: SLF001
                    histogram._max = incoming_max           # noqa: SLF001

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one, instrument to instrument.

        Used on hot paths (the serving dispatcher folds per-batch
        registries once per batch), so unlike :meth:`merge_snapshot` it
        never materializes the intermediate snapshot dictionary —
        counters add, gauges take the incoming value, histograms fold via
        :meth:`Histogram.merge_from`. Same result as merging the other
        side's snapshot, minus the allocations.
        """
        for name, counter in sorted(other._counters.items()):
            self.counter(name).inc(counter.value)
        for name, gauge in sorted(other._gauges.items()):
            self.gauge(name).set(gauge.value)
        for name, histogram in sorted(other._histograms.items()):
            self.histogram(name, histogram.buckets).merge_from(histogram)

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))


def render_snapshot(snapshot: dict,
                    title: Optional[str] = None) -> str:
    """Render a metrics snapshot as aligned text tables.

    Scalar instruments (counters and gauges) go in one table; histograms in
    a second with count/mean/extremes and merge-stable p50/p99.
    """
    from repro.harness.report import TextTable

    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters or gauges:
        table = TextTable(["metric", "type", "value"], title=title)
        for name, value in sorted(counters.items()):
            table.add_row([name, "counter", value])
        for name, value in sorted(gauges.items()):
            table.add_row([name, "gauge", f"{value:g}"])
        lines.append(table.render())
    histograms = snapshot.get("histograms", {})
    if histograms:
        table = TextTable(
            ["histogram", "count", "mean", "min", "max", "p50", "p99"],
            title=None if lines else title,
        )
        for name, payload in sorted(histograms.items()):
            histogram = Histogram(name, payload["buckets"])
            registry = MetricsRegistry()
            registry._histograms[name] = histogram  # noqa: SLF001
            registry.merge_snapshot({"histograms": {name: payload}})
            count = histogram.count
            fmt = (lambda v: "—" if v is None else f"{v:.4g}")
            table.add_row([
                name, count, f"{histogram.mean:.4g}",
                fmt(payload.get("min")), fmt(payload.get("max")),
                f"{histogram.quantile(0.50):.4g}" if count else "—",
                f"{histogram.quantile(0.99):.4g}" if count else "—",
            ])
        lines.append(table.render())
    if not lines:
        return "(no metrics recorded)"
    return "\n\n".join(lines)
