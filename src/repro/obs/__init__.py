"""``repro.obs`` — zero-dependency observability for the whole stack.

Three pieces, one switch:

* :class:`~repro.obs.metrics.MetricsRegistry` — process-local counters,
  gauges and fixed-bucket histograms that merge deterministically across
  worker processes (:mod:`repro.obs.metrics`);
* :class:`~repro.obs.tracer.Tracer` — span-based structured events
  written as JSONL (:mod:`repro.obs.tracer`);
* profiling hooks — wall-clock timing of simulation batches and
  estimator calls, opt-in via ``profile=True`` because wall time is the
  one non-deterministic field.

The switch is module state: :func:`enable` installs an
:class:`Observability` instance, :func:`current` returns it (or ``None``),
:func:`disable` removes it. **Instrumented code must stay off the hot
path when disabled**: every site checks ``obs.current() is None`` once
per *batch* of work (a whole ``run_trace``, a cache lookup, a verify
trial) and never inside a stepping loop — which is how the fast kernel's
speedup survives instrumentation (see the guard in
``sim/engine.py``/``sim/fastpath.py``: the inner loops are untouched).

Typical use::

    from repro import obs

    with obs.observe(trace_path="trace.jsonl") as ob:
        run_app(periodic_sensing_app(), "culpeo", trials=1)
    print(obs.render_snapshot(ob.metrics.snapshot()))

Worker processes spawned by :func:`repro.harness.parallel.parallel_map`
inherit the parent's enablement automatically: each worker runs with a
fresh registry and in-memory tracer, and the parent merges the returned
snapshots and replays the events in submission order — the merged result
is identical to a serial run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.obs.metrics import (
    EVENT_COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    THROUGHPUT_BUCKETS,
    VOLTAGE_BUCKETS_V,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_snapshot,
)
from repro.obs.tracer import (
    Tracer,
    dumps_events,
    load_trace,
    render_trace_summary,
)

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "EVENT_COUNT_BUCKETS",
    "LATENCY_BUCKETS_S",
    "THROUGHPUT_BUCKETS",
    "VOLTAGE_BUCKETS_V",
    "enable",
    "disable",
    "current",
    "observe",
    "timed",
    "render_snapshot",
    "render_trace_summary",
    "load_trace",
    "dumps_events",
]


class Observability:
    """One enabled observability context: registry + tracer + profile flag.

    ``tracer`` may be ``None`` (metrics only). ``profile`` additionally
    turns on wall-clock hooks — histograms of per-batch simulation time
    and per-estimator latency, plus ``prof.*`` trace events.
    """

    __slots__ = ("metrics", "tracer", "profile")

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 profile: bool = False) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.profile = profile

    def emit(self, name: str, **fields: Any) -> None:
        """Emit a trace event if a tracer is attached (no-op otherwise)."""
        if self.tracer is not None:
            self.tracer.emit(name, **fields)

    def spawn_config(self) -> dict:
        """How a worker process should re-enable observability locally."""
        return {"trace": self.tracer is not None, "profile": self.profile}


_state: Optional[Observability] = None


def current() -> Optional[Observability]:
    """The enabled :class:`Observability`, or ``None`` — the single check
    every instrumentation site performs."""
    return _state


def enable(*, metrics: Optional[MetricsRegistry] = None,
           tracer: Optional[Tracer] = None,
           trace_path: Union[None, str, Path] = None,
           profile: bool = False) -> Observability:
    """Install (and return) a process-wide observability context.

    ``trace_path`` is shorthand for ``tracer=Tracer(trace_path)``. Calling
    :func:`enable` while enabled replaces the previous context.
    """
    global _state
    if tracer is None and trace_path is not None:
        tracer = Tracer(trace_path)
    _state = Observability(metrics=metrics, tracer=tracer, profile=profile)
    return _state


def disable() -> Optional[Observability]:
    """Remove the context; returns what was installed (caller may flush)."""
    global _state
    state, _state = _state, None
    return state


@contextmanager
def observe(*, metrics: Optional[MetricsRegistry] = None,
            tracer: Optional[Tracer] = None,
            trace_path: Union[None, str, Path] = None,
            profile: bool = False) -> Iterator[Observability]:
    """Enable observability for a block, restoring the prior state after.

    The tracer (if file-backed) is closed on exit, so the JSONL file is
    complete when the block ends.
    """
    global _state
    previous = _state
    state = enable(metrics=metrics, tracer=tracer, trace_path=trace_path,
                   profile=profile)
    try:
        yield state
    finally:
        _state = previous
        if state.tracer is not None:
            state.tracer.close()


@contextmanager
def timed(name: str, **fields: Any) -> Iterator[None]:
    """Profile a block: a latency histogram sample plus a ``prof.<name>``
    event, only when profiling is enabled. Near-zero cost otherwise."""
    obs = _state
    if obs is None or not obs.profile:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        wall = time.perf_counter() - start
        obs.metrics.histogram(f"prof.{name}_wall_s",
                              LATENCY_BUCKETS_S).observe(wall)
        obs.emit(f"prof.{name}", wall_s=wall, **fields)


def worker_events_and_snapshot(state: Observability) -> dict:
    """Package a worker's observability output for the trip back to the
    parent (used by :mod:`repro.harness.parallel`)."""
    events: List[Dict[str, Any]] = []
    if state.tracer is not None:
        events = state.tracer.drain()
    return {"metrics": state.metrics.snapshot(), "events": events}


def absorb_worker_output(parent: Observability, payload: dict) -> None:
    """Merge one worker's metrics/events into the parent context."""
    parent.metrics.merge_snapshot(payload["metrics"])
    if parent.tracer is not None and payload["events"]:
        parent.tracer.replay(payload["events"])
