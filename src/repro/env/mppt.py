"""PV transducer IV model and the MPPT harvester front-ends.

An environment model says how bright the sky is; this module says how
many *watts* a harvester front-end pulls out of it. The transducer is a
single-diode-style PV curve

.. math::

    I(V, E) = I_{sc} \\cdot E \\cdot \\bigl(1 - (V / V_{oc}(E))^m\\bigr)

with short-circuit current proportional to intensity ``E`` and an
open-circuit voltage that sags weakly at low light
(``V_oc(E) = V_oc * E^{voc_exponent}``). The exponent ``m`` sets the
knee sharpness; power ``P = V I`` then has a single interior maximum —
the maximum power point the front-ends chase.

Three front-ends mirror the classic MPPT families:

* :class:`ConstantVoltageMPPT` — regulate the panel at a fixed setpoint
  (the paper's "2.2 V source behind a potentiometer" bench, made
  explicit);
* :class:`VocFractionMPPT` — the fractional-V_OC heuristic: hold
  ``fraction * V_oc(E)``, with the fraction pinned inside ``(0, 1)``;
* :class:`PerturbObserveMPPT` — stateful hill-climbing: perturb the
  setpoint, keep the direction while power improves, reverse otherwise.
  On a static IV curve it converges to within one perturbation step of
  the true maximum power point.

Front-ends return raw panel watts; converter losses stay downstream in
the simulated input booster, exactly like every other harvester model.
"""

from __future__ import annotations

import math
from typing import Optional

#: Fine scan used for the reference maximum power point (tests and
#: transducer scaling). 1024 points bounds the bracket to ~0.1% of V_oc.
_MPP_SCAN = 1024


class PVTransducer:
    """Static PV panel curve: intensity in, an IV characteristic out."""

    def __init__(self, v_oc: float = 2.2, i_sc: float = 5e-3,
                 knee: float = 8.0, voc_exponent: float = 0.06) -> None:
        if v_oc <= 0 or i_sc <= 0:
            raise ValueError(
                f"v_oc and i_sc must be positive, got {v_oc}, {i_sc}")
        if knee <= 1:
            raise ValueError(f"knee must exceed 1, got {knee}")
        if not 0 <= voc_exponent < 1:
            raise ValueError(
                f"voc_exponent must be in [0, 1), got {voc_exponent}")
        self.v_oc = float(v_oc)
        self.i_sc = float(i_sc)
        self.knee = float(knee)
        self.voc_exponent = float(voc_exponent)

    def v_open(self, intensity: float) -> float:
        """Open-circuit voltage at ``intensity`` (0 in the dark)."""
        if intensity <= 0.0:
            return 0.0
        return self.v_oc * intensity ** self.voc_exponent

    def current(self, v: float, intensity: float) -> float:
        """Panel current at terminal voltage ``v`` (clipped at zero)."""
        v_open = self.v_open(intensity)
        if intensity <= 0.0 or v_open <= 0.0 or v >= v_open:
            return 0.0
        ratio = max(v, 0.0) / v_open
        return self.i_sc * intensity * (1.0 - ratio ** self.knee)

    def power(self, v: float, intensity: float) -> float:
        """Panel power ``V * I(V)`` — non-negative by construction."""
        return max(v, 0.0) * self.current(v, intensity)

    def mpp(self, intensity: float) -> tuple:
        """Reference maximum power point ``(v_mpp, p_mpp)`` by fine scan."""
        v_open = self.v_open(intensity)
        if v_open <= 0.0:
            return 0.0, 0.0
        best_v, best_p = 0.0, 0.0
        for k in range(1, _MPP_SCAN):
            v = v_open * k / _MPP_SCAN
            p = self.power(v, intensity)
            if p > best_p:
                best_v, best_p = v, p
        return best_v, best_p

    @classmethod
    def scaled_to(cls, peak_power: float, v_oc: float = 2.2,
                  knee: float = 8.0,
                  voc_exponent: float = 0.06) -> "PVTransducer":
        """A transducer whose full-sun MPP delivers ``peak_power`` watts."""
        if peak_power < 0:
            raise ValueError(
                f"peak_power must be non-negative, got {peak_power}")
        probe = cls(v_oc=v_oc, i_sc=1.0, knee=knee,
                    voc_exponent=voc_exponent)
        _unused, p_unit = probe.mpp(1.0)
        i_sc = peak_power / p_unit if p_unit > 0 else 1e-12
        return cls(v_oc=v_oc, i_sc=max(i_sc, 1e-12), knee=knee,
                   voc_exponent=voc_exponent)


class ConstantVoltageMPPT:
    """Regulate the panel at a fixed voltage setpoint."""

    #: Stateless front-ends may be evaluated at arbitrary times in any
    #: order; the lowering pass uses adaptive (out-of-order) refinement
    #: only when this is False.
    stateful = False

    def __init__(self, v_ref: float = 1.7) -> None:
        if v_ref <= 0:
            raise ValueError(f"v_ref must be positive, got {v_ref}")
        self.v_ref = float(v_ref)

    def reset(self) -> None:
        pass

    def setpoint(self, pv: PVTransducer, intensity: float) -> float:
        return min(self.v_ref, pv.v_open(intensity))

    def harvest_power(self, pv: PVTransducer, intensity: float) -> float:
        return pv.power(self.setpoint(pv, intensity), intensity)


class VocFractionMPPT:
    """Fractional open-circuit-voltage MPPT: hold ``fraction * V_oc(E)``."""

    stateful = False

    def __init__(self, fraction: float = 0.76) -> None:
        if not 0.0 < fraction < 1.0:
            raise ValueError(
                f"fraction must be strictly inside (0, 1), got {fraction}")
        self.fraction = float(fraction)

    def reset(self) -> None:
        pass

    def setpoint(self, pv: PVTransducer, intensity: float) -> float:
        return self.fraction * pv.v_open(intensity)

    def harvest_power(self, pv: PVTransducer, intensity: float) -> float:
        return pv.power(self.setpoint(pv, intensity), intensity)


class PerturbObserveMPPT:
    """Perturb-and-observe hill climbing on the panel power.

    Stateful: each :meth:`harvest_power` call is one tracker sample.
    The tracker measures power at its current setpoint, keeps the last
    perturbation direction if power improved and reverses it otherwise,
    then steps the setpoint by ``step`` volts (clamped inside
    ``[step, v_open]``). The lowering pass therefore evaluates this
    front-end *sequentially* on its sample grid — never out of order.
    """

    stateful = True

    def __init__(self, step: float = 0.05,
                 v_start: Optional[float] = None) -> None:
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        self.step = float(step)
        self.v_start = v_start
        self.reset()

    def reset(self) -> None:
        self._v: Optional[float] = (
            float(self.v_start) if self.v_start is not None else None)
        self._p_last = -math.inf
        self._dir = 1.0

    def setpoint(self, pv: PVTransducer, intensity: float) -> float:
        """Current operating point (does not advance the tracker)."""
        v_open = pv.v_open(intensity)
        if self._v is None:
            return 0.5 * v_open
        return min(max(self._v, self.step), v_open) if v_open > 0 else 0.0

    def harvest_power(self, pv: PVTransducer, intensity: float) -> float:
        v_open = pv.v_open(intensity)
        if self._v is None:
            self._v = 0.5 * v_open if v_open > 0 else self.step
        v = min(max(self._v, self.step), v_open) if v_open > 0 else self._v
        p = pv.power(v, intensity)
        if p < self._p_last:
            self._dir = -self._dir
        self._p_last = p
        v_next = v + self._dir * self.step
        if v_open > 0:
            v_next = min(max(v_next, self.step), v_open)
        self._v = v_next
        return p


__all__ = [
    "ConstantVoltageMPPT",
    "PVTransducer",
    "PerturbObserveMPPT",
    "VocFractionMPPT",
]
