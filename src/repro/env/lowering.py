"""Lower an environment model + MPPT front-end into a harvest trace.

The contract that makes the rest of the stack exact: the lowered
:class:`~repro.power.harvester.TraceHarvester` carries every model
breakpoint as a piece edge **verbatim** — the same float the model
reported, not a rounded neighbour — so step discontinuities (cloud
edges, kinetic bursts) land on trace edges, trace edges land on
simulation-step clamps and segment-program span horizons, and no engine
ever integrates through a discontinuity.

Between breakpoints the profile is smooth and the trace approximates it
by **adaptive bisection**: an interval is split while its quarter-point
powers disagree with its midpoint power by more than ``tol`` of the
full-sun maximum power (or while it is longer than ``max_dt``), down to
a ``min_dt`` floor. Each surviving interval becomes one piece holding
its midpoint power, so the trace's energy converges to the model's as
the tolerance tightens — piecewise-constant models (kinetic burst) are
reproduced *exactly*.

Stateful front-ends (perturb-and-observe) cannot be sampled out of
order, so they skip refinement: the grid is the union of the model
breakpoints and a uniform ``sample_dt`` lattice, walked left to right
with one tracker sample per piece (observed at the piece start).
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.obs import current as _obs_current
from repro.power.harvester import TraceHarvester

#: Refinement floor (seconds): below this an interval is committed even
#: if its midpoint still disagrees with its quarter points. Two decades
#: under the shortest task segment widths the generators emit.
MIN_DT = 1e-3


def _refine(f: Callable[[float], float], a: float, b: float, p_a_mid: float,
            p_scale: float, max_dt: float, tol: float, min_dt: float,
            edges: List[float], powers: List[float]) -> None:
    """Recursively bisect ``[a, b]``; emit pieces holding midpoint power.

    ``p_a_mid`` is the midpoint power of the interval, precomputed by
    the caller (each split reuses the parent's quarter-point samples as
    the children's midpoints, keeping evaluations O(pieces)).
    """
    width = b - a
    mid = 0.5 * (a + b)
    if width <= min_dt:
        edges.append(b)
        powers.append(p_a_mid)
        return
    p_l = f(0.5 * (a + mid))
    p_r = f(0.5 * (mid + b))
    budget = tol * p_scale
    if (width > max_dt or abs(p_l - p_a_mid) > budget
            or abs(p_r - p_a_mid) > budget):
        _refine(f, a, mid, p_l, p_scale, max_dt, tol, min_dt, edges, powers)
        _refine(f, mid, b, p_r, p_scale, max_dt, tol, min_dt, edges, powers)
    else:
        edges.append(b)
        powers.append(p_a_mid)


def _merge(edges: List[float], powers: List[float]) -> TraceHarvester:
    """Drop interior edges between equal-power neighbours (exact edges)."""
    m_edges = [edges[0]]
    m_powers: List[float] = []
    for k, p in enumerate(powers):
        if m_powers and m_powers[-1] == p:
            m_edges[-1] = edges[k + 1]
        else:
            m_edges.append(edges[k + 1])
            m_powers.append(p)
    return TraceHarvester(np.asarray(m_edges), np.asarray(m_powers))


def lower_environment(model, pv, mppt, duration: float, *,
                      max_dt: float = 2.0, tol: float = 0.02,
                      min_dt: float = MIN_DT,
                      sample_dt: float = 0.5) -> TraceHarvester:
    """Lower ``(model, pv, mppt)`` over ``[0, duration]`` to a trace.

    ``tol`` is relative to the transducer's full-sun maximum power.
    Stateless front-ends get adaptive refinement; stateful ones get the
    sequential uniform-plus-breakpoints grid described in the module
    docstring. The returned trace always starts at 0.0 and ends exactly
    at ``duration``.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    base = [0.0]
    base.extend(float(t) for t in model.breakpoints(duration))
    base.append(float(duration))

    mppt.reset()
    edges: List[float] = [0.0]
    powers: List[float] = []
    if mppt.stateful:
        if sample_dt <= 0:
            raise ValueError(f"sample_dt must be positive, got {sample_dt}")
        lattice = np.arange(1, int(np.ceil(duration / sample_dt))) \
            * sample_dt
        grid = sorted(set(base) | set(lattice[lattice < duration].tolist()))
        for a, b in zip(grid[:-1], grid[1:]):
            p = mppt.harvest_power(pv, model.intensity(a))
            edges.append(b)
            powers.append(p)
    else:
        _unused, p_scale = pv.mpp(1.0)
        p_scale = max(p_scale, 1e-12)

        def f(t: float) -> float:
            return mppt.harvest_power(pv, model.intensity(t))

        for a, b in zip(base[:-1], base[1:]):
            if b <= a:
                continue
            _refine(f, a, b, f(0.5 * (a + b)), p_scale, max_dt, tol,
                    min_dt, edges, powers)

    trace = _merge(edges, powers)
    obs = _obs_current()
    if obs is not None:
        obs.metrics.counter("env.lowered").inc()
        obs.metrics.counter("env.pieces").inc(len(trace.powers))
    return trace


__all__ = ["MIN_DT", "lower_environment"]
