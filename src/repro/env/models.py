"""Parametric environment models: normalized intensity versus time.

Each model maps absolute time to a dimensionless **intensity** in
``[0, 1]`` — fraction of full sun for PV, normalized vibration energy
for kinetic, normalized thermal gradient for TEG — and reports the exact
time points where that mapping is *non-smooth* (steps and kinks). The
lowering pass puts every such breakpoint on the trace grid verbatim, so
a cloud edge in the model becomes a piece edge in the lowered
:class:`~repro.power.harvester.TraceHarvester` and, downstream, a
segment-program breakpoint in the analytic engines.

All stochastic structure (cloud transients, kinetic bursts) is drawn
once at construction from a seeded generator over a fixed horizon, so a
model instance is a pure function of its parameters: the same seed
always yields the same sky.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

import numpy as np

#: RNG stream ids mixed with the model seed — distinct from the fleet
#: spec stream (0xF1EE7) and the verify trial streams so an environment
#: and the fleet it drives never consume the same random numbers.
_CLOUD_STREAM = 0xC100D
_BURST_STREAM = 0xB0057


@runtime_checkable
class EnvironmentModel(Protocol):
    """Normalized environment intensity plus its exact non-smooth points."""

    def intensity(self, t: float) -> float:
        ...

    def breakpoints(self, duration: float) -> np.ndarray:
        ...


def _clip_breakpoints(points, duration: float) -> np.ndarray:
    """Sorted unique breakpoints strictly inside ``(0, duration)``."""
    arr = np.asarray(sorted(set(float(p) for p in points)), dtype=np.float64)
    if len(arr) == 0:
        return arr
    return arr[(arr > 0.0) & (arr < duration)]


class DiurnalSolarModel:
    """A diurnal irradiance arc shaded by seeded cloud transients.

    The clear-sky component is a half-sine day: within each period of
    length ``period`` the first ``daylight_fraction`` is daylight with
    ``sin(pi * t_day / daylight)`` intensity, the rest is night at zero.
    Dawn and dusk are *kinks* (the model is continuous but not smooth
    there) and are reported as breakpoints so the lowered trace changes
    piece exactly at sunrise.

    Cloud transients are step attenuations: each cloud ``j`` multiplies
    intensity by ``(1 - depth_j)`` for its duration, overlapping clouds
    compose multiplicatively, and both edges of every cloud are exact
    breakpoints. Clouds are drawn at construction from
    ``default_rng((seed, _CLOUD_STREAM))`` over ``[0, horizon)``:
    a Poisson count of ``cloud_rate`` per period, uniform starts,
    exponential durations with mean ``cloud_duration``, and depths
    uniform in ``[0.5, 1] * cloud_depth``.
    """

    def __init__(self, period: float = 240.0,
                 daylight_fraction: float = 0.5,
                 seed: int = 0,
                 cloud_rate: float = 4.0,
                 cloud_depth: float = 0.7,
                 cloud_duration: float = 6.0,
                 horizon: float = 240.0) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0 < daylight_fraction <= 1:
            raise ValueError("daylight_fraction must be in (0, 1], got "
                             f"{daylight_fraction}")
        if cloud_rate < 0 or cloud_depth < 0 or cloud_depth > 1:
            raise ValueError("cloud_rate must be >= 0 and cloud_depth in "
                             f"[0, 1], got {cloud_rate}, {cloud_depth}")
        if cloud_duration <= 0:
            raise ValueError(
                f"cloud_duration must be positive, got {cloud_duration}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.period = float(period)
        self.daylight = float(daylight_fraction) * self.period
        self.horizon = float(horizon)
        rng = np.random.default_rng((seed, _CLOUD_STREAM))
        count = int(rng.poisson(cloud_rate * self.horizon / self.period)) \
            if cloud_rate > 0 else 0
        starts = np.sort(rng.uniform(0.0, self.horizon, count))
        durations = rng.exponential(cloud_duration, count)
        depths = cloud_depth * rng.uniform(0.5, 1.0, count)
        self.cloud_starts = starts
        self.cloud_ends = starts + durations
        self.cloud_depths = depths

    def _attenuation(self, t: float) -> float:
        active = (self.cloud_starts <= t) & (t < self.cloud_ends)
        if not active.any():
            return 1.0
        return float(np.prod(1.0 - self.cloud_depths[active]))

    def intensity(self, t: float) -> float:
        t_day = math.fmod(t, self.period)
        if t_day < 0.0:
            t_day += self.period
        if t_day >= self.daylight:
            return 0.0
        arc = math.sin(math.pi * t_day / self.daylight)
        return max(0.0, arc * self._attenuation(t))

    def breakpoints(self, duration: float) -> np.ndarray:
        points = []
        day = 0
        while day * self.period < duration:
            points.append(day * self.period)            # dawn kink
            points.append(day * self.period + self.daylight)  # dusk kink
            day += 1
        points.extend(self.cloud_starts.tolist())       # cloud step edges
        points.extend(self.cloud_ends.tolist())
        return _clip_breakpoints(points, duration)


class KineticBurstModel:
    """Vibration harvesting: a weak floor plus seeded rectangular bursts.

    Intensity is **piecewise constant** — ``base_intensity`` between
    events, plus the amplitudes of all active bursts, capped at one —
    so the lowering of this model is *exact*: the trace reproduces the
    model's energy to the last joule. Bursts are drawn at construction
    from ``default_rng((seed, _BURST_STREAM))``: a Poisson count of
    ``burst_rate`` per second over the horizon, uniform starts,
    exponential durations with mean ``burst_duration``, amplitudes
    uniform in ``[0.5, 1] * burst_intensity``.
    """

    def __init__(self, base_intensity: float = 0.05,
                 seed: int = 0,
                 burst_rate: float = 0.1,
                 burst_duration: float = 2.0,
                 burst_intensity: float = 0.9,
                 horizon: float = 240.0) -> None:
        if not 0 <= base_intensity <= 1:
            raise ValueError(
                f"base_intensity must be in [0, 1], got {base_intensity}")
        if burst_rate < 0 or not 0 <= burst_intensity <= 1:
            raise ValueError("burst_rate must be >= 0 and burst_intensity "
                             f"in [0, 1], got {burst_rate}, {burst_intensity}")
        if burst_duration <= 0:
            raise ValueError(
                f"burst_duration must be positive, got {burst_duration}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.base = float(base_intensity)
        self.horizon = float(horizon)
        rng = np.random.default_rng((seed, _BURST_STREAM))
        count = int(rng.poisson(burst_rate * self.horizon)) \
            if burst_rate > 0 else 0
        starts = np.sort(rng.uniform(0.0, self.horizon, count))
        durations = rng.exponential(burst_duration, count)
        amps = burst_intensity * rng.uniform(0.5, 1.0, count)
        self.burst_starts = starts
        self.burst_ends = starts + durations
        self.burst_amps = amps

    def intensity(self, t: float) -> float:
        active = (self.burst_starts <= t) & (t < self.burst_ends)
        level = self.base + float(np.sum(self.burst_amps[active]))
        return min(1.0, level)

    def breakpoints(self, duration: float) -> np.ndarray:
        points = list(self.burst_starts) + list(self.burst_ends)
        return _clip_breakpoints(points, duration)


class ThermalGradientModel:
    """TEG harvesting from a slow thermal cycle: a triangle wave.

    Intensity ramps linearly from ``low`` to ``high`` over the first
    half of each period and back over the second — piecewise *linear*,
    with exact kinks at every ramp vertex (the half-period points).
    Deterministic: thermal mass leaves no room for fast transients.
    """

    def __init__(self, period: float = 240.0,
                 intensity_low: float = 0.2,
                 intensity_high: float = 1.0) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0 <= intensity_low <= intensity_high <= 1:
            raise ValueError(
                "need 0 <= intensity_low <= intensity_high <= 1, got "
                f"{intensity_low}, {intensity_high}")
        self.period = float(period)
        self.low = float(intensity_low)
        self.high = float(intensity_high)

    def intensity(self, t: float) -> float:
        half = 0.5 * self.period
        t_cyc = math.fmod(t, self.period)
        if t_cyc < 0.0:
            t_cyc += self.period
        frac = t_cyc / half if t_cyc < half else (self.period - t_cyc) / half
        return self.low + (self.high - self.low) * frac

    def breakpoints(self, duration: float) -> np.ndarray:
        half = 0.5 * self.period
        count = int(math.floor(duration / half)) + 1
        points = [k * half for k in range(count + 1)]
        return _clip_breakpoints(points, duration)


__all__ = [
    "DiurnalSolarModel",
    "EnvironmentModel",
    "KineticBurstModel",
    "ThermalGradientModel",
]
