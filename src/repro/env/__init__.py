"""Harvesting-environment engine: parametric models lowered to traces.

The paper's bench approximates harvested solar energy as weak, roughly
constant power; real deployments see diurnal arcs, cloud transients,
motion bursts and thermal cycles. This package models those environments
*parametrically* — a seeded, serializable :class:`EnvSpec` describes an
irradiance/vibration/temperature profile and an MPPT harvester front-end
— and **lowers** them into the piecewise-constant
:class:`~repro.power.harvester.TraceHarvester` representation every
simulation engine already consumes natively: the reference loop and the
scalar fastpath clamp their steps at piece edges, the segment algebra
turns the edges into span horizons, and the fleet kernels replay shared
edge grids with per-device power columns.

Layout:

* :mod:`repro.env.models` — intensity-versus-time models (diurnal solar
  with seeded cloud transients, kinetic burst, thermal gradient);
* :mod:`repro.env.mppt` — the PV transducer IV curve and the MPPT
  front-ends (constant-voltage, V_OC-fraction, perturb-and-observe)
  that turn intensity into electrical watts;
* :mod:`repro.env.lowering` — adaptive, breakpoint-exact lowering of a
  model + front-end into a :class:`TraceHarvester`;
* :mod:`repro.env.spec` — the frozen, serializable :class:`EnvSpec`;
* :mod:`repro.env.correlate` — spatio-temporal correlation: one
  environment swept across a fleet as a moving front, on a shared grid;
* :mod:`repro.env.trace_io` — the versioned, content-fingerprinted
  ``.npz`` recorded-trace format (byte-deterministic writer).
"""

from repro.env.correlate import fleet_columns
from repro.env.lowering import lower_environment
from repro.env.models import (
    DiurnalSolarModel,
    KineticBurstModel,
    ThermalGradientModel,
)
from repro.env.mppt import (
    ConstantVoltageMPPT,
    PerturbObserveMPPT,
    PVTransducer,
    VocFractionMPPT,
)
from repro.env.spec import ENV_MODELS, ENV_MPPTS, EnvSpec
from repro.env.trace_io import (
    EnvFleetTrace,
    generate_fleet_trace,
    load_trace,
    save_trace,
)

__all__ = [
    "ConstantVoltageMPPT",
    "DiurnalSolarModel",
    "ENV_MODELS",
    "ENV_MPPTS",
    "EnvFleetTrace",
    "EnvSpec",
    "KineticBurstModel",
    "PVTransducer",
    "PerturbObserveMPPT",
    "ThermalGradientModel",
    "VocFractionMPPT",
    "fleet_columns",
    "generate_fleet_trace",
    "load_trace",
    "lower_environment",
    "save_trace",
]
