"""Recorded environment traces: a compact, versioned ``.npz`` format.

An :class:`EnvFleetTrace` is the on-disk form of a correlated fleet
environment: the shared edge grid, one power column per device, the
generating :class:`~repro.env.spec.EnvSpec` (when there is one — a
trace recorded from real hardware has none), and a **content
fingerprint** over the canonical arrays. The fingerprint is the trace's
identity everywhere: ``repro env replay --check`` verifies a
regenerated trace against it, and each device's column shares it as a
prefix of the per-device :class:`TraceHarvester` fingerprints that key
the V_safe and segment-program caches.

The writer is **byte-deterministic**: ``numpy.savez`` stamps zip
members with the current wall clock, so two identical saves differ;
this module writes the zip members itself with a fixed epoch timestamp
and no compression, making save → load → save a byte-identical
round-trip (a property the test layer and the CI byte-identity gates
rely on). Files remain ordinary ``.npz`` archives ``numpy.load`` reads.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.env.correlate import fleet_columns
from repro.env.spec import EnvSpec
from repro.obs import current as _obs_current
from repro.power.harvester import TraceHarvester

FORMAT = "repro.env-trace"
VERSION = 1

#: Fixed zip member timestamp (the zip epoch) — the whole point of the
#: custom writer.
_EPOCH = (1980, 1, 1, 0, 0, 0)


def trace_fingerprint(edges: np.ndarray, powers: np.ndarray) -> str:
    """Content digest of the canonical trace arrays."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{FORMAT}-v{VERSION}".encode())
    digest.update(np.ascontiguousarray(edges, dtype=np.float64).tobytes())
    digest.update(np.ascontiguousarray(powers, dtype=np.float64).tobytes())
    return digest.hexdigest()


@dataclass
class EnvFleetTrace:
    """A fleet environment trace: shared edges, per-device columns."""

    edges: np.ndarray   # [K + 1], starts at 0.0, strictly increasing
    powers: np.ndarray  # [devices, K], finite, non-negative
    spec: Optional[EnvSpec] = None

    def __post_init__(self) -> None:
        self.edges = np.ascontiguousarray(self.edges, dtype=np.float64)
        self.powers = np.ascontiguousarray(self.powers, dtype=np.float64)
        if self.edges.ndim != 1 or self.powers.ndim != 2:
            raise ValueError("edges must be 1-D and powers 2-D")
        if self.powers.shape[1] != len(self.edges) - 1:
            raise ValueError(
                f"powers has {self.powers.shape[1]} pieces for "
                f"{len(self.edges)} edges")
        if len(self.edges) < 2 or self.edges[0] != 0.0 \
                or not np.all(np.diff(self.edges) > 0.0):
            raise ValueError(
                "edges must start at 0.0 and increase strictly")
        if np.any(self.powers < 0.0) \
                or not np.all(np.isfinite(self.powers)):
            raise ValueError("powers must be finite and non-negative")

    @property
    def devices(self) -> int:
        return int(self.powers.shape[0])

    @property
    def duration(self) -> float:
        return float(self.edges[-1])

    @property
    def fingerprint(self) -> str:
        return trace_fingerprint(self.edges, self.powers)

    def device_harvester(self, i: int) -> TraceHarvester:
        """Device ``i``'s column as a scalar harvester (shared edges)."""
        return TraceHarvester(self.edges, self.powers[i])

    def summary(self) -> dict:
        """Inspection record (the ``repro env inspect`` payload)."""
        return {
            "format": FORMAT,
            "version": VERSION,
            "devices": self.devices,
            "pieces": int(self.powers.shape[1]),
            "duration_s": self.duration,
            "fingerprint": self.fingerprint,
            "power_max_w": float(self.powers.max()) if self.powers.size
            else 0.0,
            "power_mean_w": float(self.powers.mean()) if self.powers.size
            else 0.0,
            "spec": self.spec.to_dict() if self.spec is not None else None,
        }


def generate_fleet_trace(spec: EnvSpec, devices: int) -> EnvFleetTrace:
    """Expand ``spec`` into a correlated fleet trace (pure function)."""
    edges, powers = fleet_columns(spec, devices)
    trace = EnvFleetTrace(edges=edges, powers=powers, spec=spec)
    obs = _obs_current()
    if obs is not None:
        obs.metrics.counter("env.fleet_traces_generated").inc()
    return trace


def save_trace(path, trace: EnvFleetTrace) -> None:
    """Write ``trace`` as a byte-deterministic ``.npz`` archive."""
    header = {
        "format": FORMAT,
        "version": VERSION,
        "fingerprint": trace.fingerprint,
        "spec": trace.spec.to_dict() if trace.spec is not None else None,
    }
    members = {
        "edges": trace.edges,
        "header": np.array(json.dumps(header, sort_keys=True)),
        "powers": trace.powers,
    }
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for name in sorted(members):
            buf = io.BytesIO()
            np.lib.format.write_array(buf, np.asarray(members[name]),
                                      version=(1, 0))
            info = zipfile.ZipInfo(name + ".npy", date_time=_EPOCH)
            archive.writestr(info, buf.getvalue())
    obs = _obs_current()
    if obs is not None:
        obs.metrics.counter("env.traces_saved").inc()


def load_trace(path) -> EnvFleetTrace:
    """Read a trace written by :func:`save_trace`, verifying identity."""
    with np.load(path, allow_pickle=False) as data:
        try:
            header = json.loads(str(data["header"]))
            edges = data["edges"]
            powers = data["powers"]
        except KeyError as exc:
            raise ValueError(f"{path}: not an environment trace "
                             f"(missing member {exc})") from exc
    if header.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not an environment trace: {header.get('format')!r}")
    if header.get("version") != VERSION:
        raise ValueError(
            f"{path}: unsupported trace version {header.get('version')!r}")
    spec = EnvSpec.from_dict(header["spec"]) if header.get("spec") else None
    trace = EnvFleetTrace(edges=edges, powers=powers, spec=spec)
    recorded = header.get("fingerprint", "")
    if recorded and recorded != trace.fingerprint:
        raise ValueError(
            f"{path}: content fingerprint mismatch — recorded {recorded}, "
            f"computed {trace.fingerprint} (corrupt or hand-edited trace)")
    obs = _obs_current()
    if obs is not None:
        obs.metrics.counter("env.traces_loaded").inc()
    return trace


__all__ = [
    "EnvFleetTrace",
    "FORMAT",
    "VERSION",
    "generate_fleet_trace",
    "load_trace",
    "save_trace",
    "trace_fingerprint",
]
