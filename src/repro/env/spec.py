"""The serializable recipe for a harvesting environment.

:class:`EnvSpec` is to an environment what
:class:`~repro.fleet.spec.FleetSpec` is to a deployment: a frozen,
seedable value object from which everything else is a pure function —
the parametric model, the transducer, the MPPT front-end, the lowered
scalar trace, and (through :mod:`repro.env.correlate`) the per-device
power columns of a whole correlated fleet. Two processes holding equal
specs regenerate bit-identical traces, which is what lets the sharded
fleet runner replay an environment without ever shipping the columns
between processes.

The spec's :attr:`~EnvSpec.fingerprint` digests the canonical field
dict, so it is stable across sessions and keys recorded ``.npz``
artifacts; the *lowered trace* carries its own content fingerprint
(:attr:`TraceHarvester.fingerprint`) which keys the V_safe and
segment-program caches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.env.lowering import lower_environment
from repro.env.models import (
    DiurnalSolarModel,
    KineticBurstModel,
    ThermalGradientModel,
)
from repro.env.mppt import (
    ConstantVoltageMPPT,
    PerturbObserveMPPT,
    PVTransducer,
    VocFractionMPPT,
)
from repro.power.harvester import TraceHarvester

ENV_MODELS = ("diurnal-solar", "kinetic-burst", "thermal-gradient")
ENV_MPPTS = ("constant-voltage", "voc-fraction", "perturb-observe")


@dataclass(frozen=True)
class EnvSpec:
    """A seeded environment + front-end recipe (serializable).

    Model-specific knobs are namespaced by prefix and ignored by the
    models that do not consume them, so one flat record round-trips
    through JSON without unions. ``front_delay`` is the spatio-temporal
    correlation knob: device ``i`` of a fleet sees the environment
    delayed by ``front_delay * i`` seconds — a weather front sweeping
    the deployment — quantized to the shared ``grid_dt`` lattice.
    """

    model: str
    duration: float = 240.0
    seed: int = 0
    mppt: str = "voc-fraction"
    peak_power: float = 4e-3
    # -- transducer --------------------------------------------------------
    v_oc: float = 2.2
    knee: float = 8.0
    voc_exponent: float = 0.06
    # -- diurnal-solar -----------------------------------------------------
    period: float = 240.0
    daylight_fraction: float = 0.5
    cloud_rate: float = 4.0
    cloud_depth: float = 0.7
    cloud_duration: float = 6.0
    # -- kinetic-burst -----------------------------------------------------
    base_intensity: float = 0.05
    burst_rate: float = 0.1
    burst_duration: float = 2.0
    burst_intensity: float = 0.9
    # -- thermal-gradient --------------------------------------------------
    intensity_low: float = 0.2
    intensity_high: float = 1.0
    # -- MPPT front-end ----------------------------------------------------
    mppt_voltage: float = 1.7
    mppt_fraction: float = 0.76
    po_step: float = 0.05
    po_dt: float = 0.5
    # -- lowering / fleet correlation --------------------------------------
    max_dt: float = 2.0
    tol: float = 0.02
    front_delay: float = 0.0
    grid_dt: float = 0.25

    def __post_init__(self) -> None:
        if self.model not in ENV_MODELS:
            raise ValueError(
                f"unknown environment model {self.model!r}; "
                f"choose from {ENV_MODELS}")
        if self.mppt not in ENV_MPPTS:
            raise ValueError(
                f"unknown MPPT front-end {self.mppt!r}; "
                f"choose from {ENV_MPPTS}")
        if self.duration <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration}")
        if self.peak_power < 0:
            raise ValueError(
                f"peak_power must be non-negative, got {self.peak_power}")
        if self.grid_dt <= 0:
            raise ValueError(f"grid_dt must be positive, got {self.grid_dt}")
        if self.front_delay < 0:
            raise ValueError(
                f"front_delay must be non-negative, got {self.front_delay}")

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        data["format"] = "repro.env-spec"
        data["version"] = 1
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EnvSpec":
        if data.get("format", "repro.env-spec") != "repro.env-spec":
            raise ValueError(f"not an env spec: {data.get('format')!r}")
        fields = {k: v for k, v in data.items()
                  if k not in ("format", "version")}
        return cls(**fields)

    @property
    def fingerprint(self) -> str:
        """Digest of the canonical field dict (artifact identity)."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":")).encode()
        digest = hashlib.blake2b(payload, digest_size=16)
        return digest.hexdigest()

    # -- builders -----------------------------------------------------------

    def build_model(self, horizon: float = 0.0):
        """The parametric model, drawn over at least ``duration`` (plus
        any extra ``horizon`` a correlated fleet's trailing devices need)."""
        span = max(self.duration, horizon)
        if self.model == "diurnal-solar":
            return DiurnalSolarModel(
                period=self.period,
                daylight_fraction=self.daylight_fraction,
                seed=self.seed, cloud_rate=self.cloud_rate,
                cloud_depth=self.cloud_depth,
                cloud_duration=self.cloud_duration, horizon=span)
        if self.model == "kinetic-burst":
            return KineticBurstModel(
                base_intensity=self.base_intensity, seed=self.seed,
                burst_rate=self.burst_rate,
                burst_duration=self.burst_duration,
                burst_intensity=self.burst_intensity, horizon=span)
        return ThermalGradientModel(
            period=self.period, intensity_low=self.intensity_low,
            intensity_high=self.intensity_high)

    def build_transducer(self) -> PVTransducer:
        return PVTransducer.scaled_to(
            self.peak_power, v_oc=self.v_oc, knee=self.knee,
            voc_exponent=self.voc_exponent)

    def build_mppt(self):
        if self.mppt == "constant-voltage":
            return ConstantVoltageMPPT(v_ref=self.mppt_voltage)
        if self.mppt == "voc-fraction":
            return VocFractionMPPT(fraction=self.mppt_fraction)
        return PerturbObserveMPPT(step=self.po_step)

    def lower(self) -> TraceHarvester:
        """The breakpoint-exact scalar lowering of this environment."""
        return lower_environment(
            self.build_model(), self.build_transducer(), self.build_mppt(),
            self.duration, max_dt=self.max_dt, tol=self.tol,
            sample_dt=self.po_dt)


__all__ = ["ENV_MODELS", "ENV_MPPTS", "EnvSpec"]
