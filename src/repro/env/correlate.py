"""Spatio-temporal correlation: one environment swept across a fleet.

A deployment does not see ten thousand independent skies — it sees one
sky arriving at different times. This module models that as a **moving
front**: device ``i`` experiences the base environment delayed by
``front_delay * i`` seconds (devices indexed along the front's travel
direction), so a cloud transient sweeps the fleet in index order at a
fixed speed.

The fleet representation is a *shared* uniform edge grid
(``grid_dt``-spaced, covering the spec duration) with one power column
per device. Delays are quantized to whole grid steps, which keeps every
device's column a pure shift of the shared base samples: the sharded
fleet runner regenerates columns per worker from the spec alone and
gets byte-identical arrays in every process, because each column is
``base[max(k - shift_i, 0)]`` — no per-device float arithmetic that
could reorder.

Before the front arrives, a device holds the environment's initial
value (the sky it was already under), mirroring the trace semantics of
clamp-before-start.
"""

from __future__ import annotations

import numpy as np


def base_grid(spec) -> tuple:
    """Shared uniform edges + base power samples for ``spec``.

    Returns ``(edges, base)``: ``edges`` has ``K + 1`` entries spanning
    at least ``spec.duration``; ``base[k]`` is the front-end power for
    piece ``[edges[k], edges[k+1])``, sampled at the piece midpoint for
    stateless front-ends and sequentially at piece starts for stateful
    ones (one tracker sample per piece).
    """
    grid_dt = spec.grid_dt
    pieces = max(1, int(np.ceil(spec.duration / grid_dt - 1e-12)))
    edges = np.arange(pieces + 1, dtype=np.float64) * grid_dt
    model = spec.build_model(horizon=float(edges[-1]))
    pv = spec.build_transducer()
    mppt = spec.build_mppt()
    mppt.reset()
    base = np.empty(pieces, dtype=np.float64)
    if mppt.stateful:
        for k in range(pieces):
            base[k] = mppt.harvest_power(pv, model.intensity(k * grid_dt))
    else:
        for k in range(pieces):
            mid = (k + 0.5) * grid_dt
            base[k] = mppt.harvest_power(pv, model.intensity(mid))
    return edges, base


def device_shifts(spec, devices: int) -> np.ndarray:
    """Per-device delay in whole grid steps (front arrival order)."""
    raw = spec.front_delay * np.arange(devices, dtype=np.float64)
    return np.rint(raw / spec.grid_dt).astype(np.int64)


def fleet_columns(spec, devices: int) -> tuple:
    """``(edges, powers)`` for a correlated fleet of ``devices``.

    ``edges`` is the shared 1-D grid; ``powers`` is ``[devices, K]``
    with row ``i`` the base samples delayed by ``i``'s quantized front
    delay. A pure function of ``(spec, devices)``.
    """
    if devices < 0:
        raise ValueError(f"devices must be >= 0, got {devices}")
    edges, base = base_grid(spec)
    pieces = len(base)
    powers = np.empty((devices, pieces), dtype=np.float64)
    if devices == 0:
        return edges, powers
    shifts = device_shifts(spec, devices)
    for shift in np.unique(shifts):
        rows = shifts == shift
        s = int(min(shift, pieces))
        if s == 0:
            powers[rows] = base
        else:
            powers[rows, :s] = base[0]
            powers[rows, s:] = base[:pieces - s]
    return edges, powers


__all__ = ["base_grid", "device_shifts", "fleet_columns"]
